/root/repo/target/debug/deps/gvfs_netsim-4d73aed834630b43.d: crates/netsim/src/lib.rs crates/netsim/src/link.rs crates/netsim/src/transport.rs crates/netsim/src/sched.rs crates/netsim/src/time.rs

/root/repo/target/debug/deps/gvfs_netsim-4d73aed834630b43: crates/netsim/src/lib.rs crates/netsim/src/link.rs crates/netsim/src/transport.rs crates/netsim/src/sched.rs crates/netsim/src/time.rs

crates/netsim/src/lib.rs:
crates/netsim/src/link.rs:
crates/netsim/src/transport.rs:
crates/netsim/src/sched.rs:
crates/netsim/src/time.rs:
