//! XDR (External Data Representation, [RFC 4506]) encoding and decoding.
//!
//! XDR is the wire format underlying ONC RPC and therefore NFS. Every
//! quantity is encoded big-endian and padded to a multiple of four bytes.
//! This crate provides:
//!
//! * [`Encoder`] — an append-only byte sink with typed `put_*` methods,
//! * [`Decoder`] — a cursor over a byte slice with typed `get_*` methods,
//! * the [`Xdr`] trait — types that know how to encode/decode themselves,
//!   with blanket support for `Option<T>`, `Vec<T>` and tuples.
//!
//! # Examples
//!
//! ```
//! use gvfs_xdr::{Encoder, Decoder, Xdr};
//!
//! # fn main() -> Result<(), gvfs_xdr::XdrError> {
//! let mut enc = Encoder::new();
//! enc.put_u32(7);
//! enc.put_string("lock.tmp")?;
//! let bytes = enc.into_bytes();
//!
//! let mut dec = Decoder::new(&bytes);
//! assert_eq!(dec.get_u32()?, 7);
//! assert_eq!(dec.get_string()?, "lock.tmp");
//! dec.finish()?;
//! # Ok(())
//! # }
//! ```
//!
//! [RFC 4506]: https://www.rfc-editor.org/rfc/rfc4506

mod decode;
mod encode;
mod error;

pub use decode::Decoder;
pub use encode::Encoder;
pub use error::XdrError;

/// A type with a canonical XDR wire representation.
///
/// Implementations must round-trip: decoding the output of
/// [`Xdr::encode`] yields an equal value.
///
/// # Examples
///
/// ```
/// use gvfs_xdr::{Encoder, Decoder, Xdr, XdrError};
///
/// #[derive(Debug, PartialEq)]
/// struct Point { x: u32, y: u32 }
///
/// impl Xdr for Point {
///     fn encode(&self, enc: &mut Encoder) -> Result<(), XdrError> {
///         enc.put_u32(self.x);
///         enc.put_u32(self.y);
///         Ok(())
///     }
///     fn decode(dec: &mut Decoder<'_>) -> Result<Self, XdrError> {
///         Ok(Point { x: dec.get_u32()?, y: dec.get_u32()? })
///     }
/// }
///
/// # fn main() -> Result<(), XdrError> {
/// let p = Point { x: 1, y: 2 };
/// let bytes = gvfs_xdr::to_bytes(&p)?;
/// assert_eq!(gvfs_xdr::from_bytes::<Point>(&bytes)?, p);
/// # Ok(())
/// # }
/// ```
pub trait Xdr: Sized {
    /// Appends the XDR representation of `self` to `enc`.
    ///
    /// # Errors
    ///
    /// Returns [`XdrError`] if a length limit is exceeded (e.g. a string
    /// longer than `u32::MAX`).
    fn encode(&self, enc: &mut Encoder) -> Result<(), XdrError>;

    /// Reads a value of this type from `dec`.
    ///
    /// # Errors
    ///
    /// Returns [`XdrError`] on truncated input, invalid discriminants or
    /// malformed padding.
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, XdrError>;
}

/// Encodes `value` into a fresh byte vector.
///
/// # Errors
///
/// Propagates any error from [`Xdr::encode`].
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), gvfs_xdr::XdrError> {
/// let bytes = gvfs_xdr::to_bytes(&0xdead_beef_u32)?;
/// assert_eq!(bytes, [0xde, 0xad, 0xbe, 0xef]);
/// # Ok(())
/// # }
/// ```
pub fn to_bytes<T: Xdr>(value: &T) -> Result<Vec<u8>, XdrError> {
    let mut enc = Encoder::new();
    value.encode(&mut enc)?;
    Ok(enc.into_bytes())
}

/// Decodes a `T` from `bytes`, requiring that all input is consumed.
///
/// # Errors
///
/// Returns [`XdrError::TrailingBytes`] if input remains after decoding, or
/// any error from [`Xdr::decode`].
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), gvfs_xdr::XdrError> {
/// let n: u32 = gvfs_xdr::from_bytes(&[0, 0, 0, 5])?;
/// assert_eq!(n, 5);
/// # Ok(())
/// # }
/// ```
pub fn from_bytes<T: Xdr>(bytes: &[u8]) -> Result<T, XdrError> {
    let mut dec = Decoder::new(bytes);
    let value = T::decode(&mut dec)?;
    dec.finish()?;
    Ok(value)
}

/// Returns the number of bytes `value` occupies on the wire.
///
/// # Errors
///
/// Propagates any error from [`Xdr::encode`].
pub fn encoded_len<T: Xdr>(value: &T) -> Result<usize, XdrError> {
    Ok(to_bytes(value)?.len())
}

impl Xdr for u32 {
    fn encode(&self, enc: &mut Encoder) -> Result<(), XdrError> {
        enc.put_u32(*self);
        Ok(())
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, XdrError> {
        dec.get_u32()
    }
}

impl Xdr for i32 {
    fn encode(&self, enc: &mut Encoder) -> Result<(), XdrError> {
        enc.put_i32(*self);
        Ok(())
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, XdrError> {
        dec.get_i32()
    }
}

impl Xdr for u64 {
    fn encode(&self, enc: &mut Encoder) -> Result<(), XdrError> {
        enc.put_u64(*self);
        Ok(())
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, XdrError> {
        dec.get_u64()
    }
}

impl Xdr for i64 {
    fn encode(&self, enc: &mut Encoder) -> Result<(), XdrError> {
        enc.put_i64(*self);
        Ok(())
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, XdrError> {
        dec.get_i64()
    }
}

impl Xdr for bool {
    fn encode(&self, enc: &mut Encoder) -> Result<(), XdrError> {
        enc.put_bool(*self);
        Ok(())
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, XdrError> {
        dec.get_bool()
    }
}

impl Xdr for String {
    fn encode(&self, enc: &mut Encoder) -> Result<(), XdrError> {
        enc.put_string(self)
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, XdrError> {
        dec.get_string()
    }
}

/// `Option<T>` encodes as XDR "optional-data": a boolean discriminant
/// followed by the value when present.
impl<T: Xdr> Xdr for Option<T> {
    fn encode(&self, enc: &mut Encoder) -> Result<(), XdrError> {
        match self {
            Some(v) => {
                enc.put_bool(true);
                v.encode(enc)
            }
            None => {
                enc.put_bool(false);
                Ok(())
            }
        }
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, XdrError> {
        if dec.get_bool()? {
            Ok(Some(T::decode(dec)?))
        } else {
            Ok(None)
        }
    }
}

/// `Vec<T>` encodes as an XDR variable-length array: a `u32` count
/// followed by that many elements.
impl<T: Xdr> Xdr for Vec<T> {
    fn encode(&self, enc: &mut Encoder) -> Result<(), XdrError> {
        let len = u32::try_from(self.len()).map_err(|_| XdrError::LengthOverflow)?;
        enc.put_u32(len);
        for item in self {
            item.encode(enc)?;
        }
        Ok(())
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, XdrError> {
        let len = dec.get_u32()? as usize;
        // Guard against hostile counts: never pre-reserve more than the
        // remaining input could possibly encode (1 byte per element floor).
        let mut items = Vec::with_capacity(len.min(dec.remaining()));
        for _ in 0..len {
            items.push(T::decode(dec)?);
        }
        Ok(items)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u32_wire_format_is_big_endian() {
        assert_eq!(to_bytes(&0x0102_0304_u32).unwrap(), [1, 2, 3, 4]);
    }

    #[test]
    fn i32_negative_round_trip() {
        let bytes = to_bytes(&(-2i32)).unwrap();
        assert_eq!(bytes, [0xff, 0xff, 0xff, 0xfe]);
        assert_eq!(from_bytes::<i32>(&bytes).unwrap(), -2);
    }

    #[test]
    fn u64_spans_two_words() {
        let bytes = to_bytes(&0x0102_0304_0506_0708_u64).unwrap();
        assert_eq!(bytes, [1, 2, 3, 4, 5, 6, 7, 8]);
    }

    #[test]
    fn bool_encodes_as_word() {
        assert_eq!(to_bytes(&true).unwrap(), [0, 0, 0, 1]);
        assert_eq!(to_bytes(&false).unwrap(), [0, 0, 0, 0]);
    }

    #[test]
    fn bool_rejects_other_discriminants() {
        let err = from_bytes::<bool>(&[0, 0, 0, 2]).unwrap_err();
        assert!(matches!(err, XdrError::InvalidDiscriminant { value: 2, .. }));
    }

    #[test]
    fn option_none_is_single_zero_word() {
        assert_eq!(to_bytes(&Option::<u32>::None).unwrap(), [0, 0, 0, 0]);
    }

    #[test]
    fn option_some_round_trip() {
        let v = Some(99u32);
        assert_eq!(from_bytes::<Option<u32>>(&to_bytes(&v).unwrap()).unwrap(), v);
    }

    #[test]
    fn vec_round_trip() {
        let v = vec![1u32, 2, 3];
        let bytes = to_bytes(&v).unwrap();
        assert_eq!(bytes.len(), 16);
        assert_eq!(from_bytes::<Vec<u32>>(&bytes).unwrap(), v);
    }

    #[test]
    fn vec_with_hostile_count_errors_instead_of_allocating() {
        // count = u32::MAX but no elements follow
        let bytes = [0xff, 0xff, 0xff, 0xff];
        assert!(from_bytes::<Vec<u32>>(&bytes).is_err());
    }

    #[test]
    fn from_bytes_rejects_trailing_garbage() {
        let err = from_bytes::<u32>(&[0, 0, 0, 1, 0]).unwrap_err();
        assert!(matches!(err, XdrError::TrailingBytes { remaining: 1 }));
    }

    #[test]
    fn string_round_trip_with_padding() {
        let s = "ab".to_string();
        let bytes = to_bytes(&s).unwrap();
        assert_eq!(bytes, [0, 0, 0, 2, b'a', b'b', 0, 0]);
        assert_eq!(from_bytes::<String>(&bytes).unwrap(), s);
    }

    #[test]
    fn encoded_len_matches_serialization() {
        let v = vec![7u64; 5];
        assert_eq!(encoded_len(&v).unwrap(), 4 + 5 * 8);
    }
}
