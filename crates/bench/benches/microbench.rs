//! Criterion micro-benchmarks for the hot paths of the stack:
//! XDR codecs, record marking, the filesystem, the caches, and the
//! consistency state machines.
//!
//! Run: `cargo bench -p gvfs-bench`

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use gvfs_core::cache::{DiskCache, FileCache};
use gvfs_core::delegation::DelegationTable;
use gvfs_core::invalidation::InvalidationTracker;
use gvfs_core::DelegationConfig;
use gvfs_netsim::SimTime;
use gvfs_nfs3::{Fattr3, Fh3, Ftype3, LookupArgs, NfsTime3, ReadRes};
use gvfs_rpc::message::{CallBody, MessageBody, OpaqueAuth, RpcMessage};
use gvfs_rpc::record::{write_record, RecordReader, MAX_FRAGMENT};
use gvfs_vfs::{Timestamp, Vfs};

fn sample_attr() -> Fattr3 {
    Fattr3 {
        ftype: Ftype3::Reg,
        mode: 0o644,
        nlink: 1,
        uid: 1000,
        gid: 100,
        size: 123_456,
        used: 123_456,
        rdev: (0, 0),
        fsid: 1,
        fileid: 42,
        atime: NfsTime3 { seconds: 1, nseconds: 2 },
        mtime: NfsTime3 { seconds: 3, nseconds: 4 },
        ctime: NfsTime3 { seconds: 5, nseconds: 6 },
    }
}

fn bench_xdr(c: &mut Criterion) {
    let mut group = c.benchmark_group("xdr");
    let attr = sample_attr();
    group.bench_function("encode_fattr3", |b| {
        b.iter(|| gvfs_xdr::to_bytes(&attr).unwrap());
    });
    let bytes = gvfs_xdr::to_bytes(&attr).unwrap();
    group.bench_function("decode_fattr3", |b| {
        b.iter(|| gvfs_xdr::from_bytes::<Fattr3>(&bytes).unwrap());
    });

    let msg = RpcMessage {
        xid: 7,
        body: MessageBody::Call(CallBody::new(
            gvfs_nfs3::NFS_PROGRAM,
            3,
            gvfs_nfs3::proc3::LOOKUP,
            OpaqueAuth::none(),
            gvfs_xdr::to_bytes(&LookupArgs { dir: Fh3::from_fileid(1), name: "Makefile".into() })
                .unwrap(),
        )),
    };
    group.bench_function("encode_rpc_lookup_call", |b| {
        b.iter(|| gvfs_xdr::to_bytes(&msg).unwrap());
    });

    let read_res = ReadRes::Ok {
        file_attributes: Some(attr),
        count: 32 * 1024,
        eof: false,
        data: vec![7u8; 32 * 1024],
    };
    group.throughput(Throughput::Bytes(32 * 1024));
    group.bench_function("encode_read_reply_32k", |b| {
        b.iter(|| gvfs_xdr::to_bytes(&read_res).unwrap());
    });
    group.finish();
}

fn bench_record_marking(c: &mut Criterion) {
    let mut group = c.benchmark_group("record_marking");
    let payload = vec![5u8; 64 * 1024];
    group.throughput(Throughput::Bytes(payload.len() as u64));
    group.bench_function("frame_64k", |b| {
        b.iter(|| write_record(&payload, MAX_FRAGMENT));
    });
    let framed = write_record(&payload, 16 * 1024);
    group.bench_function("reassemble_64k_fragmented", |b| {
        b.iter_batched(
            RecordReader::new,
            |mut reader| {
                reader.push(&framed).unwrap();
                reader.pop().unwrap()
            },
            BatchSize::SmallInput,
        );
    });
    group.finish();
}

fn bench_vfs(c: &mut Criterion) {
    let mut group = c.benchmark_group("vfs");
    group.bench_function("create_write_remove", |b| {
        let vfs = Vfs::new();
        let mut n = 0u64;
        b.iter(|| {
            let name = format!("f{n}");
            n += 1;
            let f = vfs.create(vfs.root(), &name, 0o644, Timestamp::from_nanos(n)).unwrap();
            vfs.write(f, 0, &[1u8; 4096], Timestamp::from_nanos(n)).unwrap();
            vfs.remove(vfs.root(), &name, Timestamp::from_nanos(n)).unwrap();
        });
    });
    group.bench_function("lookup_hot", |b| {
        let vfs = Vfs::new();
        for i in 0..1000 {
            vfs.create(vfs.root(), &format!("f{i}"), 0o644, Timestamp::from_nanos(0)).unwrap();
        }
        b.iter(|| vfs.lookup(vfs.root(), "f500").unwrap());
    });
    group.throughput(Throughput::Bytes(32 * 1024));
    group.bench_function("read_32k", |b| {
        let vfs = Vfs::new();
        let f = vfs.create(vfs.root(), "big", 0o644, Timestamp::from_nanos(0)).unwrap();
        vfs.write(f, 0, &vec![9u8; 1 << 20], Timestamp::from_nanos(0)).unwrap();
        b.iter(|| vfs.read(f, 128 * 1024, 32 * 1024).unwrap());
    });
    group.finish();
}

fn bench_file_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("proxy_file_cache");
    group.bench_function("read_hit_32k", |b| {
        let mut fc = FileCache::default();
        fc.insert_clean(0, vec![1u8; 1 << 20]);
        b.iter(|| fc.read(512 * 1024, 32 * 1024).unwrap());
    });
    group.bench_function("dirty_write_and_clean_range", |b| {
        b.iter_batched(
            || {
                let mut fc = FileCache::default();
                fc.insert_clean(0, vec![0u8; 256 * 1024]);
                fc
            },
            |mut fc| {
                fc.write_dirty(100_000, vec![7u8; 50_000]);
                fc.clean_range(98_304, 32 * 1024);
                fc
            },
            BatchSize::SmallInput,
        );
    });
    group.bench_function("dirty_blocks_enumeration", |b| {
        let mut fc = FileCache::default();
        for i in 0..64 {
            fc.write_dirty(i * 65_536, vec![1u8; 1000]);
        }
        b.iter(|| fc.dirty_blocks(32 * 1024));
    });
    group.finish();
}

fn bench_disk_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("proxy_disk_cache");
    group.bench_function("attr_hit", |b| {
        let mut cache = DiskCache::new(1 << 30);
        let attr = sample_attr();
        for i in 0..10_000 {
            cache.put_attr(Fh3::from_fileid(i), Fattr3 { fileid: i, ..attr });
        }
        b.iter(|| cache.attr(Fh3::from_fileid(5000)).unwrap());
    });
    group.bench_function("data_read_hit_32k", |b| {
        let mut cache = DiskCache::new(1 << 30);
        cache.insert_clean(Fh3::from_fileid(1), 0, vec![1u8; 1 << 20]);
        b.iter(|| cache.read(Fh3::from_fileid(1), 256 * 1024, 32 * 1024).unwrap());
    });
    group.finish();
}

fn bench_invalidation(c: &mut Criterion) {
    let mut group = c.benchmark_group("invalidation_tracker");
    group.bench_function("record_modification_6_clients", |b| {
        let mut tracker = InvalidationTracker::new(4096);
        for client in 1..=6 {
            tracker.getinv(client, None);
        }
        let mut fh = 0u64;
        b.iter(|| {
            fh += 1;
            tracker.record_modification(Fh3::from_fileid(fh % 512), 1);
        });
    });
    group.bench_function("getinv_drain_100", |b| {
        b.iter_batched(
            || {
                let mut tracker = InvalidationTracker::new(4096);
                let boot = tracker.getinv(1, None);
                for i in 0..100 {
                    tracker.record_modification(Fh3::from_fileid(i), 2);
                }
                (tracker, boot.timestamp)
            },
            |(mut tracker, ts)| tracker.getinv(1, Some(ts)),
            BatchSize::SmallInput,
        );
    });
    group.finish();
}

fn bench_delegation(c: &mut Criterion) {
    let mut group = c.benchmark_group("delegation_table");
    group.bench_function("access_renewal_hot_path", |b| {
        let mut table = DelegationTable::new(DelegationConfig::default());
        let fh = Fh3::from_fileid(1);
        let mut t = 0u64;
        b.iter(|| {
            t += 1;
            table.access(fh, 1, false, None, SimTime::from_nanos(t))
        });
    });
    group.bench_function("access_with_conflict_detection", |b| {
        let mut table = DelegationTable::new(DelegationConfig::default());
        // Six readers share 64 files.
        for f in 0..64 {
            for client in 1..=6 {
                table.access(Fh3::from_fileid(f), client, false, None, SimTime::ZERO);
            }
        }
        let mut t = 0u64;
        b.iter(|| {
            t += 1;
            let (_, recalls) =
                table.access(Fh3::from_fileid(t % 64), 7, true, None, SimTime::from_nanos(t));
            for r in recalls {
                table.recall_done(r.fh, r.client, Vec::new());
            }
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_xdr,
    bench_record_marking,
    bench_vfs,
    bench_file_cache,
    bench_disk_cache,
    bench_invalidation,
    bench_delegation,
);
criterion_main!(benches);
