//! Full-stack integration: every layer from XDR to the workloads,
//! exercised together through a GVFS session.

use gvfs_client::{MountOptions, NfsClient};
use gvfs_core::session::{NativeMount, Session, SessionConfig};
use gvfs_core::ConsistencyModel;
use gvfs_netsim::link::LinkConfig;
use gvfs_netsim::Sim;
use gvfs_nfs3::proc3;
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::Duration;

fn polling_session_config() -> SessionConfig {
    SessionConfig { model: ConsistencyModel::polling_30s(), ..SessionConfig::default() }
}

#[test]
fn mixed_operations_through_the_whole_stack() {
    let sim = Sim::new();
    let session = Session::builder(polling_session_config()).clients(1).establish(&sim);
    let transport = session.client_transport(0);
    let root = session.root_fh();
    let handle = session.handle();
    sim.spawn("app", move || {
        let c = NfsClient::new(transport, root, MountOptions::default());
        // Directory tree.
        let projects = c.mkdir(root, "projects").unwrap();
        let alpha = c.mkdir(projects, "alpha").unwrap();
        // Files, links, renames.
        let readme = c.create(alpha, "README", true).unwrap();
        c.write(readme, 0, b"hello full stack").unwrap();
        c.link(readme, projects, "README-link").unwrap();
        c.rename(alpha, "README", alpha, "README.md").unwrap();
        assert_eq!(c.read_file("/projects/alpha/README.md").unwrap(), b"hello full stack");
        assert_eq!(c.read_file("/projects/README-link").unwrap(), b"hello full stack");
        // Big sparse-ish file in chunks.
        let big = c.create(alpha, "big.bin", true).unwrap();
        c.write(big, 0, &vec![1u8; 100_000]).unwrap();
        c.write(big, 200_000, &vec![2u8; 50_000]).unwrap();
        let attr = c.getattr(big).unwrap();
        assert_eq!(attr.size, 250_000);
        let middle = c.read(big, 100_000, 100_000).unwrap();
        assert!(middle.iter().all(|&b| b == 0), "sparse gap reads as zeros");
        // Truncate and re-grow.
        c.truncate(big, 10).unwrap();
        assert_eq!(c.getattr(big).unwrap().size, 10);
        // Directory listing reflects it all.
        let names: Vec<String> =
            c.readdir_all(alpha).unwrap().into_iter().map(|e| e.name).collect();
        assert_eq!(names, vec!["README.md", "big.bin"]);
        // Cleanup.
        c.remove(alpha, "big.bin").unwrap();
        c.remove(alpha, "README.md").unwrap();
        c.remove(projects, "README-link").unwrap();
        c.rmdir(projects, "alpha").unwrap();
        c.rmdir(root, "projects").unwrap();
        assert!(c.readdir_all(root).unwrap().is_empty());
        handle.shutdown();
    });
    sim.run();
}

#[test]
fn six_clients_share_one_session_correctly() {
    let sim = Sim::new();
    let session = Session::builder(polling_session_config()).clients(6).establish(&sim);
    let root = session.root_fh();
    let handle = session.handle();
    let done = Arc::new(Mutex::new(0usize));
    for i in 0..6 {
        let transport = session.client_transport(i);
        let done = Arc::clone(&done);
        let h = handle.clone();
        sim.spawn(&format!("c{i}"), move || {
            let c = NfsClient::new(transport, root, MountOptions::default());
            // Every client writes its own file, then reads everyone's.
            c.write_file(&format!("/client-{i}.dat"), format!("payload-{i}").as_bytes()).unwrap();
            gvfs_netsim::sleep(Duration::from_secs(40)); // one polling window
            for j in 0..6 {
                let data = c.read_file(&format!("/client-{j}.dat")).unwrap();
                assert_eq!(data, format!("payload-{j}").as_bytes());
            }
            let mut d = done.lock();
            *d += 1;
            if *d == 6 {
                h.shutdown();
            }
        });
    }
    sim.run();
}

#[test]
fn byte_accurate_wire_sizes_flow_end_to_end() {
    // A GETATTR round trip over the native mount must cost the real
    // NFSv3 encoding size: call ≈ RPC header + fh; reply ≈ header + fattr3.
    let sim = Sim::new();
    let native = NativeMount::establish(1, LinkConfig::wan(), None);
    let (t, root) = (native.client_transport(0), native.root_fh());
    let stats = native.stats().clone();
    sim.spawn("c", move || {
        let c = NfsClient::new(t, root, MountOptions::default());
        let fh = c.write_file("/f", b"x").unwrap();
        c.drop_caches();
        c.getattr_force(fh).unwrap();
    });
    sim.run();
    let snap = stats.snapshot();
    let (mut getattr_bytes_out, mut getattr_bytes_in) = (0, 0);
    for (&(prog, proc), counter) in snap.iter() {
        if prog == gvfs_nfs3::NFS_PROGRAM && proc == proc3::GETATTR {
            getattr_bytes_out = counter.bytes_out / counter.calls;
            getattr_bytes_in = counter.bytes_in / counter.calls;
        }
    }
    // RPC call header (~40 B) + 12 B fh + record mark; reply ~28 B + 84 B fattr3.
    assert!((50..=120).contains(&getattr_bytes_out), "call size {getattr_bytes_out}");
    assert!((100..=160).contains(&getattr_bytes_in), "reply size {getattr_bytes_in}");
}

#[test]
fn deterministic_replay_same_seed_same_virtual_time() {
    let run = || {
        let sim = Sim::new();
        let session = Session::builder(polling_session_config()).clients(2).establish(&sim);
        let root = session.root_fh();
        let handle = session.handle();
        let (t0, t1) = (session.client_transport(0), session.client_transport(1));
        let total = session.wan_stats().clone();
        sim.spawn("a", move || {
            let c = NfsClient::new(t0, root, MountOptions::default());
            for n in 0..10 {
                c.write_file(&format!("/a-{n}"), &[n as u8; 1000]).unwrap();
                gvfs_netsim::sleep(Duration::from_secs(1));
            }
        });
        sim.spawn("b", move || {
            let c = NfsClient::new(t1, root, MountOptions::default());
            gvfs_netsim::sleep(Duration::from_secs(5));
            for n in 0..10 {
                let _ = c.read_file(&format!("/a-{n}"));
                gvfs_netsim::sleep(Duration::from_secs(1));
            }
            gvfs_netsim::sleep(Duration::from_secs(60));
            handle.shutdown();
        });
        let end = sim.run();
        (end, total.snapshot().total_calls(), total.snapshot().total_bytes())
    };
    let first = run();
    let second = run();
    assert_eq!(first, second, "virtual-time simulation must be fully deterministic");
}

#[test]
fn session_and_native_agree_on_semantics() {
    // The same operation sequence produces identical observable file
    // contents whether run through GVFS or native NFS.
    fn run_ops(gvfs: bool) -> Vec<(String, Vec<u8>)> {
        let sim = Sim::new();
        let out = Arc::new(Mutex::new(Vec::new()));
        let o = Arc::clone(&out);
        let (transport, root, _guard) = if gvfs {
            let session = Session::builder(polling_session_config()).clients(1).establish(&sim);
            let t = session.client_transport(0);
            let r = session.root_fh();
            let h = session.handle();
            (t, r, Some(h))
        } else {
            let native = NativeMount::establish(1, LinkConfig::wan(), None);
            (native.client_transport(0), native.root_fh(), None)
        };
        sim.spawn("ops", move || {
            let c = NfsClient::new(transport, root, MountOptions::default());
            let d = c.mkdir(root, "d").unwrap();
            let f1 = c.create(d, "one", true).unwrap();
            c.write(f1, 0, b"1111").unwrap();
            c.write(f1, 2, b"22").unwrap();
            let f2 = c.create(d, "two", true).unwrap();
            c.write(f2, 0, b"abc").unwrap();
            c.rename(d, "two", d, "three").unwrap();
            c.link(f1, d, "alias").unwrap();
            c.truncate(f2, 2).unwrap();
            for name in ["one", "three", "alias"] {
                let data = c.read_file(&format!("/d/{name}")).unwrap();
                o.lock().push((name.to_string(), data));
            }
            if let Some(h) = _guard {
                h.shutdown();
            }
        });
        sim.run();
        let result = out.lock().clone();
        result
    }
    assert_eq!(run_ops(true), run_ops(false));
}
