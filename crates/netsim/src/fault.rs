//! Seeded fault injection for simulated links.
//!
//! A [`FaultPlan`] describes, for one link direction, every fault the
//! chaos harness can inject: transient partition windows, probabilistic
//! message drop and duplication, and extra random jitter (which reorders
//! deliveries relative to program order). All randomness comes from one
//! `u64` seed expanded into a dedicated [`StdRng`](rand::rngs::StdRng),
//! and dice are rolled under the scheduler's serialization, so a given
//! plan replays the identical fate sequence on every run — any failure a
//! chaos run finds is reproducible from the seed alone.
//!
//! Plans are installed per direction with
//! [`Link::set_fault_plan`](crate::link::Link::set_fault_plan); the
//! transport reads the resulting [`Delivery`] fate and turns it into
//! protocol-visible behaviour (a dropped request or reply becomes an RPC
//! timeout, a duplicate becomes a re-executed call).

use crate::time::SimTime;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

/// A half-open virtual-time window `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Window {
    /// First instant the window covers.
    pub start: SimTime,
    /// First instant past the window.
    pub end: SimTime,
}

impl Window {
    /// Builds a window covering `[start, end)`.
    pub fn new(start: SimTime, end: SimTime) -> Self {
        Window { start, end }
    }

    /// Whether `t` falls inside the window.
    pub fn contains(&self, t: SimTime) -> bool {
        self.start <= t && t < self.end
    }
}

/// A probabilistic per-message fault active within a window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProbWindow {
    /// When the fault is armed.
    pub window: Window,
    /// Per-message probability in `[0, 1]`.
    pub probability: f64,
}

/// Extra uniformly-random delivery latency within a window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JitterWindow {
    /// When the jitter is armed.
    pub window: Window,
    /// Upper bound on the extra latency (inclusive).
    pub max: Duration,
}

/// Everything that can go wrong on one link direction, derived from one
/// seed.
///
/// An empty plan (no windows) behaves exactly like an unfaulted link.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// Seed for the direction's private RNG.
    pub seed: u64,
    /// Hard outage windows: sends fail as partitioned.
    pub partitions: Vec<Window>,
    /// Message-loss windows.
    pub drops: Vec<ProbWindow>,
    /// Message-duplication windows.
    pub duplicates: Vec<ProbWindow>,
    /// Extra-latency (reorder) windows.
    pub jitters: Vec<JitterWindow>,
}

impl FaultPlan {
    /// An empty plan seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        FaultPlan { seed, ..FaultPlan::default() }
    }

    /// Adds a partition window.
    #[must_use]
    pub fn with_partition(mut self, window: Window) -> Self {
        self.partitions.push(window);
        self
    }

    /// Adds a drop window with the given per-message probability.
    #[must_use]
    pub fn with_drop(mut self, window: Window, probability: f64) -> Self {
        self.drops.push(ProbWindow { window, probability });
        self
    }

    /// Adds a duplication window with the given per-message probability.
    #[must_use]
    pub fn with_duplicate(mut self, window: Window, probability: f64) -> Self {
        self.duplicates.push(ProbWindow { window, probability });
        self
    }

    /// Adds a jitter window with the given maximum extra latency.
    #[must_use]
    pub fn with_jitter(mut self, window: Window, max: Duration) -> Self {
        self.jitters.push(JitterWindow { window, max });
        self
    }

    /// Whether the plan injects nothing at all.
    pub fn is_empty(&self) -> bool {
        self.partitions.is_empty()
            && self.drops.is_empty()
            && self.duplicates.is_empty()
            && self.jitters.is_empty()
    }
}

/// The fate of one transfer under a [`FaultPlan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Delivery {
    /// When the message reaches the far end (includes any jitter).
    pub arrival: SimTime,
    /// The message was lost in flight (the pipe was still occupied).
    pub dropped: bool,
    /// The message arrives twice (models an ONC-RPC retransmission).
    pub duplicated: bool,
}

impl Delivery {
    /// An undisturbed delivery at `arrival`.
    pub fn clean(arrival: SimTime) -> Self {
        Delivery { arrival, dropped: false, duplicated: false }
    }
}

/// A plan plus its running RNG, owned by one link direction.
#[derive(Debug)]
pub(crate) struct FaultState {
    plan: FaultPlan,
    rng: StdRng,
}

impl FaultState {
    pub(crate) fn new(plan: FaultPlan) -> Self {
        let rng = StdRng::seed_from_u64(plan.seed);
        FaultState { plan, rng }
    }

    pub(crate) fn partitioned_at(&self, t: SimTime) -> bool {
        self.plan.partitions.iter().any(|w| w.contains(t))
    }

    /// Rolls the dice for one transfer sent at `t`. The draw order is
    /// fixed (drop, duplicate, jitter) and a die is only cast when a
    /// window covers `t`, so the fate sequence is a pure function of the
    /// plan and the send times.
    pub(crate) fn roll(&mut self, t: SimTime) -> (bool, bool, Duration) {
        let dropped = match self.plan.drops.iter().find(|p| p.window.contains(t)) {
            Some(p) => self.rng.gen_bool(p.probability),
            None => false,
        };
        let duplicated = match self.plan.duplicates.iter().find(|p| p.window.contains(t)) {
            Some(p) => self.rng.gen_bool(p.probability),
            None => false,
        };
        let jitter = match self.plan.jitters.iter().find(|j| j.window.contains(t)) {
            Some(j) if !j.max.is_zero() => {
                let bound = u64::try_from(j.max.as_nanos()).unwrap_or(u64::MAX);
                Duration::from_nanos(self.rng.gen_range(0..=bound))
            }
            _ => Duration::ZERO,
        };
        (dropped, duplicated, jitter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn win(start_ms: u64, end_ms: u64) -> Window {
        Window::new(SimTime::from_millis(start_ms), SimTime::from_millis(end_ms))
    }

    #[test]
    fn window_is_half_open() {
        let w = win(10, 20);
        assert!(!w.contains(SimTime::from_millis(9)));
        assert!(w.contains(SimTime::from_millis(10)));
        assert!(w.contains(SimTime::from_millis(19)));
        assert!(!w.contains(SimTime::from_millis(20)));
    }

    #[test]
    fn empty_plan_never_disturbs() {
        let mut state = FaultState::new(FaultPlan::new(7));
        for ms in 0..100 {
            let t = SimTime::from_millis(ms);
            assert!(!state.partitioned_at(t));
            assert_eq!(state.roll(t), (false, false, Duration::ZERO));
        }
    }

    #[test]
    fn partition_window_cuts_only_inside() {
        let state = FaultState::new(FaultPlan::new(1).with_partition(win(50, 60)));
        assert!(!state.partitioned_at(SimTime::from_millis(49)));
        assert!(state.partitioned_at(SimTime::from_millis(55)));
        assert!(!state.partitioned_at(SimTime::from_millis(60)));
    }

    #[test]
    fn certain_drop_always_drops_inside_window() {
        let mut state = FaultState::new(FaultPlan::new(3).with_drop(win(0, 100), 1.0));
        let (dropped, duplicated, _) = state.roll(SimTime::from_millis(5));
        assert!(dropped);
        assert!(!duplicated);
        let (dropped, _, _) = state.roll(SimTime::from_millis(500));
        assert!(!dropped, "outside the window nothing is lost");
    }

    #[test]
    fn same_seed_replays_identical_fates() {
        let plan = FaultPlan::new(99)
            .with_drop(win(0, 1000), 0.3)
            .with_duplicate(win(0, 1000), 0.2)
            .with_jitter(win(0, 1000), Duration::from_millis(5));
        let mut a = FaultState::new(plan.clone());
        let mut b = FaultState::new(plan);
        for ms in 0..200 {
            let t = SimTime::from_millis(ms);
            assert_eq!(a.roll(t), b.roll(t));
        }
    }

    #[test]
    fn jitter_bounded_by_max() {
        let max = Duration::from_millis(7);
        let mut state = FaultState::new(FaultPlan::new(11).with_jitter(win(0, 1000), max));
        for ms in 0..200 {
            let (_, _, jitter) = state.roll(SimTime::from_millis(ms));
            assert!(jitter <= max);
        }
    }
}
