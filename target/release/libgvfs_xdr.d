/root/repo/target/release/libgvfs_xdr.rlib: /root/repo/crates/xdr/src/decode.rs /root/repo/crates/xdr/src/encode.rs /root/repo/crates/xdr/src/error.rs /root/repo/crates/xdr/src/lib.rs
