/root/repo/target/debug/deps/fig7-878b098445c0a9e6.d: crates/bench/src/bin/fig7.rs

/root/repo/target/debug/deps/fig7-878b098445c0a9e6: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
