//! Regression tests for the exponential back-off on doomed WAN calls: a
//! partitioned client must not hammer its dead link. Before the fix the
//! GETINV poller retried every period and the forward path every second,
//! so a six-minute outage burned hundreds of unreachable attempts; with
//! back-off (window doubling to the cap) the count stays in the teens.

use gvfs_client::{MountOptions, NfsClient};
use gvfs_core::protocol::{proc_ext, GVFS_PROXY_PROGRAM};
use gvfs_core::session::{Session, SessionConfig};
use gvfs_core::ConsistencyModel;
use gvfs_netsim::Sim;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn sleep_until(at: Duration) {
    let elapsed = gvfs_netsim::now().saturating_since(gvfs_netsim::SimTime::ZERO);
    if at > elapsed {
        gvfs_netsim::sleep(at - elapsed);
    }
}

/// The GETINV poller across a 390 s partition: the polling window must
/// back off (2 s doubling to 60 s ≈ a dozen attempts), not fire every
/// period (~195 attempts), and polling must resume after the heal.
#[test]
fn poller_backs_off_across_a_partition() {
    let sim = Sim::new();
    let session = Arc::new(
        Session::builder(SessionConfig {
            model: ConsistencyModel::InvalidationPolling {
                period: Duration::from_secs(2),
                backoff_max: Some(Duration::from_secs(60)),
            },
            write_back: false,
            ..SessionConfig::default()
        })
        .clients(1)
        .establish(&sim),
    );

    let done = Arc::new(AtomicUsize::new(0));
    let outage = Arc::new(Mutex::new(None));

    {
        let t = session.client_transport(0);
        let root = session.root_fh();
        let done = Arc::clone(&done);
        sim.spawn("bo-warm", move || {
            let c = NfsClient::new(t, root, MountOptions::noac());
            gvfs_netsim::sleep(Duration::from_secs(1));
            c.write_file("/bo-a", b"warm").expect("warm write");
            done.fetch_add(1, Ordering::SeqCst);
        });
    }
    {
        let session = Arc::clone(&session);
        let done = Arc::clone(&done);
        let outage = Arc::clone(&outage);
        sim.spawn("bo-controller", move || {
            sleep_until(Duration::from_secs(10));
            let before = session.wan_stats().snapshot();
            session.wan_link(0).set_partitioned(true);
            sleep_until(Duration::from_secs(400));
            let during = session.wan_stats().snapshot().since(&before);
            session.wan_link(0).set_partitioned(false);
            // Leave time for a healed polling round before shutdown.
            gvfs_netsim::sleep(Duration::from_secs(90));
            let healed = session.wan_stats().snapshot();
            *outage.lock() = Some((during, healed.since(&before)));
            done.fetch_add(1, Ordering::SeqCst);
        });
    }
    {
        let handle = session.handle();
        let done = Arc::clone(&done);
        sim.spawn("bo-closer", move || {
            loop {
                gvfs_netsim::park_timeout(Duration::from_secs(1));
                if done.load(Ordering::SeqCst) >= 2 {
                    break;
                }
            }
            handle.shutdown();
        });
    }
    sim.run();

    let guard = outage.lock();
    let (during, after) = guard.as_ref().expect("controller ran");
    let attempts = during.transport_unreachable();
    assert!(attempts >= 3, "the poller must keep probing the dead link (saw {attempts} attempts)");
    assert!(
        attempts <= 20,
        "390 s of partition burned {attempts} unreachable attempts; \
         the back-off (2 s doubling to 60 s) allows at most ~a dozen"
    );
    assert!(
        after.calls(GVFS_PROXY_PROGRAM, proc_ext::GETINV) >= 1,
        "polling must resume once the link heals"
    );
}

/// A forwarded request issued into a partition: the retry loop must
/// back off (1 s doubling to 60 s) while the link is dead, then complete
/// the request after the heal — a hard-mount wait, not a hot loop.
#[test]
fn blocked_forward_backs_off_and_completes_after_heal() {
    let sim = Sim::new();
    let session = Arc::new(
        Session::builder(SessionConfig {
            model: ConsistencyModel::Passthrough,
            write_back: false,
            ..SessionConfig::default()
        })
        .clients(1)
        .establish(&sim),
    );

    let done = Arc::new(AtomicUsize::new(0));
    let read_back = Arc::new(Mutex::new(Vec::new()));
    let attempts = Arc::new(AtomicUsize::new(usize::MAX));

    {
        let t = session.client_transport(0);
        let root = session.root_fh();
        let done = Arc::clone(&done);
        let read_back = Arc::clone(&read_back);
        sim.spawn("bo-reader", move || {
            let c = NfsClient::new(t, root, MountOptions::noac());
            gvfs_netsim::sleep(Duration::from_secs(1));
            let fh = c.write_file("/bo-b", b"payload").expect("warm write");
            // Issued one second into the partition; the proxy's forward
            // loop holds it like a hard mount until the link heals.
            sleep_until(Duration::from_secs(6));
            *read_back.lock() = c.read(fh, 0, 7).expect("read completes after the heal");
            done.fetch_add(1, Ordering::SeqCst);
        });
    }
    {
        let session = Arc::clone(&session);
        let done = Arc::clone(&done);
        let attempts = Arc::clone(&attempts);
        sim.spawn("bo-controller", move || {
            sleep_until(Duration::from_secs(5));
            let before = session.wan_stats().snapshot();
            session.wan_link(0).set_partitioned(true);
            sleep_until(Duration::from_secs(200));
            attempts.store(
                session.wan_stats().snapshot().since(&before).transport_unreachable() as usize,
                Ordering::SeqCst,
            );
            session.wan_link(0).set_partitioned(false);
            done.fetch_add(1, Ordering::SeqCst);
        });
    }
    {
        let handle = session.handle();
        let done = Arc::clone(&done);
        sim.spawn("bo-closer", move || {
            loop {
                gvfs_netsim::park_timeout(Duration::from_secs(1));
                if done.load(Ordering::SeqCst) >= 2 {
                    break;
                }
            }
            handle.shutdown();
        });
    }
    sim.run();

    assert_eq!(&*read_back.lock(), b"payload", "the held request must complete intact");
    let tries = attempts.load(Ordering::SeqCst);
    assert!(tries >= 2, "the forward loop must keep probing the dead link (saw {tries} attempts)");
    assert!(
        tries <= 15,
        "195 s of partition burned {tries} unreachable attempts; \
         the 1 s-doubling-to-60 s back-off allows at most ~ten"
    );
}
