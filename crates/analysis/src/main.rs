//! `gvfs-analysis` — repo-specific static analysis and protocol model
//! checking for the GVFS workspace.
//!
//! ```text
//! cargo run -p gvfs-analysis -- check    # lint + model check (CI entry)
//! cargo run -p gvfs-analysis -- lint     # source lint only
//! cargo run -p gvfs-analysis -- model    # protocol model check only
//! ```
//!
//! Exits non-zero when any lint diagnostic or model-checker violation
//! is found, or when the model checker explores suspiciously few states
//! (which would mean the exploration itself is broken).

use gvfs_analysis::{lint, model};
use std::path::PathBuf;
use std::process::ExitCode;

/// Minimum states the model checker must visit for the run to count as
/// a real exploration (acceptance floor; a healthy run is well above).
const MIN_MODEL_STATES: usize = 1_000;

fn usage() -> ExitCode {
    eprintln!("usage: gvfs-analysis <check|lint|model> [workspace-root]");
    ExitCode::from(2)
}

fn run_lint(root: &std::path::Path) -> Result<(), usize> {
    println!("== lint: {} ==", root.display());
    match lint::lint_workspace(root) {
        Ok(diags) if diags.is_empty() => {
            println!("lint: clean");
            Ok(())
        }
        Ok(diags) => {
            for d in &diags {
                println!("{d}");
            }
            println!("lint: {} diagnostic(s)", diags.len());
            Err(diags.len())
        }
        Err(e) => {
            eprintln!("lint: cannot analyze workspace: {e}");
            Err(1)
        }
    }
}

fn run_model() -> Result<(), usize> {
    println!("== model check ==");
    let mut failures = 0usize;
    let mut total_states = 0usize;
    for report in [model::check_delegation(), model::check_invalidation(), model::check_breaker()] {
        println!(
            "model[{}]: {} states, {} transitions, {} violation(s)",
            report.machine,
            report.states,
            report.transitions,
            report.violations.len()
        );
        for v in &report.violations {
            println!("violation[{}]: {v}", report.machine);
        }
        failures += report.violations.len();
        total_states += report.states;
    }
    if total_states < MIN_MODEL_STATES {
        println!(
            "model: only {total_states} states explored (< {MIN_MODEL_STATES}); \
             exploration is broken"
        );
        failures += 1;
    }
    if failures == 0 {
        println!("model: all invariants hold over {total_states} states");
        Ok(())
    } else {
        Err(failures)
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("check");
    let root = args
        .get(1)
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../.."));

    let results: Vec<Result<(), usize>> = match cmd {
        "lint" => vec![run_lint(&root)],
        "model" => vec![run_model()],
        "check" => vec![run_lint(&root), run_model()],
        _ => return usage(),
    };
    let failures: usize = results.into_iter().filter_map(Result::err).sum();
    if failures == 0 {
        println!("analysis: OK");
        ExitCode::SUCCESS
    } else {
        println!("analysis: FAILED with {failures} finding(s)");
        ExitCode::FAILURE
    }
}
