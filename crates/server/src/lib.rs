//! The NFSv3 server: [`Nfs3Server`] implements
//! [`gvfs_rpc::dispatch::RpcService`] over a [`gvfs_vfs::Vfs`].
//!
//! This plays the role of the paper's kernel NFS server (knfsd exporting
//! an ext3 volume with synchronous writes). Every supported procedure
//! decodes RFC 1813 arguments, performs the operation on the backing
//! filesystem, and encodes a faithful result — including weak cache
//! consistency (`wcc_data`) pre/post attributes, which the client layers
//! rely on for cache validation.
//!
//! The server is time-agnostic: it is constructed with a clock callback
//! (in simulations, the virtual clock).
//!
//! # Examples
//!
//! ```
//! use gvfs_server::Nfs3Server;
//! use gvfs_rpc::dispatch::RpcService;
//! use gvfs_nfs3::{proc3, GetattrArgs, GetattrRes, NFS_PROGRAM};
//! use gvfs_vfs::{Timestamp, Vfs};
//! use std::sync::Arc;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let vfs = Arc::new(Vfs::new());
//! let server = Nfs3Server::new(Arc::clone(&vfs), Arc::new(|| Timestamp::from_nanos(0)));
//! let root = server.root_fh();
//! let args = gvfs_xdr::to_bytes(&GetattrArgs { object: root })?;
//! let reply = server.call(proc3::GETATTR, &args)?;
//! assert!(matches!(gvfs_xdr::from_bytes::<GetattrRes>(&reply)?, GetattrRes::Ok(_)));
//! assert_eq!(server.program(), NFS_PROGRAM);
//! # Ok(())
//! # }
//! ```

use gvfs_nfs3::{
    access, proc3, AccessArgs, AccessRes, CommitArgs, CommitRes, CreateArgs, CreateHow, DirOpArgs,
    DirOpRes, Entry3, Fattr3, Fh3, FsinfoRes, FsstatRes, GetattrArgs, GetattrRes, LinkArgs,
    LinkRes, LookupArgs, LookupRes, MkdirArgs, Nfsstat3, PreOpAttr, ReadArgs, ReadRes, ReaddirArgs,
    ReaddirRes, ReadlinkArgs, ReadlinkRes, RenameArgs, RenameRes, Sattr3, SetattrArgs, SetattrRes,
    StableHow, SymlinkArgs, TimeHow, WccData, WriteArgs, WriteRes, NFS_PROGRAM, NFS_V3,
};
use gvfs_rpc::dispatch::RpcService;
use gvfs_rpc::RpcError;
use gvfs_vfs::{FileId, SetAttr, Timestamp, Vfs};
use gvfs_xdr::Xdr;
use std::sync::Arc;

/// Clock used to stamp mtimes/ctimes.
pub type Clock = Arc<dyn Fn() -> Timestamp + Send + Sync>;

/// Preferred and maximum transfer size advertised by `FSINFO`.
pub const TRANSFER_SIZE: u32 = 32 * 1024;

/// An NFSv3 server over an in-memory filesystem.
///
/// See the [crate docs](crate) for an example.
pub struct Nfs3Server {
    vfs: Arc<Vfs>,
    clock: Clock,
    /// Write verifier: changes on every restart so clients can detect
    /// that unstable writes may have been lost.
    verf: u64,
}

impl std::fmt::Debug for Nfs3Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Nfs3Server").field("verf", &self.verf).finish()
    }
}

impl Nfs3Server {
    /// Creates a server exporting `vfs`, stamping times from `clock`.
    pub fn new(vfs: Arc<Vfs>, clock: Clock) -> Self {
        Nfs3Server { vfs, clock, verf: 1 }
    }

    /// Creates a server with an explicit write verifier (use a fresh
    /// value when simulating a server restart).
    pub fn with_verifier(vfs: Arc<Vfs>, clock: Clock, verf: u64) -> Self {
        Nfs3Server { vfs, clock, verf }
    }

    /// The file handle of the export root.
    pub fn root_fh(&self) -> Fh3 {
        Fh3::from_fileid(self.vfs.root().as_u64())
    }

    /// The exported filesystem.
    pub fn vfs(&self) -> &Arc<Vfs> {
        &self.vfs
    }

    fn now(&self) -> Timestamp {
        (self.clock)()
    }

    fn attr(&self, fh: Fh3) -> Option<Fattr3> {
        self.vfs.getattr(FileId::from_u64(fh.fileid())).ok().map(Fattr3::from)
    }

    fn pre_attr(&self, fh: Fh3) -> PreOpAttr {
        self.vfs.getattr(FileId::from_u64(fh.fileid())).ok().map(Into::into)
    }

    fn apply_sattr(&self, id: FileId, sattr: &Sattr3) -> Result<(), Nfsstat3> {
        let now = self.now();
        let set = SetAttr {
            mode: sattr.mode,
            uid: sattr.uid,
            gid: sattr.gid,
            size: sattr.size,
            atime: match sattr.atime {
                TimeHow::DontChange => None,
                TimeHow::ServerTime => Some(now),
                TimeHow::Client(t) => Some(t.into()),
            },
            mtime: match sattr.mtime {
                TimeHow::DontChange => None,
                TimeHow::ServerTime => Some(now),
                TimeHow::Client(t) => Some(t.into()),
            },
        };
        if set.is_empty() {
            return Ok(());
        }
        self.vfs.setattr(id, set, now).map(|_| ()).map_err(Nfsstat3::from)
    }

    fn getattr(&self, args: GetattrArgs) -> GetattrRes {
        match self.vfs.getattr(FileId::from_u64(args.object.fileid())) {
            Ok(attr) => GetattrRes::Ok(attr.into()),
            Err(e) => GetattrRes::Fail(e.into()),
        }
    }

    fn setattr(&self, args: SetattrArgs) -> SetattrRes {
        let id = FileId::from_u64(args.object.fileid());
        let before = self.pre_attr(args.object);
        if let Some(guard) = args.guard {
            match self.vfs.getattr(id) {
                Ok(attr) if gvfs_nfs3::NfsTime3::from(attr.ctime) != guard => {
                    return SetattrRes {
                        status: Nfsstat3::NotSync,
                        obj_wcc: WccData { before, after: self.attr(args.object) },
                    };
                }
                Ok(_) => {}
                Err(e) => {
                    return SetattrRes { status: e.into(), obj_wcc: WccData::default() };
                }
            }
        }
        let status = match self.apply_sattr(id, &args.new_attributes) {
            Ok(()) => Nfsstat3::Ok,
            Err(s) => s,
        };
        SetattrRes { status, obj_wcc: WccData { before, after: self.attr(args.object) } }
    }

    fn lookup(&self, args: LookupArgs) -> LookupRes {
        let dir = FileId::from_u64(args.dir.fileid());
        match self.vfs.lookup(dir, &args.name) {
            Ok(found) => LookupRes::Ok {
                object: Fh3::from_fileid(found.as_u64()),
                obj_attributes: self.attr(Fh3::from_fileid(found.as_u64())),
                dir_attributes: self.attr(args.dir),
            },
            Err(e) => LookupRes::Fail { status: e.into(), dir_attributes: self.attr(args.dir) },
        }
    }

    fn access(&self, args: AccessArgs) -> AccessRes {
        // The export has ACLs disabled (as in the paper's setup): grant
        // everything that makes sense for the object type.
        match self.vfs.getattr(FileId::from_u64(args.object.fileid())) {
            Ok(attr) => {
                let granted = match attr.kind {
                    gvfs_vfs::FileKind::Directory => {
                        access::READ
                            | access::LOOKUP
                            | access::MODIFY
                            | access::EXTEND
                            | access::DELETE
                    }
                    _ => access::READ | access::MODIFY | access::EXTEND | access::EXECUTE,
                };
                AccessRes::Ok { obj_attributes: Some(attr.into()), access: granted & args.access }
            }
            Err(e) => AccessRes::Fail { status: e.into(), obj_attributes: None },
        }
    }

    fn readlink(&self, args: ReadlinkArgs) -> ReadlinkRes {
        match self.vfs.readlink(FileId::from_u64(args.symlink.fileid())) {
            Ok(data) => ReadlinkRes::Ok { symlink_attributes: self.attr(args.symlink), data },
            Err(e) => {
                ReadlinkRes::Fail { status: e.into(), symlink_attributes: self.attr(args.symlink) }
            }
        }
    }

    fn read(&self, args: ReadArgs) -> ReadRes {
        let count = args.count.min(TRANSFER_SIZE);
        match self.vfs.read(FileId::from_u64(args.file.fileid()), args.offset, count) {
            Ok((data, eof)) => ReadRes::Ok {
                file_attributes: self.attr(args.file),
                count: data.len() as u32,
                eof,
                data,
            },
            Err(e) => ReadRes::Fail { status: e.into(), file_attributes: self.attr(args.file) },
        }
    }

    fn write(&self, args: WriteArgs) -> WriteRes {
        let before = self.pre_attr(args.file);
        let data = &args.data[..args.data.len().min(args.count as usize)];
        match self.vfs.write(FileId::from_u64(args.file.fileid()), args.offset, data, self.now()) {
            Ok(attr) => WriteRes::Ok {
                file_wcc: WccData { before, after: Some(attr.into()) },
                count: data.len() as u32,
                // The export is synchronous: all writes are stable.
                committed: StableHow::FileSync,
                verf: self.verf,
            },
            Err(e) => WriteRes::Fail {
                status: e.into(),
                file_wcc: WccData { before, after: self.attr(args.file) },
            },
        }
    }

    fn create(&self, args: CreateArgs) -> gvfs_nfs3::NewObjRes {
        let dir = FileId::from_u64(args.dir.fileid());
        let before = self.pre_attr(args.dir);
        let now = self.now();
        let (result, sattr) = match &args.how {
            CreateHow::Unchecked(sattr) => (
                self.vfs.create_unchecked(dir, &args.name, sattr.mode.unwrap_or(0o644), now),
                Some(*sattr),
            ),
            CreateHow::Guarded(sattr) => {
                (self.vfs.create(dir, &args.name, sattr.mode.unwrap_or(0o644), now), Some(*sattr))
            }
            CreateHow::Exclusive(_verf) => (self.vfs.create(dir, &args.name, 0o644, now), None),
        };
        match result {
            Ok(id) => {
                if let Some(sattr) = sattr {
                    // Only size matters post-create (mode was set above).
                    if sattr.size.is_some() {
                        let _ = self
                            .apply_sattr(id, &Sattr3 { size: sattr.size, ..Default::default() });
                    }
                }
                let fh = Fh3::from_fileid(id.as_u64());
                gvfs_nfs3::NewObjRes::Ok {
                    obj: Some(fh),
                    obj_attributes: self.attr(fh),
                    dir_wcc: WccData { before, after: self.attr(args.dir) },
                }
            }
            Err(e) => gvfs_nfs3::NewObjRes::Fail {
                status: e.into(),
                dir_wcc: WccData { before, after: self.attr(args.dir) },
            },
        }
    }

    fn mkdir(&self, args: MkdirArgs) -> gvfs_nfs3::NewObjRes {
        let dir = FileId::from_u64(args.dir.fileid());
        let before = self.pre_attr(args.dir);
        match self.vfs.mkdir(dir, &args.name, args.attributes.mode.unwrap_or(0o755), self.now()) {
            Ok(id) => {
                let fh = Fh3::from_fileid(id.as_u64());
                gvfs_nfs3::NewObjRes::Ok {
                    obj: Some(fh),
                    obj_attributes: self.attr(fh),
                    dir_wcc: WccData { before, after: self.attr(args.dir) },
                }
            }
            Err(e) => gvfs_nfs3::NewObjRes::Fail {
                status: e.into(),
                dir_wcc: WccData { before, after: self.attr(args.dir) },
            },
        }
    }

    fn symlink(&self, args: SymlinkArgs) -> gvfs_nfs3::NewObjRes {
        let dir = FileId::from_u64(args.dir.fileid());
        let before = self.pre_attr(args.dir);
        match self.vfs.symlink(dir, &args.name, &args.symlink_data, self.now()) {
            Ok(id) => {
                let fh = Fh3::from_fileid(id.as_u64());
                gvfs_nfs3::NewObjRes::Ok {
                    obj: Some(fh),
                    obj_attributes: self.attr(fh),
                    dir_wcc: WccData { before, after: self.attr(args.dir) },
                }
            }
            Err(e) => gvfs_nfs3::NewObjRes::Fail {
                status: e.into(),
                dir_wcc: WccData { before, after: self.attr(args.dir) },
            },
        }
    }

    fn remove(&self, args: DirOpArgs, is_rmdir: bool) -> DirOpRes {
        let dir = FileId::from_u64(args.dir.fileid());
        let before = self.pre_attr(args.dir);
        let result = if is_rmdir {
            self.vfs.rmdir(dir, &args.name, self.now())
        } else {
            self.vfs.remove(dir, &args.name, self.now())
        };
        DirOpRes {
            status: result.map(|()| Nfsstat3::Ok).unwrap_or_else(Nfsstat3::from),
            dir_wcc: WccData { before, after: self.attr(args.dir) },
        }
    }

    fn rename(&self, args: RenameArgs) -> RenameRes {
        let from_before = self.pre_attr(args.from_dir);
        let to_before = self.pre_attr(args.to_dir);
        let result = self.vfs.rename(
            FileId::from_u64(args.from_dir.fileid()),
            &args.from_name,
            FileId::from_u64(args.to_dir.fileid()),
            &args.to_name,
            self.now(),
        );
        RenameRes {
            status: result.map(|()| Nfsstat3::Ok).unwrap_or_else(Nfsstat3::from),
            fromdir_wcc: WccData { before: from_before, after: self.attr(args.from_dir) },
            todir_wcc: WccData { before: to_before, after: self.attr(args.to_dir) },
        }
    }

    fn link(&self, args: LinkArgs) -> LinkRes {
        let before = self.pre_attr(args.dir);
        let result = self.vfs.link(
            FileId::from_u64(args.file.fileid()),
            FileId::from_u64(args.dir.fileid()),
            &args.name,
            self.now(),
        );
        LinkRes {
            status: result.map(|()| Nfsstat3::Ok).unwrap_or_else(Nfsstat3::from),
            file_attributes: self.attr(args.file),
            linkdir_wcc: WccData { before, after: self.attr(args.dir) },
        }
    }

    fn readdir(&self, args: ReaddirArgs) -> ReaddirRes {
        // Approximate the byte budget as ~48 bytes per entry.
        let max_entries = ((args.count as usize).saturating_sub(64) / 48).max(1);
        match self.vfs.readdir(FileId::from_u64(args.dir.fileid()), args.cookie, max_entries) {
            Ok(page) => ReaddirRes::Ok {
                dir_attributes: self.attr(args.dir),
                cookieverf: 1,
                entries: page
                    .entries
                    .into_iter()
                    .map(|e| Entry3 { fileid: e.fileid.as_u64(), name: e.name, cookie: e.cookie })
                    .collect(),
                eof: page.eof,
            },
            Err(e) => ReaddirRes::Fail { status: e.into(), dir_attributes: self.attr(args.dir) },
        }
    }

    fn readdirplus(&self, args: gvfs_nfs3::ReaddirplusArgs) -> gvfs_nfs3::ReaddirplusRes {
        use gvfs_nfs3::{EntryPlus3, ReaddirplusRes};
        // Budget ≈ 200 bytes per entry (name + cookie + fattr3 + fh).
        let max_entries = ((args.maxcount as usize).saturating_sub(88) / 200).max(1);
        match self.vfs.readdir(FileId::from_u64(args.dir.fileid()), args.cookie, max_entries) {
            Ok(page) => ReaddirplusRes::Ok {
                dir_attributes: self.attr(args.dir),
                cookieverf: 1,
                entries: page
                    .entries
                    .into_iter()
                    .map(|e| {
                        let fh = Fh3::from_fileid(e.fileid.as_u64());
                        EntryPlus3 {
                            fileid: e.fileid.as_u64(),
                            name: e.name,
                            cookie: e.cookie,
                            name_attributes: self.attr(fh),
                            name_handle: Some(fh),
                        }
                    })
                    .collect(),
                eof: page.eof,
            },
            Err(e) => {
                ReaddirplusRes::Fail { status: e.into(), dir_attributes: self.attr(args.dir) }
            }
        }
    }

    fn fsstat(&self, root: Fh3) -> FsstatRes {
        let stat = self.vfs.fsstat();
        let total: u64 = 1 << 40;
        FsstatRes::Ok {
            obj_attributes: self.attr(root),
            tbytes: total,
            fbytes: total - stat.used_bytes,
            abytes: total - stat.used_bytes,
            tfiles: 1 << 24,
            ffiles: (1 << 24) - stat.objects,
            afiles: (1 << 24) - stat.objects,
            invarsec: 0,
        }
    }

    fn fsinfo(&self, root: Fh3) -> FsinfoRes {
        FsinfoRes::Ok {
            obj_attributes: self.attr(root),
            rtmax: TRANSFER_SIZE,
            rtpref: TRANSFER_SIZE,
            wtmax: TRANSFER_SIZE,
            wtpref: TRANSFER_SIZE,
            dtpref: 4096,
            maxfilesize: u64::MAX,
        }
    }

    fn commit(&self, args: CommitArgs) -> CommitRes {
        // All writes are synchronous, so commit is a no-op.
        match self.vfs.getattr(FileId::from_u64(args.file.fileid())) {
            Ok(attr) => CommitRes::Ok {
                file_wcc: WccData { before: Some(attr.into()), after: Some(attr.into()) },
                verf: self.verf,
            },
            Err(e) => CommitRes::Fail { status: e.into(), file_wcc: WccData::default() },
        }
    }
}

/// The MOUNT protocol service (RFC 1813 Appendix I): maps export paths
/// to root file handles and lists the export table. Register it next to
/// the [`Nfs3Server`] on the same node.
///
/// # Examples
///
/// ```
/// use gvfs_server::{MountServer, Nfs3Server};
/// use gvfs_rpc::dispatch::RpcService;
/// use gvfs_nfs3::mount::{mount_proc, MntArgs, MntRes};
/// use gvfs_vfs::{Timestamp, Vfs};
/// use std::sync::Arc;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let vfs = Arc::new(Vfs::new());
/// let mount = MountServer::new(Arc::clone(&vfs), "/export/grid");
/// let args = gvfs_xdr::to_bytes(&MntArgs { dirpath: "/export/grid".into() })?;
/// let reply = mount.call(mount_proc::MNT, &args)?;
/// let res: MntRes = gvfs_xdr::from_bytes(&reply)?;
/// assert!(matches!(res, MntRes::Ok { .. }));
/// # Ok(())
/// # }
/// ```
pub struct MountServer {
    vfs: Arc<Vfs>,
    export_path: String,
    /// Client machine names with active mounts (the DUMP/UMNT ledger).
    mounts: parking_lot::Mutex<std::collections::HashSet<String>>,
}

impl std::fmt::Debug for MountServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MountServer").field("export", &self.export_path).finish()
    }
}

impl MountServer {
    /// Creates a mount service exporting the root of `vfs` as
    /// `export_path`.
    pub fn new(vfs: Arc<Vfs>, export_path: &str) -> Self {
        MountServer {
            vfs,
            export_path: export_path.to_string(),
            mounts: parking_lot::Mutex::new(std::collections::HashSet::new()),
        }
    }

    /// Machines currently holding a mount (diagnostics).
    pub fn active_mounts(&self) -> usize {
        self.mounts.lock().len()
    }

    fn mnt(&self, args: gvfs_nfs3::mount::MntArgs, client: &str) -> gvfs_nfs3::mount::MntRes {
        use gvfs_nfs3::mount::{MntRes, MountStat3};
        if args.dirpath != self.export_path {
            return MntRes::Fail(MountStat3::Noent);
        }
        self.mounts.lock().insert(client.to_string());
        MntRes::Ok {
            fhandle: Fh3::from_fileid(self.vfs.root().as_u64()),
            auth_flavors: vec![gvfs_rpc::message::AUTH_NONE, gvfs_rpc::message::AUTH_SYS],
        }
    }
}

impl RpcService for MountServer {
    fn program(&self) -> u32 {
        gvfs_nfs3::mount::MOUNT_PROGRAM
    }
    fn version(&self) -> u32 {
        gvfs_nfs3::mount::MOUNT_V3
    }
    fn call(&self, procedure: u32, payload: &[u8]) -> Result<Vec<u8>, RpcError> {
        self.call_with_cred(procedure, payload, &gvfs_rpc::message::OpaqueAuth::none())
    }
    fn call_with_cred(
        &self,
        procedure: u32,
        payload: &[u8],
        credential: &gvfs_rpc::message::OpaqueAuth,
    ) -> Result<Vec<u8>, RpcError> {
        use gvfs_nfs3::mount::{mount_proc, ExportEntry, ExportRes};
        let client =
            credential.as_sys().map(|c| c.machine_name).unwrap_or_else(|_| "anonymous".to_string());
        match procedure {
            mount_proc::NULL => Ok(Vec::new()),
            mount_proc::MNT => reply(&self.mnt(args(payload)?, &client)),
            mount_proc::UMNT => {
                let _: gvfs_nfs3::mount::MntArgs = args(payload)?;
                self.mounts.lock().remove(&client);
                Ok(Vec::new())
            }
            mount_proc::UMNTALL => {
                self.mounts.lock().remove(&client);
                Ok(Vec::new())
            }
            mount_proc::EXPORT => reply(&ExportRes {
                exports: vec![ExportEntry { dirpath: self.export_path.clone(), groups: vec![] }],
            }),
            p => Err(RpcError::ProcedureUnavailable {
                program: gvfs_nfs3::mount::MOUNT_PROGRAM,
                procedure: p,
            }),
        }
    }
}

fn reply<T: Xdr>(value: &T) -> Result<Vec<u8>, RpcError> {
    Ok(gvfs_xdr::to_bytes(value)?)
}

fn args<T: Xdr>(bytes: &[u8]) -> Result<T, RpcError> {
    gvfs_xdr::from_bytes(bytes).map_err(|_| RpcError::GarbageArgs)
}

impl RpcService for Nfs3Server {
    fn program(&self) -> u32 {
        NFS_PROGRAM
    }
    fn version(&self) -> u32 {
        NFS_V3
    }
    fn call(&self, procedure: u32, payload: &[u8]) -> Result<Vec<u8>, RpcError> {
        match procedure {
            proc3::NULL => Ok(Vec::new()),
            proc3::GETATTR => reply(&self.getattr(args(payload)?)),
            proc3::SETATTR => reply(&self.setattr(args(payload)?)),
            proc3::LOOKUP => reply(&self.lookup(args(payload)?)),
            proc3::ACCESS => reply(&self.access(args(payload)?)),
            proc3::READLINK => reply(&self.readlink(args(payload)?)),
            proc3::READ => reply(&self.read(args(payload)?)),
            proc3::WRITE => reply(&self.write(args(payload)?)),
            proc3::CREATE => reply(&self.create(args(payload)?)),
            proc3::MKDIR => reply(&self.mkdir(args(payload)?)),
            proc3::SYMLINK => reply(&self.symlink(args(payload)?)),
            proc3::REMOVE => reply(&self.remove(args(payload)?, false)),
            proc3::RMDIR => reply(&self.remove(args(payload)?, true)),
            proc3::RENAME => reply(&self.rename(args(payload)?)),
            proc3::LINK => reply(&self.link(args(payload)?)),
            proc3::READDIR => reply(&self.readdir(args(payload)?)),
            proc3::READDIRPLUS => reply(&self.readdirplus(args(payload)?)),
            proc3::FSSTAT => reply(&self.fsstat(args::<GetattrArgs>(payload)?.object)),
            proc3::FSINFO => reply(&self.fsinfo(args::<GetattrArgs>(payload)?.object)),
            proc3::COMMIT => reply(&self.commit(args(payload)?)),
            _ => Err(RpcError::ProcedureUnavailable { program: NFS_PROGRAM, procedure }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixed_clock(nanos: u64) -> Clock {
        Arc::new(move || Timestamp::from_nanos(nanos))
    }

    fn server() -> Nfs3Server {
        Nfs3Server::new(Arc::new(Vfs::new()), fixed_clock(1_000_000_000))
    }

    fn call<A: Xdr, R: Xdr>(s: &Nfs3Server, procedure: u32, a: &A) -> R {
        let bytes = s.call(procedure, &gvfs_xdr::to_bytes(a).unwrap()).unwrap();
        gvfs_xdr::from_bytes(&bytes).unwrap()
    }

    #[test]
    fn null_returns_empty() {
        assert!(server().call(proc3::NULL, &[]).unwrap().is_empty());
    }

    #[test]
    fn create_lookup_read_write_flow() {
        let s = server();
        let root = s.root_fh();
        let created: gvfs_nfs3::NewObjRes = call(
            &s,
            proc3::CREATE,
            &CreateArgs {
                dir: root,
                name: "data.txt".into(),
                how: CreateHow::Guarded(Sattr3::default()),
            },
        );
        let gvfs_nfs3::NewObjRes::Ok { obj: Some(fh), .. } = created else {
            panic!("create failed: {created:?}")
        };
        let written: WriteRes = call(
            &s,
            proc3::WRITE,
            &WriteArgs {
                file: fh,
                offset: 0,
                count: 5,
                stable: StableHow::FileSync,
                data: b"hello".to_vec(),
            },
        );
        assert!(matches!(written, WriteRes::Ok { count: 5, committed: StableHow::FileSync, .. }));
        let read: ReadRes = call(&s, proc3::READ, &ReadArgs { file: fh, offset: 0, count: 100 });
        let ReadRes::Ok { data, eof, .. } = read else { panic!("read failed") };
        assert_eq!(data, b"hello");
        assert!(eof);
        let looked: LookupRes =
            call(&s, proc3::LOOKUP, &LookupArgs { dir: root, name: "data.txt".into() });
        assert!(matches!(looked, LookupRes::Ok { object, .. } if object == fh));
    }

    #[test]
    fn lookup_missing_is_noent_with_dir_attrs() {
        let s = server();
        let res: LookupRes =
            call(&s, proc3::LOOKUP, &LookupArgs { dir: s.root_fh(), name: "ghost".into() });
        let LookupRes::Fail { status, dir_attributes } = res else { panic!("expected failure") };
        assert_eq!(status, Nfsstat3::Noent);
        assert!(dir_attributes.is_some(), "failed lookup still returns dir attrs");
    }

    #[test]
    fn stale_handle_reported() {
        let s = server();
        let res: GetattrRes =
            call(&s, proc3::GETATTR, &GetattrArgs { object: Fh3::from_fileid(9999) });
        assert_eq!(res, GetattrRes::Fail(Nfsstat3::Stale));
    }

    #[test]
    fn write_carries_wcc_before_and_after() {
        let s = server();
        let created: gvfs_nfs3::NewObjRes = call(
            &s,
            proc3::CREATE,
            &CreateArgs {
                dir: s.root_fh(),
                name: "w".into(),
                how: CreateHow::Unchecked(Sattr3::default()),
            },
        );
        let gvfs_nfs3::NewObjRes::Ok { obj: Some(fh), .. } = created else { panic!() };
        let res: WriteRes = call(
            &s,
            proc3::WRITE,
            &WriteArgs {
                file: fh,
                offset: 0,
                count: 3,
                stable: StableHow::Unstable,
                data: vec![1, 2, 3],
            },
        );
        let WriteRes::Ok { file_wcc, .. } = res else { panic!() };
        assert_eq!(file_wcc.before.unwrap().size, 0);
        assert_eq!(file_wcc.after.unwrap().size, 3);
    }

    #[test]
    fn guarded_create_conflict() {
        let s = server();
        let mk = |name: &str| CreateArgs {
            dir: s.root_fh(),
            name: name.into(),
            how: CreateHow::Guarded(Sattr3::default()),
        };
        let _: gvfs_nfs3::NewObjRes = call(&s, proc3::CREATE, &mk("a"));
        let res: gvfs_nfs3::NewObjRes = call(&s, proc3::CREATE, &mk("a"));
        assert!(matches!(res, gvfs_nfs3::NewObjRes::Fail { status: Nfsstat3::Exist, .. }));
    }

    #[test]
    fn link_then_remove_keeps_file_alive() {
        let s = server();
        let root = s.root_fh();
        let created: gvfs_nfs3::NewObjRes = call(
            &s,
            proc3::CREATE,
            &CreateArgs {
                dir: root,
                name: "orig".into(),
                how: CreateHow::Unchecked(Sattr3::default()),
            },
        );
        let gvfs_nfs3::NewObjRes::Ok { obj: Some(fh), .. } = created else { panic!() };
        let linked: LinkRes =
            call(&s, proc3::LINK, &LinkArgs { file: fh, dir: root, name: "alias".into() });
        assert_eq!(linked.status, Nfsstat3::Ok);
        assert_eq!(linked.file_attributes.unwrap().nlink, 2);
        let removed: DirOpRes =
            call(&s, proc3::REMOVE, &DirOpArgs { dir: root, name: "orig".into() });
        assert_eq!(removed.status, Nfsstat3::Ok);
        let res: GetattrRes = call(&s, proc3::GETATTR, &GetattrArgs { object: fh });
        assert!(matches!(res, GetattrRes::Ok(a) if a.nlink == 1));
    }

    #[test]
    fn readdir_paginates_with_count_budget() {
        let s = server();
        let vfs = s.vfs();
        for i in 0..50 {
            vfs.create(vfs.root(), &format!("f{i:02}"), 0o644, Timestamp::default()).unwrap();
        }
        let first: ReaddirRes = call(
            &s,
            proc3::READDIR,
            &ReaddirArgs { dir: s.root_fh(), cookie: 0, cookieverf: 0, count: 1024 },
        );
        let ReaddirRes::Ok { entries, eof, .. } = first else { panic!() };
        assert!(!eof);
        assert!(!entries.is_empty() && entries.len() < 50);
        let resume = entries.last().unwrap().cookie;
        let rest: ReaddirRes = call(
            &s,
            proc3::READDIR,
            &ReaddirArgs { dir: s.root_fh(), cookie: resume, cookieverf: 1, count: 1 << 20 },
        );
        let ReaddirRes::Ok { entries: rest_entries, eof: true, .. } = rest else { panic!() };
        assert_eq!(entries.len() + rest_entries.len(), 50);
    }

    #[test]
    fn setattr_guard_mismatch_is_not_sync() {
        let s = server();
        let created: gvfs_nfs3::NewObjRes = call(
            &s,
            proc3::CREATE,
            &CreateArgs {
                dir: s.root_fh(),
                name: "g".into(),
                how: CreateHow::Unchecked(Sattr3::default()),
            },
        );
        let gvfs_nfs3::NewObjRes::Ok { obj: Some(fh), .. } = created else { panic!() };
        let res: SetattrRes = call(
            &s,
            proc3::SETATTR,
            &SetattrArgs {
                object: fh,
                new_attributes: Sattr3 { size: Some(1), ..Default::default() },
                guard: Some(gvfs_nfs3::NfsTime3 { seconds: 77, nseconds: 0 }),
            },
        );
        assert_eq!(res.status, Nfsstat3::NotSync);
    }

    #[test]
    fn fsinfo_advertises_transfer_sizes() {
        let s = server();
        let res: FsinfoRes = call(&s, proc3::FSINFO, &GetattrArgs { object: s.root_fh() });
        assert!(matches!(res, FsinfoRes::Ok { rtmax: TRANSFER_SIZE, wtmax: TRANSFER_SIZE, .. }));
    }

    #[test]
    fn read_caps_at_transfer_size() {
        let s = server();
        let vfs = s.vfs();
        let f = vfs.create(vfs.root(), "big", 0o644, Timestamp::default()).unwrap();
        vfs.write(f, 0, &vec![7u8; 100_000], Timestamp::default()).unwrap();
        let res: ReadRes = call(
            &s,
            proc3::READ,
            &ReadArgs { file: Fh3::from_fileid(f.as_u64()), offset: 0, count: 100_000 },
        );
        let ReadRes::Ok { count, eof, .. } = res else { panic!() };
        assert_eq!(count, TRANSFER_SIZE);
        assert!(!eof);
    }

    #[test]
    fn garbage_args_rejected() {
        let s = server();
        assert_eq!(s.call(proc3::GETATTR, &[1, 2]).unwrap_err(), RpcError::GarbageArgs);
    }

    #[test]
    fn unknown_procedure_rejected() {
        let s = server();
        assert!(matches!(
            s.call(99, &[]).unwrap_err(),
            RpcError::ProcedureUnavailable { procedure: 99, .. }
        ));
    }

    #[test]
    fn readdirplus_returns_attrs_and_handles() {
        use gvfs_nfs3::{ReaddirplusArgs, ReaddirplusRes};
        let s = server();
        let vfs = s.vfs();
        for i in 0..5 {
            let f = vfs.create(vfs.root(), &format!("p{i}"), 0o644, Timestamp::default()).unwrap();
            vfs.write(f, 0, &[7u8; 10], Timestamp::default()).unwrap();
        }
        let res: ReaddirplusRes = call(
            &s,
            proc3::READDIRPLUS,
            &ReaddirplusArgs {
                dir: s.root_fh(),
                cookie: 0,
                cookieverf: 0,
                dircount: 8192,
                maxcount: 32768,
            },
        );
        let ReaddirplusRes::Ok { entries, eof: true, .. } = res else { panic!("{res:?}") };
        assert_eq!(entries.len(), 5);
        for e in &entries {
            let attr = e.name_attributes.expect("attrs supplied");
            assert_eq!(attr.size, 10);
            assert_eq!(e.name_handle.expect("handle supplied").fileid(), e.fileid);
        }
    }

    #[test]
    fn mount_protocol_bootstrap() {
        use gvfs_nfs3::mount::{mount_proc, ExportRes, MntArgs, MntRes, MountStat3};
        let vfs = Arc::new(Vfs::new());
        let mount = MountServer::new(Arc::clone(&vfs), "/export/grid");
        // Listing the exports.
        let exports: ExportRes =
            gvfs_xdr::from_bytes(&mount.call(mount_proc::EXPORT, &[]).unwrap()).unwrap();
        assert_eq!(exports.exports.len(), 1);
        assert_eq!(exports.exports[0].dirpath, "/export/grid");
        // Mounting the right path yields the root handle.
        let ok: MntRes = gvfs_xdr::from_bytes(
            &mount
                .call(
                    mount_proc::MNT,
                    &gvfs_xdr::to_bytes(&MntArgs { dirpath: "/export/grid".into() }).unwrap(),
                )
                .unwrap(),
        )
        .unwrap();
        let MntRes::Ok { fhandle, auth_flavors } = ok else { panic!("{ok:?}") };
        assert_eq!(fhandle.fileid(), vfs.root().as_u64());
        assert!(auth_flavors.contains(&gvfs_rpc::message::AUTH_SYS));
        assert_eq!(mount.active_mounts(), 1);
        // A wrong path is refused.
        let bad: MntRes = gvfs_xdr::from_bytes(
            &mount
                .call(
                    mount_proc::MNT,
                    &gvfs_xdr::to_bytes(&MntArgs { dirpath: "/wrong".into() }).unwrap(),
                )
                .unwrap(),
        )
        .unwrap();
        assert_eq!(bad, MntRes::Fail(MountStat3::Noent));
        // Unmount clears the ledger.
        mount
            .call(
                mount_proc::UMNT,
                &gvfs_xdr::to_bytes(&MntArgs { dirpath: "/export/grid".into() }).unwrap(),
            )
            .unwrap();
        assert_eq!(mount.active_mounts(), 0);
    }

    #[test]
    fn commit_is_noop_on_sync_export() {
        let s = server();
        let created: gvfs_nfs3::NewObjRes = call(
            &s,
            proc3::CREATE,
            &CreateArgs {
                dir: s.root_fh(),
                name: "c".into(),
                how: CreateHow::Unchecked(Sattr3::default()),
            },
        );
        let gvfs_nfs3::NewObjRes::Ok { obj: Some(fh), .. } = created else { panic!() };
        let res: CommitRes = call(&s, proc3::COMMIT, &CommitArgs { file: fh, offset: 0, count: 0 });
        assert!(matches!(res, CommitRes::Ok { verf: 1, .. }));
    }
}
