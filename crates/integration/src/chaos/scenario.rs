//! Scripted chaos scenarios: deterministic, hand-laid-out fault
//! timelines that exercise one resilience mechanism end to end, in
//! contrast to [`super::driver`]'s seed-randomized workloads.
//!
//! The first scenario is **partition-heal**: a
//! delegation client with dirty write-back data loses its WAN link for
//! ~35 s of virtual time, rides the degradation ladder (breaker opens →
//! bounded-staleness cached reads, local write acknowledgement), is
//! revoked server-side so a conflicting reader is never blocked past
//! the outage, and is then re-promoted after the heal — replaying every
//! acknowledged write, so nothing is lost. The recorded history goes
//! through the same per-model oracle as the randomized runs (including
//! the degraded-mode staleness cap), and the report carries the ladder
//! counters the harness asserts on.
//!
//! The second is **crash-restart**: a write-back client on a persistent
//! block store is killed mid-write-back — after a durability barrier
//! covered some of its dirty data but not the latest write — and
//! restarted on the same virtual disk. The store must reopen to an
//! exact historical state: the synced write survives and reconciles to
//! the server, the never-synced write vanishes entirely (it was never
//! acknowledged durable by a barrier), and no reader anywhere observes
//! a torn block or the discarded write's data.
//!
//! The fourth (after **peer-partition** below) is **disk-corruption**:
//! silent media rot lands on a client's persistent store — one flipped
//! byte in every stored file, plus a seeded [`DiskFaultPlan`] of torn
//! writes and read-time bit rot — and verify-on-read plus the
//! background scrubber must quarantine and repair every mismatch
//! before any reader observes it.
//!
//! [`DiskFaultPlan`]: gvfs_netsim::disk::DiskFaultPlan

use crate::chaos::driver::ModelKind;
use crate::chaos::history::{
    encode_tag, make_tag, trace_hash, Event, History, Observation, FILE_LEN,
};
use crate::chaos::oracle::{self, Violation};
use crate::chaos::plan::{compile_fault_plans, FaultEvent};
use gvfs_client::{MountOptions, NfsClient};
use gvfs_core::session::Session;
use gvfs_netsim::{Sim, SimTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// When the partition window on client 0's WAN link opens.
pub const PARTITION_AT: Duration = Duration::from_secs(30);
/// How long the partition lasts. Ends well before the verification
/// phase so even the slowest breaker probe schedule re-promotes first.
pub const PARTITION_FOR: Duration = Duration::from_secs(35);

/// The outcome of one partition-heal run.
#[derive(Debug)]
pub struct PartitionHealReport {
    /// The scenario seed (jitters the op schedule, not the structure).
    pub seed: u64,
    /// Client 0's proxy statistics at shutdown.
    pub writer_stats: gvfs_core::proxy::client::ProxyClientStats,
    /// Client 0's WAN breaker trip count.
    pub breaker_trips: u64,
    /// The fault-event list (one partition window) the oracle judged.
    pub events: Vec<FaultEvent>,
    /// The full recorded history.
    pub history: Vec<Event>,
    /// Final content of `/heal-0` and `/heal-1`, read out of band.
    pub final_tags: Vec<Observation>,
    /// Deterministic fingerprint of (history, final state).
    pub trace_hash: u64,
    /// Oracle rejections plus scenario-specific checks; empty = clean.
    pub violations: Vec<Violation>,
    /// The protocol-event trace (JSONL; see `gvfs_core::trace`), fed to
    /// `gvfs-analysis -- replay` for spec-conformance checking.
    pub protocol_trace: String,
}

/// The tag the partitioned writer must land as the final content of
/// `/heal-0` (its last acknowledged write, issued after re-promotion).
pub fn final_writer_tag() -> u64 {
    make_tag(0, 6)
}

/// The tag the healthy client lands as the final content of `/heal-1`.
pub fn final_partner_tag() -> u64 {
    make_tag(1, 2)
}

fn sleep_until(t: SimTime) {
    let wait = t.saturating_since(gvfs_netsim::now());
    if !wait.is_zero() {
        gvfs_netsim::sleep(wait);
    }
}

/// An op instant: the scripted second plus a little seeded jitter, so
/// the 32-seed matrix explores distinct interleavings without moving
/// any op across a phase boundary.
fn at(rng: &mut StdRng, secs: u64) -> SimTime {
    SimTime::from_millis(secs * 1000 + rng.gen_range(0u64..200))
}

struct Scripted<'a> {
    client: &'a NfsClient,
    history: &'a History,
    id: usize,
}

impl Scripted<'_> {
    fn write(&self, fh: gvfs_nfs3::Fh3, file: usize, seq: u64, when: SimTime) {
        sleep_until(when);
        let tag = make_tag(self.id, seq);
        let started = gvfs_netsim::now();
        let outcome = self.client.write(fh, 0, &encode_tag(tag));
        let finished = gvfs_netsim::now();
        self.history.push(match outcome {
            Ok(()) => Event::WriteAcked { client: self.id, file, tag, started, finished },
            Err(_) => Event::WriteFailed { client: self.id, file, tag, started, finished },
        });
    }

    fn read(&self, fh: gvfs_nfs3::Fh3, file: usize, when: SimTime) {
        sleep_until(when);
        let started = gvfs_netsim::now();
        if let Ok(buf) = self.client.read(fh, 0, FILE_LEN as u32) {
            let finished = gvfs_netsim::now();
            self.history.push(Event::Read {
                client: self.id,
                file,
                observed: Observation::decode(&buf),
                started,
                finished,
            });
        }
    }
}

/// Runs the partition-heal scenario for `seed`.
///
/// Phase map (virtual seconds; every op carries ≤200 ms seeded jitter):
///
/// - **0–29 warm-up**: client 1 seeds `/heal-1`; client 0 forwards one
///   write to `/heal-0` (acquiring a write delegation and a
///   server-stamped write-back base), acknowledges two more locally,
///   and re-validates `/heal-1` just before the window opens.
/// - **30–65 partition**: client 0's link is cut. A canary lookup trips
///   the breaker within seconds; client 0 keeps acknowledging writes
///   into the write-back cache and, once its delegation's renewal
///   lapses, serves reads under the bounded-staleness rung. Client 1
///   writes `/heal-1` and reads `/heal-0` — the recalls aimed at the
///   unreachable holder fail fast and revoke it, so client 1 is never
///   blocked on the dead link.
/// - **65+ heal**: a supervisor probe (or the canary's own retry)
///   closes the breaker; re-promotion drains invalidations, drops the
///   revoked delegations, and replays the dirty write-back data (the
///   server copy is provably unchanged). The verification phase at
///   110 s+ then lands one forwarded write per client and cross-reads
///   both files fresh.
pub fn run_partition_heal(seed: u64) -> PartitionHealReport {
    let sim = Sim::new();
    let session =
        Session::builder(ModelKind::Delegation.session_config()).clients(2).establish(&sim);
    let protocol_trace = session.install_trace();

    // Pre-populate out of band: both files start as FILE_LEN zeros
    // (tag 0), plus a canary file nobody caches before the partition.
    let vfs = Arc::clone(session.vfs());
    let t0 = gvfs_vfs::Timestamp::from_nanos(0);
    for name in ["heal-0", "heal-1", "heal-canary"] {
        let id = vfs.create(vfs.root(), name, 0o644, t0).expect("create scenario file");
        vfs.write(id, 0, &vec![0u8; FILE_LEN], t0).expect("initialize scenario file");
    }

    let events = vec![FaultEvent::Partition {
        client: 0,
        at_ms: PARTITION_AT.as_millis() as u64,
        dur_ms: PARTITION_FOR.as_millis() as u64,
    }];
    for (client, to_server, plan) in compile_fault_plans(seed, &events) {
        session.wan_link(client).set_fault_plan(to_server, Some(plan));
    }

    let history = Arc::new(History::new());
    let done = Arc::new(AtomicUsize::new(0));
    let session = Arc::new(session);

    // Client 0: the writer that rides the ladder through the outage.
    {
        let transport = session.client_transport(0);
        let root = session.root_fh();
        let history = Arc::clone(&history);
        let done = Arc::clone(&done);
        sim.spawn("heal-writer", move || {
            let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(3).wrapping_add(1));
            sleep_until(at(&mut rng, 2));
            let client = NfsClient::new(transport, root, MountOptions::noac());
            let w = client.resolve("/heal-0").expect("resolve /heal-0");
            let r = client.resolve("/heal-1").expect("resolve /heal-1");
            let s = Scripted { client: &client, history: &history, id: 0 };

            // Warm-up: forwarded write seeds the delegation and the
            // write-back base; the next two acknowledge locally.
            s.write(w, 0, 1, at(&mut rng, 4));
            s.read(r, 1, at(&mut rng, 6));
            s.write(w, 0, 2, at(&mut rng, 8));
            s.write(w, 0, 3, at(&mut rng, 20));
            // Re-validate /heal-1 just before the window: the renewal
            // has lapsed, so this read forwards and refreshes the
            // degraded-serving validation point.
            s.read(r, 1, at(&mut rng, 27));

            // Partition [30, 65): delayed writes keep acknowledging
            // locally; reads serve from the delegation until its
            // renewal lapses at ~47 s, then from the ladder's
            // bounded-staleness rung (the breaker tripped at ~34 s).
            s.write(w, 0, 4, at(&mut rng, 35));
            s.read(r, 1, at(&mut rng, 42));
            s.write(w, 0, 5, at(&mut rng, 43));
            s.read(r, 1, at(&mut rng, 48));
            s.read(r, 1, at(&mut rng, 51));
            s.read(r, 1, at(&mut rng, 54));

            // Verification, far past the slowest possible re-promotion
            // schedule: a forwarded write and a fresh cross-read.
            s.write(w, 0, 6, at(&mut rng, 115));
            s.read(r, 1, at(&mut rng, 120));
            done.fetch_add(1, Ordering::SeqCst);
        });
    }

    // Client 0's canary: one lookup of a never-cached file, started
    // just inside the window. Its fast-failing retries trip the breaker
    // long before the scripted reads need the degraded rung; it then
    // blocks like a hard mount and completes after the heal.
    {
        let transport = session.client_transport(0);
        let root = session.root_fh();
        let done = Arc::clone(&done);
        sim.spawn("heal-canary", move || {
            sleep_until(SimTime::from_millis(31_000));
            let client = NfsClient::new(transport, root, MountOptions::noac());
            client.resolve("/heal-canary").expect("canary resolves after the heal");
            done.fetch_add(1, Ordering::SeqCst);
        });
    }

    // Client 1: the healthy partner that must never block on client
    // 0's dead link.
    {
        let transport = session.client_transport(1);
        let root = session.root_fh();
        let history = Arc::clone(&history);
        let done = Arc::clone(&done);
        sim.spawn("heal-partner", move || {
            let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(3).wrapping_add(2));
            sleep_until(at(&mut rng, 2));
            let client = NfsClient::new(transport, root, MountOptions::noac());
            let w = client.resolve("/heal-0").expect("resolve /heal-0");
            let r = client.resolve("/heal-1").expect("resolve /heal-1");
            let s = Scripted { client: &client, history: &history, id: 1 };

            s.write(r, 1, 1, at(&mut rng, 3));
            // Mid-partition: this write recalls client 0's read
            // delegation and the read recalls its write delegation;
            // both recalls fail fast and revoke the unreachable holder.
            s.write(r, 1, 2, at(&mut rng, 40));
            s.read(w, 0, at(&mut rng, 45));
            s.read(w, 0, at(&mut rng, 70));
            // Verification: the replayed write-back data and the
            // post-heal forwarded write must both be visible.
            s.read(w, 0, at(&mut rng, 120));
            done.fetch_add(1, Ordering::SeqCst);
        });
    }

    // Closer: waits for all three actors, heals the link, shuts down
    // (flushing any remaining delayed writes).
    {
        let session = Arc::clone(&session);
        let done = Arc::clone(&done);
        let handle = session.handle();
        sim.spawn("heal-closer", move || {
            loop {
                gvfs_netsim::park_timeout(Duration::from_secs(1));
                if done.load(Ordering::SeqCst) >= 3 {
                    break;
                }
            }
            let link = session.wan_link(0);
            link.set_partitioned(false);
            link.clear_fault_plans();
            handle.shutdown();
        });
    }

    sim.run();

    let writer_stats = session.proxy_client(0).stats();
    let breaker_trips = session.proxy_client(0).breaker().trips();

    let mut final_tags = Vec::with_capacity(2);
    for name in ["/heal-0", "/heal-1"] {
        let id = vfs.lookup_path(name).expect("scenario file still present");
        let (buf, _eof) = vfs.read(id, 0, FILE_LEN as u32).expect("read final state");
        final_tags.push(Observation::decode(&buf));
    }

    let history = history.events();
    let mut violations = oracle::check(ModelKind::Delegation, &events, &history, &final_tags);

    // Scenario-specific checks, on top of the oracle: the ladder must
    // actually have engaged, the heal must have re-promoted, and no
    // acknowledged write may be lost across the outage — the randomized
    // oracle excuses a partitioned writer's data, the scripted scenario
    // does not.
    if writer_stats.degraded_reads == 0 {
        violations.push(Violation {
            kind: oracle::ViolationKind::StaleRead,
            detail: "degradation ladder never served a bounded-staleness read".into(),
        });
    }
    if writer_stats.repromotions == 0 {
        violations.push(Violation {
            kind: oracle::ViolationKind::FinalState,
            detail: "supervisor never re-promoted the session after the heal".into(),
        });
    }
    if breaker_trips == 0 {
        violations.push(Violation {
            kind: oracle::ViolationKind::StaleRead,
            detail: "WAN breaker never tripped during the partition".into(),
        });
    }
    let expected = [final_writer_tag(), final_partner_tag()];
    for (file, (&obs, &want)) in final_tags.iter().zip(expected.iter()).enumerate() {
        if obs != Observation::Tag(want) {
            violations.push(Violation {
                kind: oracle::ViolationKind::FinalState,
                detail: format!(
                    "acknowledged write lost across re-promotion: file {file} ended as \
                     {obs:?}, expected tag {want:#x}"
                ),
            });
        }
    }

    let mut hash = trace_hash(&history);
    for obs in &final_tags {
        for byte in format!("{obs:?}").bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    PartitionHealReport {
        seed,
        writer_stats,
        breaker_trips,
        events,
        history,
        final_tags,
        trace_hash: hash,
        violations,
        protocol_trace: protocol_trace.to_jsonl(),
    }
}

/// The outcome of one crash-restart run.
#[derive(Debug)]
pub struct CrashRestartReport {
    /// The scenario seed (jitters the op schedule, not the structure).
    pub seed: u64,
    /// Client 0's proxy statistics at shutdown (carries the store's
    /// `restart_warm_blocks` from the reopen).
    pub writer_stats: gvfs_core::proxy::client::ProxyClientStats,
    /// Handles whose dirty data the restart discarded as corrupted —
    /// must be empty: the server copy never moved during the outage.
    pub corrupted: Vec<gvfs_nfs3::Fh3>,
    /// The full recorded history.
    pub history: Vec<Event>,
    /// Final content of `/crash-0`, read out of band.
    pub final_tag: Observation,
    /// Deterministic fingerprint of (history, final state).
    pub trace_hash: u64,
    /// Scenario-specific oracle rejections; empty = clean.
    pub violations: Vec<Violation>,
    /// The protocol-event trace (JSONL), for conformance replay.
    pub protocol_trace: String,
}

/// The tag client 0 lands as the final content of `/crash-0`.
pub fn final_crash_tag() -> u64 {
    make_tag(0, 4)
}

/// The write the crash must discard: acknowledged into the write-back
/// cache after the last durability barrier, never synced.
pub fn lost_crash_tag() -> u64 {
    make_tag(0, 3)
}

/// Runs the crash-restart scenario for `seed`.
///
/// Phase map (virtual seconds; every op carries ≤200 ms seeded jitter):
///
/// - **0–11 accumulate**: client 0 forwards one write to `/crash-0`
///   (delegation + write-back base), reads `/crash-1` (a clean block in
///   the persistent store), acknowledges write 2 locally, and hits a
///   durability barrier (`sync_store`) at 8 s. Write 3 lands at 10 s —
///   dirty in the cache, WAL record appended but **not** synced.
/// - **12 crash**: the proxy machine dies. The virtual disk keeps only
///   what the barrier covered, plus a torn fragment of write 3's WAL
///   record.
/// - **16 restart**: the store reopens from disk — replay stops at the
///   torn record, so write 2's dirty bytes and `/crash-1`'s clean block
///   come back and write 3 is gone — then crash recovery reconciles the
///   surviving dirty data against the (unchanged) server.
/// - **20+ verify**: client 1 cross-reads `/crash-0` (must see write 2,
///   then write 4, never write 3 or a torn block), client 0 lands one
///   more forwarded write, and a final out-of-band read pins the end
///   state.
pub fn run_crash_restart(seed: u64) -> CrashRestartReport {
    let sim = Sim::new();
    let mut config = ModelKind::Delegation.session_config();
    config.persistent_store = true;
    let session = Session::builder(config).clients(2).establish(&sim);
    let protocol_trace = session.install_trace();

    let vfs = Arc::clone(session.vfs());
    let t0 = gvfs_vfs::Timestamp::from_nanos(0);
    for name in ["crash-0", "crash-1"] {
        let id = vfs.create(vfs.root(), name, 0o644, t0).expect("create scenario file");
        vfs.write(id, 0, &vec![0u8; FILE_LEN], t0).expect("initialize scenario file");
    }

    let history = Arc::new(History::new());
    let done = Arc::new(AtomicUsize::new(0));
    let session = Arc::new(session);
    let corrupted = Arc::new(parking_lot::Mutex::new(Vec::new()));

    // Client 0: accumulates write-back data across the barrier, then
    // keeps using the cache after the restart.
    {
        let transport = session.client_transport(0);
        let root = session.root_fh();
        let history = Arc::clone(&history);
        let done = Arc::clone(&done);
        sim.spawn("crash-writer", move || {
            let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(5).wrapping_add(1));
            sleep_until(at(&mut rng, 1));
            let client = NfsClient::new(transport, root, MountOptions::noac());
            let w = client.resolve("/crash-0").expect("resolve /crash-0");
            let r = client.resolve("/crash-1").expect("resolve /crash-1");
            let s = Scripted { client: &client, history: &history, id: 0 };

            // Forwarded write: delegation + write-back base.
            s.write(w, 0, 1, at(&mut rng, 2));
            // A clean block the restart must serve warm.
            s.read(r, 1, at(&mut rng, 4));
            // Local acknowledgement, covered by the 8 s barrier.
            s.write(w, 0, 2, at(&mut rng, 6));
            // Local acknowledgement the crash must discard cleanly.
            s.write(w, 0, 3, at(&mut rng, 10));

            // Post-restart: land the final state with a forwarded write
            // (the restart cleared the delegation).
            s.write(w, 0, 4, at(&mut rng, 24));
            done.fetch_add(1, Ordering::SeqCst);
        });
    }

    // The operator: barrier at 8 s, crash at 12 s, restart at 16 s.
    {
        let session = Arc::clone(&session);
        let done = Arc::clone(&done);
        let corrupted = Arc::clone(&corrupted);
        sim.spawn("crash-operator", move || {
            sleep_until(SimTime::from_millis(8_500));
            session.proxy_client(0).sync_store();
            sleep_until(SimTime::from_millis(12_000));
            session.crash_proxy_client(0);
            sleep_until(SimTime::from_millis(16_000));
            *corrupted.lock() = session.restart_proxy_client(0);
            done.fetch_add(1, Ordering::SeqCst);
        });
    }

    // Client 1: the cross-reader that must never see the lost write.
    {
        let transport = session.client_transport(1);
        let root = session.root_fh();
        let history = Arc::clone(&history);
        let done = Arc::clone(&done);
        sim.spawn("crash-reader", move || {
            let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(5).wrapping_add(2));
            sleep_until(at(&mut rng, 20));
            let client = NfsClient::new(transport, root, MountOptions::noac());
            let w = client.resolve("/crash-0").expect("resolve /crash-0");
            let s = Scripted { client: &client, history: &history, id: 1 };
            // Post-restart, pre-final-write: the reconciled write 2.
            s.read(w, 0, at(&mut rng, 21));
            s.read(w, 0, at(&mut rng, 22));
            // Past the final write: write 4.
            s.read(w, 0, at(&mut rng, 28));
            done.fetch_add(1, Ordering::SeqCst);
        });
    }

    // Closer: waits for all three actors, then shuts down (flushing and
    // syncing the store).
    {
        let session = Arc::clone(&session);
        let done = Arc::clone(&done);
        let handle = session.handle();
        sim.spawn("crash-closer", move || {
            loop {
                gvfs_netsim::park_timeout(Duration::from_secs(1));
                if done.load(Ordering::SeqCst) >= 3 {
                    break;
                }
            }
            handle.shutdown();
        });
    }

    sim.run();

    let writer_stats = session.proxy_client(0).stats();
    let corrupted = corrupted.lock().clone();

    let final_tag = {
        let id = vfs.lookup_path("/crash-0").expect("scenario file still present");
        let (buf, _eof) = vfs.read(id, 0, FILE_LEN as u32).expect("read final state");
        Observation::decode(&buf)
    };

    let history = history.events();
    let mut violations = Vec::new();

    // No torn block may ever be observed — not from the wire, and above
    // all not from the reopened store.
    for ev in &history {
        if let Event::Read { client, file, observed: Observation::Torn, started, .. } = ev {
            violations.push(Violation {
                kind: oracle::ViolationKind::TornRead,
                detail: format!(
                    "client {client} observed a torn block of file {file} at {started:?}"
                ),
            });
        }
    }
    // The never-synced write must have vanished with the crash: its WAL
    // record was torn, so serving its data anywhere means the store
    // replayed past a failed verification.
    for ev in &history {
        if let Event::Read { client, file, observed: Observation::Tag(t), started, .. } = ev {
            if *t == lost_crash_tag() {
                violations.push(Violation {
                    kind: oracle::ViolationKind::StaleRead,
                    detail: format!(
                        "client {client} read the never-synced write {t:#x} of file {file} \
                         at {started:?} — a torn WAL record was replayed"
                    ),
                });
            }
        }
    }
    // The cross-reader's view must move monotonically through the
    // surviving states: write 2 (reconciled from the reopened store),
    // then write 4.
    let allowed = [make_tag(0, 2), final_crash_tag()];
    let mut last_pos = 0usize;
    for ev in &history {
        let Event::Read { client: 1, observed, started, .. } = ev else { continue };
        match observed {
            Observation::Tag(t) if allowed.contains(t) => {
                let pos = allowed.iter().position(|a| a == t).expect("just matched");
                if pos < last_pos {
                    violations.push(Violation {
                        kind: oracle::ViolationKind::StaleRead,
                        detail: format!(
                            "cross-reader regressed from {:#x} to {t:#x} at {started:?}",
                            allowed[last_pos]
                        ),
                    });
                }
                last_pos = pos;
            }
            Observation::Torn => {} // already reported above
            other => violations.push(Violation {
                kind: oracle::ViolationKind::InvalidValue,
                detail: format!(
                    "cross-reader observed {other:?} at {started:?}; the only states the \
                     crash leaves behind are {allowed:?}"
                ),
            }),
        }
    }
    // Every scripted write happened outside the outage and must ack.
    for ev in &history {
        if let Event::WriteFailed { client, file, tag, started, .. } = ev {
            violations.push(Violation {
                kind: oracle::ViolationKind::FinalState,
                detail: format!(
                    "client {client} write {tag:#x} to file {file} failed at {started:?}"
                ),
            });
        }
    }
    // The server never moved while client 0 was down, so the restart
    // must reconcile — not discard — the surviving dirty data.
    if !corrupted.is_empty() {
        violations.push(Violation {
            kind: oracle::ViolationKind::FinalState,
            detail: format!(
                "restart discarded {corrupted:?} as corrupted; the server copy was unchanged"
            ),
        });
    }
    // The store must actually have come back warm: the barrier covered
    // /crash-1's clean block (and write 2's dirty bytes).
    if writer_stats.restart_warm_blocks == 0 {
        violations.push(Violation {
            kind: oracle::ViolationKind::FinalState,
            detail: "the reopened store served nothing warm; every block was refetched".into(),
        });
    }
    if final_tag != Observation::Tag(final_crash_tag()) {
        violations.push(Violation {
            kind: oracle::ViolationKind::FinalState,
            detail: format!(
                "/crash-0 ended as {final_tag:?}, expected tag {:#x}",
                final_crash_tag()
            ),
        });
    }

    let mut hash = trace_hash(&history);
    for byte in format!("{final_tag:?}").bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    CrashRestartReport {
        seed,
        writer_stats,
        corrupted,
        history,
        final_tag,
        trace_hash: hash,
        violations,
        protocol_trace: protocol_trace.to_jsonl(),
    }
}

/// Block size of the peer-partition scenario's shared file (the proxy
/// cache's block granularity, so each block is one fetch).
const PEER_BLOCK: u64 = 32 * 1024;
/// The scenario file spans two blocks: block 0 is always fetched from
/// the origin (it carries the attestation and the peer advert), block 1
/// is the one the mesh sources from a peer.
const PEER_BLOCKS: u64 = 2;
/// Fill byte of the seeded version.
const PEER_V1: u8 = 0x11;
/// Fill byte the writer lands mid-scenario.
const PEER_V2: u8 = 0x22;

/// The outcome of one peer-partition run.
#[derive(Debug)]
pub struct PeerPartitionReport {
    /// The scenario seed (jitters the op schedule, not the structure).
    pub seed: u64,
    /// Client 0's (the fan-in reader's) proxy statistics at shutdown —
    /// carries the `peer_hits` / `peer_fallbacks` counters the harness
    /// asserts on.
    pub reader_stats: gvfs_core::proxy::client::ProxyClientStats,
    /// Whether the serving peer ran with the `--break-peerread` knob
    /// (serving condemned store bytes under an echoed attestation).
    pub broken_peer: bool,
    /// The full recorded history (reads observe one block each; the
    /// `file` field is the block index).
    pub history: Vec<Event>,
    /// Deterministic fingerprint of the history.
    pub trace_hash: u64,
    /// Oracle rejections; empty = clean.
    pub violations: Vec<Violation>,
    /// The protocol-event trace (JSONL), for conformance replay.
    pub protocol_trace: String,
}

/// Decodes one block of the peer-partition file: a single repeated fill
/// byte is a version observation, anything else is torn.
fn decode_peer_block(buf: &[u8]) -> Observation {
    if buf.len() != PEER_BLOCK as usize {
        return Observation::Torn;
    }
    let first = buf[0];
    if buf.iter().any(|&b| b != first) {
        return Observation::Torn;
    }
    Observation::Tag(u64::from(first))
}

/// Runs the peer-partition scenario for `seed`. With
/// `broken_peer = false` this is the 32-seed matrix scenario; with
/// `broken_peer = true` it is the `--break-peerread` self-test arm the
/// oracle must convict.
///
/// Phase map (virtual seconds; every op carries ≤200 ms seeded jitter):
///
/// - **0–4 warm-up**: the serving peer (client 1) cold-reads both
///   blocks of `/peer-0` from the origin; the origin now advertises it
///   as a live holder.
/// - **5–8 mid-PEERREAD partition**: the reader (client 0) fetches
///   block 0 from the origin (attestation + advert), the peer LAN link
///   between reader and serving peer is cut, and the reader's block-1
///   `PEERREAD` times out into the breaker. The read must still
///   complete — via origin fallback — and observe the seeded version,
///   never a stale or torn block.
/// - **12 heal**, then **20–24 condemnation**: client 2 overwrites the
///   file. The recall invalidates both caches and — unless suppressed
///   by the break knob — de-advertises every peer copy under the same
///   stripe lock. In the honest run the serving peer re-reads the new
///   version and is re-advertised.
/// - **26+ verify**: the reader cold-reads both blocks again. Block 1
///   arrives over the mesh; it must carry the writer's version. The
///   broken peer instead serves its condemned bytes under the echoed
///   attestation, which the oracle convicts as a stale read.
pub fn run_peer_partition(seed: u64, broken_peer: bool) -> PeerPartitionReport {
    let sim = Sim::new();
    let mut config = ModelKind::Delegation.session_config();
    config.peer_read = true;
    // No read-ahead: block 1 must be a *demand* PEERREAD so the
    // partition window provably interrupts an in-flight peer fetch
    // (read-ahead would warm it over the mesh before the cut).
    config.readahead_window = 0;
    let session = Session::builder(config).clients(3).establish(&sim);
    let protocol_trace = session.install_trace();

    // Pre-populate out of band: two blocks of the seeded version.
    let vfs = Arc::clone(session.vfs());
    let t0 = gvfs_vfs::Timestamp::from_nanos(0);
    let id = vfs.create(vfs.root(), "peer-0", 0o644, t0).expect("create scenario file");
    vfs.write(id, 0, &vec![PEER_V1; (PEER_BLOCKS * PEER_BLOCK) as usize], t0)
        .expect("initialize scenario file");

    if broken_peer {
        // The self-test knob: the origin stops de-advertising condemned
        // copies and the serving peer serves raw store bytes under the
        // requester's echoed attestation.
        session.proxy_server().set_peer_deadvertise_suppressed(true);
        session.proxy_client(1).set_break_peerread(true);
    }

    let history = Arc::new(History::new());
    let done = Arc::new(AtomicUsize::new(0));
    let session = Arc::new(session);

    let read_block = |client: &NfsClient,
                      history: &History,
                      id: usize,
                      fh: gvfs_nfs3::Fh3,
                      block: u64,
                      when: SimTime| {
        sleep_until(when);
        let started = gvfs_netsim::now();
        if let Ok(buf) = client.read(fh, block * PEER_BLOCK, PEER_BLOCK as u32) {
            let finished = gvfs_netsim::now();
            history.push(Event::Read {
                client: id,
                file: block as usize,
                observed: decode_peer_block(&buf),
                started,
                finished,
            });
        }
    };

    // Client 1: the serving peer. Cold-reads both blocks in warm-up; in
    // the honest run it re-reads the writer's version afterwards so the
    // origin re-advertises it for the verify phase.
    {
        let transport = session.client_transport(1);
        let root = session.root_fh();
        let history = Arc::clone(&history);
        let done = Arc::clone(&done);
        sim.spawn("peer-holder", move || {
            let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(7).wrapping_add(1));
            sleep_until(at(&mut rng, 1));
            let client = NfsClient::new(transport, root, MountOptions::noac());
            let fh = client.resolve("/peer-0").expect("resolve /peer-0");
            for block in 0..PEER_BLOCKS {
                read_block(&client, &history, 1, fh, block, at(&mut rng, 2 + block));
            }
            if !broken_peer {
                for block in 0..PEER_BLOCKS {
                    read_block(&client, &history, 1, fh, block, at(&mut rng, 23 + block));
                }
            }
            done.fetch_add(1, Ordering::SeqCst);
        });
    }

    // Client 0: the fan-in reader whose block-1 PEERREAD the partition
    // interrupts, and whose verify-phase reads the oracle judges.
    {
        let transport = session.client_transport(0);
        let root = session.root_fh();
        let history = Arc::clone(&history);
        let done = Arc::clone(&done);
        sim.spawn("peer-reader", move || {
            let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(7).wrapping_add(2));
            sleep_until(at(&mut rng, 5));
            let client = NfsClient::new(transport, root, MountOptions::noac());
            let fh = client.resolve("/peer-0").expect("resolve /peer-0");
            // Attestation + advert from the origin.
            read_block(&client, &history, 0, fh, 0, at(&mut rng, 5));
            // Mid-PEERREAD partition: the serving peer is unreachable;
            // this read must complete via origin fallback.
            read_block(&client, &history, 0, fh, 1, at(&mut rng, 8));
            // Verify phase, after the writer's version and the recall.
            read_block(&client, &history, 0, fh, 0, at(&mut rng, 26));
            read_block(&client, &history, 0, fh, 1, at(&mut rng, 27));
            done.fetch_add(1, Ordering::SeqCst);
        });
    }

    // Client 2: the writer whose modification condemns every advertised
    // peer copy before it proceeds.
    {
        let transport = session.client_transport(2);
        let root = session.root_fh();
        let history = Arc::clone(&history);
        let done = Arc::clone(&done);
        sim.spawn("peer-writer", move || {
            let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(7).wrapping_add(3));
            sleep_until(at(&mut rng, 20));
            let client = NfsClient::new(transport, root, MountOptions::noac());
            let fh = client.resolve("/peer-0").expect("resolve /peer-0");
            let started = gvfs_netsim::now();
            let outcome = client.write(fh, 0, &vec![PEER_V2; (PEER_BLOCKS * PEER_BLOCK) as usize]);
            let finished = gvfs_netsim::now();
            history.push(match outcome {
                Ok(()) => Event::WriteAcked {
                    client: 2,
                    file: 0,
                    tag: u64::from(PEER_V2),
                    started,
                    finished,
                },
                Err(_) => Event::WriteFailed {
                    client: 2,
                    file: 0,
                    tag: u64::from(PEER_V2),
                    started,
                    finished,
                },
            });
            done.fetch_add(1, Ordering::SeqCst);
        });
    }

    // The partitioner: cuts the reader↔peer LAN link just before the
    // reader's block-1 PEERREAD, heals it at 12 s.
    {
        let session = Arc::clone(&session);
        sim.spawn("peer-partitioner", move || {
            sleep_until(SimTime::from_millis(7_500));
            let link = session.peer_link(0, 1).expect("peer mesh is on").clone();
            link.set_partitioned(true);
            sleep_until(SimTime::from_millis(12_000));
            link.set_partitioned(false);
        });
    }

    // Closer: waits for all three scripted actors, then shuts down.
    {
        let session = Arc::clone(&session);
        let done = Arc::clone(&done);
        let handle = session.handle();
        sim.spawn("peer-closer", move || {
            loop {
                gvfs_netsim::park_timeout(Duration::from_secs(1));
                if done.load(Ordering::SeqCst) >= 3 {
                    break;
                }
            }
            handle.shutdown();
        });
    }

    sim.run();

    let reader_stats = session.proxy_client(0).stats();
    let history = history.events();
    let mut violations = Vec::new();

    // No torn block, ever — not mid-partition, not from the mesh.
    for ev in &history {
        if let Event::Read { client, file, observed: Observation::Torn, started, .. } = ev {
            violations.push(Violation {
                kind: oracle::ViolationKind::TornRead,
                detail: format!("client {client} observed a torn block {file} at {started:?}"),
            });
        }
    }
    // The writer's acknowledgement window splits the timeline: reads
    // finished before it began must observe the seeded version, reads
    // started after it acked must observe the writer's — "no condemned
    // block served by a peer". Reads overlapping the window may land on
    // either side (but never torn; checked above).
    let write_window = history.iter().find_map(|ev| match ev {
        Event::WriteAcked { started, finished, .. } => Some((*started, *finished)),
        _ => None,
    });
    let mut fallback_read_done = false;
    for ev in &history {
        let Event::Read { client, file, observed, started, finished } = ev else { continue };
        let want = match write_window {
            Some((w_start, _)) if *finished < w_start => Some(PEER_V1),
            Some((_, w_end)) if *started > w_end => Some(PEER_V2),
            Some(_) => None,
            None => Some(PEER_V1),
        };
        if *started >= SimTime::from_secs(7) && *started < SimTime::from_secs(12) {
            fallback_read_done = true;
        }
        if let (Observation::Tag(t), Some(want)) = (observed, want) {
            if *t != u64::from(want) {
                violations.push(Violation {
                    kind: oracle::ViolationKind::StaleRead,
                    detail: format!(
                        "client {client} read version {t:#x} of block {file} at {started:?}, \
                         expected {want:#x} — a condemned peer copy was served"
                    ),
                });
            }
        }
    }
    if !fallback_read_done {
        violations.push(Violation {
            kind: oracle::ViolationKind::FinalState,
            detail: "the mid-partition read never completed via origin fallback".into(),
        });
    }
    // Every scripted write happens on a healthy WAN link and must ack.
    for ev in &history {
        if let Event::WriteFailed { client, tag, started, .. } = ev {
            violations.push(Violation {
                kind: oracle::ViolationKind::FinalState,
                detail: format!("client {client} write {tag:#x} failed at {started:?}"),
            });
        }
    }
    // Mechanism checks: the partition must have forced at least one
    // origin fallback, and (honestly run) the mesh must have actually
    // served the verify-phase block.
    if reader_stats.peer_fallbacks == 0 {
        violations.push(Violation {
            kind: oracle::ViolationKind::FinalState,
            detail: "the partitioned PEERREAD never fell back to the origin".into(),
        });
    }
    if !broken_peer && reader_stats.peer_hits == 0 {
        violations.push(Violation {
            kind: oracle::ViolationKind::FinalState,
            detail: "the peer mesh never served a block; the scenario lost its subject".into(),
        });
    }

    PeerPartitionReport {
        seed,
        reader_stats,
        broken_peer,
        trace_hash: trace_hash(&history),
        history,
        violations,
        protocol_trace: protocol_trace.to_jsonl(),
    }
}

/// Block size of the disk-corruption scenario's chunked file.
const ROT_BLOCK: u64 = 32 * 1024;
/// The chunked file spans four blocks, comfortably past the store's
/// small-file threshold, so its clean bytes land as content-addressed
/// chunk files under `chunks/`; the two tag files stay under the
/// threshold and land as per-handle segments under `data/`.
const ROT_BLOCKS: u64 = 4;
/// Fill byte of the chunked file (never overwritten).
const ROT_FILL: u8 = 0x5a;
/// History index of the chunked file's block `b` (`10 + b`); the tag
/// files use indices 0 and 1.
const ROT_BIG_FILE: usize = 10;

/// The outcome of one disk-corruption run.
#[derive(Debug)]
pub struct DiskCorruptionReport {
    /// The scenario seed (jitters the op schedule, picks the rotted
    /// bytes, and seeds the disk fault plan).
    pub seed: u64,
    /// Client 0's (the corrupted machine's) proxy statistics at
    /// shutdown — carries the `integrity_failures` /
    /// `quarantined_blocks` / `scrub_repairs` counters the harness
    /// asserts on.
    pub reader_stats: gvfs_core::proxy::client::ProxyClientStats,
    /// Whether the run disabled verify-on-read (`--break-scrub`): the
    /// store serves rotted bytes and the oracle must convict.
    pub break_scrub: bool,
    /// Stored files (under `data/` and `chunks/`) the operator rotted.
    pub corrupted_paths: usize,
    /// The full recorded history.
    pub history: Vec<Event>,
    /// Deterministic fingerprint of the history.
    pub trace_hash: u64,
    /// Oracle rejections; empty = clean.
    pub violations: Vec<Violation>,
    /// The protocol-event trace (JSONL), for conformance replay.
    pub protocol_trace: String,
}

/// The tag seeded into `/rot-{i}` (out of band, never overwritten).
pub fn rot_tag(file: usize) -> u64 {
    make_tag(9, 1 + file as u64)
}

/// Runs the disk-corruption scenario for `seed`. With
/// `break_scrub = false` this is the 32-seed matrix scenario; with
/// `break_scrub = true` it is the `--break-scrub` self-test arm the
/// oracle must convict.
///
/// Phase map (virtual seconds; every op carries ≤200 ms seeded jitter):
///
/// - **0–6 warm-up**: client 0 reads `/rot-0` and `/rot-1` (512-byte
///   tag files → `data/` segments) and all four blocks of `/rot-big`
///   (128 KiB of one fill byte → a content-addressed chunk under
///   `chunks/`); client 1 reads `/rot-1` into its own, never-corrupted
///   store.
/// - **7.5–9.5 WAN noise**: a seeded message-drop window on client 0's
///   WAN link, composing the wire fault plan with the disk fault plan
///   (both draw from dedicated seeded RNGs, so the composition replays
///   identically).
/// - **10 rot**: the operator flips one seeded byte in every stored
///   file under `data/` and `chunks/` on client 0's disk (durably —
///   media decay, not a transport error), and arms a seeded
///   [`gvfs_netsim::disk::DiskFaultPlan`] over the same prefixes: torn
///   repair writes until 16 s and read-time bit rot until 30 s. No
///   crash is scripted: replay skips the pre-write verification, so a
///   crash window would launder rot into fresh checksums — that corner
///   is excluded here and documented in the store.
/// - **10–18 self-heal**: the background scrubber sweeps the store
///   (1 s period), quarantines every checksum mismatch, and refetches
///   the clean bytes from the origin; torn repair writes are caught by
///   the next sweep and repaired again.
/// - **18+ verify**: both clients re-read everything. Every read must
///   observe the seeded content — never a rotted, torn, or partially
///   repaired block. With `break_scrub` the store serves the rot
///   instead, which the oracle convicts.
pub fn run_disk_corruption(seed: u64, break_scrub: bool) -> DiskCorruptionReport {
    let sim = Sim::new();
    let mut config = ModelKind::Delegation.session_config();
    config.persistent_store = true;
    config.scrub_period = Some(Duration::from_secs(1));
    let session = Session::builder(config).clients(2).establish(&sim);
    let protocol_trace = session.install_trace();

    // Pre-populate out of band: two tag files and the chunked file.
    let vfs = Arc::clone(session.vfs());
    let t0 = gvfs_vfs::Timestamp::from_nanos(0);
    for file in 0..2usize {
        let id =
            vfs.create(vfs.root(), &format!("rot-{file}"), 0o644, t0).expect("create tag file");
        vfs.write(id, 0, &encode_tag(rot_tag(file)), t0).expect("initialize tag file");
    }
    let id = vfs.create(vfs.root(), "rot-big", 0o644, t0).expect("create chunked file");
    vfs.write(id, 0, &vec![ROT_FILL; (ROT_BLOCKS * ROT_BLOCK) as usize], t0)
        .expect("initialize chunked file");

    if break_scrub {
        // The self-test knob: verify-on-read (and with it the scrub
        // sweep) is disabled, so the store serves whatever the platter
        // holds.
        session.proxy_client(0).set_break_scrub(true);
    }

    // WAN noise on the corrupted machine's link, composed with the
    // disk faults below.
    let events = vec![FaultEvent::Drop {
        client: 0,
        to_server: true,
        at_ms: 7_500,
        dur_ms: 2_000,
        permille: 250,
    }];
    for (client, to_server, plan) in compile_fault_plans(seed, &events) {
        session.wan_link(client).set_fault_plan(to_server, Some(plan));
    }

    let history = Arc::new(History::new());
    let done = Arc::new(AtomicUsize::new(0));
    let session = Arc::new(session);
    let corrupted_paths = Arc::new(AtomicUsize::new(0));

    let read_block = |client: &NfsClient,
                      history: &History,
                      id: usize,
                      fh: gvfs_nfs3::Fh3,
                      block: u64,
                      when: SimTime| {
        sleep_until(when);
        let started = gvfs_netsim::now();
        if let Ok(buf) = client.read(fh, block * ROT_BLOCK, ROT_BLOCK as u32) {
            let finished = gvfs_netsim::now();
            let observed = if buf.len() == ROT_BLOCK as usize && buf.iter().all(|&b| b == buf[0]) {
                Observation::Tag(u64::from(buf[0]))
            } else {
                Observation::Torn
            };
            history.push(Event::Read {
                client: id,
                file: ROT_BIG_FILE + block as usize,
                observed,
                started,
                finished,
            });
        }
    };

    // Client 0: the machine whose platter rots. Warm reads populate the
    // persistent store; verify reads must never observe the rot.
    {
        let transport = session.client_transport(0);
        let verify_transport = session.client_transport(0);
        let root = session.root_fh();
        let history = Arc::clone(&history);
        let done = Arc::clone(&done);
        sim.spawn("rot-reader", move || {
            let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(11).wrapping_add(1));
            sleep_until(at(&mut rng, 1));
            let client = NfsClient::new(transport, root, MountOptions::noac());
            let t0 = client.resolve("/rot-0").expect("resolve /rot-0");
            let t1 = client.resolve("/rot-1").expect("resolve /rot-1");
            let big = client.resolve("/rot-big").expect("resolve /rot-big");
            let s = Scripted { client: &client, history: &history, id: 0 };

            // Warm-up: everything lands clean in the persistent store.
            s.read(t0, 0, at(&mut rng, 2));
            s.read(t1, 1, at(&mut rng, 3));
            for block in 0..ROT_BLOCKS {
                read_block(&client, &history, 0, big, block, at(&mut rng, 4));
            }

            // Verify: past the rot (10 s) and several scrub sweeps. A
            // fresh mount — nothing ever writes these files, so the
            // first mount's kernel page cache would revalidate clean
            // and serve its own warm copies; the verify reads must
            // come back through the proxy's stored (rotted) bytes.
            sleep_until(at(&mut rng, 18));
            let verify = NfsClient::new(verify_transport, root, MountOptions::noac());
            let t0 = verify.resolve("/rot-0").expect("re-resolve /rot-0");
            let t1 = verify.resolve("/rot-1").expect("re-resolve /rot-1");
            let big = verify.resolve("/rot-big").expect("re-resolve /rot-big");
            let s = Scripted { client: &verify, history: &history, id: 0 };
            s.read(t0, 0, at(&mut rng, 18));
            s.read(t1, 1, at(&mut rng, 19));
            for block in 0..ROT_BLOCKS {
                read_block(&verify, &history, 0, big, block, at(&mut rng, 20));
            }
            done.fetch_add(1, Ordering::SeqCst);
        });
    }

    // Client 1: a bystander on an honest platter; its reads pin the
    // origin copy as unaffected by client 0's rot.
    {
        let transport = session.client_transport(1);
        let root = session.root_fh();
        let history = Arc::clone(&history);
        let done = Arc::clone(&done);
        sim.spawn("rot-bystander", move || {
            let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(11).wrapping_add(2));
            sleep_until(at(&mut rng, 3));
            let client = NfsClient::new(transport, root, MountOptions::noac());
            let t1 = client.resolve("/rot-1").expect("resolve /rot-1");
            let s = Scripted { client: &client, history: &history, id: 1 };
            s.read(t1, 1, at(&mut rng, 4));
            s.read(t1, 1, at(&mut rng, 21));
            done.fetch_add(1, Ordering::SeqCst);
        });
    }

    // The operator: at 10 s, rots one seeded byte of every stored file
    // under data/ and chunks/ on client 0's disk, and arms the seeded
    // disk fault plan over the same prefixes.
    {
        let session = Arc::clone(&session);
        let done = Arc::clone(&done);
        let corrupted_paths = Arc::clone(&corrupted_paths);
        sim.spawn("rot-operator", move || {
            let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(11).wrapping_add(3));
            sleep_until(SimTime::from_millis(10_000));
            let disk = session.client_disk(0).expect("persistent store has a disk");
            let mut rotted = 0usize;
            for prefix in ["data/", "chunks/"] {
                for path in disk.list(prefix) {
                    let len = disk.len(&path).unwrap_or(0);
                    if len == 0 {
                        continue;
                    }
                    let offset = rng.gen_range(0..len);
                    let xor = rng.gen_range(1u8..=255);
                    if disk.corrupt_byte(&path, offset, xor) {
                        rotted += 1;
                    }
                }
            }
            corrupted_paths.store(rotted, Ordering::SeqCst);
            disk.set_fault_plan(Some(
                gvfs_netsim::disk::DiskFaultPlan::new(seed ^ 0xd15c_0000)
                    .with_torn_writes(
                        gvfs_netsim::fault::Window::new(
                            SimTime::from_secs(10),
                            SimTime::from_secs(16),
                        ),
                        0.25,
                    )
                    .with_flips(
                        gvfs_netsim::fault::Window::new(
                            SimTime::from_secs(10),
                            SimTime::from_secs(30),
                        ),
                        0.1,
                    )
                    .with_path_prefix("data/")
                    .with_path_prefix("chunks/"),
            ));
            done.fetch_add(1, Ordering::SeqCst);
        });
    }

    // Closer: waits for both readers and the operator, then shuts down.
    {
        let session = Arc::clone(&session);
        let done = Arc::clone(&done);
        let handle = session.handle();
        sim.spawn("rot-closer", move || {
            loop {
                gvfs_netsim::park_timeout(Duration::from_secs(1));
                if done.load(Ordering::SeqCst) >= 3 {
                    break;
                }
            }
            handle.shutdown();
        });
    }

    sim.run();

    let reader_stats = session.proxy_client(0).stats();
    let corrupted_paths = corrupted_paths.load(Ordering::SeqCst);
    let history = history.events();
    let mut violations = Vec::new();

    // The heart of the scenario: no checksum-failed block may ever
    // reach a reader. A rotted byte turns a uniform block or tag file
    // into a torn observation — any torn read is a served corruption.
    for ev in &history {
        if let Event::Read { client, file, observed: Observation::Torn, started, .. } = ev {
            violations.push(Violation {
                kind: oracle::ViolationKind::TornRead,
                detail: format!(
                    "client {client} read a corrupted block of file {file} at {started:?} — a \
                     checksum-failed block reached a reader"
                ),
            });
        }
    }
    // Nothing ever writes these files, so every read must observe the
    // seeded content exactly.
    for ev in &history {
        let Event::Read { client, file, observed: Observation::Tag(t), started, .. } = ev else {
            continue;
        };
        let want = match *file {
            0 | 1 => rot_tag(*file),
            f if f >= ROT_BIG_FILE => u64::from(ROT_FILL),
            _ => continue,
        };
        if *t != want {
            violations.push(Violation {
                kind: oracle::ViolationKind::InvalidValue,
                detail: format!(
                    "client {client} read {t:#x} of file {file} at {started:?}, expected \
                     {want:#x}; nothing ever wrote this file"
                ),
            });
        }
    }
    // Engagement checks (honest run only): the rot must have landed on
    // both storage classes, verify-on-read must have caught it, and the
    // scrubber — not just demand traffic — must have repaired ahead of
    // the verify reads.
    if !break_scrub {
        if corrupted_paths < 2 {
            violations.push(Violation {
                kind: oracle::ViolationKind::FinalState,
                detail: format!(
                    "the operator rotted only {corrupted_paths} stored file(s); the scenario \
                     needs both a data/ segment and a chunks/ chunk"
                ),
            });
        }
        if reader_stats.integrity_failures == 0 {
            violations.push(Violation {
                kind: oracle::ViolationKind::FinalState,
                detail: "verify-on-read never caught the planted rot".into(),
            });
        }
        if reader_stats.quarantined_blocks == 0 {
            violations.push(Violation {
                kind: oracle::ViolationKind::FinalState,
                detail: "no rotted extent was ever quarantined".into(),
            });
        }
        if reader_stats.scrub_repairs == 0 {
            violations.push(Violation {
                kind: oracle::ViolationKind::FinalState,
                detail: "the background scrubber never repaired a quarantined extent".into(),
            });
        }
        if reader_stats.integrity_dirty_loss != 0 {
            violations.push(Violation {
                kind: oracle::ViolationKind::FinalState,
                detail: format!(
                    "{} dirty extent(s) reported lost; the scenario only rots clean data",
                    reader_stats.integrity_dirty_loss
                ),
            });
        }
    }

    DiskCorruptionReport {
        seed,
        reader_stats,
        break_scrub,
        corrupted_paths,
        trace_hash: trace_hash(&history),
        history,
        violations,
        protocol_trace: protocol_trace.to_jsonl(),
    }
}
