//! The file-based lock benchmark (§5.1.2, Figure 6).
//!
//! Six distributed clients compete for a lock implemented the classic
//! NFS way: create a private temporary file and try to hard-link it to
//! the shared lock name — `LINK` is atomic at the server, so exactly
//! one racer wins. The winner holds the lock ten seconds, unlinks it,
//! pauses a second and rejoins until it has won ten times; losers
//! re-probe every second.
//!
//! Clients *probe* with `stat` before attempting the link, which is
//! where consistency matters: under relaxed models a releaseed lock
//! stays visible (cached) to other clients for up to the staleness
//! window, so the previous owner — who knows its own unlink — tends to
//! reacquire, hurting fairness and stretching the run.

use gvfs_client::{ClientError, NfsClient};
use gvfs_nfs3::Nfsstat3;
use gvfs_vfs::{Timestamp, Vfs};
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::Duration;

/// Lock benchmark parameters (defaults = the paper's setup).
#[derive(Debug, Clone, Copy)]
pub struct LockConfig {
    /// Successful acquisitions each client must reach.
    pub acquisitions: usize,
    /// Hold time after acquiring.
    pub hold: Duration,
    /// Pause before re-probing after a failed attempt.
    pub retry: Duration,
    /// Pause after releasing before rejoining the competition.
    pub post_release: Duration,
}

impl Default for LockConfig {
    fn default() -> Self {
        LockConfig {
            acquisitions: 10,
            hold: Duration::from_secs(10),
            retry: Duration::from_secs(1),
            post_release: Duration::from_secs(1),
        }
    }
}

/// The shared acquisition log: `(virtual time, client id)` per grant.
pub type AcquisitionLog = Arc<Mutex<Vec<(f64, usize)>>>;

/// Creates an empty acquisition log.
pub fn new_log() -> AcquisitionLog {
    Arc::new(Mutex::new(Vec::new()))
}

/// Prepares the lock directory on the server.
///
/// # Panics
///
/// Panics if the directory already exists.
pub fn populate(vfs: &Vfs) {
    vfs.mkdir(vfs.root(), "lock", 0o777, Timestamp::from_nanos(0)).expect("mkdir lock");
}

/// Runs one competing client (id `me`) to completion. Must run inside
/// a simulation actor.
///
/// # Panics
///
/// Panics on unexpected filesystem errors.
pub fn run_client(client: &NfsClient, me: usize, config: &LockConfig, log: &AcquisitionLog) {
    let dir = client.resolve("/lock").expect("lock dir");
    let tmp_name = format!("tmp-{me}");
    let tmp = client.create(dir, &tmp_name, true).expect("create temp");

    let mut wins = 0;
    while wins < config.acquisitions {
        // The script first verifies its own temporary still exists (a
        // defensive re-stat every lock script performs)...
        client.getattr(tmp).expect("tmp vanished");
        // ...then probes: is the lock visibly free? (This is where
        // stale caches mislead clients under relaxed consistency.)
        match client.stat("/lock/lockfile") {
            Ok(_) => {
                gvfs_netsim::sleep(config.retry);
                continue;
            }
            Err(ClientError::Nfs(Nfsstat3::Noent)) => {}
            Err(e) => panic!("probe failed: {e}"),
        }
        // Attempt: atomic hard link.
        match client.link(tmp, dir, "lockfile") {
            Ok(()) => {
                log.lock().push((gvfs_netsim::now().as_secs_f64(), me));
                gvfs_netsim::sleep(config.hold);
                client.remove(dir, "lockfile").expect("unlink lock");
                wins += 1;
                gvfs_netsim::sleep(config.post_release);
            }
            Err(ClientError::Nfs(Nfsstat3::Exist)) => {
                gvfs_netsim::sleep(config.retry);
            }
            Err(e) => panic!("link failed: {e}"),
        }
    }
}

/// Fairness summary of an acquisition log.
#[derive(Debug, Clone, PartialEq)]
pub struct Fairness {
    /// Longest run of consecutive grants to the same client.
    pub max_consecutive: usize,
    /// Grants per client id.
    pub per_client: Vec<usize>,
    /// Total grants.
    pub total: usize,
}

/// Analyzes the grant sequence.
pub fn fairness(log: &AcquisitionLog, clients: usize) -> Fairness {
    let log = log.lock();
    let mut per_client = vec![0usize; clients];
    let mut max_consecutive = 0;
    let mut run = 0;
    let mut last: Option<usize> = None;
    for &(_, who) in log.iter() {
        per_client[who] += 1;
        if Some(who) == last {
            run += 1;
        } else {
            run = 1;
            last = Some(who);
        }
        max_consecutive = max_consecutive.max(run);
    }
    Fairness { max_consecutive, per_client, total: log.len() }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fairness_counts_consecutive_runs() {
        let log = new_log();
        for who in [0, 0, 0, 1, 2, 1, 1] {
            log.lock().push((0.0, who));
        }
        let f = fairness(&log, 3);
        assert_eq!(f.max_consecutive, 3);
        assert_eq!(f.per_client, vec![3, 3, 1]);
        assert_eq!(f.total, 7);
    }

    #[test]
    fn fairness_of_empty_log() {
        let f = fairness(&new_log(), 2);
        assert_eq!(f.max_consecutive, 0);
        assert_eq!(f.total, 0);
    }
}
