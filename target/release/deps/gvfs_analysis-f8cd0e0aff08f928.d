/root/repo/target/release/deps/gvfs_analysis-f8cd0e0aff08f928.d: crates/analysis/src/lib.rs crates/analysis/src/lexer.rs crates/analysis/src/lint.rs crates/analysis/src/model.rs

/root/repo/target/release/deps/libgvfs_analysis-f8cd0e0aff08f928.rlib: crates/analysis/src/lib.rs crates/analysis/src/lexer.rs crates/analysis/src/lint.rs crates/analysis/src/model.rs

/root/repo/target/release/deps/libgvfs_analysis-f8cd0e0aff08f928.rmeta: crates/analysis/src/lib.rs crates/analysis/src/lexer.rs crates/analysis/src/lint.rs crates/analysis/src/model.rs

crates/analysis/src/lib.rs:
crates/analysis/src/lexer.rs:
crates/analysis/src/lint.rs:
crates/analysis/src/model.rs:
