//! Server-scale regressions: per-client state on the proxy server must
//! stay bounded after a churn of mostly-idle clients, and a large
//! invalidation backlog must drain through `poll_again` paging without
//! degrading to a force-invalidation.
//!
//! These are the cargo-test twins of the `bench_scale` harness asserts:
//! the bench exercises them at 1k–10k clients, these pin the behavior
//! at CI-sized populations.

use gvfs_core::invalidation::ConcurrentInvalidationTracker;
use gvfs_core::protocol::{
    proc_ext, CallbackRes, GetinvArgs, GetinvRes, RecoverRes, GVFS_CALLBACK_PROGRAM,
    GVFS_PROXY_PROGRAM, GVFS_VERSION, MAX_INVALIDATIONS_PER_REPLY,
};
use gvfs_core::proxy::server::ProxyServer;
use gvfs_core::{ConsistencyModel, DelegationConfig};
use gvfs_netsim::link::{Link, LinkConfig};
use gvfs_netsim::transport::{ServerNode, SimRpcClient};
use gvfs_netsim::Sim;
use gvfs_nfs3::{proc3, Fh3};
use gvfs_rpc::dispatch::{Dispatcher, RpcService};
use gvfs_rpc::message::{GvfsCred, OpaqueAuth};
use gvfs_rpc::stats::RpcStats;
use gvfs_rpc::RpcError;
use gvfs_vfs::{Timestamp, Vfs};
use std::sync::Arc;
use std::time::Duration;

fn cred(client: u32) -> OpaqueAuth {
    let cred = GvfsCred { session_key: 0xb0a7, client_id: client, callback_port: 7000 + client };
    OpaqueAuth::gvfs(&cred).expect("encode credential")
}

/// Answers every recall instantly with nothing pending.
struct NullCallback;

impl RpcService for NullCallback {
    fn program(&self) -> u32 {
        GVFS_CALLBACK_PROGRAM
    }
    fn version(&self) -> u32 {
        GVFS_VERSION
    }
    fn call(&self, procedure: u32, _args: &[u8]) -> Result<Vec<u8>, RpcError> {
        match procedure {
            proc_ext::CALLBACK => Ok(gvfs_xdr::to_bytes(&CallbackRes::default())?),
            proc_ext::RECOVER => Ok(gvfs_xdr::to_bytes(&RecoverRes::default())?),
            p => {
                Err(RpcError::ProcedureUnavailable { program: GVFS_CALLBACK_PROGRAM, procedure: p })
            }
        }
    }
}

fn getinv(t: &SimRpcClient, id: u32, last: Option<u64>) -> GetinvRes {
    let args = gvfs_xdr::to_bytes(&GetinvArgs { last_timestamp: last }).expect("encode");
    let bytes = t
        .call_with_cred(GVFS_PROXY_PROGRAM, GVFS_VERSION, proc_ext::GETINV, args, cred(id))
        .expect("getinv");
    gvfs_xdr::from_bytes(&bytes).expect("decode")
}

/// A churn of `CLIENTS` delegation holders and pollers leaves the
/// server tracking every one of them; after the active set shrinks to
/// `ACTIVE`, epoch sweeps must evict the idle majority's invalidation
/// buffers and health breakers, bounding per-client state by the live
/// population rather than the historical one.
#[test]
fn idle_client_state_is_bounded_after_churn() {
    const CLIENTS: usize = 64;
    const ACTIVE: usize = 4;
    let sim = Sim::new();
    sim.spawn("test", || {
        let vfs = Arc::new(Vfs::new());
        let clock: gvfs_server::Clock =
            Arc::new(|| Timestamp::from_nanos(gvfs_netsim::now().as_nanos()));
        let nfs = gvfs_server::Nfs3Server::new(Arc::clone(&vfs), clock);
        let mut dispatcher = Dispatcher::new();
        dispatcher.register(nfs);
        let nfs_node = ServerNode::new("nfs-server", dispatcher, Duration::from_micros(100));
        let loopback = Link::new(LinkConfig::loopback());
        let server = ProxyServer::new(
            ConsistencyModel::DelegationCallback(DelegationConfig::default()),
            SimRpcClient::new(loopback.forward(), nfs_node, RpcStats::new()),
        );
        let mut ps_dispatcher = Dispatcher::new();
        ps_dispatcher.register_arc(Arc::clone(&server) as Arc<dyn RpcService>);
        let node = ServerNode::new("proxy-server", ps_dispatcher, Duration::from_micros(100));
        let link = Link::new(LinkConfig::loopback());
        let wan_stats = RpcStats::new();

        let mut cb_dispatcher = Dispatcher::new();
        cb_dispatcher.register(NullCallback);
        let cb_node = ServerNode::new("callback", cb_dispatcher, Duration::from_micros(100));
        for i in 0..CLIENTS {
            server.register_callback(
                i as u32 + 1,
                SimRpcClient::new(link.reverse(), Arc::clone(&cb_node), wan_stats.clone()),
            );
        }
        let t = SimRpcClient::new(link.forward(), node, wan_stats);

        // Seed one shared file; every client reads it (a delegation
        // each) and bootstraps a poll buffer.
        let fid = vfs.create(vfs.root(), "shared", 0o644, Timestamp::from_nanos(0)).unwrap();
        vfs.write(fid, 0, &[7u8; 512], Timestamp::from_nanos(0)).unwrap();
        let fh = Fh3::from_fileid(fid.as_u64());
        let read_args =
            gvfs_xdr::to_bytes(&gvfs_nfs3::ReadArgs { file: fh, offset: 0, count: 512 }).unwrap();
        let mut ts: Vec<u64> = (0..CLIENTS)
            .map(|i| {
                let id = i as u32 + 1;
                t.call_with_cred(
                    GVFS_PROXY_PROGRAM,
                    GVFS_VERSION,
                    proc3::READ,
                    read_args.clone(),
                    cred(id),
                )
                .expect("read");
                getinv(&t, id, None).timestamp
            })
            .collect();

        // A writer invalidates it: the server recalls all CLIENTS
        // holders, creating a health breaker per client.
        let write_args = gvfs_xdr::to_bytes(&gvfs_nfs3::WriteArgs {
            file: fh,
            offset: 0,
            count: 8,
            stable: gvfs_nfs3::StableHow::FileSync,
            data: vec![9u8; 8],
        })
        .unwrap();
        t.call_with_cred(
            GVFS_PROXY_PROGRAM,
            GVFS_VERSION,
            proc3::WRITE,
            write_args,
            cred(CLIENTS as u32 + 1),
        )
        .expect("write");
        let before = server.scale_stats();
        assert!(before.recalls_sent >= CLIENTS as u64, "every holder must be recalled");
        assert_eq!(before.inval_clients, CLIENTS, "every poller is tracked before eviction");
        assert!(before.health_entries >= CLIENTS, "every recall target has a breaker");

        // Only ACTIVE clients keep polling while epochs pass.
        server.set_idle_epochs(2);
        for _ in 0..4 {
            for (i, slot) in ts.iter_mut().enumerate().take(ACTIVE) {
                *slot = getinv(&t, i as u32 + 1, Some(*slot)).timestamp;
            }
            server.maintain();
        }
        let after = server.scale_stats();
        assert!(
            after.inval_clients <= ACTIVE,
            "idle buffers must be evicted: {} tracked after churn of {CLIENTS}",
            after.inval_clients
        );
        assert!(
            after.inval.evicted_buffers >= (CLIENTS - ACTIVE) as u64,
            "expected >= {} buffer evictions, saw {}",
            CLIENTS - ACTIVE,
            after.inval.evicted_buffers
        );
        assert!(
            after.health_entries <= ACTIVE,
            "idle breakers must be evicted: {} remain",
            after.health_entries
        );
        assert!(
            after.health_evicted >= (CLIENTS - ACTIVE) as u64,
            "expected >= {} breaker evictions, saw {}",
            CLIENTS - ACTIVE,
            after.health_evicted
        );

        // Eviction is invisible beyond one re-bootstrap: an evicted
        // client's next poll force-invalidates and re-registers it.
        let back = getinv(&t, CLIENTS as u32, Some(ts[CLIENTS - 1]));
        assert!(back.force_invalidate, "an evicted poller re-enters via first contact");
    });
    sim.run();
}

/// A backlog several times the per-reply cap must drain through
/// `poll_again` pages — each page full, none forced — and leave the
/// buffer empty: the piggyback path (`try_drain`) then has nothing to
/// attach.
#[test]
fn poll_again_drains_multi_page_backlog() {
    let tracker = ConcurrentInvalidationTracker::new(10_000);
    let boot = tracker.getinv(1, None);
    let total = 2 * MAX_INVALIDATIONS_PER_REPLY + 50;
    for i in 0..total {
        tracker.record_modification(Fh3::from_fileid(5000 + i as u64), 2);
    }

    let mut last = boot.timestamp;
    let mut pages = Vec::new();
    let mut drained = 0usize;
    loop {
        let res = tracker.getinv(1, Some(last));
        assert!(!res.force_invalidate, "a paged drain must never degrade to a force");
        pages.push(res.handles.len());
        drained += res.handles.len();
        last = res.timestamp;
        if !res.poll_again {
            break;
        }
    }
    assert_eq!(
        pages,
        vec![MAX_INVALIDATIONS_PER_REPLY, MAX_INVALIDATIONS_PER_REPLY, 50],
        "three pages: two full, one remainder"
    );
    assert_eq!(drained, total, "every invalidation is delivered exactly once");
    assert_eq!(
        tracker.try_drain(1),
        None,
        "a fully drained buffer must not piggyback spurious replies"
    );
}
