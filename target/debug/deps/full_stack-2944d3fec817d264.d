/root/repo/target/debug/deps/full_stack-2944d3fec817d264.d: /root/repo/clippy.toml crates/integration/../../tests/full_stack.rs Cargo.toml

/root/repo/target/debug/deps/libfull_stack-2944d3fec817d264.rmeta: /root/repo/clippy.toml crates/integration/../../tests/full_stack.rs Cargo.toml

/root/repo/clippy.toml:
crates/integration/../../tests/full_stack.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
