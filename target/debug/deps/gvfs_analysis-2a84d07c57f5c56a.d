/root/repo/target/debug/deps/gvfs_analysis-2a84d07c57f5c56a.d: crates/analysis/src/lib.rs crates/analysis/src/lexer.rs crates/analysis/src/lint.rs crates/analysis/src/model.rs

/root/repo/target/debug/deps/gvfs_analysis-2a84d07c57f5c56a: crates/analysis/src/lib.rs crates/analysis/src/lexer.rs crates/analysis/src/lint.rs crates/analysis/src/model.rs

crates/analysis/src/lib.rs:
crates/analysis/src/lexer.rs:
crates/analysis/src/lint.rs:
crates/analysis/src/model.rs:
