/root/repo/target/debug/deps/gvfs_analysis-6eef410255135138.d: crates/analysis/src/lib.rs crates/analysis/src/lexer.rs crates/analysis/src/lint.rs crates/analysis/src/model.rs

/root/repo/target/debug/deps/libgvfs_analysis-6eef410255135138.rlib: crates/analysis/src/lib.rs crates/analysis/src/lexer.rs crates/analysis/src/lint.rs crates/analysis/src/model.rs

/root/repo/target/debug/deps/libgvfs_analysis-6eef410255135138.rmeta: crates/analysis/src/lib.rs crates/analysis/src/lexer.rs crates/analysis/src/lint.rs crates/analysis/src/model.rs

crates/analysis/src/lib.rs:
crates/analysis/src/lexer.rs:
crates/analysis/src/lint.rs:
crates/analysis/src/model.rs:
