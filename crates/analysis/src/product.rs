//! Composed product-model checking: delegation × invalidation ×
//! breaker × degradation ladder × lease.
//!
//! The per-machine models in [`crate::model`] prove each protocol piece
//! refines its own spec, but the session-resilience bugs worth losing
//! sleep over live in the *composition*: a lease revocation racing a
//! recall, a degraded client serving reads the invalidation stream
//! already disowned, a repromotion that skips the GETINV drain. This
//! module explores the product machine — the real
//! [`DelegationTable`] and [`InvalidationTracker`] composed with
//! explicit spec machines for the WAN breaker, the client degradation
//! ladder (healthy → degraded → repromoting) and per-delegation lease
//! bookkeeping — under an explicit virtual clock, and checks
//! cross-machine invariants in every reachable state:
//!
//! * **I1 bounded-staleness** — a degraded client never serves a read
//!   older than `max_staleness` past its last freshness proof (grant or
//!   GETINV drain); equivalently, it never serves a byte the
//!   invalidation machinery claims invalidated outside the bound.
//! * **I2 lease-revocation-legitimacy** — an in-table revocation
//!   implies the holder's lease really elapsed since its last
//!   server-visible access, or the holder was partitioned with its
//!   breaker open (so its renewals could not reach the server).
//! * **I3 repromote-drains-getinv** — a ladder transition out of
//!   degraded always drains the invalidation stream first; at the
//!   moment of repromotion the spec owes the client nothing.
//! * **I4 failed-recall-eviction** — a recall round that ends with the
//!   target partitioned still evicts the target's table entry; a stale
//!   sharer left behind would read as an open file and starve every
//!   later writer of a delegation until the open-speculation expiry.
//! * **I5 getinv-soundness-under-composition** — GETINV timestamps stay
//!   monotone per client and a non-forced drain delivers exactly the
//!   owed set, even with delegation traffic, partitions and lease
//!   revocations interleaved.
//! * **I6 write-exclusion-under-composition** — write delegations stay
//!   exclusive per file across partitions, heals and revocations.
//! * **I7 no-condemned-peer-serve** — a peer never serves a block the
//!   origin has condemned: every write eagerly de-advertises all peer
//!   holders of the file, so an advertised holder always carries the
//!   origin's current version when it answers a `PEERREAD`.
//! * **I8 no-corrupt-serve** — no block whose checksum fails
//!   verification is ever returned to a reader, local or peer: a
//!   rotten stored copy is quarantined into a cache miss (and repaired
//!   by refetch), never served.
//!
//! Each invariant has a fault knob ([`Knobs`]) that re-introduces the
//! corresponding bug in the spec side; the unit tests flip the knobs
//! one at a time and assert the checker convicts — a checker that
//! cannot see a planted bug proves nothing.

use crate::model::ModelReport;
use gvfs_core::delegation::DelegationTable;
use gvfs_core::invalidation::InvalidationTracker;
use gvfs_core::DelegationConfig;
use gvfs_netsim::SimTime;
use gvfs_nfs3::Fh3;
use std::collections::{BTreeMap, BTreeSet, HashSet, VecDeque};
use std::fmt::Write as _;
use std::time::Duration;

/// Renewal lease used by the product configurations: short enough that
/// the clock actions can lapse it within the depth bound.
const LEASE_S: u64 = 3;
/// Bounded-staleness window for degraded reads.
const MAX_STALENESS_S: u64 = 4;
/// WAN failures before the spec breaker trips open.
const BREAKER_THRESHOLD: u32 = 2;
/// Invalidation buffer capacity (large enough that the small
/// configurations never wrap; wrap is the per-machine model's job).
const INVAL_CAPACITY: usize = 8;
/// Virtual-clock ceiling: ticks are disabled past this point. Raw
/// timestamps are sound but each tick mints a fresh state, so an
/// unbounded clock starves the protocol actions of frontier budget;
/// 10 s comfortably straddles both the lease (3 s) and the staleness
/// bound (4 s).
const MAX_CLOCK_S: u64 = 10;
/// Bound on states explored per configuration. Sized for the machine
/// as composed — the peer-sourcing state (versions, adverts, clean
/// copies) multiplies the reachable set, and the cap must leave the
/// frontier enough budget to reach every knob's conviction depth.
const STATE_CAP: usize = 24_000;
/// Bound on exploration depth (actions from the initial state).
const DEPTH_CAP: usize = 6;

/// Fault-injection knobs: each re-introduces one composition bug so the
/// unit tests can prove the corresponding invariant has teeth.
#[derive(Debug, Clone, Copy, Default)]
pub struct Knobs {
    /// Degraded reads ignore the staleness bound (breaks I1).
    pub serve_ignores_staleness: bool,
    /// The spec's lease bookkeeping counts accesses made while
    /// partitioned, as if client-side renewals reached the server
    /// (breaks I2: real revocations then look premature).
    pub lease_counts_offline_access: bool,
    /// Repromotion is enabled without the GETINV drain (breaks I3).
    pub repromote_skips_drain: bool,
    /// A recall round skips `recall_done` for partitioned targets, so
    /// their delegations survive the round (breaks I4).
    pub recall_keeps_partitioned_holder: bool,
    /// Writes skip the eager de-advertisement, so stale holders stay
    /// advertised and serve condemned blocks (breaks I7) — the model
    /// twin of the chaos harness's `--break-peerread` knob.
    pub peer_ignores_condemnation: bool,
    /// Verify-on-read is disabled: a read hitting a rotten stored copy
    /// serves the bytes instead of quarantining them (breaks I8) — the
    /// model twin of the chaos harness's `--break-scrub` knob.
    pub serve_corrupt_blocks: bool,
}

/// One actionable step of the composed machine.
#[derive(Debug, Clone, Copy)]
enum ProductAction {
    /// The virtual clock advances.
    Tick { secs: u64 },
    /// A client read/write reaches (or, partitioned, fails to reach)
    /// the proxy server.
    Access { client: u32, fh: Fh3, write: bool },
    /// The WAN link to `client` partitions.
    Partition { client: u32 },
    /// The WAN link to `client` heals (breaker probe succeeds).
    Heal { client: u32 },
    /// `client` polls the invalidation stream.
    Getinv { client: u32 },
    /// A degraded, healed client re-promotes to healthy.
    Repromote { client: u32 },
    /// A degraded client serves a read from its frozen cache.
    DegradedRead { client: u32, fh: Fh3 },
    /// An advertised holder answers a `PEERREAD` for `fh`.
    PeerServe { client: u32, fh: Fh3 },
    /// Disk corruption lands on `client`'s stored clean copy of `fh`.
    Rot { client: u32, fh: Fh3 },
    /// A local reader hits `client`'s cached clean copy of `fh`.
    CacheRead { client: u32, fh: Fh3 },
}

impl std::fmt::Display for ProductAction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            ProductAction::Tick { secs } => write!(f, "tick(+{secs}s)"),
            ProductAction::Access { client, fh, write } => {
                write!(f, "access(client={client}, fh={fh:?}, write={write})")
            }
            ProductAction::Partition { client } => write!(f, "partition(client={client})"),
            ProductAction::Heal { client } => write!(f, "heal(client={client})"),
            ProductAction::Getinv { client } => write!(f, "getinv(client={client})"),
            ProductAction::Repromote { client } => write!(f, "repromote(client={client})"),
            ProductAction::DegradedRead { client, fh } => {
                write!(f, "degraded_read(client={client}, fh={fh:?})")
            }
            ProductAction::PeerServe { client, fh } => {
                write!(f, "peer_serve(client={client}, fh={fh:?})")
            }
            ProductAction::Rot { client, fh } => {
                write!(f, "rot(client={client}, fh={fh:?})")
            }
            ProductAction::CacheRead { client, fh } => {
                write!(f, "cache_read(client={client}, fh={fh:?})")
            }
        }
    }
}

/// Spec breaker: two observable positions are enough for the product
/// (the full lazy-promotion machine is checked by
/// [`crate::model::check_breaker`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SpecBreaker {
    Closed { fails: u32 },
    Open,
}

/// Client degradation ladder, the spec side of the proxy client's
/// `needs_resync` + breaker machinery: `Degraded { drained }` is the
/// repromoting sub-state once the GETINV drain has landed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ladder {
    Healthy,
    Degraded { drained: bool },
}

#[derive(Debug, Clone)]
struct ClientSpec {
    partitioned: bool,
    breaker: SpecBreaker,
    ladder: Ladder,
    /// Virtual second of the last freshness proof (grant or drain).
    last_sync: Option<u64>,
    /// Timestamp the client would send on its next GETINV.
    ts: Option<u64>,
    /// Whether the tracker currently has a buffer for this client.
    registered: bool,
    /// Files modified by others since this client's last drain.
    owed: BTreeSet<Fh3>,
    /// fileid → origin version this client's clean cached copy carries
    /// (the peer-sourcing machine: only these copies can answer a
    /// `PEERREAD`; an applied invalidation drops the entry).
    clean: BTreeMap<u64, u64>,
    /// Clean copies whose stored bytes have rotted on disk: the next
    /// verification must quarantine them, never serve them.
    rotten: BTreeSet<u64>,
}

impl ClientSpec {
    fn new() -> Self {
        ClientSpec {
            partitioned: false,
            breaker: SpecBreaker::Closed { fails: 0 },
            ladder: Ladder::Healthy,
            last_sync: None,
            ts: None,
            registered: false,
            owed: BTreeSet::new(),
            clean: BTreeMap::new(),
            rotten: BTreeSet::new(),
        }
    }
}

#[derive(Clone)]
struct ProductState {
    now_s: u64,
    table: DelegationTable,
    tracker: InvalidationTracker,
    clients: BTreeMap<u32, ClientSpec>,
    /// (client, fh) → virtual second of the last access the *server*
    /// saw; the spec mirror of the table's lease bookkeeping.
    last_access: BTreeMap<(u32, u64), u64>,
    /// fileid → origin content version, bumped by every write.
    version: BTreeMap<u64, u64>,
    /// fileid → holders the origin currently advertises for peer
    /// sourcing; a write eagerly empties the file's entry.
    advertised: BTreeMap<u64, BTreeSet<u32>>,
    knobs: Knobs,
}

fn product_config() -> DelegationConfig {
    DelegationConfig { lease: Duration::from_secs(LEASE_S), ..DelegationConfig::default() }
}

impl ProductState {
    fn new(n_clients: u32, knobs: Knobs) -> Self {
        let mut table = DelegationTable::new(product_config());
        table.set_revocation_log(true);
        ProductState {
            now_s: 0,
            table,
            tracker: InvalidationTracker::new(INVAL_CAPACITY),
            clients: (1..=n_clients).map(|c| (c, ClientSpec::new())).collect(),
            last_access: BTreeMap::new(),
            version: BTreeMap::new(),
            advertised: BTreeMap::new(),
            knobs,
        }
    }

    fn now(&self) -> SimTime {
        SimTime::ZERO + Duration::from_secs(self.now_s)
    }

    fn fingerprint(&self) -> String {
        let mut s = String::new();
        // Raw timestamps on purpose: the lease and staleness invariants
        // are time-dependent, so time-shifted states are NOT equivalent
        // and folding them would be unsound.
        let _ = write!(s, "t={};", self.now_s);
        for f in self.table.snapshot() {
            let _ = write!(s, "{f:?};");
        }
        let _ = write!(s, "inv={:?}@{};", self.tracker.snapshot(), self.tracker.now());
        for (c, cs) in &self.clients {
            let _ = write!(
                s,
                "c{c}={:?}/{:?}/{:?}/{:?}/{:?}/{}/{:?}/{:?}/{:?};",
                cs.partitioned,
                cs.breaker,
                cs.ladder,
                cs.last_sync,
                cs.ts,
                cs.registered,
                cs.owed,
                cs.clean,
                cs.rotten
            );
        }
        let _ = write!(s, "la={:?};", self.last_access);
        let _ = write!(s, "v={:?};adv={:?}", self.version, self.advertised);
        s
    }

    /// I2: every revocation the table just performed must be
    /// legitimate: the holder's lease elapsed since its last
    /// server-visible access, or the holder sat behind an open breaker.
    fn check_revocations(&mut self) -> Option<String> {
        for (holder, fh) in self.table.take_revocations() {
            let last = self.last_access.get(&(holder, fh.fileid())).copied();
            let lapsed = last.is_none_or(|t| self.now_s.saturating_sub(t) >= LEASE_S);
            let breaker_open = self
                .clients
                .get(&holder)
                .is_some_and(|cs| cs.partitioned && cs.breaker == SpecBreaker::Open);
            if !lapsed && !breaker_open {
                return Some(format!(
                    "I2: in-table revocation of client {holder} on {fh:?} at t={} but its last \
                     access was t={last:?} (< lease {LEASE_S}s) and its breaker is not open",
                    self.now_s
                ));
            }
        }
        None
    }

    /// I6: write delegations stay exclusive per file.
    fn check_write_exclusion(&self) -> Option<String> {
        use gvfs_core::delegation::DelegationKind;
        for f in self.table.snapshot() {
            let writers =
                f.sharers.iter().filter(|&&(_, d)| d == Some(DelegationKind::Write)).count();
            let delegated = f.sharers.iter().filter(|&&(_, d)| d.is_some()).count();
            if writers > 0 && delegated > 1 {
                return Some(format!(
                    "I6: write delegation coexists with another delegation on {:?}: {:?}",
                    f.fh, f.sharers
                ));
            }
        }
        None
    }

    /// Applies `action`, returning the first invariant violation.
    fn apply(&mut self, action: &ProductAction) -> Option<String> {
        match *action {
            ProductAction::Tick { secs } => {
                self.now_s += secs;
            }
            ProductAction::Access { client, fh, write } => {
                let cs = self.clients.get_mut(&client).expect("model client");
                if cs.partitioned {
                    // WAN failure: the breaker counts it; tripping open
                    // degrades the ladder (the proxy client's
                    // DEGRADE_AFTER machinery, collapsed to the trip).
                    cs.breaker = match cs.breaker {
                        SpecBreaker::Closed { fails } if fails + 1 >= BREAKER_THRESHOLD => {
                            SpecBreaker::Open
                        }
                        SpecBreaker::Closed { fails } => SpecBreaker::Closed { fails: fails + 1 },
                        SpecBreaker::Open => SpecBreaker::Open,
                    };
                    if cs.breaker == SpecBreaker::Open && cs.ladder == Ladder::Healthy {
                        cs.ladder = Ladder::Degraded { drained: false };
                    }
                    if self.knobs.lease_counts_offline_access {
                        self.last_access.insert((client, fh.fileid()), self.now_s);
                    }
                    return None;
                }
                let now = self.now();
                let (grant, recalls) = self.table.access(fh, client, write, Some(0), now);
                self.last_access.insert((client, fh.fileid()), self.now_s);
                if let Some(v) = self.check_revocations() {
                    return Some(v);
                }
                if grant != gvfs_core::protocol::DelegationGrant::None {
                    // Any grant is a freshness proof for the accessor.
                    self.clients.get_mut(&client).expect("model client").last_sync =
                        Some(self.now_s);
                }
                if !recalls.is_empty() {
                    self.table.begin_recall(fh);
                    for r in &recalls {
                        let target_partitioned =
                            self.clients.get(&r.client).is_some_and(|t| t.partitioned);
                        if target_partitioned && self.knobs.recall_keeps_partitioned_holder {
                            continue;
                        }
                        // Answered recalls flush clean; partitioned
                        // targets time out and are evicted unanswered.
                        self.table.recall_done(r.fh, r.client, Vec::new());
                    }
                    self.table.end_recall(fh);
                    // The table strips the delegation at recall-issue
                    // time; what an unanswered recall must still clean
                    // up is the *sharer entry* — left behind, it reads
                    // as an open file and starves every later writer of
                    // a delegation until the 10-minute expiration.
                    for r in &recalls {
                        let target_partitioned =
                            self.clients.get(&r.client).is_some_and(|t| t.partitioned);
                        let still_sharer = self
                            .table
                            .snapshot()
                            .iter()
                            .find(|f| f.fh == r.fh)
                            .is_some_and(|f| f.sharers.iter().any(|&(c, _)| c == r.client));
                        if target_partitioned && still_sharer {
                            return Some(format!(
                                "I4: partitioned client {} still registered on {:?} after its \
                                 recall round completed (writers stay undelegable)",
                                r.client, r.fh
                            ));
                        }
                    }
                }
                if write {
                    self.tracker.record_modification(fh, client);
                    for (&c, cs) in &mut self.clients {
                        if c != client && cs.registered {
                            cs.owed.insert(fh);
                        }
                    }
                    // The write condemns every cached copy: the origin
                    // bumps the content version and — under the same
                    // stripe lock in the implementation — eagerly
                    // de-advertises all peer holders. The writer's own
                    // copy turns dirty, which a peer answers as a miss.
                    *self.version.entry(fh.fileid()).or_insert(0) += 1;
                    if !self.knobs.peer_ignores_condemnation {
                        self.advertised.remove(&fh.fileid());
                    }
                    let cs = self.clients.get_mut(&client).expect("model client");
                    cs.clean.remove(&fh.fileid());
                    cs.rotten.remove(&fh.fileid());
                } else {
                    // A served read leaves the client holding the
                    // origin's current version; the origin advertises it
                    // as a live peer source. Fresh bytes overwrite
                    // whatever rot the old stored copy carried.
                    let v = self.version.get(&fh.fileid()).copied().unwrap_or(0);
                    let cs = self.clients.get_mut(&client).expect("model client");
                    cs.clean.insert(fh.fileid(), v);
                    cs.rotten.remove(&fh.fileid());
                    self.advertised.entry(fh.fileid()).or_default().insert(client);
                }
            }
            ProductAction::Partition { client } => {
                self.clients.get_mut(&client).expect("model client").partitioned = true;
            }
            ProductAction::Heal { client } => {
                let cs = self.clients.get_mut(&client).expect("model client");
                cs.partitioned = false;
                // The healed probe succeeds: the breaker closes. The
                // ladder stays degraded until an explicit repromote.
                cs.breaker = SpecBreaker::Closed { fails: 0 };
            }
            ProductAction::Getinv { client } => {
                let cs = self.clients.get_mut(&client).expect("model client");
                let res = self.tracker.getinv(client, cs.ts);
                if let (Some(prev), false) = (cs.ts, res.force_invalidate) {
                    if res.timestamp < prev {
                        return Some(format!(
                            "I5: GETINV timestamp regressed for client {client}: {} < {prev}",
                            res.timestamp
                        ));
                    }
                }
                let expect_force = !cs.registered || cs.ts.is_none();
                if res.force_invalidate != expect_force {
                    return Some(format!(
                        "I5: client {client}: force_invalidate={} but the composed spec expects \
                         {expect_force} (registered={}, ts={:?})",
                        res.force_invalidate, cs.registered, cs.ts
                    ));
                }
                if !res.force_invalidate {
                    let got: BTreeSet<Fh3> = res.handles.iter().copied().collect();
                    if got != cs.owed {
                        return Some(format!(
                            "I5: client {client}: GETINV delivered {got:?} but the spec owes {:?}",
                            cs.owed
                        ));
                    }
                }
                cs.ts = Some(res.timestamp);
                cs.registered = true;
                // Applying the drain drops the invalidated copies; they
                // can no longer back a PEERREAD.
                if res.force_invalidate {
                    cs.clean.clear();
                    cs.rotten.clear();
                } else {
                    for fh in &res.handles {
                        cs.clean.remove(&fh.fileid());
                        cs.rotten.remove(&fh.fileid());
                    }
                }
                cs.owed.clear();
                cs.last_sync = Some(self.now_s);
                if let Ladder::Degraded { drained: false } = cs.ladder {
                    cs.ladder = Ladder::Degraded { drained: true };
                }
            }
            ProductAction::Repromote { client } => {
                let cs = self.clients.get_mut(&client).expect("model client");
                match cs.ladder {
                    Ladder::Degraded { drained } => {
                        if !drained {
                            return Some(format!(
                                "I3: client {client} repromoted without draining GETINV"
                            ));
                        }
                        if !cs.owed.is_empty() {
                            return Some(format!(
                                "I3: client {client} repromoted while still owed {:?}",
                                cs.owed
                            ));
                        }
                        cs.ladder = Ladder::Healthy;
                    }
                    Ladder::Healthy => {
                        return Some(format!("I3: client {client} repromoted while healthy"));
                    }
                }
            }
            ProductAction::DegradedRead { client, fh } => {
                let cs = self.clients.get_mut(&client).expect("model client");
                if !matches!(cs.ladder, Ladder::Degraded { .. }) {
                    return Some(format!(
                        "I1: client {client} served a degraded read of {fh:?} while healthy"
                    ));
                }
                let age = cs.last_sync.map_or(u64::MAX, |t| self.now_s.saturating_sub(t));
                // The implementation refuses the serve outside the
                // bound; the knob re-introduces serving regardless, and
                // only then can the invariant fire.
                if age > MAX_STALENESS_S && self.knobs.serve_ignores_staleness {
                    return Some(format!(
                        "I1: degraded client {client} served {fh:?} {age}s after its last \
                         freshness proof (bound {MAX_STALENESS_S}s)"
                    ));
                }
            }
            ProductAction::PeerServe { client, fh } => {
                // A holder without a clean copy (its own drain already
                // dropped it) answers an honest miss — safe. Serving
                // *content* of a superseded version is the sin.
                let current = self.version.get(&fh.fileid()).copied().unwrap_or(0);
                let cs = self.clients.get_mut(&client).expect("model client");
                if let Some(&v) = cs.clean.get(&fh.fileid()) {
                    // Verification runs before the serve: a rotten copy
                    // never reaches the wire. Quarantined, the holder
                    // answers an honest miss and the requester falls
                    // back to the origin.
                    if cs.rotten.contains(&fh.fileid()) {
                        if self.knobs.serve_corrupt_blocks {
                            return Some(format!(
                                "I8: advertised client {client} answered a PEERREAD for {fh:?} \
                                 with a stored copy whose checksum fails verification"
                            ));
                        }
                        cs.rotten.remove(&fh.fileid());
                        cs.clean.remove(&fh.fileid());
                    } else if v != current {
                        return Some(format!(
                            "I7: advertised client {client} served {fh:?} holding version {v} \
                             while the origin is at {current} — condemned block served by a peer"
                        ));
                    }
                }
            }
            ProductAction::Rot { client, fh } => {
                self.clients.get_mut(&client).expect("model client").rotten.insert(fh.fileid());
            }
            ProductAction::CacheRead { client, fh } => {
                let current = self.version.get(&fh.fileid()).copied().unwrap_or(0);
                let cs = self.clients.get_mut(&client).expect("model client");
                if cs.rotten.contains(&fh.fileid()) {
                    if self.knobs.serve_corrupt_blocks {
                        return Some(format!(
                            "I8: client {client} served a local read of {fh:?} from a stored \
                             copy whose checksum fails verification"
                        ));
                    }
                    // Verify-on-read quarantines the copy into a miss;
                    // the refetch repairs it at the origin's current
                    // version when the WAN is up, or leaves a plain
                    // miss when it is not.
                    cs.rotten.remove(&fh.fileid());
                    cs.clean.remove(&fh.fileid());
                    if !cs.partitioned {
                        cs.clean.insert(fh.fileid(), current);
                        self.advertised.entry(fh.fileid()).or_default().insert(client);
                    }
                }
            }
        }
        self.check_write_exclusion()
    }

    fn enabled(&self, files: &[Fh3]) -> Vec<ProductAction> {
        let mut acts = Vec::new();
        if self.now_s < MAX_CLOCK_S {
            // One fine step and one jump past the lease/staleness
            // boundaries; more deltas add breadth, not coverage.
            for &secs in &[1u64, 4] {
                acts.push(ProductAction::Tick { secs });
            }
        }
        for (&client, cs) in &self.clients {
            for &fh in files {
                for write in [false, true] {
                    acts.push(ProductAction::Access { client, fh, write });
                }
            }
            if cs.partitioned {
                acts.push(ProductAction::Heal { client });
            } else {
                acts.push(ProductAction::Partition { client });
                acts.push(ProductAction::Getinv { client });
            }
            for &fileid in cs.clean.keys() {
                let fh = Fh3::from_fileid(fileid);
                acts.push(ProductAction::CacheRead { client, fh });
                if !cs.rotten.contains(&fileid) {
                    acts.push(ProductAction::Rot { client, fh });
                }
            }
            match cs.ladder {
                Ladder::Degraded { drained } => {
                    for &fh in files {
                        acts.push(ProductAction::DegradedRead { client, fh });
                    }
                    let repromotable =
                        !cs.partitioned && (drained || self.knobs.repromote_skips_drain);
                    if repromotable {
                        acts.push(ProductAction::Repromote { client });
                    }
                }
                Ladder::Healthy => {}
            }
        }
        // Any advertised holder can be asked for any advertised file —
        // the requester trusts the origin's advert, so the serve must be
        // safe whenever the advert exists.
        for (&fileid, holders) in &self.advertised {
            for &client in holders {
                acts.push(ProductAction::PeerServe { client, fh: Fh3::from_fileid(fileid) });
            }
        }
        acts
    }
}

/// Exhaustively checks the composed product machine over small
/// configurations with the given fault knobs.
pub fn check_product_with(knobs: Knobs) -> ModelReport {
    let mut report = ModelReport { machine: "product", ..ModelReport::default() };
    for &(n_clients, n_files) in &[(2u32, 1u64), (2, 2), (3, 1)] {
        let files: Vec<Fh3> = (1..=n_files).map(Fh3::from_fileid).collect();
        let label = format!("product[clients={n_clients},files={n_files}]");

        let initial = ProductState::new(n_clients, knobs);
        let mut visited: HashSet<String> = HashSet::new();
        visited.insert(initial.fingerprint());
        let mut queue: VecDeque<(ProductState, Vec<String>, usize)> = VecDeque::new();
        queue.push_back((initial, Vec::new(), 0));
        let mut states = 1usize;

        while let Some((state, trace, depth)) = queue.pop_front() {
            if depth >= DEPTH_CAP || states >= STATE_CAP {
                continue;
            }
            for action in state.enabled(&files) {
                let mut next = state.clone();
                let mut next_trace = trace.clone();
                next_trace.push(action.to_string());
                report.transitions += 1;
                if let Some(v) = next.apply(&action) {
                    report
                        .violations
                        .push(format!("{label}: {v}\n  trace: {}", next_trace.join(" ; ")));
                    continue;
                }
                let fp = next.fingerprint();
                if visited.insert(fp) {
                    states += 1;
                    queue.push_back((next, next_trace, depth + 1));
                }
            }
        }
        report.states += states;
    }
    report
}

/// Exhaustively checks the composed product machine (CI entry).
pub fn check_product() -> ModelReport {
    check_product_with(Knobs::default())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn first_violation(knobs: Knobs) -> String {
        let report = check_product_with(knobs);
        assert!(
            !report.violations.is_empty(),
            "planted bug produced no violation ({knobs:?}); the checker is toothless"
        );
        report.violations[0].clone()
    }

    #[test]
    fn clean_product_holds_all_invariants() {
        let report = check_product();
        assert!(report.violations.is_empty(), "violations: {:?}", report.violations);
        assert!(report.states > 1_000, "only {} states explored", report.states);
    }

    #[test]
    fn catches_staleness_bound_violation() {
        let v = first_violation(Knobs { serve_ignores_staleness: true, ..Knobs::default() });
        assert!(v.contains("I1"), "wrong invariant convicted: {v}");
    }

    #[test]
    fn catches_premature_lease_revocation() {
        let v = first_violation(Knobs { lease_counts_offline_access: true, ..Knobs::default() });
        assert!(v.contains("I2"), "wrong invariant convicted: {v}");
    }

    #[test]
    fn catches_undrained_repromotion() {
        let v = first_violation(Knobs { repromote_skips_drain: true, ..Knobs::default() });
        assert!(v.contains("I3"), "wrong invariant convicted: {v}");
    }

    #[test]
    fn catches_surviving_partitioned_holder() {
        let v =
            first_violation(Knobs { recall_keeps_partitioned_holder: true, ..Knobs::default() });
        assert!(v.contains("I4"), "wrong invariant convicted: {v}");
    }

    #[test]
    fn catches_condemned_peer_serve() {
        let v = first_violation(Knobs { peer_ignores_condemnation: true, ..Knobs::default() });
        assert!(v.contains("I7"), "wrong invariant convicted: {v}");
    }

    #[test]
    fn catches_served_corruption() {
        let v = first_violation(Knobs { serve_corrupt_blocks: true, ..Knobs::default() });
        assert!(v.contains("I8"), "wrong invariant convicted: {v}");
    }
}
