/root/repo/target/release/examples/tcp_nfs-b9c2c2bdce00c4c0.d: crates/bench/../../examples/tcp_nfs.rs

/root/repo/target/release/examples/tcp_nfs-b9c2c2bdce00c4c0: crates/bench/../../examples/tcp_nfs.rs

crates/bench/../../examples/tcp_nfs.rs:
