//! Shared harness utilities for the figure-regeneration binaries.
//!
//! Each `fig*` binary builds the paper's setups, runs the workload in a
//! virtual-time simulation, prints the figure's rows to stdout, and
//! writes a machine-readable JSON series to `results/`.

use gvfs_core::protocol::{proc_ext, GVFS_CALLBACK_PROGRAM, GVFS_PROXY_PROGRAM};
use gvfs_nfs3::{proc3, NFS_PROGRAM};
use gvfs_rpc::stats::StatsSnapshot;
use std::path::Path;

pub mod scale;

/// Whether the binary was invoked with `--small` (reduced workloads for
/// smoke-testing the harness).
pub fn small_mode() -> bool {
    std::env::args().any(|a| a == "--small")
}

/// Sums one NFS procedure's calls across the native NFS program and the
/// GVFS proxy program (the proxy wraps NFS procedures under its own
/// program number).
pub fn nfs_calls(snap: &StatsSnapshot, procedure: u32) -> u64 {
    snap.calls(NFS_PROGRAM, procedure) + snap.calls(GVFS_PROXY_PROGRAM, procedure)
}

/// `GETINV` calls in a snapshot.
pub fn getinv_calls(snap: &StatsSnapshot) -> u64 {
    snap.calls(GVFS_PROXY_PROGRAM, proc_ext::GETINV)
}

/// Callback RPCs (per-file recalls + recovery callbacks) in a snapshot.
pub fn callback_calls(snap: &StatsSnapshot) -> u64 {
    snap.calls(GVFS_CALLBACK_PROGRAM, proc_ext::CALLBACK)
        + snap.calls(GVFS_CALLBACK_PROGRAM, proc_ext::RECOVER)
}

/// `PEERREAD` calls in a snapshot (the peer-mesh counter).
pub fn peerread_calls(snap: &StatsSnapshot) -> u64 {
    snap.calls(GVFS_CALLBACK_PROGRAM, proc_ext::PEERREAD)
}

/// The RPC-count breakdown the paper plots in Figures 4a and 6a.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RpcBreakdown {
    /// `GETATTR` calls.
    pub getattr: u64,
    /// `LOOKUP` calls.
    pub lookup: u64,
    /// `READ` calls.
    pub read: u64,
    /// `WRITE` calls.
    pub write: u64,
    /// `GETINV` polls.
    pub getinv: u64,
    /// Callback RPCs.
    pub callback: u64,
    /// Everything else (CREATE, REMOVE, LINK, ...).
    pub other: u64,
}

impl RpcBreakdown {
    /// Extracts the breakdown from a snapshot.
    pub fn from_snapshot(snap: &StatsSnapshot) -> Self {
        let getattr = nfs_calls(snap, proc3::GETATTR);
        let lookup = nfs_calls(snap, proc3::LOOKUP);
        let read = nfs_calls(snap, proc3::READ);
        let write = nfs_calls(snap, proc3::WRITE);
        let getinv = getinv_calls(snap);
        let callback = callback_calls(snap);
        let total = snap.total_calls();
        RpcBreakdown {
            getattr,
            lookup,
            read,
            write,
            getinv,
            callback,
            other: total - getattr - lookup - read - write - getinv - callback,
        }
    }

    /// Total calls.
    pub fn total(&self) -> u64 {
        self.getattr
            + self.lookup
            + self.read
            + self.write
            + self.getinv
            + self.callback
            + self.other
    }

    /// Consistency-related calls (the paper's comparison unit in §5.1.2:
    /// GETATTR + GETINV + CALLBACK).
    pub fn consistency_calls(&self) -> u64 {
        self.getattr + self.getinv + self.callback
    }

    /// JSON form.
    pub fn to_json(&self) -> serde_json::Value {
        serde_json::json!({
            "GETATTR": self.getattr,
            "LOOKUP": self.lookup,
            "READ": self.read,
            "WRITE": self.write,
            "GETINV": self.getinv,
            "CALLBACK": self.callback,
            "other": self.other,
            "total": self.total(),
        })
    }
}

/// The read-path counters of one proxy client (cache hits, gap misses,
/// speculative READs and their fate), as a figure/bench JSON block.
pub fn read_path_json(stats: &gvfs_core::proxy::client::ProxyClientStats) -> serde_json::Value {
    serde_json::json!({
        "read_hits": stats.read_hits,
        "read_misses": stats.read_misses,
        "prefetch_issued": stats.prefetch_issued,
        "prefetch_hits": stats.prefetch_hits,
        "prefetch_wasted": stats.prefetch_wasted,
        "cache_bytes": stats.cache_bytes,
        "cache_evictions": stats.cache_evictions,
        "dedup_hits": stats.dedup_hits,
        "restart_warm_blocks": stats.restart_warm_blocks,
        "peer_hits": stats.peer_hits,
        "peer_misses": stats.peer_misses,
        "peer_fallbacks": stats.peer_fallbacks,
        "peer_bytes_served": stats.peer_bytes_served,
        "integrity_failures": stats.integrity_failures,
        "quarantined_blocks": stats.quarantined_blocks,
        "refetch_repairs": stats.refetch_repairs,
        "scrub_repairs": stats.scrub_repairs,
        "integrity_dirty_loss": stats.integrity_dirty_loss,
    })
}

/// Sums the read-path counters across a session's proxy clients and
/// returns the aggregate as a JSON block.
pub fn session_read_path(
    session: &gvfs_core::session::Session,
    clients: usize,
) -> serde_json::Value {
    let mut agg = gvfs_core::proxy::client::ProxyClientStats::default();
    for i in 0..clients {
        let s = session.proxy_client(i).stats();
        agg.read_hits += s.read_hits;
        agg.read_misses += s.read_misses;
        agg.prefetch_issued += s.prefetch_issued;
        agg.prefetch_hits += s.prefetch_hits;
        agg.prefetch_wasted += s.prefetch_wasted;
        agg.cache_bytes += s.cache_bytes;
        agg.cache_evictions += s.cache_evictions;
        agg.dedup_hits += s.dedup_hits;
        agg.restart_warm_blocks += s.restart_warm_blocks;
        agg.peer_hits += s.peer_hits;
        agg.peer_misses += s.peer_misses;
        agg.peer_fallbacks += s.peer_fallbacks;
        agg.peer_bytes_served += s.peer_bytes_served;
        agg.integrity_failures += s.integrity_failures;
        agg.quarantined_blocks += s.quarantined_blocks;
        agg.refetch_repairs += s.refetch_repairs;
        agg.scrub_repairs += s.scrub_repairs;
        agg.integrity_dirty_loss += s.integrity_dirty_loss;
    }
    read_path_json(&agg)
}

/// Human-readable name for a (program, procedure) pair, for JSON keys.
fn proc_name(program: u32, procedure: u32) -> String {
    let prog = match program {
        NFS_PROGRAM => "nfs",
        GVFS_PROXY_PROGRAM => "gvfs",
        GVFS_CALLBACK_PROGRAM => "cb",
        other => return format!("prog{other}.{procedure}"),
    };
    let proc = match (program, procedure) {
        (GVFS_CALLBACK_PROGRAM, proc_ext::CALLBACK) => "CALLBACK".into(),
        (GVFS_CALLBACK_PROGRAM, proc_ext::RECOVER) => "RECOVER".into(),
        (GVFS_CALLBACK_PROGRAM, proc_ext::PEERREAD) => "PEERREAD".into(),
        (_, p) if p == proc_ext::GETINV => "GETINV".into(),
        (_, proc3::NULL) => "NULL".into(),
        (_, proc3::GETATTR) => "GETATTR".into(),
        (_, proc3::LOOKUP) => "LOOKUP".into(),
        (_, proc3::READ) => "READ".into(),
        (_, proc3::WRITE) => "WRITE".into(),
        (_, proc3::CREATE) => "CREATE".into(),
        (_, proc3::COMMIT) => "COMMIT".into(),
        (_, p) => format!("proc{p}"),
    };
    format!("{prog}.{proc}")
}

/// RPC-channel metadata for a figure's JSON output: the pipelining
/// high-water mark and per-procedure mean latencies (§ the paper reports
/// RPC *counts*; this makes the concurrency of the channel observable
/// alongside them).
pub fn rpc_meta(snap: &StatsSnapshot) -> serde_json::Value {
    let mut latencies: Vec<(String, serde_json::Value)> = Vec::new();
    for (&(program, procedure), counter) in snap.iter() {
        if counter.latency_nanos == 0 {
            continue;
        }
        latencies.push((
            proc_name(program, procedure),
            serde_json::json!({
                "calls": counter.calls,
                "mean_latency_us": counter.mean_latency_nanos() / 1_000,
            }),
        ));
    }
    serde_json::json!({
        "max_in_flight": snap.max_in_flight(),
        "latency": serde_json::Value::Object(latencies),
    })
}

/// The proxy server's scale counters (fan-out window, delegation and
/// invalidation footprint, stripe-lock contention, batch volumes) as a
/// figure/bench `server` JSON block.
pub fn server_meta(server: &gvfs_core::proxy::server::ProxyServer) -> serde_json::Value {
    let s = server.scale_stats();
    serde_json::json!({
        "recalls_sent": s.recalls_sent,
        "recalls_short_circuited": s.recalls_short_circuited,
        "fanout_window": s.fanout_window,
        "fanout_in_flight_hwm": s.fanout_in_flight_hwm,
        "health_entries": s.health_entries,
        "health_evicted": s.health_evicted,
        "deleg_files": s.deleg_files,
        "deleg_sharers": s.deleg_sharers,
        "deleg_approx_bytes": s.deleg_approx_bytes,
        "inval_clients": s.inval_clients,
        "inval_approx_bytes": s.inval_approx_bytes,
        "inval_lock_acquisitions": s.inval.lock_acquisitions,
        "inval_lock_contended": s.inval.lock_contended,
        "getinv_replies": s.inval.getinv_replies,
        "getinv_handles": s.inval.getinv_handles,
        "piggyback_replies": s.inval.piggyback_replies,
        "piggyback_handles": s.inval.piggyback_handles,
        "inval_evicted_buffers": s.inval.evicted_buffers,
    })
}

/// Prints a fixed-width header followed by rows.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line: Vec<String> =
        header.iter().enumerate().map(|(i, h)| format!("{h:>w$}", w = widths[i])).collect();
    println!("{}", line.join("  "));
    for row in rows {
        let line: Vec<String> =
            row.iter().enumerate().map(|(i, c)| format!("{c:>w$}", w = widths[i])).collect();
        println!("{}", line.join("  "));
    }
}

/// Writes a JSON document under `results/`.
///
/// # Panics
///
/// Panics if the directory cannot be created or the file not written.
pub fn save_json(name: &str, value: &serde_json::Value) {
    let dir = Path::new("results");
    std::fs::create_dir_all(dir).expect("create results dir");
    let path = dir.join(name);
    std::fs::write(&path, serde_json::to_string_pretty(value).expect("serialize"))
        .expect("write json");
    println!("\n[saved {}]", path.display());
}

#[cfg(test)]
mod tests {
    use super::*;
    use gvfs_rpc::stats::RpcStats;

    #[test]
    fn breakdown_accounts_every_call() {
        let stats = RpcStats::new();
        stats.record(NFS_PROGRAM, proc3::GETATTR, 1, 1);
        stats.record(GVFS_PROXY_PROGRAM, proc3::GETATTR, 1, 1);
        stats.record(GVFS_PROXY_PROGRAM, proc_ext::GETINV, 1, 1);
        stats.record(GVFS_CALLBACK_PROGRAM, proc_ext::CALLBACK, 1, 1);
        stats.record(NFS_PROGRAM, proc3::CREATE, 1, 1);
        let b = RpcBreakdown::from_snapshot(&stats.snapshot());
        assert_eq!(b.getattr, 2);
        assert_eq!(b.getinv, 1);
        assert_eq!(b.callback, 1);
        assert_eq!(b.other, 1);
        assert_eq!(b.total(), 5);
        assert_eq!(b.consistency_calls(), 4);
    }
}
