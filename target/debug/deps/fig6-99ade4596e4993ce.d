/root/repo/target/debug/deps/fig6-99ade4596e4993ce.d: /root/repo/clippy.toml crates/bench/src/bin/fig6.rs Cargo.toml

/root/repo/target/debug/deps/libfig6-99ade4596e4993ce.rmeta: /root/repo/clippy.toml crates/bench/src/bin/fig6.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/src/bin/fig6.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
