/root/repo/target/release/deps/gvfs_server-cc71dc01803661aa.d: crates/server/src/lib.rs

/root/repo/target/release/deps/libgvfs_server-cc71dc01803661aa.rlib: crates/server/src/lib.rs

/root/repo/target/release/deps/libgvfs_server-cc71dc01803661aa.rmeta: crates/server/src/lib.rs

crates/server/src/lib.rs:
