//! Crash/recovery end to end (§4.3.4): a proxy-server crash with an
//! outstanding partial write-back must not lose acknowledged data, and a
//! proxy-client crash must replay its dirty cache only when the server
//! copy is provably unchanged — otherwise the dirty data is discarded as
//! corrupted, never blindly replayed over someone else's writes.

use gvfs_client::{MountOptions, NfsClient};
use gvfs_core::session::{Session, SessionConfig};
use gvfs_core::{ConsistencyModel, DelegationConfig};
use gvfs_netsim::Sim;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn delegation_config(partial_writeback_threshold: usize) -> SessionConfig {
    SessionConfig {
        model: ConsistencyModel::DelegationCallback(DelegationConfig {
            partial_writeback_threshold,
            ..DelegationConfig::default()
        }),
        write_back: true,
        ..SessionConfig::default()
    }
}

fn pattern(len: usize, salt: u8) -> Vec<u8> {
    (0..len).map(|i| (i as u8).wrapping_mul(31).wrapping_add(salt)).collect()
}

fn sleep_until(at: Duration) {
    let elapsed = gvfs_netsim::now().saturating_since(gvfs_netsim::SimTime::ZERO);
    if at > elapsed {
        gvfs_netsim::sleep(at - elapsed);
    }
}

/// A proxy-server crash while a recalled write delegation is still
/// writing back asynchronously: the recall answered with a block list
/// (dirty blocks > threshold), the flusher is mid-stream when the server
/// dies, and recovery must rebuild the delegation table from the
/// clients' dirty-file answers so the remaining blocks land. No
/// acknowledged byte may be lost.
#[test]
fn server_crash_mid_partial_writeback_loses_nothing() {
    let sim = Sim::new();
    let session = Arc::new(Session::builder(delegation_config(2)).clients(2).establish(&sim));
    let data = pattern(64 * 4096, 7);

    let done = Arc::new(AtomicUsize::new(0));
    let answered = Arc::new(AtomicUsize::new(usize::MAX));

    {
        let t = session.client_transport(0);
        let root = session.root_fh();
        let done = Arc::clone(&done);
        let data = data.clone();
        sim.spawn("cr-writer", move || {
            let c = NfsClient::new(t, root, MountOptions::noac());
            gvfs_netsim::sleep(Duration::from_secs(1));
            // 64 dirty blocks against a threshold of 2: the later recall
            // must choose the partial (asynchronous) write-back path.
            c.write_file("/cr-a", &data).expect("write survives in cache");
            done.fetch_add(1, Ordering::SeqCst);
        });
    }
    {
        let t = session.client_transport(1);
        let root = session.root_fh();
        let done = Arc::clone(&done);
        sim.spawn("cr-reader", move || {
            let c = NfsClient::new(t, root, MountOptions::noac());
            sleep_until(Duration::from_secs(4));
            // The read recalls the write delegation; the answer is a
            // block list and the writer starts flushing asynchronously.
            // The server crashes under it, so this forward blocks until
            // recovery — completion (not content) is the assertion here.
            let _ = c.read_file("/cr-a");
            done.fetch_add(1, Ordering::SeqCst);
        });
    }
    {
        let session = Arc::clone(&session);
        let done = Arc::clone(&done);
        let answered = Arc::clone(&answered);
        sim.spawn("cr-controller", move || {
            sleep_until(Duration::from_millis(4_200));
            session.crash_proxy_server();
            gvfs_netsim::sleep(Duration::from_secs(8));
            answered.store(session.restart_proxy_server(), Ordering::SeqCst);
            done.fetch_add(1, Ordering::SeqCst);
        });
    }
    {
        let handle = session.handle();
        let done = Arc::clone(&done);
        sim.spawn("cr-closer", move || {
            loop {
                gvfs_netsim::park_timeout(Duration::from_secs(1));
                if done.load(Ordering::SeqCst) >= 3 {
                    break;
                }
            }
            handle.shutdown();
        });
    }
    sim.run();

    assert!(
        answered.load(Ordering::SeqCst) >= 1,
        "recovery must hear back from at least the dirty client"
    );
    let vfs = session.vfs();
    let id = vfs.lookup_path("/cr-a").expect("file survives the crash");
    let (bytes, _) = vfs.read(id, 0, data.len() as u32).expect("readable after recovery");
    assert_eq!(bytes, data, "every acknowledged byte must reach stable storage");
}

/// A proxy-client crash while the server copy moved on: the crashed
/// client held dirty data, its delegation was revoked unreachable, and
/// another client's write was flushed in the meantime. Recovery must
/// notice the mtime mismatch, discard the stale dirty cache as
/// corrupted, and leave the surviving writer's data in place.
#[test]
fn client_crash_discards_dirty_when_server_moved_on() {
    let sim = Sim::new();
    let session = Arc::new(Session::builder(delegation_config(1024)).clients(2).establish(&sim));
    let stale = pattern(4096, 1);
    let fresh = pattern(4096, 2);

    let done = Arc::new(AtomicUsize::new(0));
    let corrupted = Arc::new(Mutex::new(Vec::new()));

    {
        let t = session.client_transport(0);
        let root = session.root_fh();
        let done = Arc::clone(&done);
        let stale = stale.clone();
        sim.spawn("cr-crasher", move || {
            let c = NfsClient::new(t, root, MountOptions::noac());
            gvfs_netsim::sleep(Duration::from_secs(1));
            // The first write forwards write-through and acquires the
            // write delegation; the second is the one that stays dirty
            // in the disk cache across the crash.
            let fh = c.write_file("/cr-b", &pattern(4096, 0)).expect("acquire delegation");
            c.write(fh, 0, &stale).expect("dirty write acked");
            done.fetch_add(1, Ordering::SeqCst);
        });
    }
    {
        let t = session.client_transport(1);
        let root = session.root_fh();
        let done = Arc::clone(&done);
        let fresh = fresh.clone();
        sim.spawn("cr-survivor", move || {
            let c = NfsClient::new(t, root, MountOptions::noac());
            // Client 0 is already down: the recall of its write
            // delegation times out and the server revokes it
            // unreachable, losing the unflushed dirty data (§4.3.4).
            // This first write then forwards write-through, so the
            // server copy's mtime moves past the crashed client's
            // write-back base.
            sleep_until(Duration::from_secs(8));
            let fh = c.resolve("/cr-b").expect("resolve");
            c.write(fh, 0, &fresh).expect("surviving write acked");
            done.fetch_add(1, Ordering::SeqCst);
        });
    }
    {
        let session = Arc::clone(&session);
        let done = Arc::clone(&done);
        let corrupted = Arc::clone(&corrupted);
        sim.spawn("cr-controller", move || {
            sleep_until(Duration::from_secs(4));
            session.crash_proxy_client(0);
            sleep_until(Duration::from_secs(30));
            *corrupted.lock() = session.restart_proxy_client(0);
            done.fetch_add(1, Ordering::SeqCst);
        });
    }
    {
        let handle = session.handle();
        let done = Arc::clone(&done);
        sim.spawn("cr-closer", move || {
            loop {
                gvfs_netsim::park_timeout(Duration::from_secs(1));
                if done.load(Ordering::SeqCst) >= 3 {
                    break;
                }
            }
            handle.shutdown();
        });
    }
    sim.run();

    assert_eq!(
        corrupted.lock().len(),
        1,
        "the crashed client's dirty file must be flagged corrupted, not replayed"
    );
    let vfs = session.vfs();
    let id = vfs.lookup_path("/cr-b").expect("lookup");
    let (bytes, _) = vfs.read(id, 0, fresh.len() as u32).expect("read");
    assert_eq!(bytes, fresh, "the surviving writer's data must not be clobbered");
}

/// Lease-based revocation end to end: a client holding write
/// delegations drops off the WAN, and conflicting writers on another
/// client must not block behind it. The first conflicts are resolved by
/// failed recalls (the partitioned link refuses the callback, the
/// holder is revoked unreachable, and each failure feeds the server's
/// per-client breaker); once the breaker opens, further recalls are
/// short-circuited without even trying the link; and a conflict that
/// arrives after the holder's renewal lease lapsed is revoked straight
/// from the delegation table with no recall round trip at all. In every
/// case the writer proceeds within one lease period.
#[test]
fn partitioned_holder_unblocks_conflicting_writer_within_lease() {
    const LEASE: Duration = Duration::from_secs(30);
    let config = SessionConfig {
        model: ConsistencyModel::DelegationCallback(DelegationConfig {
            expiration: Duration::from_secs(90),
            renewal: Duration::from_secs(20),
            lease: LEASE,
            ..DelegationConfig::default()
        }),
        write_back: true,
        ..SessionConfig::default()
    };
    let sim = Sim::new();
    let session = Arc::new(Session::builder(config).clients(2).establish(&sim));

    let done = Arc::new(AtomicUsize::new(0));
    let waits = Arc::new(Mutex::new(Vec::new()));

    {
        let t = session.client_transport(0);
        let root = session.root_fh();
        let done = Arc::clone(&done);
        sim.spawn("lz-holder", move || {
            let c = NfsClient::new(t, root, MountOptions::noac());
            gvfs_netsim::sleep(Duration::from_secs(1));
            // Five write delegations; the holder then goes silent behind
            // a partition and never hears a single recall.
            for i in 0..5 {
                c.write_file(&format!("/lz-{i}"), &pattern(4096, i)).expect("acquire delegation");
            }
            done.fetch_add(1, Ordering::SeqCst);
        });
    }
    {
        let t = session.client_transport(1);
        let root = session.root_fh();
        let done = Arc::clone(&done);
        let waits = Arc::clone(&waits);
        sim.spawn("lz-writer", move || {
            let c = NfsClient::new(t, root, MountOptions::noac());
            let conflict = |path: &str, salt: u8| {
                let started = gvfs_netsim::now();
                let fh = c.resolve(path).expect("resolve");
                c.write(fh, 0, &pattern(4096, salt)).expect("conflicting write proceeds");
                waits.lock().push(gvfs_netsim::now().saturating_since(started));
            };
            // Three conflicts while the holder's lease is still fresh:
            // each recall fails fast on the cut link, revokes the holder
            // unreachable, and trips the server-side breaker.
            sleep_until(Duration::from_secs(5));
            for i in 0..3 {
                conflict(&format!("/lz-{i}"), 100 + i as u8);
            }
            // Breaker open: this recall is short-circuited outright.
            conflict("/lz-3", 103);
            // Past the holder's lease: revoked from the table, no recall.
            sleep_until(Duration::from_secs(40));
            conflict("/lz-4", 104);
            done.fetch_add(1, Ordering::SeqCst);
        });
    }
    {
        let session = Arc::clone(&session);
        sim.spawn("lz-controller", move || {
            sleep_until(Duration::from_secs(3));
            session.wan_link(0).set_partitioned(true);
        });
    }
    {
        let session = Arc::clone(&session);
        let handle = session.handle();
        let done = Arc::clone(&done);
        sim.spawn("lz-closer", move || {
            loop {
                gvfs_netsim::park_timeout(Duration::from_secs(1));
                if done.load(Ordering::SeqCst) >= 2 {
                    break;
                }
            }
            // Heal before shutdown so the holder's teardown does not
            // hang retrying DELEGRETURNs into the void.
            session.wan_link(0).set_partitioned(false);
            handle.shutdown();
        });
    }
    sim.run();

    let waits = waits.lock();
    assert_eq!(waits.len(), 5, "every conflicting write must complete");
    for (i, wait) in waits.iter().enumerate() {
        assert!(
            *wait < LEASE,
            "conflict {i} blocked {wait:?}, more than one lease period ({LEASE:?})"
        );
    }
    let server = session.proxy_server();
    assert!(
        server.recalls_short_circuited() >= 1,
        "the open breaker must short-circuit at least one recall"
    );
    assert!(
        server.lease_revocations() >= 1,
        "the post-lease conflict must be revoked without a recall"
    );
}

/// A holder that *returns* from a partition (no crash, no restart) must
/// route its dirty write-back data through reconciliation when the
/// supervisor re-promotes the session: the file another client rewrote
/// in the meantime is discarded as stale — not poisoned as corrupted,
/// applications just see the fresh server copy — while the file only
/// this client ever wrote is replayed and survives.
#[test]
fn returning_holder_reconciles_dirty_without_poisoning() {
    let sim = Sim::new();
    let session = Arc::new(Session::builder(delegation_config(1024)).clients(2).establish(&sim));
    let stale = pattern(4096, 1);
    let keep = pattern(4096, 2);
    let fresh = pattern(4096, 3);

    let done = Arc::new(AtomicUsize::new(0));

    {
        let t = session.client_transport(0);
        let root = session.root_fh();
        let done = Arc::clone(&done);
        let stale = stale.clone();
        let keep = keep.clone();
        let fresh = fresh.clone();
        sim.spawn("lz-returner", move || {
            let c = NfsClient::new(t, root, MountOptions::noac());
            gvfs_netsim::sleep(Duration::from_secs(1));
            // Two write delegations, each with a dirty block parked in
            // the write-back cache across the coming partition.
            let fh_r = c.write_file("/lz-r", &pattern(4096, 0)).expect("acquire delegation");
            c.write(fh_r, 0, &stale).expect("dirty write acked");
            let fh_s = c.write_file("/lz-s", &pattern(4096, 0)).expect("acquire delegation");
            c.write(fh_s, 0, &keep).expect("dirty write acked");
            // A cold lookup during the partition: the retries trip this
            // client's WAN breaker, which flags the post-heal resync.
            sleep_until(Duration::from_secs(6));
            c.resolve("/lz-probe").expect("completes after the heal");
            // By now the supervisor has re-promoted and reconciled. The
            // conflicted file reads back the *other* writer's data — a
            // late but consistent view, never an I/O error.
            sleep_until(Duration::from_secs(20));
            let got = c.read_file("/lz-r").expect("discarded file is not poisoned");
            assert_eq!(got, fresh, "the surviving writer's data wins");
            done.fetch_add(1, Ordering::SeqCst);
        });
    }
    {
        let t = session.client_transport(1);
        let root = session.root_fh();
        let done = Arc::clone(&done);
        let fresh = fresh.clone();
        sim.spawn("lz-rival", move || {
            let c = NfsClient::new(t, root, MountOptions::noac());
            sleep_until(Duration::from_secs(4));
            c.write_file("/lz-probe", &pattern(4096, 9)).expect("probe target");
            // Conflicts with the partitioned holder: the recall fails on
            // the cut link, the holder is revoked unreachable, and the
            // server copy's mtime moves past its write-back base.
            let fh = c.resolve("/lz-r").expect("resolve");
            c.write(fh, 0, &fresh).expect("rival write proceeds");
            done.fetch_add(1, Ordering::SeqCst);
        });
    }
    {
        let session = Arc::clone(&session);
        let done = Arc::clone(&done);
        sim.spawn("lz-controller", move || {
            sleep_until(Duration::from_secs(3));
            session.wan_link(0).set_partitioned(true);
            sleep_until(Duration::from_secs(12));
            session.wan_link(0).set_partitioned(false);
            done.fetch_add(1, Ordering::SeqCst);
        });
    }
    {
        let handle = session.handle();
        let done = Arc::clone(&done);
        sim.spawn("lz-closer", move || {
            loop {
                gvfs_netsim::park_timeout(Duration::from_secs(1));
                if done.load(Ordering::SeqCst) >= 3 {
                    break;
                }
            }
            handle.shutdown();
        });
    }
    sim.run();

    let stats = session.proxy_client(0).stats();
    assert_eq!(stats.repromotions, 1, "the heal must re-promote exactly once, stats: {stats:?}");
    assert_eq!(stats.stale_discards, 1, "the conflicted file is discarded as stale");
    assert_eq!(stats.corrupted_discards, 0, "a live return never poisons files as corrupted");
    let vfs = session.vfs();
    let id = vfs.lookup_path("/lz-r").expect("lookup");
    let (bytes, _) = vfs.read(id, 0, fresh.len() as u32).expect("read");
    assert_eq!(bytes, fresh, "the rival's data must not be clobbered by a stale replay");
    let id = vfs.lookup_path("/lz-s").expect("lookup");
    let (bytes, _) = vfs.read(id, 0, keep.len() as u32).expect("read");
    assert_eq!(bytes, keep, "the sole-writer file's dirty data must be replayed, not dropped");
}

/// The companion case: the server copy did NOT change while the client
/// was down, so crash recovery replays the dirty cache — one block
/// written back inline to reacquire the delegation, the rest via the
/// flusher — and nothing is reported corrupted.
#[test]
fn client_crash_replays_dirty_when_server_unchanged() {
    let sim = Sim::new();
    let session = Arc::new(Session::builder(delegation_config(1024)).clients(1).establish(&sim));
    let data = pattern(4 * 4096, 3);

    let done = Arc::new(AtomicUsize::new(0));
    let corrupted = Arc::new(Mutex::new(vec![gvfs_nfs3::Fh3::from_fileid(u64::MAX)]));

    {
        let t = session.client_transport(0);
        let root = session.root_fh();
        let done = Arc::clone(&done);
        let data = data.clone();
        sim.spawn("cr-writer", move || {
            let c = NfsClient::new(t, root, MountOptions::noac());
            gvfs_netsim::sleep(Duration::from_secs(1));
            c.write_file("/cr-c", &data).expect("dirty write acked");
            done.fetch_add(1, Ordering::SeqCst);
        });
    }
    {
        let session = Arc::clone(&session);
        let done = Arc::clone(&done);
        let corrupted = Arc::clone(&corrupted);
        sim.spawn("cr-controller", move || {
            sleep_until(Duration::from_secs(3));
            session.crash_proxy_client(0);
            gvfs_netsim::sleep(Duration::from_secs(10));
            *corrupted.lock() = session.restart_proxy_client(0);
            done.fetch_add(1, Ordering::SeqCst);
        });
    }
    {
        let handle = session.handle();
        let done = Arc::clone(&done);
        sim.spawn("cr-closer", move || {
            loop {
                gvfs_netsim::park_timeout(Duration::from_secs(1));
                if done.load(Ordering::SeqCst) >= 2 {
                    break;
                }
            }
            handle.shutdown();
        });
    }
    sim.run();

    assert!(
        corrupted.lock().is_empty(),
        "an unchanged server copy means the dirty cache is replayed, not discarded"
    );
    let vfs = session.vfs();
    let id = vfs.lookup_path("/cr-c").expect("lookup");
    let (bytes, _) = vfs.read(id, 0, data.len() as u32).expect("read");
    assert_eq!(bytes, data, "the replayed dirty data must reach stable storage");
}
