//! Differential property test: the persistent block store must be
//! observably identical to the in-memory one.
//!
//! Random operation sequences — clean inserts, dirty writes, block
//! cleaning, invalidation (revalidate with a moved tag), forget,
//! eviction pressure, sync and crash-reopen — drive a
//! [`PersistentStore`] and a [`MemStore`] in lockstep. After every
//! operation the two must agree on every probed read, on the
//! `missing_ranges` tiling, and on the dirty-extent tiling.
//!
//! Crashes come in two flavours:
//!
//! * **Synced crash** — `sync()` then `crash_reopen()`. The WAL covers
//!   everything, so recovery must reproduce the current state exactly;
//!   the mirror is left untouched and lockstep comparison continues.
//! * **Unsynced crash** — `crash_reopen()` with arbitrary unsynced
//!   tail. The store may legally lose a suffix of operations, but what
//!   it recovers must be *some* historical state between the last
//!   durability point and now — never a torn or reordered mixture. The
//!   test keeps a snapshot of the mirror after every op and requires
//!   the recovered fingerprint to equal one of the eligible snapshots,
//!   then rolls the mirror back to the matching snapshot and resumes
//!   lockstep comparison from there.
//!
//! Each write's payload is drawn from a global counter so every
//! operation's bytes are distinct — a recovered state can only
//! fingerprint-match the snapshot it truly corresponds to.

use gvfs_core::store::mem::MemStore;
use gvfs_core::store::persist::{PersistConfig, PersistentStore};
use gvfs_core::store::BlockStore;
use gvfs_netsim::disk::{DiskConfig, DiskFaultPlan, VirtualDisk};
use gvfs_netsim::fault::Window;
use gvfs_netsim::SimTime;
use gvfs_nfs3::{Fh3, NfsTime3};
use proptest::prelude::*;

const SPACE: u64 = 1024; // probed address space per file
const NFILES: u64 = 3;
const BLOCK: u64 = 64; // persistent-store chunking granularity

fn fh(i: u64) -> Fh3 {
    Fh3::from_fileid(i + 1)
}

fn tag(s: u32) -> NfsTime3 {
    NfsTime3 { seconds: s, nseconds: 0 }
}

/// Distinct bytes per operation: `fill(counter, len)` never collides
/// with another op's payload unless lengths and counter agree.
fn fill(counter: u32, len: usize) -> Vec<u8> {
    let b = counter.to_le_bytes();
    (0..len).map(|i| b[i % 4].wrapping_add((i / 4) as u8)).collect()
}

#[derive(Debug, Clone)]
enum Op {
    InsertClean { file: u64, offset: u64, len: usize },
    WriteDirty { file: u64, offset: u64, len: usize },
    CleanRange { file: u64, offset: u64, len: u64 },
    DropClean { file: u64 },
    Forget { file: u64 },
    Revalidate { file: u64, tag: u32 },
    Retag { file: u64, tag: u32 },
    NoteSize { file: u64, size: u64 },
    Sync,
    Crash,
}

fn op_strategy(with_crash: bool) -> impl Strategy<Value = Op> {
    let file = 0..NFILES;
    let span = (0..NFILES, 0..SPACE - 1, 1usize..256);
    // The shimmed prop_oneof! has no weights; duplicated arms bias the
    // mix toward data-moving operations.
    let base = prop_oneof![
        span.clone().prop_map(|(file, offset, len)| Op::InsertClean {
            file,
            offset,
            len: len.min((SPACE - offset) as usize),
        }),
        span.clone().prop_map(|(file, offset, len)| Op::InsertClean {
            file,
            offset,
            len: len.min((SPACE - offset) as usize),
        }),
        span.clone().prop_map(|(file, offset, len)| Op::WriteDirty {
            file,
            offset,
            len: len.min((SPACE - offset) as usize),
        }),
        span.prop_map(|(file, offset, len)| Op::WriteDirty {
            file,
            offset,
            len: len.min((SPACE - offset) as usize),
        }),
        (0..NFILES, 0..SPACE - 1, 1u64..512).prop_map(|(file, offset, len)| {
            Op::CleanRange { file, offset, len: len.min(SPACE - offset) }
        }),
        file.clone().prop_map(|file| Op::DropClean { file }),
        file.clone().prop_map(|file| Op::Forget { file }),
        (file.clone(), 1u32..4).prop_map(|(file, tag)| Op::Revalidate { file, tag }),
        (file.clone(), 1u32..4).prop_map(|(file, tag)| Op::Retag { file, tag }),
        (file, prop_oneof![Just(64u64), Just(SPACE)])
            .prop_map(|(file, size)| Op::NoteSize { file, size }),
    ];
    if with_crash {
        prop_oneof![base, Just(Op::Sync), Just(Op::Crash)].boxed()
    } else {
        base.boxed()
    }
}

/// Applies one op to a store; `counter` disambiguates payloads.
fn apply(store: &mut dyn BlockStore, op: &Op, counter: u32) {
    match *op {
        Op::InsertClean { file, offset, len } => {
            store.insert_clean(fh(file), offset, fill(counter, len));
        }
        Op::WriteDirty { file, offset, len } => {
            store.write_dirty(fh(file), offset, fill(counter, len));
        }
        Op::CleanRange { file, offset, len } => store.clean_range(fh(file), offset, len),
        Op::DropClean { file } => store.drop_clean(fh(file)),
        Op::Forget { file } => store.forget(fh(file)),
        Op::Revalidate { file, tag: t } => store.revalidate(fh(file), tag(t)),
        Op::Retag { file, tag: t } => store.retag(fh(file), tag(t)),
        Op::NoteSize { file, size } => store.note_size(fh(file), size),
        Op::Sync | Op::Crash => unreachable!("handled by the driver"),
    }
}

/// Everything observable about a store, byte by byte.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Fingerprint {
    /// Per file: which bytes are readable and their values, probed in
    /// `BLOCK`-sized reads plus per-byte reads over the gaps.
    content: Vec<Vec<Option<u8>>>,
    dirty: Vec<Vec<(u64, usize)>>,
}

fn fingerprint(store: &mut dyn BlockStore) -> Fingerprint {
    let mut content = Vec::new();
    let mut dirty = Vec::new();
    for i in 0..NFILES {
        let mut bytes: Vec<Option<u8>> = vec![None; SPACE as usize];
        // Per-byte availability via missing_ranges (cheap), values via
        // reads over the present runs.
        let gaps = store.missing_ranges(fh(i), 0, SPACE as usize);
        let mut present = vec![true; SPACE as usize];
        for (off, len) in gaps {
            for p in &mut present[off as usize..off as usize + len] {
                *p = false;
            }
        }
        let mut pos = 0usize;
        while pos < SPACE as usize {
            if present[pos] {
                let mut end = pos;
                while end < SPACE as usize && present[end] {
                    end += 1;
                }
                let data = store
                    .read(fh(i), pos as u64, end - pos)
                    .expect("missing_ranges says the run is fully covered");
                for (k, b) in data.iter().enumerate() {
                    bytes[pos + k] = Some(*b);
                }
                pos = end;
            } else {
                pos += 1;
            }
        }
        content.push(bytes);
        dirty.push(store.dirty_ranges(fh(i)));
    }
    Fingerprint { content, dirty }
}

/// Asserts full observable equality between the two stores.
fn assert_match(
    persist: &mut PersistentStore,
    mirror: &mut MemStore,
    probes: &[(u64, u64, usize)],
    context: &Op,
) -> Result<(), TestCaseError> {
    for &(file, offset, len) in probes {
        let len = len.min((SPACE - offset) as usize);
        let p = persist.read(fh(file), offset, len);
        let m = mirror.read(fh(file), offset, len);
        prop_assert_eq!(&p, &m, "read({}, {}, {}) diverged after {:?}", file, offset, len, context);
        let pg = persist.missing_ranges(fh(file), offset, len);
        let mg = mirror.missing_ranges(fh(file), offset, len);
        prop_assert_eq!(
            &pg,
            &mg,
            "missing_ranges({}, {}, {}) diverged after {:?}",
            file,
            offset,
            len,
            context
        );
    }
    for i in 0..NFILES {
        prop_assert_eq!(
            persist.dirty_ranges(fh(i)),
            mirror.dirty_ranges(fh(i)),
            "dirty tiling diverged for file {} after {:?}",
            i,
            context
        );
        prop_assert_eq!(
            persist.dirty_blocks(fh(i), BLOCK),
            mirror.dirty_blocks(fh(i), BLOCK),
            "dirty_blocks diverged for file {} after {:?}",
            i,
            context
        );
        prop_assert_eq!(persist.has_dirty(fh(i)), mirror.has_dirty(fh(i)));
    }
    prop_assert_eq!(persist.dirty_files(), mirror.dirty_files());
    Ok(())
}

fn big_store(disk: std::sync::Arc<VirtualDisk>) -> PersistentStore {
    PersistentStore::open(
        disk,
        PersistConfig {
            capacity: 1 << 30, // no eviction: LRU recency is volatile across replay
            block_size: BLOCK,
            file_threshold: 128,
            // No implicit durability: the only sync points are the ones
            // the op sequence performs (plus clean_range's barrier).
            checkpoint_every: usize::MAX,
            sync_every: usize::MAX,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Lockstep equivalence with crash-reopen, both synced and not.
    #[test]
    fn persistent_store_matches_mem_store(
        ops in proptest::collection::vec(op_strategy(true), 1..50),
        probes in proptest::collection::vec((0..NFILES, 0..SPACE - 1, 1usize..300), 6),
    ) {
        let disk = VirtualDisk::new(DiskConfig::instant());
        let mut persist = big_store(disk);
        let mut mirror = MemStore::new(1 << 30);

        // Mirror snapshots along the current timeline; the top is always
        // the present state. `floor` is the last *durability barrier*
        // (sync or clean_range): any crash — including one right after a
        // recovery, whose replayed-but-unsynced WAL suffix may be lost
        // again — must land on some state in `floor..=top`.
        let mut snapshots: Vec<MemStore> = vec![mirror.clone()];
        let mut floor = 0usize;
        let mut counter = 0u32;

        for op in &ops {
            match op {
                Op::Sync => {
                    persist.sync();
                    floor = snapshots.len() - 1;
                }
                Op::Crash => {
                    persist.crash_reopen();
                    let got = fingerprint(&mut persist);
                    let eligible = floor..snapshots.len();
                    let matched = eligible.clone().rev().find(|&k| {
                        fingerprint(&mut snapshots[k].clone()) == got
                    });
                    prop_assert!(
                        matched.is_some(),
                        "recovered state is not any historical state in {:?} (ops={:?})",
                        eligible, ops
                    );
                    let k = matched.expect("checked");
                    // Resume lockstep from the state the store recovered.
                    // `floor` does not move: replay does not sync, so a
                    // later crash may regress further (never below floor).
                    mirror = snapshots[k].clone();
                    snapshots.truncate(k + 1);
                }
                other => {
                    counter += 1;
                    apply(&mut persist, other, counter);
                    apply(&mut mirror, other, counter);
                    snapshots.push(mirror.clone());
                    // clean_range is an unconditional durability barrier
                    // (write-back completion must survive restart).
                    if let Op::CleanRange { .. } = other {
                        floor = snapshots.len() - 1;
                    }
                    assert_match(&mut persist, &mut mirror, &probes, other)?;
                }
            }
        }
    }

    /// A synced crash must recover the *current* state exactly — the
    /// strong version of the property above.
    #[test]
    fn synced_crash_recovers_the_live_state(
        ops in proptest::collection::vec(op_strategy(false), 1..40),
        probes in proptest::collection::vec((0..NFILES, 0..SPACE - 1, 1usize..300), 6),
    ) {
        let disk = VirtualDisk::new(DiskConfig::instant());
        let mut persist = big_store(disk);
        let mut mirror = MemStore::new(1 << 30);
        let mut counter = 0u32;
        for op in &ops {
            counter += 1;
            apply(&mut persist, op, counter);
            apply(&mut mirror, op, counter);
        }
        persist.sync();
        persist.crash_reopen();
        let last = ops.last().expect("non-empty");
        assert_match(&mut persist, &mut mirror, &probes, last)?;
        prop_assert_eq!(
            fingerprint(&mut persist),
            fingerprint(&mut mirror),
            "synced crash lost or invented state"
        );
    }

    /// Under eviction pressure (no crashes) the two stores still agree:
    /// the LRU clocks tick identically, dirty data is never evicted, and
    /// accounting stays within bounds.
    #[test]
    fn eviction_pressure_stays_in_lockstep(
        ops in proptest::collection::vec(op_strategy(false), 1..40),
        probes in proptest::collection::vec((0..NFILES, 0..SPACE - 1, 1usize..300), 6),
    ) {
        const CAP: usize = 1200; // forces eviction with 1 KiB files
        let disk = VirtualDisk::new(DiskConfig::instant());
        let mut persist = PersistentStore::open(
            disk,
            PersistConfig {
                capacity: CAP,
                block_size: BLOCK,
                file_threshold: 128,
                checkpoint_every: usize::MAX,
                sync_every: usize::MAX,
            },
        );
        let mut mirror = MemStore::new(CAP);
        let mut counter = 0u32;
        for op in &ops {
            counter += 1;
            apply(&mut persist, op, counter);
            apply(&mut mirror, op, counter);
            assert_match(&mut persist, &mut mirror, &probes, op)?;
            // Dirty bytes may exceed capacity (they are unevictable);
            // clean bytes beyond capacity must have been evicted.
            let dirty_total: usize = (0..NFILES)
                .map(|i| persist.dirty_ranges(fh(i)).iter().map(|(_, l)| l).sum::<usize>())
                .sum();
            prop_assert!(
                persist.used_bytes() <= CAP.max(dirty_total) + SPACE as usize,
                "used {} exceeds capacity {} + slack", persist.used_bytes(), CAP
            );
            prop_assert_eq!(persist.used_bytes(), mirror.used_bytes());
        }
    }
}

/// Re-feeds the oracle's bytes over one quarantined range, the way the
/// proxy's miss path (clean: a refetch) or the application (dirty: a
/// re-issued write) would. Quarantine is block-granular, so an event
/// may overhang the oracle's coverage — only the covered runs are
/// repairable, and only they are compared afterwards.
fn repair_from(
    persist: &mut PersistentStore,
    mirror: &mut MemStore,
    ev: &gvfs_core::store::IntegrityEvent,
) {
    let len = usize::try_from(ev.len).expect("extent fits");
    let end = ev.offset + ev.len;
    let mut pos = ev.offset;
    for (goff, glen) in mirror.missing_ranges(ev.fh, ev.offset, len).into_iter().chain([(end, 0)]) {
        if pos < goff {
            let run = usize::try_from(goff - pos).expect("run fits");
            let bytes = mirror.read(ev.fh, pos, run).expect("between gaps the run is covered");
            if ev.dirty {
                persist.write_dirty(ev.fh, pos, bytes);
            } else {
                persist.insert_clean(ev.fh, pos, bytes);
            }
        }
        pos = goff + glen as u64;
    }
}

/// Expands a store's dirty tiling into a per-byte set, so the
/// corruption arm can compare dirtiness without demanding that the two
/// stores coalesce repaired runs into identical `(offset, len)` pairs.
fn dirty_byte_sets(store: &mut dyn BlockStore) -> Vec<Vec<bool>> {
    (0..NFILES)
        .map(|i| {
            let mut set = vec![false; SPACE as usize];
            for (off, len) in store.dirty_ranges(fh(i)) {
                for b in &mut set[off as usize..off as usize + len] {
                    *b = true;
                }
            }
            set
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Corruption arm: a seeded [`DiskFaultPlan`] rolls bit flips, torn
    /// sector writes and transient read errors under an arbitrary op
    /// sequence. Crash ops are excluded on purpose: WAL replay skips
    /// pre-write verification, so a crash inside the fault window could
    /// launder rot into "recovered" state — that corner is carved out
    /// here exactly as it is in the chaos scenario, and covered by the
    /// WAL-frame quarantine regression test instead.
    ///
    /// The live property is one-sided: every read the store *answers*
    /// must be byte-identical to the oracle — a rotted or unreadable
    /// block may surface only as `None` (a quarantine-induced miss),
    /// never as wrong bytes, and never with `served` set while
    /// verification is on. Quarantined extents are repaired the way the
    /// proxy's miss path would — clean extents re-inserted from the
    /// oracle (a refetch), dirty extents re-written (the application
    /// re-issuing the write it was told was lost). After the fault plan
    /// is disarmed, one full scrub sweep plus those repairs must
    /// reconverge the store with the oracle byte for byte.
    #[test]
    fn corruption_is_quarantined_never_served(
        ops in proptest::collection::vec(op_strategy(false), 1..40),
        probes in proptest::collection::vec((0..NFILES, 0..SPACE - 1, 1usize..300), 6),
        seed in 0u64..1 << 32,
    ) {
        let disk = VirtualDisk::new(DiskConfig::instant());
        let mut persist = big_store(disk.clone());
        let mut mirror = MemStore::new(1 << 30);

        // Outside the simulator the disk clock is pinned at ZERO, so
        // one open-ended window keeps every fault armed for the whole
        // op sequence. The plan covers only data/ and chunks/ — WAL
        // corruption has its own replay-path tests.
        let always = Window::new(SimTime::ZERO, SimTime::from_secs(1));
        disk.set_fault_plan(Some(
            DiskFaultPlan::new(seed)
                .with_flips(always, 0.05)
                .with_torn_writes(always, 0.05)
                .with_transient_read_errors(0, SPACE / 2, 0.05)
                .with_path_prefix("data/")
                .with_path_prefix("chunks/"),
        ));

        let mut counter = 0u32;
        for op in &ops {
            counter += 1;
            apply(&mut persist, op, counter);
            apply(&mut mirror, op, counter);
            for &(file, offset, len) in &probes {
                let len = len.min((SPACE - offset) as usize);
                if let Some(p) = persist.read(fh(file), offset, len) {
                    let m = mirror.read(fh(file), offset, len);
                    prop_assert_eq!(
                        Some(p), m,
                        "served bytes diverged from the oracle on read({}, {}, {}) after {:?}",
                        file, offset, len, op
                    );
                }
            }
            // Repair what this iteration quarantined, while the oracle
            // still holds the matching state. Repair writes roll the
            // same torn-write dice, so a repair may itself be
            // re-quarantined later — the post-disarm sweep settles it.
            for ev in persist.take_integrity_events() {
                prop_assert!(!ev.served, "verification is on: nothing may be served corrupt");
                repair_from(&mut persist, &mut mirror, &ev);
            }
        }

        // Disarm the rot, then sweep-and-repair to a fixed point. One
        // pass is not always enough: a repair write that only partially
        // covers a block pre-verifies the block's old content, and a
        // stale rotted sum there quarantines a *neighboring* extent —
        // which the next pass repairs in turn. Each pass rewrites rot
        // with fresh content and sums, so the fallout strictly shrinks.
        disk.set_fault_plan(None);
        let mut settled = false;
        for _ in 0..8 {
            persist.scrub_step(usize::MAX);
            let events = persist.take_integrity_events();
            if events.is_empty() {
                settled = true;
                break;
            }
            for ev in events {
                prop_assert!(!ev.served);
                repair_from(&mut persist, &mut mirror, &ev);
            }
        }
        // At the fixed point nothing is left to quarantine, and the
        // store agrees with the oracle byte for byte (tilings may
        // coalesce differently after repair, so dirtiness is compared
        // per byte, not per run).
        prop_assert!(settled, "the repaired store must verify clean");
        let p = fingerprint(&mut persist);
        let m = fingerprint(&mut mirror);
        prop_assert_eq!(p.content, m.content, "post-repair content must match the oracle");
        prop_assert_eq!(
            dirty_byte_sets(&mut persist),
            dirty_byte_sets(&mut mirror),
            "post-repair dirtiness must match the oracle"
        );
    }
}
