//! Read-ahead pipeline tests: sequential detection, prefetch claiming,
//! and — the load-bearing property — that a prefetch in flight across an
//! invalidation (GETINV or callback recall) is provably discarded and
//! never resurrects stale data or clobbers a newer local write.

use gvfs_client::{MountOptions, NfsClient};
use gvfs_core::session::{Session, SessionConfig};
use gvfs_core::ConsistencyModel;
use gvfs_netsim::link::LinkConfig;
use gvfs_netsim::Sim;
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::Duration;

const BLOCK: u64 = 32 * 1024; // gvfs_server::TRANSFER_SIZE

/// Seeds a file straight into the server-side VFS so the proxy cache
/// stays cold — a read of it is a true WAN miss.
fn seed(vfs: &Arc<gvfs_vfs::Vfs>, name: &str, data: &[u8]) {
    let t = gvfs_vfs::Timestamp::from_nanos(0);
    let f = vfs.create(vfs.root(), name, 0o644, t).expect("create seed file");
    vfs.write(f, 0, data, t).expect("write seed data");
}

fn polling(period_secs: u64) -> SessionConfig {
    SessionConfig {
        model: ConsistencyModel::InvalidationPolling {
            period: Duration::from_secs(period_secs),
            backoff_max: None,
        },
        ..SessionConfig::default()
    }
}

/// A link where pipelining matters: high propagation delay, enough
/// bandwidth that serialization does not dominate.
fn long_fat_link() -> LinkConfig {
    LinkConfig::wan().with_rtt(Duration::from_millis(200)).with_bandwidth_bps(100_000_000)
}

#[test]
fn sequential_read_triggers_prefetch_and_hits() {
    let sim = Sim::new();
    let session = Session::builder(polling(300)).clients(1).wan(long_fat_link()).establish(&sim);
    let transport = session.client_transport(0);
    let root = session.root_fh();
    let handle = session.handle();
    seed(session.vfs(), "seq", &vec![5u8; 16 * BLOCK as usize]);
    let session = Arc::new(session);
    let s2 = Arc::clone(&session);
    sim.spawn("app", move || {
        let client = NfsClient::new(transport, root, MountOptions::noac());
        let fh = client.open("/seq").unwrap();
        for b in 0..16u64 {
            let data = client.read(fh, b * BLOCK, BLOCK as u32).unwrap();
            assert_eq!(data, vec![5u8; BLOCK as usize], "block {b}");
        }
        let stats = s2.proxy_client(0).stats();
        assert!(stats.read_misses > 0, "cold read must miss: {stats:?}");
        assert!(stats.prefetch_issued >= 8, "window must open: {stats:?}");
        assert!(stats.prefetch_hits >= 8, "demand reads must claim prefetches: {stats:?}");
        assert_eq!(stats.prefetch_wasted, 0, "nothing invalidated: {stats:?}");
        handle.shutdown();
    });
    sim.run();
}

#[test]
fn pipelined_read_beats_serial_on_long_fat_link() {
    // The same cold sequential read, once with the pipeline and once
    // with the pre-pipeline serial path; virtual time must favor the
    // pipeline by at least 2x. This is the in-tree twin of the
    // `readahead` bench ablation gate.
    fn run(pipeline: bool) -> Duration {
        let config = SessionConfig {
            pipeline_read: pipeline,
            readahead_window: if pipeline { 8 } else { 0 },
            ..polling(300)
        };
        let sim = Sim::new();
        let session = Session::builder(config).clients(1).wan(long_fat_link()).establish(&sim);
        let transport = session.client_transport(0);
        let root = session.root_fh();
        let handle = session.handle();
        seed(session.vfs(), "seq", &vec![7u8; 16 * BLOCK as usize]);
        let elapsed = Arc::new(Mutex::new(Duration::ZERO));
        let out = Arc::clone(&elapsed);
        sim.spawn("app", move || {
            let client = NfsClient::new(transport, root, MountOptions::noac());
            let fh = client.open("/seq").unwrap();
            let t0 = gvfs_netsim::now();
            for b in 0..16u64 {
                let data = client.read(fh, b * BLOCK, BLOCK as u32).unwrap();
                assert_eq!(data, vec![7u8; BLOCK as usize], "block {b}");
            }
            *out.lock() = gvfs_netsim::now().saturating_since(t0);
            handle.shutdown();
        });
        sim.run();
        let t = *elapsed.lock();
        t
    }
    let serial = run(false);
    let pipelined = run(true);
    assert!(
        serial >= pipelined * 2,
        "read-ahead must at least halve the cold sequential read: serial {serial:?}, pipelined {pipelined:?}"
    );
}

#[test]
fn getinv_cancels_in_flight_prefetch() {
    // Reader's window is open (speculative READs pending) when a remote
    // write invalidates the file via GETINV. The pending prefetches must
    // be discarded — counted as wasted — and the next read must observe
    // the new version, never the prefetched stale bytes.
    let sim = Sim::new();
    let session = Session::builder(polling(30)).clients(2).establish(&sim);
    let (t0, t1) = (session.client_transport(0), session.client_transport(1));
    let root = session.root_fh();
    let handle = session.handle();
    let session = Arc::new(session);
    let s2 = Arc::clone(&session);
    sim.spawn("writer", move || {
        let c = NfsClient::new(t0, root, MountOptions::noac());
        let fh = c.write_file("/big", &vec![1u8; 6 * BLOCK as usize]).unwrap();
        gvfs_netsim::sleep(Duration::from_secs(60));
        c.write(fh, 3 * BLOCK, &vec![2u8; BLOCK as usize]).unwrap();
    });
    sim.spawn("reader", move || {
        let c = NfsClient::new(t1, root, MountOptions::noac());
        gvfs_netsim::sleep(Duration::from_secs(10));
        let fh = c.open("/big").unwrap();
        // Two sequential reads arm the detector; the window opens with
        // speculative READs for blocks 2..6 that nobody claims.
        assert_eq!(c.read(fh, 0, BLOCK as u32).unwrap(), vec![1u8; BLOCK as usize]);
        assert_eq!(c.read(fh, BLOCK, BLOCK as u32).unwrap(), vec![1u8; BLOCK as usize]);
        let armed = s2.proxy_client(1).stats();
        assert!(armed.prefetch_issued > 0, "window must be open: {armed:?}");
        assert_eq!(armed.prefetch_wasted, 0, "{armed:?}");
        // The writer updates block 3 at t=60; our GETINV poll picks the
        // invalidation up within one period and must cancel the window.
        gvfs_netsim::sleep(Duration::from_secs(90));
        c.drop_caches();
        let data = c.read(fh, 3 * BLOCK, BLOCK as u32).unwrap();
        assert_eq!(data, vec![2u8; BLOCK as usize], "stale prefetch must not win");
        let stats = s2.proxy_client(1).stats();
        assert!(stats.prefetch_wasted > 0, "cancelled window counted: {stats:?}");
        handle.shutdown();
    });
    sim.run();
}

#[test]
fn delegation_recall_cancels_in_flight_prefetch() {
    // Same property under the strong model: the recall that precedes a
    // remote write must tear the reader's open window down, and the
    // post-recall read must be current immediately.
    let sim = Sim::new();
    let session = Session::builder(SessionConfig {
        model: ConsistencyModel::delegation(),
        ..SessionConfig::default()
    })
    .clients(2)
    .establish(&sim);
    let (t0, t1) = (session.client_transport(0), session.client_transport(1));
    let root = session.root_fh();
    let handle = session.handle();
    let session = Arc::new(session);
    let s2 = Arc::clone(&session);
    sim.spawn("writer", move || {
        let c = NfsClient::new(t0, root, MountOptions::noac());
        let fh = c.write_file("/d", &vec![1u8; 6 * BLOCK as usize]).unwrap();
        gvfs_netsim::sleep(Duration::from_secs(20));
        // Recalls the reader's read delegation before the write applies.
        c.write(fh, 3 * BLOCK, &vec![2u8; BLOCK as usize]).unwrap();
    });
    sim.spawn("reader", move || {
        let c = NfsClient::new(t1, root, MountOptions::noac());
        gvfs_netsim::sleep(Duration::from_secs(10));
        let fh = c.open("/d").unwrap();
        assert_eq!(c.read(fh, 0, BLOCK as u32).unwrap(), vec![1u8; BLOCK as usize]);
        assert_eq!(c.read(fh, BLOCK, BLOCK as u32).unwrap(), vec![1u8; BLOCK as usize]);
        assert!(s2.proxy_client(1).stats().prefetch_issued > 0);
        // t=20: the writer's recall lands. Strong consistency: the very
        // next read must see the new version.
        gvfs_netsim::sleep(Duration::from_secs(15));
        c.drop_caches();
        let data = c.read(fh, 3 * BLOCK, BLOCK as u32).unwrap();
        assert_eq!(data, vec![2u8; BLOCK as usize], "recall must beat the prefetch");
        let stats = s2.proxy_client(1).stats();
        assert!(stats.prefetch_wasted > 0, "recalled window counted: {stats:?}");
        handle.shutdown();
    });
    sim.run();
}

#[test]
fn claimed_prefetch_does_not_clobber_delayed_write_attrs() {
    // put_attr_prefetch regression, end to end: a speculative READ is in
    // flight with the server's (older) attributes when the application
    // delays a local write to the same block. Claiming the prefetch must
    // keep the dirty bytes on top and must not roll the cached
    // attributes back to the server's — which would make the delayed
    // write invisible to revalidation.
    let config = SessionConfig { write_back: true, ..polling(300) };
    let sim = Sim::new();
    let session = Session::builder(config).clients(1).wan(long_fat_link()).establish(&sim);
    let transport = session.client_transport(0);
    let root = session.root_fh();
    let wan = session.wan_stats().clone();
    let vfs = Arc::clone(session.vfs());
    let handle = session.handle();
    seed(session.vfs(), "raced", &vec![3u8; 4 * BLOCK as usize]);
    let session = Arc::new(session);
    let s2 = Arc::clone(&session);
    sim.spawn("app", move || {
        let client = NfsClient::new(transport, root, MountOptions::noac());
        let fh = client.open("/raced").unwrap();
        // Arm the detector: the window opens with blocks 2..4 in flight.
        assert_eq!(client.read(fh, 0, BLOCK as u32).unwrap(), vec![3u8; BLOCK as usize]);
        assert_eq!(client.read(fh, BLOCK, BLOCK as u32).unwrap(), vec![3u8; BLOCK as usize]);
        assert!(s2.proxy_client(0).stats().prefetch_issued > 0);
        // Delay a dirty write into block 2 while its prefetch is pending.
        client.write(fh, 2 * BLOCK + 100, &[9u8; 10]).unwrap();
        let before = wan.snapshot();
        client.drop_caches();
        // This demand read claims the pending block-2 prefetch; the
        // reply's stale attributes must be rejected, the dirty bytes
        // must overlay the fetched clean data.
        let data = client.read(fh, 2 * BLOCK, BLOCK as u32).unwrap();
        let mut expected = vec![3u8; BLOCK as usize];
        expected[100..110].copy_from_slice(&[9u8; 10]);
        assert_eq!(data, expected, "dirty bytes overlay the claimed prefetch");
        let stats = s2.proxy_client(0).stats();
        assert!(stats.prefetch_hits > 0, "the prefetch was claimed: {stats:?}");
        // The delayed write is still delayed — no WRITE crossed the WAN.
        let delta = wan.snapshot().since(&before);
        assert_eq!(delta.calls(gvfs_nfs3::NFS_PROGRAM, gvfs_nfs3::proc3::WRITE), 0);
        assert_eq!(
            delta.calls(gvfs_core::protocol::GVFS_PROXY_PROGRAM, gvfs_nfs3::proc3::WRITE),
            0,
            "claiming a prefetch must not force the delayed write out: {delta}"
        );
        // Shutdown flushes; the server ends with the merged content.
        handle.shutdown();
        let file = vfs.lookup_path("/raced").unwrap();
        let (server_data, _) = vfs.read(file, 2 * BLOCK, BLOCK as u32).unwrap();
        assert_eq!(server_data, expected, "delayed write survived the prefetch");
    });
    sim.run();
}

#[test]
fn gap_only_fetch_skips_dirty_edges() {
    // A read spanning [dirty][gap][dirty] must fetch only the gap —
    // exactly one WAN READ — and must never refetch (and thus clobber)
    // the locally delayed dirty bytes.
    let config = SessionConfig { write_back: true, ..polling(300) };
    let sim = Sim::new();
    let session = Session::builder(config).clients(1).establish(&sim);
    let transport = session.client_transport(0);
    let root = session.root_fh();
    let wan = session.wan_stats().clone();
    let handle = session.handle();
    seed(session.vfs(), "gappy", &vec![4u8; BLOCK as usize]);
    let session = Arc::new(session);
    let s2 = Arc::clone(&session);
    sim.spawn("app", move || {
        let client = NfsClient::new(transport, root, MountOptions::noac());
        // Readahead off: this test isolates the gap planner.
        s2.proxy_client(0).set_readahead(0, 2);
        let fh = client.open("/gappy").unwrap();
        // Delay dirty writes at the two edges of the block.
        client.write(fh, 0, &[9u8; 100]).unwrap();
        client.write(fh, BLOCK - 100, &[9u8; 100]).unwrap();
        client.drop_caches();
        let before = wan.snapshot();
        let data = client.read(fh, 0, BLOCK as u32).unwrap();
        let mut expected = vec![4u8; BLOCK as usize];
        expected[..100].copy_from_slice(&[9u8; 100]);
        expected[BLOCK as usize - 100..].copy_from_slice(&[9u8; 100]);
        assert_eq!(data, expected, "dirty edges overlay the fetched middle");
        let delta = wan.snapshot().since(&before);
        let reads = delta.calls(gvfs_nfs3::NFS_PROGRAM, gvfs_nfs3::proc3::READ)
            + delta.calls(gvfs_core::protocol::GVFS_PROXY_PROGRAM, gvfs_nfs3::proc3::READ);
        assert_eq!(reads, 1, "only the middle gap crosses the WAN: {delta}");
        handle.shutdown();
    });
    sim.run();
}
