/root/repo/target/debug/deps/fig7-6dc6acf4e5dd782c.d: /root/repo/clippy.toml crates/bench/src/bin/fig7.rs Cargo.toml

/root/repo/target/debug/deps/libfig7-6dc6acf4e5dd782c.rmeta: /root/repo/clippy.toml crates/bench/src/bin/fig7.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/src/bin/fig7.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
