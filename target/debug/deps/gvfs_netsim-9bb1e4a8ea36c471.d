/root/repo/target/debug/deps/gvfs_netsim-9bb1e4a8ea36c471.d: crates/netsim/src/lib.rs crates/netsim/src/link.rs crates/netsim/src/transport.rs crates/netsim/src/sched.rs crates/netsim/src/time.rs

/root/repo/target/debug/deps/libgvfs_netsim-9bb1e4a8ea36c471.rlib: crates/netsim/src/lib.rs crates/netsim/src/link.rs crates/netsim/src/transport.rs crates/netsim/src/sched.rs crates/netsim/src/time.rs

/root/repo/target/debug/deps/libgvfs_netsim-9bb1e4a8ea36c471.rmeta: crates/netsim/src/lib.rs crates/netsim/src/link.rs crates/netsim/src/transport.rs crates/netsim/src/sched.rs crates/netsim/src/time.rs

crates/netsim/src/lib.rs:
crates/netsim/src/link.rs:
crates/netsim/src/transport.rs:
crates/netsim/src/sched.rs:
crates/netsim/src/time.rs:
