//! The PostMark benchmark (Figure 5).
//!
//! Katcher's small-file workload: create an initial pool of files
//! across subdirectories, run transactions — each a (read | append)
//! paired with a (create | delete) — then delete everything. Parameters
//! default to the values printed in the paper's Figure 5 inset.

use gvfs_client::{ClientError, NfsClient};
use gvfs_nfs3::Fh3;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

/// PostMark parameters (defaults = the paper's Figure 5 box).
#[derive(Debug, Clone)]
pub struct PostmarkConfig {
    /// Initial number of files.
    pub files: usize,
    /// Number of transactions.
    pub transactions: usize,
    /// Minimum file size in bytes.
    pub min_size: usize,
    /// Maximum file size in bytes.
    pub max_size: usize,
    /// Number of subdirectories.
    pub subdirs: usize,
    /// Read/write block size in bytes.
    pub block: usize,
    /// Bias for read vs append, out of 10 (9 = 90 % reads).
    pub read_bias: u32,
    /// Bias for create vs delete, out of 10 (5 = 50/50).
    pub create_bias: u32,
    /// RNG seed (runs are deterministic given the seed).
    pub seed: u64,
}

impl Default for PostmarkConfig {
    fn default() -> Self {
        PostmarkConfig {
            files: 600,
            transactions: 600,
            min_size: 32 * 1024,
            max_size: 640 * 1024,
            subdirs: 100,
            block: 32 * 1024,
            read_bias: 9,
            create_bias: 5,
            seed: 0x9057_3a2e,
        }
    }
}

impl PostmarkConfig {
    /// A reduced configuration for fast tests.
    pub fn small() -> Self {
        PostmarkConfig {
            files: 30,
            transactions: 40,
            min_size: 4 * 1024,
            max_size: 32 * 1024,
            subdirs: 8,
            ..Default::default()
        }
    }
}

/// Counters reported by a PostMark run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PostmarkReport {
    /// Total virtual wall-clock duration.
    pub runtime: Duration,
    /// Files created (initial pool + transaction creates).
    pub created: usize,
    /// Files deleted.
    pub deleted: usize,
    /// Whole-file reads performed.
    pub reads: usize,
    /// Appends performed.
    pub appends: usize,
    /// Bytes read.
    pub bytes_read: u64,
    /// Bytes written.
    pub bytes_written: u64,
}

struct LiveFile {
    path: String,
    fh: Fh3,
    size: usize,
}

/// Runs PostMark through `client`. Must run inside a simulation actor.
///
/// # Panics
///
/// Panics on unexpected filesystem errors.
pub fn run(client: &NfsClient, config: &PostmarkConfig) -> PostmarkReport {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut report = PostmarkReport::default();
    let t0 = gvfs_netsim::now();
    let root = client.root();

    // Working directory and subdirectories.
    let base = client.mkdir(root, "pm").expect("mkdir pm");
    let mut dirs = Vec::with_capacity(config.subdirs);
    for d in 0..config.subdirs {
        dirs.push(client.mkdir(base, &format!("s{d:03}")).expect("mkdir subdir"));
    }

    let mut live: Vec<LiveFile> = Vec::new();
    let mut next_id = 0usize;
    let mut create = |client: &NfsClient,
                      rng: &mut StdRng,
                      live: &mut Vec<LiveFile>,
                      report: &mut PostmarkReport| {
        let d = rng.gen_range(0..config.subdirs);
        let name = format!("f{next_id:06}");
        next_id += 1;
        let path = format!("/pm/s{d:03}/{name}");
        let size = rng.gen_range(config.min_size..=config.max_size);
        let fh = client.create(dirs[d], &name, true).expect("create file");
        // PostMark writes the initial content in blocks.
        let mut written = 0;
        let payload = vec![b'p'; config.block];
        while written < size {
            let n = config.block.min(size - written);
            client.write(fh, written as u64, &payload[..n]).expect("write block");
            written += n;
        }
        report.created += 1;
        report.bytes_written += size as u64;
        live.push(LiveFile { path, fh, size });
    };

    // Phase 1: initial pool.
    for _ in 0..config.files {
        create(client, &mut rng, &mut live, &mut report);
    }

    // Phase 2: transactions.
    for _ in 0..config.transactions {
        // Read or append.
        if !live.is_empty() {
            let idx = rng.gen_range(0..live.len());
            if rng.gen_range(0u32..10) < config.read_bias {
                let f = &live[idx];
                let fh = client.open(&f.path).expect("open for read");
                let mut offset = 0usize;
                while offset < f.size {
                    let n = config.block.min(f.size - offset);
                    let data = client.read(fh, offset as u64, n as u32).expect("read block");
                    report.bytes_read += data.len() as u64;
                    offset += n;
                }
                report.reads += 1;
            } else {
                let grow = rng.gen_range(512..=config.block);
                let f = &mut live[idx];
                client.write(f.fh, f.size as u64, &vec![b'a'; grow]).expect("append");
                f.size += grow;
                report.appends += 1;
                report.bytes_written += grow as u64;
            }
        }
        // Create or delete.
        if rng.gen_range(0u32..10) < config.create_bias || live.is_empty() {
            create(client, &mut rng, &mut live, &mut report);
        } else {
            let idx = rng.gen_range(0..live.len());
            let victim = live.swap_remove(idx);
            match client.remove_path(&victim.path) {
                Ok(()) | Err(ClientError::Nfs(gvfs_nfs3::Nfsstat3::Noent)) => {}
                Err(e) => panic!("delete failed: {e}"),
            }
            report.deleted += 1;
        }
    }

    // Phase 3: delete the remaining pool.
    for f in live.drain(..) {
        client.remove_path(&f.path).expect("final delete");
        report.deleted += 1;
    }

    report.runtime = gvfs_netsim::now().saturating_since(t0);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_inset() {
        let c = PostmarkConfig::default();
        assert_eq!(c.files, 600);
        assert_eq!(c.transactions, 600);
        assert_eq!(c.min_size, 32 * 1024);
        assert_eq!(c.max_size, 640 * 1024);
        assert_eq!(c.subdirs, 100);
        assert_eq!(c.read_bias, 9);
        assert_eq!(c.create_bias, 5);
    }
}
