// expect: blocking-in-actor
// as: crates/core/src/proxy/client.rs
// Known-bad: real thread sleep inside actor-scoped code blocks the
// simulation actor instead of parking on the virtual clock.
fn backoff(&self) {
    std::thread::sleep(Duration::from_millis(50));
}
