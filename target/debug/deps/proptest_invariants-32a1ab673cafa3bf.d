/root/repo/target/debug/deps/proptest_invariants-32a1ab673cafa3bf.d: crates/vfs/tests/proptest_invariants.rs

/root/repo/target/debug/deps/proptest_invariants-32a1ab673cafa3bf: crates/vfs/tests/proptest_invariants.rs

crates/vfs/tests/proptest_invariants.rs:
