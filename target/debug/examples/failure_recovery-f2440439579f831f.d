/root/repo/target/debug/examples/failure_recovery-f2440439579f831f.d: /root/repo/clippy.toml crates/bench/../../examples/failure_recovery.rs Cargo.toml

/root/repo/target/debug/examples/libfailure_recovery-f2440439579f831f.rmeta: /root/repo/clippy.toml crates/bench/../../examples/failure_recovery.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/../../examples/failure_recovery.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
