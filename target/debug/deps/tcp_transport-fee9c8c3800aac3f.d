/root/repo/target/debug/deps/tcp_transport-fee9c8c3800aac3f.d: crates/rpc/tests/tcp_transport.rs

/root/repo/target/debug/deps/tcp_transport-fee9c8c3800aac3f: crates/rpc/tests/tcp_transport.rs

crates/rpc/tests/tcp_transport.rs:
