//! Read-path baseline: cold sequential, warm re-read, and random-order
//! reads of a 1 MiB file over the long-fat link, under each read-path
//! configuration (serial, gap-only, gap+readahead). Emits
//! `results/BENCH_read.json` with per-config wall times, WAN RPC counts
//! and the proxy's read-path counters, so regressions in the pipelined
//! read engine show up as numbers, not vibes.
//!
//! Run: `cargo run --release -p gvfs-bench --bin bench_read [--small]`

use gvfs_bench::{nfs_calls, print_table, read_path_json, save_json, small_mode};
use gvfs_client::{MountOptions, NfsClient};
use gvfs_core::session::{Session, SessionConfig};
use gvfs_core::ConsistencyModel;
use gvfs_netsim::link::LinkConfig;
use gvfs_netsim::Sim;
use gvfs_nfs3::proc3;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::Duration;

const BLOCK: u64 = 32 * 1024;

struct Phase {
    name: &'static str,
    wall_s: f64,
    wan_reads: u64,
    wan_total: u64,
}

/// One simulated session: cold sequential pass, warm sequential
/// re-read, then a cold random-order pass over a second file. Returns
/// the JSON block plus (cold-sequential wall time, warm-pass WAN READs)
/// for the sanity gates.
fn run_config(
    label: &str,
    pipeline: bool,
    window: usize,
    blocks: u64,
) -> (serde_json::Value, f64, u64) {
    let sim = Sim::new();
    let session = Session::builder(SessionConfig {
        model: ConsistencyModel::InvalidationPolling {
            period: Duration::from_secs(300),
            backoff_max: None,
        },
        pipeline_read: pipeline,
        readahead_window: window,
        ..SessionConfig::default()
    })
    .clients(1)
    .wan(LinkConfig::wan().with_rtt(Duration::from_millis(200)).with_bandwidth_bps(100_000_000))
    .establish(&sim);
    let t = session.client_transport(0);
    let root = session.root_fh();
    let stats = session.wan_stats().clone();
    let handle = session.handle();
    // Seed both files server-side so the proxy cache starts cold.
    let seed_t = gvfs_vfs::Timestamp::from_nanos(0);
    let vfs = session.vfs();
    for name in ["seq", "rand"] {
        let f = vfs.create(vfs.root(), name, 0o644, seed_t).unwrap();
        vfs.write(f, 0, &vec![6u8; (blocks * BLOCK) as usize], seed_t).unwrap();
    }
    let session = Arc::new(session);
    let s2 = Arc::clone(&session);
    let phases: Arc<Mutex<Vec<Phase>>> = Arc::new(Mutex::new(Vec::new()));
    let ph = Arc::clone(&phases);
    let read_path = Arc::new(Mutex::new(serde_json::Value::Null));
    let rp = Arc::clone(&read_path);
    sim.spawn("reader", move || {
        let c = NfsClient::new(t, root, MountOptions::noac());
        let record = |name: &'static str, f: &mut dyn FnMut(&NfsClient)| {
            c.drop_caches(); // every phase reaches the proxy
            let before = stats.snapshot();
            let t0 = gvfs_netsim::now();
            f(&c);
            let wall = gvfs_netsim::now().saturating_since(t0).as_secs_f64();
            let delta = stats.snapshot().since(&before);
            ph.lock().push(Phase {
                name,
                wall_s: wall,
                wan_reads: nfs_calls(&delta, proc3::READ),
                wan_total: delta.total_calls(),
            });
        };
        let seq = c.open("/seq").unwrap();
        record("sequential_cold", &mut |c| {
            for b in 0..blocks {
                assert_eq!(
                    c.read(seq, b * BLOCK, BLOCK as u32).unwrap(),
                    vec![6u8; BLOCK as usize]
                );
            }
        });
        record("sequential_warm", &mut |c| {
            for b in 0..blocks {
                assert_eq!(
                    c.read(seq, b * BLOCK, BLOCK as u32).unwrap(),
                    vec![6u8; BLOCK as usize]
                );
            }
        });
        let rnd = c.open("/rand").unwrap();
        let mut order: Vec<u64> = (0..blocks).collect();
        let mut rng = StdRng::seed_from_u64(42);
        for i in (1..order.len()).rev() {
            order.swap(i, rng.gen_range(0..=i));
        }
        record("random_cold", &mut |c| {
            for &b in &order {
                assert_eq!(
                    c.read(rnd, b * BLOCK, BLOCK as u32).unwrap(),
                    vec![6u8; BLOCK as usize]
                );
            }
        });
        *rp.lock() = read_path_json(&s2.proxy_client(0).stats());
        handle.shutdown();
    });
    sim.run();
    let phases = phases.lock();
    let mut rows = Vec::new();
    let mut phase_json = Vec::new();
    for p in phases.iter() {
        rows.push(vec![
            p.name.to_string(),
            format!("{:.3}", p.wall_s),
            p.wan_reads.to_string(),
            p.wan_total.to_string(),
        ]);
        phase_json.push(serde_json::json!({
            "phase": p.name,
            "wall_s": p.wall_s,
            "wan_reads": p.wan_reads,
            "wan_rpcs": p.wan_total,
        }));
    }
    print_table(
        &format!("BENCH_read [{label}] ({blocks} x 32 KiB blocks, 200 ms RTT)"),
        &["phase", "wall (s)", "WAN READs", "WAN RPCs"],
        &rows,
    );
    let doc = serde_json::json!({
        "config": label,
        "pipeline_read": pipeline,
        "readahead_window": window,
        "phases": phase_json,
        "read_path": read_path.lock().clone(),
    });
    (doc, phases[0].wall_s, phases[1].wan_reads)
}

fn main() {
    let blocks: u64 = if small_mode() { 8 } else { 32 };
    let mut configs = Vec::new();
    let mut colds = Vec::new();
    let mut warm_reads = Vec::new();
    for (label, pipeline, window) in
        [("serial", false, 0usize), ("gap-only", true, 0), ("gap+readahead", true, 8)]
    {
        let (doc, cold, warm) = run_config(label, pipeline, window, blocks);
        configs.push(doc);
        colds.push(cold);
        warm_reads.push(warm);
    }
    // Sanity gates: the warm pass must be WAN-free and the pipelined
    // cold pass must beat serial.
    let (serial_cold, ra_cold) = (colds[0], colds[2]);
    assert_eq!(warm_reads[2], 0, "warm re-read must be served from the disk cache");
    println!(
        "\ncold sequential: serial {serial_cold:.3}s, gap+readahead {ra_cold:.3}s ({:.1}x)",
        serial_cold / ra_cold
    );
    save_json(
        "BENCH_read.json",
        &serde_json::json!({
            "experiment": "BENCH_read",
            "blocks": blocks,
            "block_bytes": BLOCK,
            "link": { "rtt_ms": 200, "bandwidth_mbps": 100 },
            "configs": configs,
        }),
    );
}
