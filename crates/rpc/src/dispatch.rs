//! Server-side call routing.
//!
//! An RPC server hosts one or more [`RpcService`]s (program, version)
//! registered with a [`Dispatcher`]. The dispatcher validates the call
//! header and routes the raw argument bytes to the service, mapping
//! service errors to the proper RFC 5531 reply status.

use crate::message::{CallBody, ReplyBody, RPC_VERSION};
use crate::RpcError;
use std::collections::HashMap;
use std::sync::Arc;

/// A remote program implementation.
///
/// Services receive the raw XDR-encoded arguments and return raw
/// XDR-encoded results; typed codecs live in the protocol crates.
pub trait RpcService: Send + Sync {
    /// The ONC RPC program number served.
    fn program(&self) -> u32;
    /// The program version served.
    fn version(&self) -> u32;
    /// Handles one procedure call.
    ///
    /// # Errors
    ///
    /// Implementations return [`RpcError::ProcedureUnavailable`] for unknown
    /// procedures, [`RpcError::GarbageArgs`] for undecodable arguments, and
    /// [`RpcError::SystemError`] for internal failures.
    fn call(&self, procedure: u32, args: &[u8]) -> Result<Vec<u8>, RpcError>;

    /// Handles one procedure call with access to the caller's credential.
    ///
    /// The default implementation ignores the credential and delegates to
    /// [`RpcService::call`]. Services that authenticate callers (like the
    /// GVFS proxy server, which extracts session keys and callback ports
    /// from every request) override this.
    ///
    /// # Errors
    ///
    /// As for [`RpcService::call`], plus [`RpcError::AuthError`] when the
    /// credential is rejected.
    fn call_with_cred(
        &self,
        procedure: u32,
        args: &[u8],
        credential: &crate::message::OpaqueAuth,
    ) -> Result<Vec<u8>, RpcError> {
        let _ = credential;
        self.call(procedure, args)
    }
}

/// Routes calls to registered services.
///
/// See the [crate docs](crate) for a complete example.
#[derive(Default, Clone)]
pub struct Dispatcher {
    services: HashMap<u32, Arc<dyn RpcService>>,
}

impl std::fmt::Debug for Dispatcher {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Dispatcher")
            .field("programs", &self.services.keys().collect::<Vec<_>>())
            .finish()
    }
}

impl Dispatcher {
    /// Creates a dispatcher with no services.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a service, replacing any previous service for the same
    /// program number.
    pub fn register<S: RpcService + 'static>(&mut self, service: S) -> &mut Self {
        self.services.insert(service.program(), Arc::new(service));
        self
    }

    /// Registers a shared service handle.
    pub fn register_arc(&mut self, service: Arc<dyn RpcService>) -> &mut Self {
        self.services.insert(service.program(), service);
        self
    }

    /// Returns `true` if a program is registered.
    pub fn serves(&self, program: u32) -> bool {
        self.services.contains_key(&program)
    }

    /// Routes one call, producing the reply body that should be sent back.
    ///
    /// Never returns an error: every failure maps to an RFC 5531 reply
    /// status so the caller always gets an answer.
    pub fn dispatch(&self, xid: u32, call: &CallBody) -> ReplyBody {
        let _ = xid; // retained for duplicate-request caches layered above
        if call.rpc_version() != RPC_VERSION {
            return ReplyBody::Denied(crate::message::RejectedReply::RpcMismatch {
                low: RPC_VERSION,
                high: RPC_VERSION,
            });
        }
        let Some(service) = self.services.get(&call.program()) else {
            return ReplyBody::from_error(&RpcError::ProgramUnavailable {
                program: call.program(),
            });
        };
        if service.version() != call.version() {
            return ReplyBody::from_error(&RpcError::ProgramMismatch {
                program: call.program(),
                low: service.version(),
                high: service.version(),
            });
        }
        match service.call_with_cred(call.procedure(), call.args(), call.credential()) {
            Ok(results) => ReplyBody::success(results),
            Err(e) => ReplyBody::from_error(&e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{AcceptStat, OpaqueAuth, RejectedReply};

    struct Doubler;
    impl RpcService for Doubler {
        fn program(&self) -> u32 {
            200001
        }
        fn version(&self) -> u32 {
            1
        }
        fn call(&self, procedure: u32, args: &[u8]) -> Result<Vec<u8>, RpcError> {
            match procedure {
                0 => Ok(Vec::new()), // NULL procedure
                1 => {
                    let n: u32 = gvfs_xdr::from_bytes(args).map_err(|_| RpcError::GarbageArgs)?;
                    Ok(gvfs_xdr::to_bytes(&(n * 2)).expect("encode"))
                }
                _ => Err(RpcError::ProcedureUnavailable { program: 200001, procedure }),
            }
        }
    }

    fn dispatcher() -> Dispatcher {
        let mut d = Dispatcher::new();
        d.register(Doubler);
        d
    }

    #[test]
    fn successful_call_doubles() {
        let call =
            CallBody::new(200001, 1, 1, OpaqueAuth::none(), gvfs_xdr::to_bytes(&21u32).unwrap());
        let reply = dispatcher().dispatch(1, &call);
        let n: u32 = gvfs_xdr::from_bytes(reply.results().unwrap()).unwrap();
        assert_eq!(n, 42);
    }

    #[test]
    fn null_procedure_returns_empty() {
        let call = CallBody::new(200001, 1, 0, OpaqueAuth::none(), vec![]);
        assert_eq!(dispatcher().dispatch(1, &call).results().unwrap(), &[] as &[u8]);
    }

    #[test]
    fn unknown_program_is_prog_unavail() {
        let call = CallBody::new(77, 1, 0, OpaqueAuth::none(), vec![]);
        let reply = dispatcher().dispatch(1, &call);
        assert!(matches!(reply, ReplyBody::Accepted { stat: AcceptStat::ProgramUnavailable, .. }));
    }

    #[test]
    fn wrong_version_is_prog_mismatch() {
        let call = CallBody::new(200001, 9, 0, OpaqueAuth::none(), vec![]);
        let reply = dispatcher().dispatch(1, &call);
        assert!(matches!(
            reply,
            ReplyBody::Accepted { stat: AcceptStat::ProgramMismatch { low: 1, high: 1 }, .. }
        ));
    }

    #[test]
    fn unknown_procedure_is_proc_unavail() {
        let call = CallBody::new(200001, 1, 99, OpaqueAuth::none(), vec![]);
        let reply = dispatcher().dispatch(1, &call);
        assert!(matches!(
            reply,
            ReplyBody::Accepted { stat: AcceptStat::ProcedureUnavailable, .. }
        ));
    }

    #[test]
    fn garbage_args_reported() {
        let call = CallBody::new(200001, 1, 1, OpaqueAuth::none(), vec![]);
        let reply = dispatcher().dispatch(1, &call);
        assert!(matches!(reply, ReplyBody::Accepted { stat: AcceptStat::GarbageArgs, .. }));
    }

    #[test]
    fn wrong_rpc_version_is_denied() {
        let mut call = CallBody::new(200001, 1, 0, OpaqueAuth::none(), vec![]);
        // Round-trip through bytes to forge the version field.
        let mut bytes = gvfs_xdr::to_bytes(&call).unwrap();
        bytes[3] = 3; // rpc_version = 3
        call = gvfs_xdr::from_bytes(&bytes).unwrap();
        let reply = dispatcher().dispatch(1, &call);
        assert!(matches!(reply, ReplyBody::Denied(RejectedReply::RpcMismatch { low: 2, high: 2 })));
    }

    #[test]
    fn register_replaces_same_program() {
        struct Tripler;
        impl RpcService for Tripler {
            fn program(&self) -> u32 {
                200001
            }
            fn version(&self) -> u32 {
                1
            }
            fn call(&self, _p: u32, args: &[u8]) -> Result<Vec<u8>, RpcError> {
                let n: u32 = gvfs_xdr::from_bytes(args).map_err(|_| RpcError::GarbageArgs)?;
                Ok(gvfs_xdr::to_bytes(&(n * 3)).expect("encode"))
            }
        }
        let mut d = dispatcher();
        d.register(Tripler);
        let call =
            CallBody::new(200001, 1, 1, OpaqueAuth::none(), gvfs_xdr::to_bytes(&10u32).unwrap());
        let n: u32 = gvfs_xdr::from_bytes(d.dispatch(1, &call).results().unwrap()).unwrap();
        assert_eq!(n, 30);
    }
}
