//! Per-peer WAN health supervision: a circuit breaker fed by call
//! outcomes and a latency EWMA.
//!
//! A wide-area proxy session needs to *know* when its link is sick, not
//! just outwait it: the degradation ladder in the proxy client serves
//! bounded-staleness reads while the breaker is open, and the proxy
//! server short-circuits recalls to clients whose breaker is open
//! instead of burning a callback timeout per access (§4.3.4's
//! revoked-unreachable rule, applied proactively).
//!
//! The state machine is the classic three-state breaker:
//!
//! ```text
//!            failures >= threshold
//!   Closed ────────────────────────▶ Open
//!     ▲                               │ cooldown elapsed
//!     │  probe succeeds               ▼ (cooldown doubles per re-open)
//!     └────────────────────────── HalfOpen
//!                                     │ probe fails
//!                                     └──────▶ Open
//! ```
//!
//! Every method takes an explicit `now` (duration since an arbitrary,
//! monotone epoch) instead of reading a clock, so the breaker is fully
//! deterministic under the virtual-time simulator and trivially unit
//! testable. Latency is tracked as an integer EWMA (alpha = 1/8) —
//! no floating point, no cross-platform drift.

use crate::stats::RpcStats;
use parking_lot::Mutex;
use std::time::Duration;

/// The breaker's externally visible state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// The peer is healthy; calls flow normally.
    Closed,
    /// The peer failed repeatedly; callers should avoid non-essential
    /// traffic and serve degraded until a probe succeeds.
    Open,
    /// The cooldown elapsed; the next call is a probe whose outcome
    /// decides between re-opening and closing.
    HalfOpen,
}

impl BreakerState {
    /// `true` unless the breaker is [`BreakerState::Closed`].
    pub fn is_degraded(&self) -> bool {
        !matches!(self, BreakerState::Closed)
    }
}

/// Tuning knobs for one [`CircuitBreaker`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive breaker-relevant failures that trip Closed → Open.
    pub failure_threshold: u32,
    /// Initial Open → HalfOpen delay after a trip.
    pub cooldown: Duration,
    /// Cap for the cooldown, which doubles every time a half-open probe
    /// fails (so a long outage is probed at a bounded, decaying rate).
    pub cooldown_max: Duration,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        // Three consecutive transport failures on a WAN link is already
        // several seconds of virtual time under the forward path's
        // exponential back-off; a healthy network never strings three
        // together, so the figure-generating benchmarks see no trips.
        Self {
            failure_threshold: 3,
            cooldown: Duration::from_secs(5),
            cooldown_max: Duration::from_secs(60),
        }
    }
}

#[derive(Debug)]
struct Inner {
    state: BreakerState,
    consecutive_failures: u32,
    /// When the breaker last entered Open (paces the next probe).
    reopened_at: Duration,
    /// When the current outage began (first trip of this episode);
    /// drives the client's `degrade_after` ladder rung.
    outage_since: Option<Duration>,
    /// Current Open → HalfOpen delay (doubles per failed probe).
    cooldown: Duration,
    /// Integer EWMA of call latency, alpha = 1/8.
    ewma_latency_nanos: u64,
    trips: u64,
}

/// A deterministic closed/open/half-open circuit breaker for one peer.
///
/// Outcome feeding is the caller's job: report every completed call via
/// [`on_success`](CircuitBreaker::on_success) and every breaker-relevant
/// failure (see `RpcError::trips_breaker`) via
/// [`on_failure`](CircuitBreaker::on_failure). The breaker never gates
/// calls by itself — callers consult [`state`](CircuitBreaker::state)
/// to decide whether to degrade, probe, or short-circuit.
#[derive(Debug)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    stats: Option<RpcStats>,
    inner: Mutex<Inner>,
}

impl CircuitBreaker {
    /// Creates a closed breaker with the given thresholds.
    pub fn new(config: BreakerConfig) -> Self {
        Self {
            config,
            stats: None,
            inner: Mutex::new(Inner {
                state: BreakerState::Closed,
                consecutive_failures: 0,
                reopened_at: Duration::ZERO,
                outage_since: None,
                cooldown: config.cooldown,
                ewma_latency_nanos: 0,
                trips: 0,
            }),
        }
    }

    /// Attaches a stats sink: trips, heals, and probes are tallied into
    /// it so the experiment harness can observe breaker activity through
    /// the same [`RpcStats`] snapshots it already takes.
    pub fn with_stats(mut self, stats: RpcStats) -> Self {
        self.stats = Some(stats);
        self
    }

    /// The configuration this breaker was built with.
    pub fn config(&self) -> BreakerConfig {
        self.config
    }

    /// Reports a successful call and its observed latency. Closes the
    /// breaker from any state and resets the cooldown ladder.
    pub fn on_success(&self, _now: Duration, latency: Duration) {
        let mut inner = self.inner.lock();
        let nanos = u64::try_from(latency.as_nanos()).unwrap_or(u64::MAX);
        inner.ewma_latency_nanos = if inner.ewma_latency_nanos == 0 {
            nanos
        } else {
            inner.ewma_latency_nanos - inner.ewma_latency_nanos / 8 + nanos / 8
        };
        inner.consecutive_failures = 0;
        if inner.state.is_degraded() {
            inner.state = BreakerState::Closed;
            inner.outage_since = None;
            inner.cooldown = self.config.cooldown;
            drop(inner);
            if let Some(stats) = &self.stats {
                stats.record_breaker_heal();
            }
        }
    }

    /// Reports a breaker-relevant failure (transport timeout or an
    /// unreachable peer). Trips Closed → Open at the threshold and
    /// re-opens a half-open breaker with a doubled cooldown.
    pub fn on_failure(&self, now: Duration) {
        let mut inner = self.inner.lock();
        inner.consecutive_failures = inner.consecutive_failures.saturating_add(1);
        let tripped = match inner.state {
            BreakerState::Closed => {
                if inner.consecutive_failures >= self.config.failure_threshold {
                    inner.state = BreakerState::Open;
                    inner.reopened_at = now;
                    inner.outage_since = Some(now);
                    inner.trips += 1;
                    true
                } else {
                    false
                }
            }
            BreakerState::HalfOpen => {
                // The probe failed: back to Open, probing more slowly.
                inner.state = BreakerState::Open;
                inner.reopened_at = now;
                inner.cooldown = (inner.cooldown * 2).min(self.config.cooldown_max);
                false
            }
            BreakerState::Open => {
                // Extra failures while open (e.g. a blocked forward still
                // retrying) re-arm the probe timer but do not re-count as
                // trips.
                inner.reopened_at = now;
                false
            }
        };
        drop(inner);
        if tripped {
            if let Some(stats) = &self.stats {
                stats.record_breaker_trip();
            }
        }
    }

    /// The state at `now`, lazily promoting Open → HalfOpen once the
    /// cooldown since the last (re-)open has elapsed.
    pub fn state(&self, now: Duration) -> BreakerState {
        let mut inner = self.inner.lock();
        if inner.state == BreakerState::Open && now >= inner.reopened_at + inner.cooldown {
            inner.state = BreakerState::HalfOpen;
            drop(inner);
            if let Some(stats) = &self.stats {
                stats.record_breaker_probe();
            }
            return BreakerState::HalfOpen;
        }
        inner.state
    }

    /// How long the current outage has lasted, or `None` when closed.
    /// Measured from the first trip of the episode, not the last re-open,
    /// so the degradation ladder advances monotonically during one
    /// outage.
    pub fn open_for(&self, now: Duration) -> Option<Duration> {
        let inner = self.inner.lock();
        inner.outage_since.map(|since| now.saturating_sub(since))
    }

    /// The integer EWMA (alpha = 1/8) of observed call latency.
    pub fn ewma_latency(&self) -> Duration {
        Duration::from_nanos(self.inner.lock().ewma_latency_nanos)
    }

    /// Total Closed → Open trips since creation.
    pub fn trips(&self) -> u64 {
        self.inner.lock().trips
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: u64) -> Duration {
        Duration::from_secs(s)
    }

    fn breaker() -> CircuitBreaker {
        CircuitBreaker::new(BreakerConfig::default())
    }

    #[test]
    fn stays_closed_below_threshold() {
        let b = breaker();
        b.on_failure(secs(1));
        b.on_failure(secs(2));
        assert_eq!(b.state(secs(3)), BreakerState::Closed);
        assert_eq!(b.trips(), 0);
        assert!(b.open_for(secs(3)).is_none());
    }

    #[test]
    fn trips_at_threshold_and_half_opens_after_cooldown() {
        let b = breaker();
        for t in 1..=3 {
            b.on_failure(secs(t));
        }
        assert_eq!(b.state(secs(3)), BreakerState::Open);
        assert_eq!(b.trips(), 1);
        assert_eq!(b.open_for(secs(10)), Some(secs(7)), "outage began at the trip (t=3)");
        // Cooldown is 5 s from the last failure at t=3.
        assert_eq!(b.state(secs(7)), BreakerState::Open);
        assert_eq!(b.state(secs(8)), BreakerState::HalfOpen);
    }

    #[test]
    fn success_resets_consecutive_failures() {
        let b = breaker();
        b.on_failure(secs(1));
        b.on_failure(secs(2));
        b.on_success(secs(3), Duration::from_millis(10));
        b.on_failure(secs(4));
        b.on_failure(secs(5));
        assert_eq!(b.state(secs(6)), BreakerState::Closed);
    }

    #[test]
    fn failed_probe_reopens_with_doubled_cooldown() {
        let b = breaker();
        for t in 1..=3 {
            b.on_failure(secs(t));
        }
        assert_eq!(b.state(secs(8)), BreakerState::HalfOpen);
        b.on_failure(secs(8));
        // Re-opened at t=8 with a 10 s cooldown now.
        assert_eq!(b.state(secs(17)), BreakerState::Open);
        assert_eq!(b.state(secs(18)), BreakerState::HalfOpen);
        // Still one trip — re-opens within an outage are not new trips —
        // and the outage is still measured from the first trip.
        assert_eq!(b.trips(), 1);
        assert_eq!(b.open_for(secs(18)), Some(secs(15)));
    }

    #[test]
    fn cooldown_is_capped() {
        let b = CircuitBreaker::new(BreakerConfig {
            failure_threshold: 1,
            cooldown: Duration::from_secs(40),
            cooldown_max: Duration::from_secs(60),
        });
        b.on_failure(secs(0));
        assert_eq!(b.state(secs(40)), BreakerState::HalfOpen);
        b.on_failure(secs(40));
        // Doubled 40 s is capped at 60 s.
        assert_eq!(b.state(secs(99)), BreakerState::Open);
        assert_eq!(b.state(secs(100)), BreakerState::HalfOpen);
    }

    #[test]
    fn successful_probe_closes_and_resets_cooldown() {
        let b = breaker();
        for t in 1..=3 {
            b.on_failure(secs(t));
        }
        assert_eq!(b.state(secs(8)), BreakerState::HalfOpen);
        b.on_failure(secs(8)); // cooldown now 10 s
        assert_eq!(b.state(secs(18)), BreakerState::HalfOpen);
        b.on_success(secs(18), Duration::from_millis(200));
        assert_eq!(b.state(secs(19)), BreakerState::Closed);
        assert!(b.open_for(secs(19)).is_none());
        // A fresh outage starts back at the initial 5 s cooldown.
        for t in 20..=22 {
            b.on_failure(secs(t));
        }
        assert_eq!(b.trips(), 2);
        assert_eq!(b.state(secs(26)), BreakerState::Open);
        assert_eq!(b.state(secs(27)), BreakerState::HalfOpen);
    }

    #[test]
    fn latency_ewma_converges() {
        let b = breaker();
        b.on_success(secs(1), Duration::from_millis(100));
        assert_eq!(b.ewma_latency(), Duration::from_millis(100));
        // Feed a long run of 900 ms samples: alpha=1/8 converges near it.
        for t in 2..60 {
            b.on_success(secs(t), Duration::from_millis(900));
        }
        let ewma = b.ewma_latency();
        assert!(ewma > Duration::from_millis(800), "ewma {ewma:?} should approach 900 ms");
        assert!(ewma <= Duration::from_millis(900));
    }

    #[test]
    fn stats_sink_sees_trips_heals_and_probes() {
        let stats = RpcStats::new();
        let b = CircuitBreaker::new(BreakerConfig::default()).with_stats(stats.clone());
        for t in 1..=3 {
            b.on_failure(secs(t));
        }
        let snap = stats.snapshot();
        assert_eq!(snap.breaker_trips(), 1);
        assert_eq!(snap.breakers_open(), 1);
        assert_eq!(b.state(secs(8)), BreakerState::HalfOpen);
        assert_eq!(stats.snapshot().breaker_probes(), 1);
        b.on_success(secs(8), Duration::from_millis(5));
        let snap = stats.snapshot();
        assert_eq!(snap.breakers_open(), 0);
        assert_eq!(snap.breaker_trips(), 1);
    }

    #[test]
    fn degraded_helper_matches_states() {
        assert!(!BreakerState::Closed.is_degraded());
        assert!(BreakerState::Open.is_degraded());
        assert!(BreakerState::HalfOpen.is_degraded());
    }
}
