/root/repo/target/release/deps/gvfs_rpc-af3eea8624beaf41.d: crates/rpc/src/lib.rs crates/rpc/src/dispatch.rs crates/rpc/src/drc.rs crates/rpc/src/message.rs crates/rpc/src/record.rs crates/rpc/src/stats.rs crates/rpc/src/tcp.rs crates/rpc/src/error.rs

/root/repo/target/release/deps/libgvfs_rpc-af3eea8624beaf41.rlib: crates/rpc/src/lib.rs crates/rpc/src/dispatch.rs crates/rpc/src/drc.rs crates/rpc/src/message.rs crates/rpc/src/record.rs crates/rpc/src/stats.rs crates/rpc/src/tcp.rs crates/rpc/src/error.rs

/root/repo/target/release/deps/libgvfs_rpc-af3eea8624beaf41.rmeta: crates/rpc/src/lib.rs crates/rpc/src/dispatch.rs crates/rpc/src/drc.rs crates/rpc/src/message.rs crates/rpc/src/record.rs crates/rpc/src/stats.rs crates/rpc/src/tcp.rs crates/rpc/src/error.rs

crates/rpc/src/lib.rs:
crates/rpc/src/dispatch.rs:
crates/rpc/src/drc.rs:
crates/rpc/src/message.rs:
crates/rpc/src/record.rs:
crates/rpc/src/stats.rs:
crates/rpc/src/tcp.rs:
crates/rpc/src/error.rs:
