/root/repo/target/debug/deps/session_consistency-bd4d10b41e40b2b9.d: /root/repo/clippy.toml crates/core/tests/session_consistency.rs Cargo.toml

/root/repo/target/debug/deps/libsession_consistency-bd4d10b41e40b2b9.rmeta: /root/repo/clippy.toml crates/core/tests/session_consistency.rs Cargo.toml

/root/repo/clippy.toml:
crates/core/tests/session_consistency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
