//! Deterministic virtual-time simulation of wide-area networks.
//!
//! The paper evaluates GVFS on a physical testbed: VMware VMs connected
//! through a [NIST Net] WAN emulator configured with a 40 ms round-trip
//! time and 4 Mbit/s of bandwidth per client–server link. This crate is
//! the in-process substitute: protocol stacks run unmodified over
//! simulated links, and *time is virtual* — an experiment that takes
//! 800 seconds of emulated WAN traffic completes in milliseconds of real
//! time, fully deterministically.
//!
//! # Model
//!
//! * A [`Sim`] hosts a set of **actors** — real OS threads whose progress
//!   through virtual time is serialized by a conservative discrete-event
//!   scheduler: only the actor with the globally minimum local clock runs
//!   at any instant (ties broken by spawn order), so every run of a given
//!   program produces the identical event order.
//! * Actors advance their clock explicitly: [`sleep`], [`advance_to`], or
//!   implicitly by performing RPC over a [`Link`](link::Link), which
//!   charges propagation latency, serialization (bytes ÷ bandwidth) and
//!   link occupancy.
//! * [`park`]/[`ActorHandle::unpark`] let actors wait on conditions
//!   instead of time (e.g. a write-back flusher waiting for dirty blocks).
//! * [`transport::SimRpcClient`] carries real, byte-accurate ONC RPC
//!   messages across a link to a [`transport::ServerNode`] and executes
//!   the server's dispatch inline, nested calls included.
//! * Failure injection: links can be [partitioned](link::Link::set_partitioned),
//!   server nodes taken [down](transport::ServerNode::set_up), and each
//!   link direction can carry a seeded [`fault::FaultPlan`] injecting
//!   probabilistic drop, duplication, jitter and timed partition windows
//!   — all reproducible from one `u64` seed.
//!
//! # Examples
//!
//! ```
//! use gvfs_netsim::{Sim, now, sleep};
//! use std::time::Duration;
//!
//! let sim = Sim::new();
//! let order = std::sync::Arc::new(parking_lot::Mutex::new(Vec::new()));
//! for (name, delay_ms) in [("late", 20u64), ("early", 10)] {
//!     let order = order.clone();
//!     sim.spawn(name, move || {
//!         sleep(Duration::from_millis(delay_ms));
//!         order.lock().push((name, now()));
//!     });
//! }
//! sim.run();
//! let order = order.lock();
//! assert_eq!(order[0].0, "early"); // virtual time, not spawn order
//! assert_eq!(order[1].1.as_nanos(), 20_000_000);
//! ```
//!
//! [NIST Net]: https://en.wikipedia.org/wiki/NIST_Net

pub mod disk;
pub mod fault;
pub mod link;
pub mod transport;

mod sched;
mod time;

pub use sched::{
    advance_to, current_actor, in_actor, now, park, park_timeout, sleep, spawn_from_actor,
    ActorHandle, Sim,
};
pub use time::SimTime;
