//! An in-memory POSIX-style filesystem.
//!
//! This crate substitutes for the disk filesystem exported by the paper's
//! NFS server VM. It implements the operations NFSv3 needs — lookup,
//! create (unchecked/guarded/exclusive), read/write with sparse-file
//! semantics, remove, rename, hard links, symlinks, directories with
//! stable readdir cookies — with POSIX-ish metadata: file ids that are
//! never reused (so stale handles are detectable), link counts, and
//! mtime/ctime maintenance.
//!
//! Time is supplied by the caller (the NFS server passes the simulation
//! clock), keeping this crate independent of the simulator.
//!
//! # Examples
//!
//! ```
//! use gvfs_vfs::{Vfs, Timestamp};
//!
//! # fn main() -> Result<(), gvfs_vfs::VfsError> {
//! let fs = Vfs::new();
//! let t = Timestamp::from_nanos(0);
//! let dir = fs.mkdir(fs.root(), "src", 0o755, t)?;
//! let file = fs.create(fs.root(), "README", 0o644, t)?;
//! fs.write(file, 0, b"hello", t)?;
//! assert_eq!(fs.read(file, 0, 100)?.0, b"hello");
//! assert_eq!(fs.lookup(fs.root(), "src")?, dir);
//! # Ok(())
//! # }
//! ```

mod attr;
mod error;
mod fs;

pub use attr::{Attr, FileKind, SetAttr, Timestamp};
pub use error::VfsError;
pub use fs::{DirEntry, FileId, FsStat, ReadDirPage, Vfs};
