/root/repo/target/debug/deps/full_stack-0d8a49325906b224.d: crates/integration/../../tests/full_stack.rs

/root/repo/target/debug/deps/full_stack-0d8a49325906b224: crates/integration/../../tests/full_stack.rs

crates/integration/../../tests/full_stack.rs:
