/root/repo/target/debug/deps/gvfs_core-8d32bb01b77744c4.d: crates/core/src/lib.rs crates/core/src/cache.rs crates/core/src/delegation.rs crates/core/src/invalidation.rs crates/core/src/protocol.rs crates/core/src/proxy/mod.rs crates/core/src/proxy/client.rs crates/core/src/proxy/server.rs crates/core/src/session.rs crates/core/src/model.rs

/root/repo/target/debug/deps/gvfs_core-8d32bb01b77744c4: crates/core/src/lib.rs crates/core/src/cache.rs crates/core/src/delegation.rs crates/core/src/invalidation.rs crates/core/src/protocol.rs crates/core/src/proxy/mod.rs crates/core/src/proxy/client.rs crates/core/src/proxy/server.rs crates/core/src/session.rs crates/core/src/model.rs

crates/core/src/lib.rs:
crates/core/src/cache.rs:
crates/core/src/delegation.rs:
crates/core/src/invalidation.rs:
crates/core/src/protocol.rs:
crates/core/src/proxy/mod.rs:
crates/core/src/proxy/client.rs:
crates/core/src/proxy/server.rs:
crates/core/src/session.rs:
crates/core/src/model.rs:
