/root/repo/target/release/deps/gvfs_xdr-996bc344ed7a96d2.d: crates/xdr/src/lib.rs crates/xdr/src/decode.rs crates/xdr/src/encode.rs crates/xdr/src/error.rs

/root/repo/target/release/deps/libgvfs_xdr-996bc344ed7a96d2.rlib: crates/xdr/src/lib.rs crates/xdr/src/decode.rs crates/xdr/src/encode.rs crates/xdr/src/error.rs

/root/repo/target/release/deps/libgvfs_xdr-996bc344ed7a96d2.rmeta: crates/xdr/src/lib.rs crates/xdr/src/decode.rs crates/xdr/src/encode.rs crates/xdr/src/error.rs

crates/xdr/src/lib.rs:
crates/xdr/src/decode.rs:
crates/xdr/src/encode.rs:
crates/xdr/src/error.rs:
