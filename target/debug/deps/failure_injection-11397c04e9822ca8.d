/root/repo/target/debug/deps/failure_injection-11397c04e9822ca8.d: crates/integration/../../tests/failure_injection.rs

/root/repo/target/debug/deps/failure_injection-11397c04e9822ca8: crates/integration/../../tests/failure_injection.rs

crates/integration/../../tests/failure_injection.rs:
