//! Virtual time.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};
use std::time::Duration;

/// An instant of virtual time, in nanoseconds since simulation start.
///
/// `SimTime` is totally ordered and only ever moves forward during a
/// simulation. Durations are ordinary [`std::time::Duration`]s.
///
/// # Examples
///
/// ```
/// use gvfs_netsim::SimTime;
/// use std::time::Duration;
///
/// let t = SimTime::ZERO + Duration::from_millis(40);
/// assert_eq!(t.as_secs_f64(), 0.040);
/// assert_eq!(t - SimTime::ZERO, Duration::from_millis(40));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The start of simulated time.
    pub const ZERO: SimTime = SimTime(0);

    /// Builds a time from nanoseconds since simulation start.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Builds a time from whole seconds since simulation start.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000_000)
    }

    /// Builds a time from milliseconds since simulation start.
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * 1_000_000)
    }

    /// Nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating difference `self - earlier` as a [`Duration`];
    /// zero if `earlier` is later.
    pub fn saturating_since(self, earlier: SimTime) -> Duration {
        Duration::from_nanos(self.0.saturating_sub(earlier.0))
    }

    /// The later of two times.
    pub fn max(self, other: SimTime) -> SimTime {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl Add<Duration> for SimTime {
    type Output = SimTime;
    fn add(self, d: Duration) -> SimTime {
        SimTime(self.0 + u64::try_from(d.as_nanos()).expect("duration overflows virtual time"))
    }
}

impl AddAssign<Duration> for SimTime {
    fn add_assign(&mut self, d: Duration) {
        *self = *self + d;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = Duration;
    /// # Panics
    ///
    /// Panics if `rhs` is later than `self`.
    fn sub(self, rhs: SimTime) -> Duration {
        Duration::from_nanos(self.0.checked_sub(rhs.0).expect("negative duration"))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_secs(2), SimTime::from_millis(2000));
        assert_eq!(SimTime::from_millis(1), SimTime::from_nanos(1_000_000));
    }

    #[test]
    fn add_duration_and_subtract() {
        let t = SimTime::from_secs(1) + Duration::from_millis(500);
        assert_eq!(t - SimTime::from_secs(1), Duration::from_millis(500));
    }

    #[test]
    #[should_panic(expected = "negative duration")]
    fn negative_difference_panics() {
        let _ = SimTime::ZERO - SimTime::from_secs(1);
    }

    #[test]
    fn saturating_since_clamps() {
        assert_eq!(SimTime::ZERO.saturating_since(SimTime::from_secs(1)), Duration::ZERO);
    }

    #[test]
    fn display_in_seconds() {
        assert_eq!(SimTime::from_millis(40).to_string(), "0.040000s");
    }

    #[test]
    fn max_picks_later() {
        assert_eq!(SimTime::from_secs(1).max(SimTime::from_secs(2)), SimTime::from_secs(2));
    }
}
