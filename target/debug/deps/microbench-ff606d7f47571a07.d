/root/repo/target/debug/deps/microbench-ff606d7f47571a07.d: /root/repo/clippy.toml crates/bench/benches/microbench.rs Cargo.toml

/root/repo/target/debug/deps/libmicrobench-ff606d7f47571a07.rmeta: /root/repo/clippy.toml crates/bench/benches/microbench.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/benches/microbench.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
