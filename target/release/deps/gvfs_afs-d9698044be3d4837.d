/root/repo/target/release/deps/gvfs_afs-d9698044be3d4837.d: crates/afs/src/lib.rs crates/afs/src/client.rs crates/afs/src/proto.rs crates/afs/src/server.rs

/root/repo/target/release/deps/libgvfs_afs-d9698044be3d4837.rlib: crates/afs/src/lib.rs crates/afs/src/client.rs crates/afs/src/proto.rs crates/afs/src/server.rs

/root/repo/target/release/deps/libgvfs_afs-d9698044be3d4837.rmeta: crates/afs/src/lib.rs crates/afs/src/client.rs crates/afs/src/proto.rs crates/afs/src/server.rs

crates/afs/src/lib.rs:
crates/afs/src/client.rs:
crates/afs/src/proto.rs:
crates/afs/src/server.rs:
