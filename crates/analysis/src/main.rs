//! `gvfs-analysis` — repo-specific static analysis and protocol model
//! checking for the GVFS workspace.
//!
//! ```text
//! cargo run -p gvfs-analysis -- check           # lint + model check (CI entry)
//! cargo run -p gvfs-analysis -- lint            # source lint only
//! cargo run -p gvfs-analysis -- model           # protocol model check only
//! cargo run -p gvfs-analysis -- replay <path>   # trace-conformance replay
//! ```
//!
//! `replay` takes a protocol-event trace (`*.jsonl`, written by
//! `chaos_soak --trace-dir`) or a directory of them and asserts every
//! trace is an accepted path of the protocol model.
//!
//! Exits non-zero when any lint diagnostic, model-checker violation, or
//! trace rejection is found, when the model checker explores
//! suspiciously few states (which would mean the exploration itself is
//! broken), or when `GVFS_ANALYSIS_BUDGET_MS` is set and the run
//! overshoots that wall-clock budget.

use gvfs_analysis::{lint, model, product, replay};
use std::path::PathBuf;
use std::process::ExitCode;

/// Minimum states the model checker must visit for the run to count as
/// a real exploration (acceptance floor; a healthy run is well above).
const MIN_MODEL_STATES: usize = 1_000;

fn usage() -> ExitCode {
    eprintln!("usage: gvfs-analysis <check|lint|model> [workspace-root] | replay <trace-path>");
    ExitCode::from(2)
}

fn run_replay(path: &std::path::Path) -> Result<(), usize> {
    println!("== replay: {} ==", path.display());
    let reports = match replay::replay_path(path) {
        Ok(reports) => reports,
        Err(e) => {
            eprintln!("replay: cannot read {}: {e}", path.display());
            return Err(1);
        }
    };
    if reports.is_empty() {
        eprintln!("replay: no *.jsonl traces under {}", path.display());
        return Err(1);
    }
    let mut rejected = 0usize;
    for report in &reports {
        if report.accepted() {
            println!("replay[{}]: {} events, accepted", report.path.display(), report.events);
        } else {
            rejected += report.rejections.len();
            println!(
                "replay[{}]: {} events, {} rejection(s)",
                report.path.display(),
                report.events,
                report.rejections.len()
            );
            for r in &report.rejections {
                println!("rejection[{}]: {r}", report.path.display());
            }
        }
    }
    if rejected == 0 {
        println!("replay: {} trace(s) conform to the protocol model", reports.len());
        Ok(())
    } else {
        Err(rejected)
    }
}

fn run_lint(root: &std::path::Path) -> Result<(), usize> {
    println!("== lint: {} ==", root.display());
    match lint::lint_workspace(root) {
        Ok(diags) if diags.is_empty() => {
            println!("lint: clean");
            Ok(())
        }
        Ok(diags) => {
            for d in &diags {
                println!("{d}");
            }
            println!("lint: {} diagnostic(s)", diags.len());
            Err(diags.len())
        }
        Err(e) => {
            eprintln!("lint: cannot analyze workspace: {e}");
            Err(1)
        }
    }
}

fn run_model() -> Result<(), usize> {
    println!("== model check ==");
    let mut failures = 0usize;
    let mut total_states = 0usize;
    for report in [
        model::check_delegation(),
        model::check_invalidation(),
        model::check_breaker(),
        model::check_fanout(),
        product::check_product(),
    ] {
        println!(
            "model[{}]: {} states, {} transitions, {} violation(s)",
            report.machine,
            report.states,
            report.transitions,
            report.violations.len()
        );
        for v in &report.violations {
            println!("violation[{}]: {v}", report.machine);
        }
        failures += report.violations.len();
        total_states += report.states;
    }
    if total_states < MIN_MODEL_STATES {
        println!(
            "model: only {total_states} states explored (< {MIN_MODEL_STATES}); \
             exploration is broken"
        );
        failures += 1;
    }
    if failures == 0 {
        println!("model: all invariants hold over {total_states} states");
        Ok(())
    } else {
        Err(failures)
    }
}

fn main() -> ExitCode {
    let started = std::time::Instant::now();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("check");
    let root = args
        .get(1)
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../.."));

    let results: Vec<Result<(), usize>> = match cmd {
        "lint" => vec![run_lint(&root)],
        "model" => vec![run_model()],
        "check" => vec![run_lint(&root), run_model()],
        "replay" => {
            let Some(path) = args.get(1) else {
                eprintln!("replay: missing trace path");
                return usage();
            };
            vec![run_replay(std::path::Path::new(path))]
        }
        _ => return usage(),
    };
    let mut failures: usize = results.into_iter().filter_map(Result::err).sum();

    // CI asserts the analysis step stays inside a wall-clock budget so
    // state-space or lint-pass growth cannot silently eat the pipeline.
    if let Ok(budget) = std::env::var("GVFS_ANALYSIS_BUDGET_MS") {
        match budget.parse::<u64>() {
            Ok(budget_ms) => {
                let elapsed = started.elapsed().as_millis() as u64;
                if elapsed > budget_ms {
                    println!("analysis: took {elapsed}ms, over the {budget_ms}ms budget");
                    failures += 1;
                } else {
                    println!("analysis: {elapsed}ms elapsed (budget {budget_ms}ms)");
                }
            }
            Err(e) => {
                eprintln!("analysis: bad GVFS_ANALYSIS_BUDGET_MS {budget:?}: {e}");
                failures += 1;
            }
        }
    }
    if failures == 0 {
        println!("analysis: OK");
        ExitCode::SUCCESS
    } else {
        println!("analysis: FAILED with {failures} finding(s)");
        ExitCode::FAILURE
    }
}
