/root/repo/target/debug/examples/software_repository-0e86e09f4514ec39.d: /root/repo/clippy.toml crates/bench/../../examples/software_repository.rs Cargo.toml

/root/repo/target/debug/examples/libsoftware_repository-0e86e09f4514ec39.rmeta: /root/repo/clippy.toml crates/bench/../../examples/software_repository.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/../../examples/software_repository.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
