// expect: unwrap-in-request-path
// as: crates/rpc/src/server.rs
// Known-bad: a malformed request must surface as an error reply, not a
// panic that takes the session down.
fn handle(&self, bytes: &[u8]) -> Reply {
    let call = decode(bytes).unwrap();
    dispatch_call(call)
}
