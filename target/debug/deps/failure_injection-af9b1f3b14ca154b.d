/root/repo/target/debug/deps/failure_injection-af9b1f3b14ca154b.d: /root/repo/clippy.toml crates/integration/../../tests/failure_injection.rs Cargo.toml

/root/repo/target/debug/deps/libfailure_injection-af9b1f3b14ca154b.rmeta: /root/repo/clippy.toml crates/integration/../../tests/failure_injection.rs Cargo.toml

/root/repo/clippy.toml:
crates/integration/../../tests/failure_injection.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
