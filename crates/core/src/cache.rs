//! The proxy client's disk cache.
//!
//! GVFS proxy clients keep client-side *disk* caches for file attributes
//! and data blocks — much larger than the kernel's memory caches, which
//! is what lets a session absorb the kernel client's consistency checks
//! and (in write-back mode) its writes. Unlike the kernel caches, these
//! entries carry no timeout: their validity is maintained by the
//! session's consistency protocol (invalidation polling or delegations),
//! so a cached entry is served until the protocol invalidates it.
//!
//! Data is stored as byte extents (clean or dirty), which supports the
//! partial write-back protocol: dirty extents are exactly the "list of
//! blocks' offsets" a recalled write delegation reports (§4.3.2).

use crate::store::BlockStore;
use gvfs_nfs3::{Fattr3, Fh3};
use std::collections::{BTreeMap, HashMap};

/// One cached byte range of a file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Extent {
    /// The bytes.
    pub data: Vec<u8>,
    /// Whether this range holds locally modified data not yet written
    /// back to the server.
    pub dirty: bool,
}

/// Per-file cached content: non-overlapping extents keyed by offset.
#[derive(Debug, Default, Clone)]
pub struct FileCache {
    extents: BTreeMap<u64, Extent>,
}

impl FileCache {
    /// Returns the bytes in `[offset, offset+len)` if fully covered by
    /// cached extents.
    pub fn read(&self, offset: u64, len: usize) -> Option<Vec<u8>> {
        if len == 0 {
            return Some(Vec::new());
        }
        let end = offset + len as u64;
        let mut out = Vec::with_capacity(len);
        let mut pos = offset;
        while pos < end {
            let (start, ext) = self.extents.range(..=pos).next_back()?;
            let ext_end = start + ext.data.len() as u64;
            if pos >= ext_end {
                return None; // gap
            }
            let from = (pos - start) as usize;
            let to = ((end.min(ext_end)) - start) as usize;
            out.extend_from_slice(&ext.data[from..to]);
            pos = start + to as u64;
        }
        Some(out)
    }

    /// The sub-ranges of `[offset, offset+len)` *not* covered by any
    /// cached extent, in order. Empty when the range is fully cached.
    /// Dirty extents count as covered: locally written bytes are never
    /// refetched.
    pub fn missing_ranges(&self, offset: u64, len: usize) -> Vec<(u64, usize)> {
        let mut gaps = Vec::new();
        if len == 0 {
            return gaps;
        }
        let end = offset + len as u64;
        let mut pos = offset;
        // The extent containing `pos` (if any), then everything after.
        let head = self.extents.range(..=pos).next_back();
        let tail = self.extents.range(pos + 1..end);
        for (start, ext) in head.into_iter().chain(tail) {
            let ext_end = start + ext.data.len() as u64;
            if ext_end <= pos {
                continue; // ends before the cursor
            }
            if *start > pos {
                gaps.push((pos, (*start - pos) as usize));
            }
            pos = ext_end;
            if pos >= end {
                return gaps;
            }
        }
        gaps.push((pos, (end - pos) as usize));
        gaps
    }

    /// Inserts bytes fetched from the server (clean). Overlapping cached
    /// ranges are replaced, except dirty bytes, which always win over
    /// incoming clean data.
    pub fn insert_clean(&mut self, offset: u64, data: Vec<u8>) {
        self.insert(offset, data, false);
    }

    /// Records locally written bytes (dirty).
    pub fn write_dirty(&mut self, offset: u64, data: Vec<u8>) {
        self.insert(offset, data, true);
    }

    fn insert(&mut self, offset: u64, data: Vec<u8>, dirty: bool) {
        if data.is_empty() {
            return;
        }
        let end = offset + data.len() as u64;
        // Collect overlapping extents.
        let overlapping: Vec<u64> = {
            let mut keys: Vec<u64> = self
                .extents
                .range(..end)
                .filter(|(start, ext)| *start + ext.data.len() as u64 > offset)
                .map(|(k, _)| *k)
                .collect();
            keys.sort_unstable();
            keys
        };
        let mut incoming: BTreeMap<u64, Extent> = BTreeMap::new();
        incoming.insert(offset, Extent { data, dirty });
        for key in overlapping {
            let existing = self.extents.remove(&key).expect("listed key");
            let existing_end = key + existing.data.len() as u64;
            // Head segment before the new range.
            if key < offset {
                let head_len = (offset - key) as usize;
                self.extents.insert(
                    key,
                    Extent { data: existing.data[..head_len].to_vec(), dirty: existing.dirty },
                );
            }
            // Tail segment after the new range.
            if existing_end > end {
                let tail_from = (end - key) as usize;
                self.extents.insert(
                    end,
                    Extent { data: existing.data[tail_from..].to_vec(), dirty: existing.dirty },
                );
            }
            // Overlapped middle: dirty existing bytes beat clean incoming.
            if existing.dirty && !dirty {
                let seg_start = key.max(offset);
                let seg_end = existing_end.min(end);
                let seg =
                    existing.data[(seg_start - key) as usize..(seg_end - key) as usize].to_vec();
                overlay(&mut incoming, seg_start, seg, true);
            }
        }
        for (k, v) in incoming {
            self.extents.insert(k, v);
        }
        self.coalesce();
    }

    fn coalesce(&mut self) {
        let keys: Vec<u64> = self.extents.keys().copied().collect();
        let mut prev: Option<u64> = None;
        for key in keys {
            if let Some(p) = prev {
                let merge = {
                    let prev_ext = &self.extents[&p];
                    let prev_end = p + prev_ext.data.len() as u64;
                    prev_end == key && prev_ext.dirty == self.extents[&key].dirty
                };
                if merge {
                    let ext = self.extents.remove(&key).expect("key");
                    self.extents.get_mut(&p).expect("prev").data.extend(ext.data);
                    continue;
                }
            }
            prev = Some(key);
        }
    }

    /// Offsets and lengths of all dirty extents, in order.
    pub fn dirty_ranges(&self) -> Vec<(u64, usize)> {
        self.extents.iter().filter(|(_, e)| e.dirty).map(|(o, e)| (*o, e.data.len())).collect()
    }

    /// The dirty bytes starting at exactly `offset`, if that extent
    /// exists and is dirty.
    pub fn dirty_at(&self, offset: u64) -> Option<&[u8]> {
        self.extents.get(&offset).filter(|e| e.dirty).map(|e| e.data.as_slice())
    }

    /// Returns the dirty extent covering byte `pos`, as `(offset, data)`.
    pub fn dirty_covering(&self, pos: u64) -> Option<(u64, &[u8])> {
        let (start, ext) = self.extents.range(..=pos).next_back()?;
        (ext.dirty && pos < start + ext.data.len() as u64).then_some((*start, ext.data.as_slice()))
    }

    /// Marks the extent at `offset` clean (after a successful
    /// write-back).
    pub fn mark_clean(&mut self, offset: u64) {
        if let Some(e) = self.extents.get_mut(&offset) {
            e.dirty = false;
        }
        self.coalesce();
    }

    /// Drops clean extents, keeping dirty data (attribute invalidation
    /// must never lose delayed writes).
    pub fn drop_clean(&mut self) {
        self.extents.retain(|_, e| e.dirty);
    }

    /// The aligned offsets of every `block_size` block containing dirty
    /// bytes — the "list of blocks' offsets" a recalled write delegation
    /// reports (§4.3.2).
    pub fn dirty_blocks(&self, block_size: u64) -> Vec<u64> {
        let mut blocks = std::collections::BTreeSet::new();
        for (offset, len) in self.dirty_ranges() {
            let mut b = offset / block_size * block_size;
            let end = offset + len as u64;
            while b < end {
                blocks.insert(b);
                b += block_size;
            }
        }
        blocks.into_iter().collect()
    }

    /// The dirty byte segments inside one aligned block, as
    /// `(absolute_offset, bytes)` pairs.
    pub fn dirty_in_block(&self, block_offset: u64, block_size: u64) -> Vec<(u64, Vec<u8>)> {
        let block_end = block_offset + block_size;
        let mut out = Vec::new();
        for (start, ext) in &self.extents {
            if !ext.dirty {
                continue;
            }
            let ext_end = start + ext.data.len() as u64;
            if ext_end <= block_offset || *start >= block_end {
                continue;
            }
            let from = block_offset.max(*start);
            let to = block_end.min(ext_end);
            out.push((from, ext.data[(from - start) as usize..(to - start) as usize].to_vec()));
        }
        out
    }

    /// Marks every byte in `[offset, offset+len)` clean, splitting
    /// extents at the boundaries.
    pub fn clean_range(&mut self, offset: u64, len: u64) {
        let end = offset + len;
        let overlapping: Vec<u64> = self
            .extents
            .range(..end)
            .filter(|(start, ext)| ext.dirty && *start + ext.data.len() as u64 > offset)
            .map(|(k, _)| *k)
            .collect();
        for key in overlapping {
            let ext = self.extents.remove(&key).expect("listed key");
            let ext_end = key + ext.data.len() as u64;
            if key < offset {
                self.extents.insert(
                    key,
                    Extent { data: ext.data[..(offset - key) as usize].to_vec(), dirty: true },
                );
            }
            if ext_end > end {
                self.extents.insert(
                    end,
                    Extent { data: ext.data[(end - key) as usize..].to_vec(), dirty: true },
                );
            }
            let seg_start = key.max(offset);
            let seg_end = ext_end.min(end);
            self.extents.insert(
                seg_start,
                Extent {
                    data: ext.data[(seg_start - key) as usize..(seg_end - key) as usize].to_vec(),
                    dirty: false,
                },
            );
        }
        self.coalesce();
    }

    /// Whether any dirty extent exists.
    pub fn has_dirty(&self) -> bool {
        self.extents.values().any(|e| e.dirty)
    }

    /// Total cached bytes.
    pub fn bytes(&self) -> usize {
        self.extents.values().map(|e| e.data.len()).sum()
    }

    /// Number of extents (diagnostics).
    pub fn extent_count(&self) -> usize {
        self.extents.len()
    }
}

fn overlay(map: &mut BTreeMap<u64, Extent>, offset: u64, data: Vec<u8>, dirty: bool) {
    // Helper used only while building the incoming set: the incoming map
    // holds exactly one base extent, and dirty segments are laid on top.
    let keys: Vec<u64> = map.keys().copied().collect();
    for key in keys {
        let ext = map.remove(&key).expect("key");
        let ext_end = key + ext.data.len() as u64;
        let end = offset + data.len() as u64;
        if key < offset {
            let head = (offset.min(ext_end) - key) as usize;
            map.insert(key, Extent { data: ext.data[..head].to_vec(), dirty: ext.dirty });
        }
        if ext_end > end {
            let from = (end.max(key) - key) as usize;
            map.insert(
                ext_end - (ext.data.len() - from) as u64,
                Extent { data: ext.data[from..].to_vec(), dirty: ext.dirty },
            );
        }
    }
    map.insert(offset, Extent { data, dirty });
}

/// The proxy client's disk cache: attributes, name lookups and file
/// content. Content lives in a pluggable [`BlockStore`] — the in-memory
/// [`MemStore`](crate::store::mem::MemStore) by default, or the
/// persistent [`PersistentStore`](crate::store::persist::PersistentStore)
/// that survives proxy restarts.
#[derive(Debug)]
pub struct DiskCache {
    attrs: HashMap<Fh3, Fattr3>,
    lookups: HashMap<(Fh3, String), Option<Fh3>>,
    /// Directories whose name bindings need a bulk refresh because the
    /// directory was invalidated by the consistency protocol. Serving a
    /// stale binding is unsafe even with STALE-detection: a removed name
    /// whose inode survives through another hard link (the lock-file
    /// pattern) would keep resolving.
    stale_dirs: std::collections::HashSet<Fh3>,
    store: Box<dyn BlockStore>,
}

impl DiskCache {
    /// Creates a cache bounded to `capacity` bytes of file content,
    /// backed by the in-memory store.
    pub fn new(capacity: usize) -> Self {
        DiskCache::with_store(Box::new(crate::store::mem::MemStore::new(capacity)))
    }

    /// Creates a cache over an explicit block store.
    pub fn with_store(store: Box<dyn BlockStore>) -> Self {
        DiskCache {
            attrs: HashMap::new(),
            lookups: HashMap::new(),
            stale_dirs: std::collections::HashSet::new(),
            store,
        }
    }

    // --- attributes ---

    /// Cached attributes of `fh`, if valid.
    pub fn attr(&self, fh: Fh3) -> Option<Fattr3> {
        self.attrs.get(&fh).copied()
    }

    /// Caches attributes; if the mtime moved against cached data, the
    /// file's clean content is dropped.
    pub fn put_attr(&mut self, fh: Fh3, attr: Fattr3) {
        self.store.revalidate(fh, attr.mtime);
        self.store.note_size(fh, attr.size);
        self.attrs.insert(fh, attr);
    }

    /// Caches attributes for data we wrote ourselves: retags without
    /// dropping content.
    pub fn put_attr_own_write(&mut self, fh: Fh3, attr: Fattr3) {
        self.store.retag(fh, attr.mtime);
        self.store.note_size(fh, attr.size);
        self.attrs.insert(fh, attr);
    }

    /// Caches attributes piggybacked on an asynchronous READ reply
    /// (prefetch or pipelined gap fetch). Unlike [`DiskCache::put_attr`],
    /// the incoming attributes are applied only if they are not *older*
    /// than what we already hold: a delayed write advances the cached
    /// mtime/ctime locally (`put_attr_own_write`), and a prefetch reply
    /// that was in flight before that write must not clobber it — doing
    /// so would retag the file to the pre-write mtime and make the next
    /// server attribute fetch discard our freshly written-back data.
    /// Returns whether the attributes were applied.
    pub fn put_attr_prefetch(&mut self, fh: Fh3, attr: Fattr3) -> bool {
        if let Some(cached) = self.attrs.get(&fh) {
            if (attr.mtime, attr.ctime) < (cached.mtime, cached.ctime) {
                return false;
            }
        }
        self.put_attr(fh, attr);
        true
    }

    /// Invalidates one file's cached attributes (the consistency
    /// protocols' unit of invalidation). Data stays; it will be
    /// revalidated through the mtime tag on the next attribute fetch.
    ///
    /// If the invalidated handle has name bindings cached under it (it
    /// is a directory the proxy has resolved names in), the directory is
    /// marked *stale*: the proxy bulk-refreshes its bindings with a
    /// `READDIR` sweep on the next lookup (see
    /// [`DiskCache::take_stale_dir`]) instead of forwarding every name
    /// individually — a few RPCs instead of one per entry, which is what
    /// keeps the CH1D per-run cost flat.
    pub fn invalidate_attr(&mut self, fh: Fh3) {
        self.attrs.remove(&fh);
        if self.lookups.keys().any(|(dir, _)| *dir == fh) {
            self.stale_dirs.insert(fh);
        }
    }

    /// If `dir` was marked stale, purges its bindings and clears the
    /// mark, returning `true` (the caller should bulk-refresh).
    pub fn take_stale_dir(&mut self, dir: Fh3) -> bool {
        if self.stale_dirs.remove(&dir) {
            self.lookups.retain(|(d, _), _| *d != dir);
            true
        } else {
            false
        }
    }

    /// Drops every name binding resolving to `fh` (called when the
    /// server reports the handle stale).
    pub fn purge_bindings_to(&mut self, fh: Fh3) {
        self.lookups.retain(|_, v| *v != Some(fh));
    }

    /// Invalidates the entire attribute cache (force-invalidation).
    pub fn invalidate_all_attrs(&mut self) {
        self.attrs.clear();
        self.lookups.clear();
        self.stale_dirs.clear();
    }

    /// Number of valid attribute entries.
    pub fn attr_count(&self) -> usize {
        self.attrs.len()
    }

    // --- lookups ---

    /// Cached lookup of `name` in `dir`: `Some(Some(fh))` positive,
    /// `Some(None)` negative (known absent), `None` unknown.
    pub fn lookup(&self, dir: Fh3, name: &str) -> Option<Option<Fh3>> {
        self.lookups.get(&(dir, name.to_string())).copied()
    }

    /// Caches a positive name binding.
    pub fn put_lookup(&mut self, dir: Fh3, name: &str, child: Fh3) {
        self.lookups.insert((dir, name.to_string()), Some(child));
    }

    /// Caches a negative name binding (known absent).
    pub fn put_negative_lookup(&mut self, dir: Fh3, name: &str) {
        self.lookups.insert((dir, name.to_string()), None);
    }

    /// Drops one name binding.
    pub fn remove_lookup(&mut self, dir: Fh3, name: &str) {
        self.lookups.remove(&(dir, name.to_string()));
    }

    // --- data ---

    /// Reads `[offset, offset+len)` from cache if fully present.
    pub fn read(&mut self, fh: Fh3, offset: u64, len: usize) -> Option<Vec<u8>> {
        self.store.read(fh, offset, len)
    }

    /// The sub-ranges of `[offset, offset+len)` not covered by cached
    /// extents of `fh`. An uncached file is one whole gap.
    pub fn missing_ranges(&self, fh: Fh3, offset: u64, len: usize) -> Vec<(u64, usize)> {
        self.store.missing_ranges(fh, offset, len)
    }

    /// Stores server-fetched bytes.
    pub fn insert_clean(&mut self, fh: Fh3, offset: u64, data: Vec<u8>) {
        self.store.insert_clean(fh, offset, data);
    }

    /// Stores locally written bytes as dirty (write-back mode).
    pub fn write_dirty(&mut self, fh: Fh3, offset: u64, data: Vec<u8>) {
        self.store.write_dirty(fh, offset, data);
    }

    /// Marks `[offset, offset+len)` clean after a successful write-back.
    pub fn clean_range(&mut self, fh: Fh3, offset: u64, len: u64) {
        self.store.clean_range(fh, offset, len);
    }

    /// Offsets and lengths of the file's dirty extents, in order.
    pub fn dirty_ranges(&self, fh: Fh3) -> Vec<(u64, usize)> {
        self.store.dirty_ranges(fh)
    }

    /// Aligned offsets of every `block_size` block holding dirty bytes.
    pub fn dirty_blocks(&self, fh: Fh3, block_size: u64) -> Vec<u64> {
        self.store.dirty_blocks(fh, block_size)
    }

    /// The dirty byte segments inside one aligned block.
    pub fn dirty_in_block(
        &self,
        fh: Fh3,
        block_offset: u64,
        block_size: u64,
    ) -> Vec<(u64, Vec<u8>)> {
        self.store.dirty_in_block(fh, block_offset, block_size)
    }

    /// Whether the file holds any dirty extent.
    pub fn has_dirty(&self, fh: Fh3) -> bool {
        self.store.has_dirty(fh)
    }

    /// All files that hold dirty data.
    pub fn dirty_files(&self) -> Vec<Fh3> {
        self.store.dirty_files()
    }

    /// Drops everything known about a file (it was removed).
    pub fn forget_file(&mut self, fh: Fh3) {
        self.store.forget(fh);
        self.attrs.remove(&fh);
    }

    /// Bytes of file content cached.
    pub fn used_bytes(&self) -> usize {
        self.store.used_bytes()
    }

    /// The backing store's counters.
    pub fn store_stats(&self) -> crate::store::StoreStats {
        self.store.stats()
    }

    /// Durability barrier on the backing store (no-op in memory).
    pub fn sync_store(&mut self) {
        self.store.sync();
    }

    /// Simulated machine crash + restart of the backing store: volatile
    /// content is lost; a persistent store replays its index and keeps
    /// whatever its WAL proves intact.
    pub fn crash_reopen_store(&mut self) {
        self.store.crash_reopen();
    }

    /// Drains simulated disk I/O cost accrued by the backing store; the
    /// caller charges it to its actor clock while holding no locks.
    pub fn take_disk_cost(&mut self) -> std::time::Duration {
        self.store.take_cost()
    }

    /// Drains extents the backing store quarantined after failed
    /// checksum verifications (empty for stores without checksums).
    pub fn take_integrity_events(&mut self) -> Vec<crate::store::IntegrityEvent> {
        self.store.take_integrity_events()
    }

    /// Verifies up to `max_bytes` of stored content ahead of demand
    /// (the scrub sweep); returns bytes verified.
    pub fn scrub_step(&mut self, max_bytes: usize) -> usize {
        self.store.scrub_step(max_bytes)
    }

    /// Toggles verify-on-read in the backing store (the `--break-scrub`
    /// selftest knob).
    pub fn set_store_verify(&mut self, on: bool) {
        self.store.set_verify(on);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gvfs_nfs3::{Ftype3, NfsTime3};

    fn attr(fileid: u64, mtime_s: u32) -> Fattr3 {
        Fattr3 {
            ftype: Ftype3::Reg,
            mode: 0o644,
            nlink: 1,
            uid: 0,
            gid: 0,
            size: 0,
            used: 0,
            rdev: (0, 0),
            fsid: 1,
            fileid,
            atime: NfsTime3::default(),
            mtime: NfsTime3 { seconds: mtime_s, nseconds: 0 },
            ctime: NfsTime3 { seconds: mtime_s, nseconds: 0 },
        }
    }

    #[test]
    fn file_cache_read_exact_and_partial() {
        let mut fc = FileCache::default();
        fc.insert_clean(0, vec![1, 2, 3, 4]);
        assert_eq!(fc.read(0, 4).unwrap(), vec![1, 2, 3, 4]);
        assert_eq!(fc.read(1, 2).unwrap(), vec![2, 3]);
        assert!(fc.read(0, 5).is_none(), "uncovered tail");
        assert!(fc.read(4, 1).is_none());
        assert_eq!(fc.read(0, 0).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn file_cache_detects_gaps() {
        let mut fc = FileCache::default();
        fc.insert_clean(0, vec![1; 4]);
        fc.insert_clean(8, vec![2; 4]);
        assert!(fc.read(0, 12).is_none());
        assert_eq!(fc.read(8, 4).unwrap(), vec![2; 4]);
    }

    #[test]
    fn file_cache_coalesces_adjacent() {
        let mut fc = FileCache::default();
        fc.insert_clean(0, vec![1; 4]);
        fc.insert_clean(4, vec![2; 4]);
        assert_eq!(fc.extent_count(), 1);
        assert_eq!(fc.read(0, 8).unwrap(), [[1u8; 4], [2u8; 4]].concat());
    }

    #[test]
    fn overwrite_replaces_clean_data() {
        let mut fc = FileCache::default();
        fc.insert_clean(0, vec![1; 8]);
        fc.insert_clean(2, vec![9; 4]);
        assert_eq!(fc.read(0, 8).unwrap(), vec![1, 1, 9, 9, 9, 9, 1, 1]);
    }

    #[test]
    fn dirty_beats_incoming_clean() {
        let mut fc = FileCache::default();
        fc.write_dirty(2, vec![7; 4]);
        fc.insert_clean(0, vec![0; 8]); // stale server data arrives
        assert_eq!(fc.read(0, 8).unwrap(), vec![0, 0, 7, 7, 7, 7, 0, 0]);
        assert_eq!(fc.dirty_ranges(), vec![(2, 4)]);
    }

    #[test]
    fn dirty_overwrites_clean_and_tracks_ranges() {
        let mut fc = FileCache::default();
        fc.insert_clean(0, vec![1; 10]);
        fc.write_dirty(4, vec![9; 2]);
        assert_eq!(fc.read(0, 10).unwrap(), vec![1, 1, 1, 1, 9, 9, 1, 1, 1, 1]);
        assert_eq!(fc.dirty_ranges(), vec![(4, 2)]);
        assert!(fc.has_dirty());
    }

    #[test]
    fn mark_clean_clears_dirty() {
        let mut fc = FileCache::default();
        fc.write_dirty(0, vec![1; 4]);
        assert!(fc.has_dirty());
        fc.mark_clean(0);
        assert!(!fc.has_dirty());
        assert_eq!(fc.read(0, 4).unwrap(), vec![1; 4]);
    }

    #[test]
    fn drop_clean_preserves_dirty() {
        let mut fc = FileCache::default();
        fc.insert_clean(0, vec![1; 4]);
        fc.write_dirty(8, vec![2; 4]);
        fc.drop_clean();
        assert!(fc.read(0, 4).is_none());
        assert_eq!(fc.read(8, 4).unwrap(), vec![2; 4]);
    }

    #[test]
    fn dirty_covering_finds_extent() {
        let mut fc = FileCache::default();
        fc.write_dirty(100, vec![5; 50]);
        let (off, data) = fc.dirty_covering(120).unwrap();
        assert_eq!(off, 100);
        assert_eq!(data.len(), 50);
        assert!(fc.dirty_covering(10).is_none());
        assert!(fc.dirty_covering(150).is_none());
    }

    #[test]
    fn dirty_blocks_enumerates_aligned_blocks() {
        let mut fc = FileCache::default();
        fc.write_dirty(100, vec![1; 50]); // block 0
        fc.write_dirty(32768 + 10, vec![2; 32768]); // blocks 1 and 2
        assert_eq!(fc.dirty_blocks(32768), vec![0, 32768, 65536]);
    }

    #[test]
    fn dirty_in_block_returns_segments() {
        let mut fc = FileCache::default();
        fc.write_dirty(100, vec![1; 50]);
        fc.write_dirty(200, vec![2; 10]);
        fc.write_dirty(40000, vec![3; 10]); // next block
        let segs = fc.dirty_in_block(0, 32768);
        assert_eq!(segs.len(), 2);
        assert_eq!(segs[0], (100, vec![1; 50]));
        assert_eq!(segs[1], (200, vec![2; 10]));
        assert_eq!(fc.dirty_in_block(32768, 32768), vec![(40000, vec![3; 10])]);
    }

    #[test]
    fn clean_range_splits_extents() {
        let mut fc = FileCache::default();
        fc.write_dirty(0, vec![1; 100]);
        fc.clean_range(20, 30);
        let ranges = fc.dirty_ranges();
        assert_eq!(ranges, vec![(0, 20), (50, 50)]);
        // Data is unchanged.
        assert_eq!(fc.read(0, 100).unwrap(), vec![1; 100]);
        fc.clean_range(0, 100);
        assert!(!fc.has_dirty());
    }

    #[test]
    fn missing_ranges_reports_gaps_in_order() {
        let mut fc = FileCache::default();
        assert_eq!(fc.missing_ranges(0, 10), vec![(0, 10)], "empty cache is one gap");
        assert_eq!(fc.missing_ranges(5, 0), Vec::<(u64, usize)>::new());
        fc.insert_clean(4, vec![1; 4]); // [4, 8)
        assert_eq!(fc.missing_ranges(0, 12), vec![(0, 4), (8, 4)]);
        assert_eq!(fc.missing_ranges(4, 4), Vec::<(u64, usize)>::new());
        assert_eq!(fc.missing_ranges(5, 2), Vec::<(u64, usize)>::new(), "inside one extent");
        assert_eq!(fc.missing_ranges(6, 4), vec![(8, 2)], "tail gap only");
        assert_eq!(fc.missing_ranges(0, 5), vec![(0, 4)], "head gap only");
        fc.insert_clean(10, vec![2; 2]); // [10, 12)
        assert_eq!(fc.missing_ranges(0, 14), vec![(0, 4), (8, 2), (12, 2)]);
        assert_eq!(fc.missing_ranges(20, 3), vec![(20, 3)], "fully past cached data");
    }

    #[test]
    fn missing_ranges_counts_dirty_as_covered() {
        let mut fc = FileCache::default();
        fc.write_dirty(4, vec![9; 4]);
        assert_eq!(fc.missing_ranges(0, 12), vec![(0, 4), (8, 4)]);
        assert_eq!(fc.missing_ranges(4, 4), Vec::<(u64, usize)>::new());
    }

    #[test]
    fn disk_cache_missing_ranges_unknown_file_is_one_gap() {
        let mut c = DiskCache::new(1 << 20);
        let fh = Fh3::from_fileid(1);
        assert_eq!(c.missing_ranges(fh, 3, 7), vec![(3, 7)]);
        assert_eq!(c.missing_ranges(fh, 3, 0), Vec::<(u64, usize)>::new());
        c.insert_clean(fh, 0, vec![1; 5]);
        assert_eq!(c.missing_ranges(fh, 3, 7), vec![(5, 5)]);
    }

    #[test]
    fn put_attr_prefetch_rejects_older_attr() {
        let mut c = DiskCache::new(1 << 20);
        let fh = Fh3::from_fileid(1);
        // A delayed write advanced the cached attributes locally.
        c.put_attr_own_write(fh, attr(1, 5));
        c.write_dirty(fh, 0, vec![7; 4]);
        // A prefetch reply from before the write carries the old mtime.
        assert!(!c.put_attr_prefetch(fh, attr(1, 3)), "stale attr must be rejected");
        assert_eq!(c.attr(fh).unwrap().mtime.seconds, 5, "own-write attr preserved");
        assert!(c.read(fh, 0, 4).is_some(), "dirty data untouched");
        // The next real server attr (same mtime tag as ours) must not
        // drop the data either — the tag was never regressed.
        c.put_attr(fh, attr(1, 5));
        assert!(c.read(fh, 0, 4).is_some());
    }

    #[test]
    fn put_attr_prefetch_applies_fresh_attr() {
        let mut c = DiskCache::new(1 << 20);
        let fh = Fh3::from_fileid(1);
        assert!(c.put_attr_prefetch(fh, attr(1, 2)), "no cached attr: applies");
        assert_eq!(c.attr(fh).unwrap().mtime.seconds, 2);
        c.insert_clean(fh, 0, vec![1; 4]);
        // Equal attrs re-apply harmlessly.
        assert!(c.put_attr_prefetch(fh, attr(1, 2)));
        assert!(c.read(fh, 0, 4).is_some());
        // Newer attrs apply with full put_attr semantics: clean drop.
        assert!(c.put_attr_prefetch(fh, attr(1, 9)));
        assert!(c.read(fh, 0, 4).is_none(), "mtime moved: clean data dropped");
    }

    #[test]
    fn disk_cache_attr_mtime_change_drops_clean_data() {
        let mut c = DiskCache::new(1 << 20);
        let fh = Fh3::from_fileid(1);
        c.put_attr(fh, attr(1, 1));
        c.insert_clean(fh, 0, vec![1; 100]);
        assert!(c.read(fh, 0, 100).is_some());
        c.put_attr(fh, attr(1, 2)); // changed on server
        assert!(c.read(fh, 0, 100).is_none());
    }

    #[test]
    fn disk_cache_own_write_keeps_data() {
        let mut c = DiskCache::new(1 << 20);
        let fh = Fh3::from_fileid(1);
        c.put_attr(fh, attr(1, 1));
        c.insert_clean(fh, 0, vec![1; 100]);
        c.put_attr_own_write(fh, attr(1, 5));
        assert!(c.read(fh, 0, 100).is_some());
    }

    #[test]
    fn disk_cache_invalidate_attr_keeps_data_until_revalidation() {
        let mut c = DiskCache::new(1 << 20);
        let fh = Fh3::from_fileid(1);
        c.put_attr(fh, attr(1, 1));
        c.insert_clean(fh, 0, vec![1; 10]);
        c.invalidate_attr(fh);
        assert!(c.attr(fh).is_none());
        // Data is still there; revalidation with the same mtime keeps it.
        c.put_attr(fh, attr(1, 1));
        assert!(c.read(fh, 0, 10).is_some());
        // Revalidation with a changed mtime drops it.
        c.invalidate_attr(fh);
        c.put_attr(fh, attr(1, 9));
        assert!(c.read(fh, 0, 10).is_none());
    }

    #[test]
    fn dir_invalidation_keeps_bindings_but_gates_them_via_attrs() {
        let mut c = DiskCache::new(1 << 20);
        let dir = Fh3::from_fileid(1);
        c.put_attr(dir, attr(1, 1));
        c.put_lookup(dir, "a", Fh3::from_fileid(2));
        c.invalidate_attr(dir);
        // The binding survives — but the proxy only serves it when the
        // directory's attributes are valid, which they no longer are.
        assert!(c.attr(dir).is_none());
        assert_eq!(c.lookup(dir, "a"), Some(Some(Fh3::from_fileid(2))));
    }

    #[test]
    fn stale_handle_purges_its_bindings() {
        let mut c = DiskCache::new(1 << 20);
        let dir = Fh3::from_fileid(1);
        c.put_lookup(dir, "a", Fh3::from_fileid(2));
        c.put_lookup(dir, "b", Fh3::from_fileid(3));
        c.purge_bindings_to(Fh3::from_fileid(2));
        assert!(c.lookup(dir, "a").is_none());
        assert_eq!(c.lookup(dir, "b"), Some(Some(Fh3::from_fileid(3))));
    }

    #[test]
    fn disk_cache_eviction_spares_dirty() {
        let mut c = DiskCache::new(100);
        let clean = Fh3::from_fileid(1);
        let dirty = Fh3::from_fileid(2);
        c.write_dirty(dirty, 0, vec![1; 80]);
        c.insert_clean(clean, 0, vec![2; 80]); // over capacity
        assert!(c.used_bytes() <= 160);
        assert_eq!(c.dirty_files(), vec![dirty]);
        assert!(c.read(dirty, 0, 80).is_some(), "dirty data must survive eviction");
    }

    #[test]
    fn disk_cache_forget_file() {
        let mut c = DiskCache::new(1 << 20);
        let fh = Fh3::from_fileid(1);
        c.put_attr(fh, attr(1, 1));
        c.insert_clean(fh, 0, vec![1; 10]);
        c.forget_file(fh);
        assert!(c.attr(fh).is_none());
        assert!(c.read(fh, 0, 10).is_none());
        assert_eq!(c.used_bytes(), 0);
    }

    #[test]
    fn force_invalidation_clears_attrs_and_lookups_only() {
        let mut c = DiskCache::new(1 << 20);
        let fh = Fh3::from_fileid(1);
        c.put_attr(fh, attr(1, 1));
        c.put_lookup(Fh3::from_fileid(9), "x", fh);
        c.insert_clean(fh, 0, vec![3; 8]);
        c.invalidate_all_attrs();
        assert_eq!(c.attr_count(), 0);
        assert!(c.lookup(Fh3::from_fileid(9), "x").is_none());
        // Data remains pending revalidation.
        c.put_attr(fh, attr(1, 1));
        assert!(c.read(fh, 0, 8).is_some());
    }
}
