/root/repo/target/debug/deps/gvfs_bench-93a4c175b54f5418.d: /root/repo/clippy.toml crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libgvfs_bench-93a4c175b54f5418.rmeta: /root/repo/clippy.toml crates/bench/src/lib.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
