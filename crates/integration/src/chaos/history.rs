//! Global run history: tagged file contents, recorded operations, and
//! the deterministic trace hash.
//!
//! Every chaos file holds [`FILE_LEN`] bytes: [`TAG_WORDS`] repetitions
//! of one little-endian `u64` *tag* identifying the write that produced
//! it (`0` = the initial all-zero content). A reader therefore sees
//! either a well-formed tag, the initial state, or a torn mix — and a
//! torn mix is always a violation, because every writer writes the whole
//! file in one NFS WRITE.

use gvfs_netsim::SimTime;
use parking_lot::Mutex;
use std::fmt::Write as _;

/// Length of every chaos file, in bytes.
pub const FILE_LEN: usize = 512;
/// Number of repeated tag words in a file.
pub const TAG_WORDS: usize = FILE_LEN / 8;

/// Encodes `tag` as the full file content.
pub fn encode_tag(tag: u64) -> Vec<u8> {
    let mut buf = Vec::with_capacity(FILE_LEN);
    for _ in 0..TAG_WORDS {
        buf.extend_from_slice(&tag.to_le_bytes());
    }
    buf
}

/// Builds the tag for `client`'s `seq`-th write (1-based). Tag `0` is
/// reserved for the initial content.
pub fn make_tag(client: usize, seq: u64) -> u64 {
    ((client as u64 + 1) << 32) | seq
}

/// What one read observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Observation {
    /// The untouched all-zero initial content.
    Initial,
    /// A complete write, identified by its tag.
    Tag(u64),
    /// A mix of writes (or a short read) — always a violation.
    Torn,
}

impl Observation {
    /// Decodes a read buffer into an observation.
    pub fn decode(buf: &[u8]) -> Observation {
        if buf.len() != FILE_LEN {
            return Observation::Torn;
        }
        let first = u64::from_le_bytes(buf[0..8].try_into().expect("8-byte slice"));
        for word in buf.chunks_exact(8) {
            if u64::from_le_bytes(word.try_into().expect("8-byte slice")) != first {
                return Observation::Torn;
            }
        }
        if first == 0 {
            Observation::Initial
        } else {
            Observation::Tag(first)
        }
    }
}

/// One entry in the global run history, stamped with virtual time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// A write acknowledged to the application.
    WriteAcked {
        /// Writing client.
        client: usize,
        /// File index.
        file: usize,
        /// The written tag.
        tag: u64,
        /// When the write was issued.
        started: SimTime,
        /// When the acknowledgement returned.
        finished: SimTime,
    },
    /// A write that errored at the application (its proxy was down when
    /// it was issued, so it was never dispatched).
    WriteFailed {
        /// Writing client.
        client: usize,
        /// File index.
        file: usize,
        /// The tag that was being written.
        tag: u64,
        /// When the write was issued.
        started: SimTime,
        /// When the error returned.
        finished: SimTime,
    },
    /// A completed read.
    Read {
        /// Reading client.
        client: usize,
        /// File index.
        file: usize,
        /// What it saw.
        observed: Observation,
        /// When the read was issued.
        started: SimTime,
        /// When the data returned.
        finished: SimTime,
    },
    /// The proxy server crashed (volatile state lost).
    ServerCrashed {
        /// Crash instant.
        at: SimTime,
    },
    /// The proxy server restarted and ran its recovery round.
    ServerRestarted {
        /// Restart instant (after recovery completed).
        at: SimTime,
        /// Clients that answered the `RECOVER` multicast.
        answered: usize,
    },
    /// A proxy client crashed.
    ClientCrashed {
        /// Crashed client.
        client: usize,
        /// Crash instant.
        at: SimTime,
    },
    /// A proxy client restarted and reconciled its disk cache.
    ClientRestarted {
        /// Restarted client.
        client: usize,
        /// Restart instant (after reconciliation).
        at: SimTime,
        /// Dirty files discarded as corrupted.
        corrupted: usize,
    },
    /// The server-side delegation table showed two concurrent holders
    /// with at least one writer (observed by the exclusion sampler).
    ExclusionViolation {
        /// Observation instant.
        at: SimTime,
        /// Raw file-handle id of the offending file.
        fh: u64,
        /// Holders at that instant.
        sharers: usize,
        /// Writers among them.
        writers: usize,
    },
}

/// The shared, scheduler-serialized event log of one chaos run.
#[derive(Debug, Default)]
pub struct History {
    events: Mutex<Vec<Event>>,
}

impl History {
    /// An empty history.
    pub fn new() -> Self {
        History::default()
    }

    /// Appends one event.
    pub fn push(&self, event: Event) {
        self.events.lock().push(event);
    }

    /// A snapshot of all events recorded so far.
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().clone()
    }
}

/// FNV-1a over the debug rendering of the event list — the run's
/// deterministic trace fingerprint. Two runs of the same scenario must
/// produce the same hash; CI replays every seed twice and compares.
pub fn trace_hash(events: &[Event]) -> u64 {
    let mut text = String::new();
    for event in events {
        let _ = writeln!(text, "{event:?}");
    }
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in text.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_round_trip_through_file_content() {
        let tag = make_tag(2, 17);
        assert_eq!(Observation::decode(&encode_tag(tag)), Observation::Tag(tag));
        assert_eq!(Observation::decode(&vec![0u8; FILE_LEN]), Observation::Initial);
    }

    #[test]
    fn torn_content_is_detected() {
        let mut buf = encode_tag(make_tag(0, 1));
        buf[100] ^= 0xff;
        assert_eq!(Observation::decode(&buf), Observation::Torn);
        assert_eq!(Observation::decode(&buf[..FILE_LEN - 8]), Observation::Torn);
    }

    #[test]
    fn trace_hash_is_order_sensitive() {
        let a = Event::ServerCrashed { at: SimTime::from_millis(1) };
        let b = Event::ServerCrashed { at: SimTime::from_millis(2) };
        assert_ne!(
            trace_hash(&[a.clone(), b.clone()]),
            trace_hash(&[b, a]),
            "reordering events must change the fingerprint"
        );
    }
}
