/root/repo/target/debug/deps/proptest_protocols-845e330fed339afd.d: crates/integration/../../tests/proptest_protocols.rs

/root/repo/target/debug/deps/proptest_protocols-845e330fed339afd: crates/integration/../../tests/proptest_protocols.rs

crates/integration/../../tests/proptest_protocols.rs:
