//! Model-based property test for the server's invalidation buffers.
//!
//! [`InvalidationTracker`](gvfs_core::invalidation::InvalidationTracker)
//! keeps one bounded circular buffer per client with per-file
//! coalescing, a completeness floor that rises on wrap-around, and the
//! `GETINV` force-invalidate bootstrap (§4.2.1). This test drives it
//! with random modify/poll/crash sequences against a set-based
//! reference model and checks, after every step:
//!
//! * coalescing: a buffer never holds two entries for one handle, and
//!   never more than `capacity` entries;
//! * timestamps in a buffer are strictly increasing and above the floor;
//! * the floor never moves backwards;
//! * `force_invalidate` fires exactly on first contact, a null client
//!   timestamp, or a wrapped buffer (client timestamp below the floor);
//! * a non-forced reply carries exactly the handles owed since the
//!   client's last drain, and leaves the floor at the current clock.
//!
//! The exhaustive interleaving version of these checks (including
//! server restarts) lives in the `gvfs-analysis` model checker; this
//! test covers much longer histories at random.

use gvfs_core::invalidation::InvalidationTracker;
use gvfs_nfs3::Fh3;
use proptest::prelude::*;
use std::collections::{BTreeSet, HashMap, HashSet};

const CLIENTS: u32 = 3;
const FILES: u64 = 4;

#[derive(Debug, Clone)]
enum Op {
    Modify {
        writer: u32,
        file: u64,
    },
    Getinv {
        client: u32,
    },
    /// Poll with a null timestamp, as a restarted client would.
    GetinvNull {
        client: u32,
    },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (1u32..=CLIENTS, 1u64..=FILES).prop_map(|(writer, file)| Op::Modify { writer, file }),
        (1u32..=CLIENTS).prop_map(|client| Op::Getinv { client }),
        (1u32..=CLIENTS).prop_map(|client| Op::GetinvNull { client }),
    ]
}

/// Reference model of what the protocol owes one client.
#[derive(Debug, Default, Clone)]
struct Owed {
    ts: Option<u64>,
    owed: BTreeSet<Fh3>,
    wrapped: bool,
}

fn buffer_of(tracker: &InvalidationTracker, client: u32) -> Option<(u64, Vec<(u64, Fh3)>)> {
    tracker.snapshot().into_iter().find(|&(c, _, _)| c == client).map(|(_, f, e)| (f, e))
}

fn check_buffer_shape(tracker: &InvalidationTracker, capacity: usize) -> Result<(), TestCaseError> {
    for (client, floor, entries) in tracker.snapshot() {
        prop_assert!(
            entries.len() <= capacity,
            "client {} buffer holds {} entries, capacity {}",
            client,
            entries.len(),
            capacity
        );
        let mut seen = HashSet::new();
        let mut prev = floor;
        for (ts, fh) in entries {
            prop_assert!(seen.insert(fh), "client {client} buffer holds {fh:?} twice");
            prop_assert!(ts > prev, "client {client} entry ts {ts} not above {prev}");
            prev = ts;
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn invalidation_buffer_invariants(
        capacity in 1usize..=5,
        ops in proptest::collection::vec(op_strategy(), 1..120),
    ) {
        let mut tracker = InvalidationTracker::new(capacity);
        let mut model: HashMap<u32, Owed> = HashMap::new();
        let mut floors: HashMap<u32, u64> = HashMap::new();

        for op in ops {
            match op {
                Op::Modify { writer, file } => {
                    let fh = Fh3::from_fileid(file);
                    tracker.record_modification(fh, writer);
                    for (&client, owed) in &mut model {
                        if client == writer {
                            continue;
                        }
                        if owed.owed.insert(fh) && owed.owed.len() > capacity {
                            owed.wrapped = true;
                        }
                    }
                }
                Op::Getinv { client } | Op::GetinvNull { client } => {
                    let null_ts = matches!(op, Op::GetinvNull { .. });
                    let registered = buffer_of(&tracker, client).is_some();
                    let owed = model.entry(client).or_default();
                    let sent_ts = if null_ts { None } else { owed.ts };
                    let res = tracker.getinv(client, sent_ts);

                    let expect_force = !registered || sent_ts.is_none() || owed.wrapped;
                    prop_assert_eq!(
                        res.force_invalidate, expect_force,
                        "client {}: force mismatch (registered={}, ts={:?}, wrapped={})",
                        client, registered, sent_ts, owed.wrapped
                    );
                    if !res.force_invalidate {
                        if let Some(prev) = sent_ts {
                            prop_assert!(
                                res.timestamp >= prev,
                                "client {} timestamp regressed: {} < {}",
                                client, res.timestamp, prev
                            );
                        }
                        prop_assert!(!res.poll_again, "poll_again below the pagination threshold");
                        let got: BTreeSet<Fh3> = res.handles.iter().copied().collect();
                        prop_assert_eq!(got.len(), res.handles.len(), "duplicate handles in reply");
                        prop_assert_eq!(&got, &owed.owed, "client {} reply != owed set", client);
                    }
                    // Either way the client is square afterwards.
                    *owed = Owed { ts: Some(res.timestamp), owed: BTreeSet::new(), wrapped: false };
                    // A drained (or rebooted) buffer sits at the clock.
                    let (floor, entries) = buffer_of(&tracker, client).expect("registered");
                    prop_assert_eq!(floor, tracker.now(), "post-drain floor not at clock");
                    prop_assert!(entries.is_empty(), "post-drain buffer not empty");
                }
            }

            check_buffer_shape(&tracker, capacity)?;
            for (client, floor, _) in tracker.snapshot() {
                let prev = floors.entry(client).or_insert(floor);
                prop_assert!(
                    floor >= *prev,
                    "client {} floor moved backwards: {} < {}",
                    client, floor, *prev
                );
                *prev = floor;
            }
        }
    }
}
