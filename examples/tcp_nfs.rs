//! The same protocol stack over real TCP sockets — no simulator.
//!
//! Starts an NFSv3 + MOUNT server on an ephemeral localhost port, then
//! bootstraps a client the way a real mount does: `MNT` for the root
//! handle, `FSINFO` for transfer sizes, then plain NFS procedures.
//!
//! ```sh
//! cargo run --release -p gvfs-bench --example tcp_nfs
//! ```

use gvfs_nfs3::mount::{mount_proc, MntArgs, MntRes, MOUNT_PROGRAM, MOUNT_V3};
use gvfs_nfs3::{
    proc3, CreateArgs, CreateHow, FsinfoRes, GetattrArgs, LookupArgs, LookupRes, NewObjRes,
    ReadArgs, ReadRes, Sattr3, StableHow, WriteArgs, WriteRes, NFS_PROGRAM, NFS_V3,
};
use gvfs_rpc::dispatch::Dispatcher;
use gvfs_rpc::message::OpaqueAuth;
use gvfs_rpc::tcp::{TcpRpcClient, TcpRpcServer};
use gvfs_server::{MountServer, Nfs3Server};
use gvfs_vfs::{Timestamp, Vfs};
use std::sync::Arc;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Server side: a wall-clock-stamped NFS server plus MOUNT service.
    let vfs = Arc::new(Vfs::new());
    let epoch = Instant::now();
    let clock: gvfs_server::Clock =
        Arc::new(move || Timestamp::from_nanos(epoch.elapsed().as_nanos() as u64));
    let mut dispatcher = Dispatcher::new();
    dispatcher.register(Nfs3Server::new(Arc::clone(&vfs), clock));
    dispatcher.register(MountServer::new(Arc::clone(&vfs), "/export/grid"));
    let server = TcpRpcServer::bind("127.0.0.1:0", dispatcher)?;
    let addr = server.local_addr();
    let handle = server.spawn();
    println!("NFSv3 + MOUNT serving on tcp://{addr}");

    // Client side: bootstrap exactly like mount(8).
    let rpc = TcpRpcClient::connect(addr)?;
    let mnt: MntRes = call(
        &rpc,
        MOUNT_PROGRAM,
        MOUNT_V3,
        mount_proc::MNT,
        &MntArgs { dirpath: "/export/grid".into() },
    )?;
    let MntRes::Ok { fhandle: root, .. } = mnt else { panic!("mount refused: {mnt:?}") };
    println!("mounted /export/grid -> root fh {root:?}");

    let fsinfo: FsinfoRes =
        call(&rpc, NFS_PROGRAM, NFS_V3, proc3::FSINFO, &GetattrArgs { object: root })?;
    let FsinfoRes::Ok { wtmax, rtmax, .. } = fsinfo else { panic!("fsinfo failed") };
    println!("server advertises rtmax={rtmax} wtmax={wtmax}");

    // Create, write, read back — every byte over the real socket.
    let created: NewObjRes = call(
        &rpc,
        NFS_PROGRAM,
        NFS_V3,
        proc3::CREATE,
        &CreateArgs {
            dir: root,
            name: "over-tcp.txt".into(),
            how: CreateHow::Guarded(Sattr3::default()),
        },
    )?;
    let NewObjRes::Ok { obj: Some(fh), .. } = created else { panic!("create failed") };

    let payload = b"bytes that crossed a real TCP connection".to_vec();
    let wrote: WriteRes = call(
        &rpc,
        NFS_PROGRAM,
        NFS_V3,
        proc3::WRITE,
        &WriteArgs {
            file: fh,
            offset: 0,
            count: payload.len() as u32,
            stable: StableHow::FileSync,
            data: payload.clone(),
        },
    )?;
    let WriteRes::Ok { count, .. } = wrote else { panic!("write failed") };
    println!("wrote {count} bytes");

    let read: ReadRes = call(
        &rpc,
        NFS_PROGRAM,
        NFS_V3,
        proc3::READ,
        &ReadArgs { file: fh, offset: 0, count: 1024 },
    )?;
    let ReadRes::Ok { data, eof, .. } = read else { panic!("read failed") };
    assert_eq!(data, payload);
    println!("read them back (eof={eof}): {:?}", String::from_utf8_lossy(&data));

    // A second connection sees the same namespace.
    let rpc2 = TcpRpcClient::connect(addr)?;
    let found: LookupRes = call(
        &rpc2,
        NFS_PROGRAM,
        NFS_V3,
        proc3::LOOKUP,
        &LookupArgs { dir: root, name: "over-tcp.txt".into() },
    )?;
    assert!(matches!(found, LookupRes::Ok { object, .. } if object == fh));
    println!("second connection resolved the file; shutting down");

    handle.shutdown();
    Ok(())
}

fn call<A: gvfs_xdr::Xdr, R: gvfs_xdr::Xdr>(
    rpc: &TcpRpcClient,
    program: u32,
    version: u32,
    procedure: u32,
    args: &A,
) -> Result<R, Box<dyn std::error::Error>> {
    let bytes =
        rpc.call(program, version, procedure, OpaqueAuth::none(), gvfs_xdr::to_bytes(args)?)?;
    Ok(gvfs_xdr::from_bytes(&bytes)?)
}
