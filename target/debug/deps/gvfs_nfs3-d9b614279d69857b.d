/root/repo/target/debug/deps/gvfs_nfs3-d9b614279d69857b.d: /root/repo/clippy.toml crates/nfs3/src/lib.rs crates/nfs3/src/mount.rs crates/nfs3/src/procs.rs crates/nfs3/src/status.rs crates/nfs3/src/types.rs Cargo.toml

/root/repo/target/debug/deps/libgvfs_nfs3-d9b614279d69857b.rmeta: /root/repo/clippy.toml crates/nfs3/src/lib.rs crates/nfs3/src/mount.rs crates/nfs3/src/procs.rs crates/nfs3/src/status.rs crates/nfs3/src/types.rs Cargo.toml

/root/repo/clippy.toml:
crates/nfs3/src/lib.rs:
crates/nfs3/src/mount.rs:
crates/nfs3/src/procs.rs:
crates/nfs3/src/status.rs:
crates/nfs3/src/types.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
