/root/repo/target/debug/examples/failure_recovery-5a8aff0e1f431c09.d: crates/bench/../../examples/failure_recovery.rs

/root/repo/target/debug/examples/failure_recovery-5a8aff0e1f431c09: crates/bench/../../examples/failure_recovery.rs

crates/bench/../../examples/failure_recovery.rs:
