//! Client-side caches: attributes, lookups (dnlc) and data pages.
//!
//! These model the kernel caches whose consistency traffic the paper
//! measures. They are plain data structures driven by the client; all
//! policy (when to revalidate) lives in [`crate::NfsClient`].

use gvfs_netsim::SimTime;
use gvfs_nfs3::{Fattr3, Fh3, NfsTime3};
use std::collections::HashMap;
use std::time::Duration;

/// One cached attribute record.
#[derive(Debug, Clone, Copy)]
struct AttrEntry {
    attr: Fattr3,
    /// Time the attributes were fetched or last revalidated.
    fetched: SimTime,
    /// Current adaptive timeout.
    timeout: Duration,
}

/// The attribute cache with Linux-style adaptive timeouts.
#[derive(Debug, Default)]
pub struct AttrCache {
    entries: HashMap<Fh3, AttrEntry>,
}

impl AttrCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns cached attributes if the entry is still fresh at `now`.
    pub fn fresh(&self, fh: Fh3, now: SimTime) -> Option<Fattr3> {
        let e = self.entries.get(&fh)?;
        (now.saturating_since(e.fetched) < e.timeout).then_some(e.attr)
    }

    /// Returns cached attributes regardless of freshness.
    pub fn peek(&self, fh: Fh3) -> Option<Fattr3> {
        self.entries.get(&fh).map(|e| e.attr)
    }

    /// Inserts attributes fetched at `now` with the initial timeout
    /// `min_timeout`. Returns the mtime previously cached, if any.
    pub fn insert(
        &mut self,
        fh: Fh3,
        attr: Fattr3,
        now: SimTime,
        min_timeout: Duration,
    ) -> Option<NfsTime3> {
        let old = self.entries.insert(fh, AttrEntry { attr, fetched: now, timeout: min_timeout });
        old.map(|e| e.attr.mtime)
    }

    /// Records a revalidation at `now`: if the mtime is unchanged the
    /// adaptive timeout doubles (capped at `max_timeout`); if it changed
    /// the timeout resets to `min_timeout`. Returns `true` if the file
    /// changed since last cached.
    pub fn revalidate(
        &mut self,
        fh: Fh3,
        attr: Fattr3,
        now: SimTime,
        min_timeout: Duration,
        max_timeout: Duration,
    ) -> bool {
        match self.entries.get_mut(&fh) {
            Some(e) => {
                let changed = e.attr.mtime != attr.mtime || e.attr.size != attr.size;
                e.timeout = if changed {
                    min_timeout
                } else {
                    (e.timeout * 2).min(max_timeout).max(min_timeout)
                };
                e.attr = attr;
                e.fetched = now;
                changed
            }
            None => {
                self.insert(fh, attr, now, min_timeout);
                false
            }
        }
    }

    /// Drops one entry.
    pub fn invalidate(&mut self, fh: Fh3) {
        self.entries.remove(&fh);
    }

    /// Drops everything (the paper's force-invalidation path).
    pub fn invalidate_all(&mut self) {
        self.entries.clear();
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// The lookup (dnlc) cache: `(dir, name) → Some(fh)` for positive
/// entries, `None` for negative entries (the name is known absent —
/// kernel dnlc caches these too, and the paper's lock benchmark
/// behaviour depends on them).
#[derive(Debug)]
pub struct LookupCache {
    entries: HashMap<(Fh3, String), Option<Fh3>>,
    capacity: usize,
}

impl LookupCache {
    /// Creates a cache bounded to `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        LookupCache { entries: HashMap::new(), capacity }
    }

    /// Returns the cached binding: `Some(Some(fh))` positive,
    /// `Some(None)` negative, `None` unknown.
    pub fn get(&self, dir: Fh3, name: &str) -> Option<Option<Fh3>> {
        self.entries.get(&(dir, name.to_string())).copied()
    }

    /// Inserts a positive binding; on overflow the cache is cleared (a
    /// crude but deterministic stand-in for kernel dnlc pressure).
    pub fn insert(&mut self, dir: Fh3, name: &str, child: Fh3) {
        self.insert_entry(dir, name, Some(child));
    }

    /// Inserts a negative binding (name known absent).
    pub fn insert_negative(&mut self, dir: Fh3, name: &str) {
        self.insert_entry(dir, name, None);
    }

    fn insert_entry(&mut self, dir: Fh3, name: &str, child: Option<Fh3>) {
        if self.entries.len() >= self.capacity {
            self.entries.clear();
        }
        self.entries.insert((dir, name.to_string()), child);
    }

    /// Removes one binding.
    pub fn remove(&mut self, dir: Fh3, name: &str) {
        self.entries.remove(&(dir, name.to_string()));
    }

    /// Removes every binding under `dir` (directory changed).
    pub fn purge_dir(&mut self, dir: Fh3) {
        self.entries.retain(|(d, _), _| *d != dir);
    }

    /// Drops everything.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Number of cached bindings.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// A page-cache key: file and page index.
type PageKey = (Fh3, u64);

/// The data page cache: fixed-size pages with LRU eviction and per-file
/// mtime tags for validation.
#[derive(Debug)]
pub struct PageCache {
    pages: HashMap<PageKey, (Vec<u8>, u64)>, // data, lru sequence
    lru: std::collections::BTreeMap<u64, PageKey>,
    mtimes: HashMap<Fh3, NfsTime3>,
    next_seq: u64,
    used: usize,
    capacity: usize,
    page_size: usize,
}

impl PageCache {
    /// Creates a cache of `capacity` bytes with pages of `page_size`.
    pub fn new(capacity: usize, page_size: usize) -> Self {
        PageCache {
            pages: HashMap::new(),
            lru: std::collections::BTreeMap::new(),
            mtimes: HashMap::new(),
            next_seq: 0,
            used: 0,
            capacity,
            page_size,
        }
    }

    /// The page size in bytes.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// The mtime the cached pages of `fh` were valid for.
    pub fn mtime_tag(&self, fh: Fh3) -> Option<NfsTime3> {
        self.mtimes.get(&fh).copied()
    }

    /// Records the mtime tag for a file's pages.
    pub fn set_mtime_tag(&mut self, fh: Fh3, mtime: NfsTime3) {
        self.mtimes.insert(fh, mtime);
    }

    /// Returns the cached page, updating recency.
    pub fn get(&mut self, fh: Fh3, page: u64) -> Option<&[u8]> {
        let key = (fh, page);
        let seq = self.next_seq;
        match self.pages.get_mut(&key) {
            Some((_, old_seq)) => {
                self.lru.remove(old_seq);
                *old_seq = seq;
                self.next_seq += 1;
                self.lru.insert(seq, key);
                self.pages.get(&key).map(|(d, _)| d.as_slice())
            }
            None => None,
        }
    }

    /// Inserts a page, evicting least-recently-used pages as needed.
    pub fn insert(&mut self, fh: Fh3, page: u64, data: Vec<u8>) {
        let key = (fh, page);
        if let Some((old, seq)) = self.pages.remove(&key) {
            self.used -= old.len();
            self.lru.remove(&seq);
        }
        self.used += data.len();
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pages.insert(key, (data, seq));
        self.lru.insert(seq, key);
        while self.used > self.capacity {
            let Some((&oldest, &victim)) = self.lru.iter().next() else { break };
            self.lru.remove(&oldest);
            if let Some((data, _)) = self.pages.remove(&victim) {
                self.used -= data.len();
            }
        }
    }

    /// Drops all pages of one file.
    pub fn invalidate_file(&mut self, fh: Fh3) {
        let keys: Vec<PageKey> = self.pages.keys().filter(|(f, _)| *f == fh).copied().collect();
        for key in keys {
            if let Some((data, seq)) = self.pages.remove(&key) {
                self.used -= data.len();
                self.lru.remove(&seq);
            }
        }
        self.mtimes.remove(&fh);
    }

    /// Drops everything.
    pub fn clear(&mut self) {
        self.pages.clear();
        self.lru.clear();
        self.mtimes.clear();
        self.used = 0;
    }

    /// Bytes currently cached.
    pub fn used_bytes(&self) -> usize {
        self.used
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn attr(fileid: u64, mtime_s: u32, size: u64) -> Fattr3 {
        Fattr3 {
            ftype: gvfs_nfs3::Ftype3::Reg,
            mode: 0o644,
            nlink: 1,
            uid: 0,
            gid: 0,
            size,
            used: size,
            rdev: (0, 0),
            fsid: 1,
            fileid,
            atime: NfsTime3::default(),
            mtime: NfsTime3 { seconds: mtime_s, nseconds: 0 },
            ctime: NfsTime3 { seconds: mtime_s, nseconds: 0 },
        }
    }

    const MIN: Duration = Duration::from_secs(3);
    const MAX: Duration = Duration::from_secs(60);

    #[test]
    fn attr_cache_fresh_until_timeout() {
        let mut c = AttrCache::new();
        let fh = Fh3::from_fileid(1);
        c.insert(fh, attr(1, 0, 0), SimTime::ZERO, MIN);
        assert!(c.fresh(fh, SimTime::from_secs(2)).is_some());
        assert!(c.fresh(fh, SimTime::from_secs(4)).is_none());
        assert!(c.peek(fh).is_some());
    }

    #[test]
    fn attr_cache_timeout_doubles_when_unchanged() {
        let mut c = AttrCache::new();
        let fh = Fh3::from_fileid(1);
        c.insert(fh, attr(1, 0, 0), SimTime::ZERO, MIN);
        let changed = c.revalidate(fh, attr(1, 0, 0), SimTime::from_secs(3), MIN, MAX);
        assert!(!changed);
        // timeout now 6s
        assert!(c.fresh(fh, SimTime::from_secs(8)).is_some());
        assert!(c.fresh(fh, SimTime::from_secs(10)).is_none());
    }

    #[test]
    fn attr_cache_timeout_resets_on_change() {
        let mut c = AttrCache::new();
        let fh = Fh3::from_fileid(1);
        c.insert(fh, attr(1, 0, 0), SimTime::ZERO, MIN);
        c.revalidate(fh, attr(1, 0, 0), SimTime::from_secs(3), MIN, MAX); // 6s
        let changed = c.revalidate(fh, attr(1, 9, 1), SimTime::from_secs(9), MIN, MAX);
        assert!(changed);
        assert!(c.fresh(fh, SimTime::from_secs(11)).is_some());
        assert!(c.fresh(fh, SimTime::from_secs(13)).is_none()); // back to 3s
    }

    #[test]
    fn attr_cache_timeout_caps_at_max() {
        let mut c = AttrCache::new();
        let fh = Fh3::from_fileid(1);
        c.insert(fh, attr(1, 0, 0), SimTime::ZERO, MIN);
        for i in 0..10 {
            c.revalidate(fh, attr(1, 0, 0), SimTime::from_secs(3 * (i + 1)), MIN, MAX);
        }
        let last = SimTime::from_secs(30); // time of the final revalidation
        assert!(c.fresh(fh, last + Duration::from_secs(59)).is_some());
        assert!(c.fresh(fh, last + Duration::from_secs(61)).is_none());
    }

    #[test]
    fn lookup_cache_purge_dir() {
        let mut c = LookupCache::new(10);
        let d1 = Fh3::from_fileid(1);
        let d2 = Fh3::from_fileid(2);
        c.insert(d1, "a", Fh3::from_fileid(10));
        c.insert(d1, "b", Fh3::from_fileid(11));
        c.insert(d2, "a", Fh3::from_fileid(12));
        c.purge_dir(d1);
        assert!(c.get(d1, "a").is_none());
        assert_eq!(c.get(d2, "a"), Some(Some(Fh3::from_fileid(12))));
    }

    #[test]
    fn lookup_cache_overflow_clears() {
        let mut c = LookupCache::new(2);
        let d = Fh3::from_fileid(1);
        c.insert(d, "a", Fh3::from_fileid(10));
        c.insert(d, "b", Fh3::from_fileid(11));
        c.insert(d, "c", Fh3::from_fileid(12));
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(d, "c"), Some(Some(Fh3::from_fileid(12))));
    }

    #[test]
    fn lookup_cache_negative_entries() {
        let mut c = LookupCache::new(10);
        let d = Fh3::from_fileid(1);
        c.insert_negative(d, "ghost");
        assert_eq!(c.get(d, "ghost"), Some(None), "negative entry cached");
        assert_eq!(c.get(d, "other"), None, "unknown name");
        c.insert(d, "ghost", Fh3::from_fileid(9));
        assert_eq!(c.get(d, "ghost"), Some(Some(Fh3::from_fileid(9))));
    }

    #[test]
    fn page_cache_roundtrip_and_eviction() {
        let mut c = PageCache::new(100, 32);
        let fh = Fh3::from_fileid(1);
        c.insert(fh, 0, vec![1; 32]);
        c.insert(fh, 1, vec![2; 32]);
        c.insert(fh, 2, vec![3; 32]);
        assert_eq!(c.used_bytes(), 96);
        // Touch page 0 so page 1 is the LRU victim.
        assert!(c.get(fh, 0).is_some());
        c.insert(fh, 3, vec![4; 32]); // 128 > 100 → evict
        assert!(c.get(fh, 1).is_none(), "lru page evicted");
        assert!(c.get(fh, 0).is_some());
        assert!(c.used_bytes() <= 100);
    }

    #[test]
    fn page_cache_invalidate_file() {
        let mut c = PageCache::new(1000, 32);
        let f1 = Fh3::from_fileid(1);
        let f2 = Fh3::from_fileid(2);
        c.insert(f1, 0, vec![1; 32]);
        c.insert(f2, 0, vec![2; 32]);
        c.set_mtime_tag(f1, NfsTime3 { seconds: 5, nseconds: 0 });
        c.invalidate_file(f1);
        assert!(c.get(f1, 0).is_none());
        assert!(c.mtime_tag(f1).is_none());
        assert!(c.get(f2, 0).is_some());
        assert_eq!(c.used_bytes(), 32);
    }

    #[test]
    fn page_cache_reinsert_same_page_accounts_once() {
        let mut c = PageCache::new(1000, 32);
        let fh = Fh3::from_fileid(1);
        c.insert(fh, 0, vec![1; 32]);
        c.insert(fh, 0, vec![2; 16]);
        assert_eq!(c.used_bytes(), 16);
        assert_eq!(c.get(fh, 0).unwrap(), &[2; 16]);
    }
}
