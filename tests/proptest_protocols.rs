//! Property tests over the protocol state machines:
//!
//! * the invalidation protocol never loses an invalidation — a client
//!   that applies every GETINV reply (honoring force-invalidate) ends
//!   with no stale attribute cached, for arbitrary interleavings;
//! * the delegation table never grants conflicting delegations;
//! * GVFS protocol messages round-trip through XDR.

use gvfs_core::delegation::{DelegationKind, DelegationTable};
use gvfs_core::invalidation::{ConcurrentInvalidationTracker, InvalidationTracker};
use gvfs_core::protocol::{CallbackArgs, CallbackKind, DelegationGrant, GetinvRes, WrappedReply};
use gvfs_core::DelegationConfig;
use gvfs_netsim::SimTime;
use gvfs_nfs3::Fh3;
use proptest::prelude::*;
use std::collections::{HashMap, HashSet};

#[derive(Debug, Clone)]
enum InvOp {
    /// Client `writer` modifies file `fh`.
    Modify { fh: u64, writer: u32 },
    /// Client polls.
    Poll { client: u32 },
}

fn inv_op() -> impl Strategy<Value = InvOp> {
    prop_oneof![
        (0u64..20, 1u32..4).prop_map(|(fh, writer)| InvOp::Modify { fh, writer }),
        (1u32..4).prop_map(|client| InvOp::Poll { client }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Oracle: a client model that caches attribute "versions" and
    /// applies GETINV replies must never hold a version older than the
    /// last modification it was supposed to know about by its previous
    /// poll.
    #[test]
    fn invalidation_protocol_never_loses_updates(
        ops in proptest::collection::vec(inv_op(), 1..200),
        capacity in 1usize..16,
    ) {
        let mut tracker = InvalidationTracker::new(capacity);
        // Per-client simulated caches: fh -> version cached.
        let mut caches: HashMap<u32, HashMap<u64, u64>> = HashMap::new();
        let mut timestamps: HashMap<u32, Option<u64>> = HashMap::new();
        // Global truth: fh -> current version.
        let mut versions: HashMap<u64, u64> = HashMap::new();
        let mut version_counter = 0u64;

        for op in ops {
            match op {
                InvOp::Modify { fh, writer } => {
                    version_counter += 1;
                    versions.insert(fh, version_counter);
                    tracker.record_modification(Fh3::from_fileid(fh), writer);
                    // The writer observes its own write.
                    caches.entry(writer).or_default().insert(fh, version_counter);
                }
                InvOp::Poll { client } => {
                    let last = timestamps.get(&client).copied().flatten();
                    let res: GetinvRes = tracker.getinv(client, last);
                    timestamps.insert(client, Some(res.timestamp));
                    let cache = caches.entry(client).or_default();
                    if res.force_invalidate {
                        cache.clear();
                    }
                    for fh in &res.handles {
                        cache.remove(&fh.fileid());
                    }
                    if res.poll_again {
                        // Immediately poll again (the protocol's rule).
                        loop {
                            let last = timestamps[&client];
                            let more: GetinvRes = tracker.getinv(client, last);
                            timestamps.insert(client, Some(more.timestamp));
                            let cache = caches.entry(client).or_default();
                            if more.force_invalidate {
                                cache.clear();
                            }
                            for fh in &more.handles {
                                cache.remove(&fh.fileid());
                            }
                            if !more.poll_again {
                                break;
                            }
                        }
                    }
                    // INVARIANT: after a completed poll, nothing cached
                    // by this client is stale (the cache only contains
                    // entries at the current version or entries the
                    // client itself wrote last).
                    let cache = &caches[&client];
                    for (fh, cached_version) in cache {
                        let current = versions.get(fh).copied().unwrap_or(0);
                        prop_assert_eq!(
                            *cached_version, current,
                            "client {} caches stale version of file {}", client, fh
                        );
                    }
                }
            }
        }
    }

    /// Refetch-after-invalidation completeness: any file modified after
    /// a client's poll is delivered by its next poll (or covered by a
    /// force-invalidation).
    #[test]
    fn next_poll_delivers_everything_modified_since(
        mods in proptest::collection::vec((0u64..50, 2u32..4), 1..100),
    ) {
        let mut tracker = InvalidationTracker::new(8);
        let boot = tracker.getinv(1, None);
        let modified: HashSet<u64> = mods.iter().map(|(fh, _)| *fh).collect();
        for (fh, writer) in &mods {
            tracker.record_modification(Fh3::from_fileid(*fh), *writer);
        }
        let mut delivered = HashSet::new();
        let mut last = Some(boot.timestamp);
        let mut forced = false;
        loop {
            let res = tracker.getinv(1, last);
            last = Some(res.timestamp);
            forced |= res.force_invalidate;
            delivered.extend(res.handles.iter().map(|f| f.fileid()));
            if !res.poll_again {
                break;
            }
        }
        prop_assert!(
            forced || delivered == modified,
            "delivered {:?} != modified {:?} without force", delivered, modified
        );
    }

    /// The delegation table never ends an operation with two write
    /// delegations, or a read and a write delegation, on the same file.
    #[test]
    fn delegation_exclusivity_invariant(
        ops in proptest::collection::vec((0u64..6, 1u32..5, any::<bool>()), 1..150),
    ) {
        let mut table = DelegationTable::new(DelegationConfig::default());
        let mut t = 0u64;
        for (fh, client, write) in ops {
            t += 1;
            let fh = Fh3::from_fileid(fh);
            let (_, recalls) = table.access(fh, client, write, None, SimTime::from_secs(t));
            for recall in recalls {
                // Model the callback completing with a full flush.
                table.recall_done(recall.fh, recall.client, Vec::new());
            }
            // Invariant check over all tracked files and clients.
            for probe_fh in 0..6u64 {
                let probe_fh = Fh3::from_fileid(probe_fh);
                let mut writers = 0;
                let mut readers = 0;
                for probe_client in 1..5u32 {
                    match table.held(probe_fh, probe_client) {
                        Some(DelegationKind::Write) => writers += 1,
                        Some(DelegationKind::Read) => readers += 1,
                        None => {}
                    }
                }
                prop_assert!(writers <= 1, "two write delegations on {probe_fh:?}");
                prop_assert!(
                    writers == 0 || readers == 0,
                    "read+write delegations coexist on {probe_fh:?}"
                );
            }
        }
    }

    /// GVFS wire messages round-trip.
    #[test]
    fn gvfs_protocol_messages_roundtrip(
        ts in any::<u64>(),
        force in any::<bool>(),
        again in any::<bool>(),
        handles in proptest::collection::vec(any::<u64>(), 0..64),
        nfs_payload in proptest::collection::vec(any::<u8>(), 0..128),
        offset in proptest::option::of(any::<u64>()),
    ) {
        let res = GetinvRes {
            timestamp: ts,
            force_invalidate: force,
            poll_again: again,
            handles: handles.iter().map(|&h| Fh3::from_fileid(h)).collect(),
        };
        let bytes = gvfs_xdr::to_bytes(&res).unwrap();
        prop_assert_eq!(gvfs_xdr::from_bytes::<GetinvRes>(&bytes).unwrap(), res);

        // Payloads must stay word-aligned for the wrapper.
        let mut payload = nfs_payload;
        payload.resize(payload.len().div_ceil(4) * 4, 0);
        let inv = again.then(|| GetinvRes {
            timestamp: ts,
            force_invalidate: force,
            poll_again: false,
            handles: handles.iter().map(|&h| Fh3::from_fileid(h)).collect(),
        });
        let wrapped =
            WrappedReply { grant: DelegationGrant::Read, inv, peers: None, nfs_bytes: payload };
        let bytes = gvfs_xdr::to_bytes(&wrapped).unwrap();
        prop_assert_eq!(gvfs_xdr::from_bytes::<WrappedReply>(&bytes).unwrap(), wrapped);

        let cb = CallbackArgs {
            fh: Fh3::from_fileid(ts),
            kind: if force { CallbackKind::RecallWrite } else { CallbackKind::RecallRead },
            requested_offset: offset,
        };
        let bytes = gvfs_xdr::to_bytes(&cb).unwrap();
        prop_assert_eq!(gvfs_xdr::from_bytes::<CallbackArgs>(&bytes).unwrap(), cb);
    }

    /// Batched/coalesced GETINV (one stripe pass for many clients) is
    /// observationally equivalent to the unbatched per-client path:
    /// same replies, same resulting buffer state, for arbitrary
    /// interleavings of modifications and drains.
    #[test]
    fn batched_getinv_equivalent_to_unbatched(
        ops in proptest::collection::vec(inv_op(), 1..120),
        capacity in 1usize..32,
        batch in proptest::collection::vec(1u32..4, 1..8),
    ) {
        let unbatched = ConcurrentInvalidationTracker::new(capacity);
        let batched = ConcurrentInvalidationTracker::new(capacity);
        let mut timestamps: HashMap<u32, Option<u64>> = HashMap::new();
        for op in ops {
            match op {
                InvOp::Modify { fh, writer } => {
                    unbatched.record_modification(Fh3::from_fileid(fh), writer);
                    batched.record_modification(Fh3::from_fileid(fh), writer);
                }
                InvOp::Poll { client } => {
                    let last = timestamps.get(&client).copied().flatten();
                    let a = unbatched.getinv(client, last);
                    let b = batched.getinv_batch(&[(client, last)]);
                    prop_assert_eq!(&a, &b[0]);
                    timestamps.insert(client, Some(a.timestamp));
                }
            }
        }
        // One coalesced multi-client batch against per-client calls.
        let requests: Vec<(u32, Option<u64>)> = batch
            .iter()
            .map(|&c| (c, timestamps.get(&c).copied().flatten()))
            .collect();
        let mut per_client = Vec::new();
        for &(c, ts) in &requests {
            per_client.push(unbatched.getinv(c, ts));
        }
        let coalesced = batched.getinv_batch(&requests);
        prop_assert_eq!(per_client, coalesced);
        prop_assert_eq!(unbatched.snapshot(), batched.snapshot());
    }

    /// A piggybacked drain plus the follow-up poll delivers exactly
    /// what a plain poll would have: piggybacking never loses an
    /// invalidation (wrap-around included) and never delivers one the
    /// per-client path would not.
    #[test]
    fn piggybacked_drain_equivalent_to_poll(
        ops in proptest::collection::vec(inv_op(), 1..120),
        capacity in 1usize..16,
    ) {
        let plain = ConcurrentInvalidationTracker::new(capacity);
        let piggy = ConcurrentInvalidationTracker::new(capacity);
        let mut timestamps: HashMap<u32, Option<u64>> = HashMap::new();
        // The piggybacked client applies every drain it is handed, like
        // a live client absorbing replies.
        for op in ops {
            match op {
                InvOp::Modify { fh, writer } => {
                    plain.record_modification(Fh3::from_fileid(fh), writer);
                    piggy.record_modification(Fh3::from_fileid(fh), writer);
                }
                InvOp::Poll { client } => {
                    let last = timestamps.get(&client).copied().flatten();
                    let a = plain.getinv(client, last);
                    // The piggybacked path: try a free drain first, then
                    // poll with whatever timestamp it handed out.
                    let drained = piggy.try_drain(client);
                    let ts = drained.as_ref().map(|d| d.timestamp).or(last);
                    let b = piggy.getinv(client, ts);
                    // Between them, the piggyback and the poll must
                    // deliver the same handles the plain poll did (order
                    // preserved), or force when the plain path forced.
                    let mut via_piggy: Vec<Fh3> =
                        drained.as_ref().map(|d| d.handles.clone()).unwrap_or_default();
                    via_piggy.extend(b.handles.iter().copied());
                    let forced_piggy =
                        drained.as_ref().is_some_and(|d| d.force_invalidate) || b.force_invalidate;
                    if a.force_invalidate {
                        prop_assert!(
                            forced_piggy,
                            "plain path forced but piggybacked path did not"
                        );
                    } else if !forced_piggy {
                        prop_assert_eq!(&a.handles, &via_piggy);
                    }
                    prop_assert_eq!(a.timestamp, b.timestamp, "paths diverged in time");
                    timestamps.insert(client, Some(b.timestamp));
                }
            }
        }
        prop_assert_eq!(plain.snapshot(), piggy.snapshot());
    }
}
