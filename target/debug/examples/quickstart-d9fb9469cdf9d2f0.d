/root/repo/target/debug/examples/quickstart-d9fb9469cdf9d2f0.d: /root/repo/clippy.toml crates/bench/../../examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-d9fb9469cdf9d2f0.rmeta: /root/repo/clippy.toml crates/bench/../../examples/quickstart.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/../../examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
