/root/repo/target/debug/deps/client_server-fa43dd50c2042446.d: /root/repo/clippy.toml crates/client/tests/client_server.rs Cargo.toml

/root/repo/target/debug/deps/libclient_server-fa43dd50c2042446.rmeta: /root/repo/clippy.toml crates/client/tests/client_server.rs Cargo.toml

/root/repo/clippy.toml:
crates/client/tests/client_server.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
