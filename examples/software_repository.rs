//! The wide-area software repository scenario (paper §3 and Figure 1,
//! Session 2): a repository read-shared by WAN users, centrally
//! maintained by a LAN administrator, under invalidation-polling
//! consistency.
//!
//! ```sh
//! cargo run --release -p gvfs-bench --example software_repository
//! ```

use gvfs_bench::getinv_calls;
use gvfs_client::{MountOptions, NfsClient};
use gvfs_core::session::{Session, SessionConfig};
use gvfs_core::ConsistencyModel;
use gvfs_netsim::link::LinkConfig;
use gvfs_netsim::Sim;
use gvfs_vfs::{Timestamp, Vfs};
use std::sync::Arc;
use std::time::Duration;

const USERS: usize = 3;

fn main() {
    // The repository lives on the server: /repo/tool-<n>.bin.
    let vfs = Arc::new(Vfs::new());
    let repo = vfs.mkdir(vfs.root(), "repo", 0o755, Timestamp::from_nanos(0)).unwrap();
    for n in 0..20 {
        let f =
            vfs.create(repo, &format!("tool-{n:02}.bin"), 0o755, Timestamp::from_nanos(0)).unwrap();
        vfs.write(f, 0, &vec![n as u8; 64 * 1024], Timestamp::from_nanos(0)).unwrap();
    }

    let sim = Sim::new();
    // Three WAN users + one LAN administrator share one session.
    let mut links = vec![LinkConfig::wan(); USERS];
    links.push(LinkConfig::lan());
    let config = SessionConfig {
        model: ConsistencyModel::InvalidationPolling {
            period: Duration::from_secs(30),
            backoff_max: Some(Duration::from_secs(120)), // back off while idle
        },
        ..SessionConfig::default()
    };
    let session = Session::builder(config).client_links(links).vfs(vfs).establish(&sim);
    let root = session.root_fh();
    let wan = session.wan_stats().clone();
    let handle = session.handle();

    // WAN users repeatedly run tools out of the repository.
    for u in 0..USERS {
        let transport = session.client_transport(u);
        sim.spawn(&format!("user-{u}"), move || {
            let client = NfsClient::new(transport, root, MountOptions::default());
            for round in 0..20 {
                for n in 0..20 {
                    let data = client.read_file(&format!("/repo/tool-{n:02}.bin")).unwrap();
                    // After the admin push (t > 300 s + one polling window),
                    // users must observe version 2.
                    if gvfs_netsim::now().as_secs_f64() > 340.0 {
                        assert_eq!(data[0], 0xAA, "user must see the updated tool");
                    }
                }
                gvfs_netsim::sleep(Duration::from_secs(30));
                let _ = round;
            }
        });
    }

    // The administrator pushes an update mid-way.
    let admin_transport = session.client_transport(USERS);
    let wan2 = wan.clone();
    sim.spawn("administrator", move || {
        let client = NfsClient::new(admin_transport, root, MountOptions::default());
        gvfs_netsim::sleep(Duration::from_secs(300));
        let before = wan2.snapshot();
        for n in 0..20 {
            let fh = client.resolve(&format!("/repo/tool-{n:02}.bin")).unwrap();
            client.write(fh, 0, &vec![0xAA; 64 * 1024]).unwrap();
        }
        println!("admin pushed 20 updated tools at t={} (LAN: cheap)", gvfs_netsim::now());
        let _ = before;
    });

    // Let the session wind down after the users finish.
    let h2 = handle.clone();
    sim.spawn("janitor", move || {
        gvfs_netsim::sleep(Duration::from_secs(900));
        h2.shutdown();
    });

    let end = sim.run();
    let snap = session.wan_stats().snapshot();
    println!(
        "simulated {end}; WAN totals: {} RPCs, {} GETINV polls",
        snap.total_calls(),
        getinv_calls(&snap)
    );
    println!("every user observed the update within one polling window of the push");
}
