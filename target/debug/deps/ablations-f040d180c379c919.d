/root/repo/target/debug/deps/ablations-f040d180c379c919.d: /root/repo/clippy.toml crates/bench/src/bin/ablations.rs Cargo.toml

/root/repo/target/debug/deps/libablations-f040d180c379c919.rmeta: /root/repo/clippy.toml crates/bench/src/bin/ablations.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/src/bin/ablations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
