//! The proxy-server scale world: a population of lightweight
//! wire-level clients multiplexed over a small driver-actor pool,
//! shared by `bench_scale` and the `fanout` ablation.
//!
//! Unlike the `fig*` binaries this harness does not build full proxy
//! clients (disk cache, poller, flusher per client — far too heavy at
//! 10k): it drives credentialed calls against the proxy server with
//! one `GvfsCred` per simulated client, which is exactly what the
//! server sees from 10k real proxies.

use gvfs_core::protocol::{
    proc_ext, CallbackRes, GetinvArgs, GetinvRes, RecoverRes, GVFS_CALLBACK_PROGRAM,
    GVFS_PROXY_PROGRAM, GVFS_VERSION,
};
use gvfs_core::proxy::server::ProxyServer;
use gvfs_core::{ConsistencyModel, DelegationConfig};
use gvfs_netsim::link::{Link, LinkConfig};
use gvfs_netsim::transport::{ServerNode, SimRpcClient};
use gvfs_netsim::Sim;
use gvfs_nfs3::{proc3, Fh3};
use gvfs_rpc::dispatch::{Dispatcher, RpcService};
use gvfs_rpc::message::{GvfsCred, OpaqueAuth};
use gvfs_rpc::stats::RpcStats;
use gvfs_rpc::RpcError;
use gvfs_vfs::{Timestamp, Vfs};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Driver actors the simulated clients are multiplexed over (also the
/// number of distinct WAN links).
pub const DRIVERS: usize = 16;
const SESSION_KEY: u64 = 0x7363_616c;

/// A client population served by lightweight drivers: all the shared
/// state a phase needs to issue calls for any simulated client.
pub struct World {
    pub server: Arc<ProxyServer>,
    pub node: Arc<ServerNode>,
    pub links: Vec<Arc<Link>>,
    pub wan_stats: RpcStats,
    pub vfs: Arc<Vfs>,
}

/// The wire credential for simulated client `client`.
pub fn cred(client: u32) -> OpaqueAuth {
    let cred =
        GvfsCred { session_key: SESSION_KEY, client_id: client, callback_port: 7000 + client };
    OpaqueAuth::gvfs(&cred).expect("encode credential")
}

/// Replies to recalls instantly with nothing pending: the cheapest
/// possible client end of the callback channel, so the bench measures
/// the server's fan-out machinery and the wire, not client work.
struct NullCallback;

impl RpcService for NullCallback {
    fn program(&self) -> u32 {
        GVFS_CALLBACK_PROGRAM
    }
    fn version(&self) -> u32 {
        GVFS_VERSION
    }
    fn call(&self, procedure: u32, _args: &[u8]) -> Result<Vec<u8>, RpcError> {
        match procedure {
            proc_ext::CALLBACK => Ok(gvfs_xdr::to_bytes(&CallbackRes::default())?),
            proc_ext::RECOVER => Ok(gvfs_xdr::to_bytes(&RecoverRes::default())?),
            p => {
                Err(RpcError::ProcedureUnavailable { program: GVFS_CALLBACK_PROGRAM, procedure: p })
            }
        }
    }
}

impl World {
    /// Builds the NFS origin, the proxy server, `DRIVERS` WAN links and
    /// a callback route for every simulated client.
    pub fn establish(model: ConsistencyModel, clients: usize) -> World {
        let vfs = Arc::new(Vfs::new());
        let clock: gvfs_server::Clock =
            Arc::new(|| Timestamp::from_nanos(gvfs_netsim::now().as_nanos()));
        let nfs = gvfs_server::Nfs3Server::new(Arc::clone(&vfs), clock);
        let mut dispatcher = Dispatcher::new();
        dispatcher.register(nfs);
        let nfs_node = ServerNode::new("nfs-server", dispatcher, Duration::from_micros(200));

        let loopback = Link::new(LinkConfig::loopback());
        let server = ProxyServer::new(
            model,
            SimRpcClient::new(loopback.forward(), Arc::clone(&nfs_node), RpcStats::new()),
        );
        server.set_invalidation_capacity(1024);
        let mut ps_dispatcher = Dispatcher::new();
        ps_dispatcher.register_arc(Arc::clone(&server) as Arc<dyn RpcService>);
        let node = ServerNode::new("proxy-server", ps_dispatcher, Duration::from_micros(1000));

        let wan_stats = RpcStats::new();
        let links: Vec<Arc<Link>> = (0..DRIVERS).map(|_| Link::new(LinkConfig::wan())).collect();

        // Callback routes: every simulated client answers recalls on a
        // shared no-op callback node over its driver group's link.
        let mut cb_dispatcher = Dispatcher::new();
        cb_dispatcher.register(NullCallback);
        let cb_node =
            ServerNode::new("clients-callback", cb_dispatcher, Duration::from_micros(200));
        for i in 0..clients {
            let id = i as u32 + 1;
            let link = &links[i % DRIVERS];
            server.register_callback(
                id,
                SimRpcClient::new(link.reverse(), Arc::clone(&cb_node), wan_stats.clone()),
            );
        }

        World { server, node, links, wan_stats, vfs }
    }

    /// A wire client for driver `d`, sharing that driver group's link.
    pub fn transport(&self, d: usize) -> SimRpcClient {
        SimRpcClient::new(
            self.links[d % DRIVERS].forward(),
            Arc::clone(&self.node),
            self.wan_stats.clone(),
        )
    }

    /// Creates and seeds one 512-byte file, returning its handle.
    pub fn seed_file(&self, name: &str) -> Fh3 {
        let t = Timestamp::from_nanos(0);
        let id = self.vfs.create(self.vfs.root(), name, 0o644, t).expect("seed create");
        self.vfs.write(id, 0, &[7u8; 512], t).expect("seed write");
        Fh3::from_fileid(id.as_u64())
    }
}

/// Runs `f(driver, client_index)` for every client, fanned over the
/// driver pool, and parks the caller until every driver finished.
pub fn drive<F>(clients: usize, f: F)
where
    F: Fn(usize, usize) + Send + Sync + 'static,
{
    let f = Arc::new(f);
    let pending = Arc::new(AtomicUsize::new(DRIVERS));
    let caller = gvfs_netsim::current_actor();
    for d in 0..DRIVERS {
        let f = Arc::clone(&f);
        let pending = Arc::clone(&pending);
        let caller = caller.clone();
        gvfs_netsim::spawn_from_actor(&format!("driver-{d}"), move || {
            let mut i = d;
            while i < clients {
                f(d, i);
                i += DRIVERS;
            }
            if pending.fetch_sub(1, Ordering::SeqCst) == 1 {
                caller.unpark();
            }
        });
    }
    while pending.load(Ordering::SeqCst) > 0 {
        gvfs_netsim::park();
    }
}

/// Nearest-rank percentile of an already-sorted sample.
pub fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

/// One `GETINV` on the wire as client `id`.
pub fn getinv_call(t: &SimRpcClient, id: u32, last: Option<u64>) -> GetinvRes {
    let args = gvfs_xdr::to_bytes(&GetinvArgs { last_timestamp: last }).expect("encode getinv");
    let bytes = t
        .call_with_cred(GVFS_PROXY_PROGRAM, GVFS_VERSION, proc_ext::GETINV, args, cred(id))
        .expect("getinv");
    gvfs_xdr::from_bytes(&bytes).expect("decode getinv")
}

/// One small wrapped `WRITE` on the wire as client `id`.
pub fn write_call(t: &SimRpcClient, id: u32, fh: Fh3) {
    let args = gvfs_xdr::to_bytes(&gvfs_nfs3::WriteArgs {
        file: fh,
        offset: 0,
        count: 8,
        stable: gvfs_nfs3::StableHow::FileSync,
        data: vec![3u8; 8],
    })
    .expect("encode write");
    t.call_with_cred(GVFS_PROXY_PROGRAM, GVFS_VERSION, proc3::WRITE, args, cred(id))
        .expect("write");
}

/// One recall fan-out round: `clients` read-delegation holders on one
/// shared file, then a writer triggers the N-recall round through a
/// fan-out window of `window` (1 = the pre-rework sequential
/// issue-and-wait arm). Returns the round latency in (virtual) seconds
/// — the ablation's comparison unit — and a JSON block with the
/// server's scale counters.
pub fn fanout_round(clients: usize, window: usize) -> (f64, serde_json::Value) {
    let sim = Sim::new();
    let result = Arc::new(Mutex::new(None));
    let out = Arc::clone(&result);
    sim.spawn("bench-main", move || {
        let world = World::establish(
            ConsistencyModel::DelegationCallback(DelegationConfig::default()),
            clients,
        );
        world.server.set_fanout_window(window);
        let shared = world.seed_file("shared");

        // Every client reads the shared file once: N read delegations.
        let transports: Vec<SimRpcClient> = (0..DRIVERS).map(|d| world.transport(d)).collect();
        let read_args =
            gvfs_xdr::to_bytes(&gvfs_nfs3::ReadArgs { file: shared, offset: 0, count: 512 })
                .expect("encode read");
        {
            let transports = transports.clone();
            let read_args = read_args.clone();
            drive(clients, move |d, i| {
                let id = i as u32 + 1;
                transports[d]
                    .call_with_cred(
                        GVFS_PROXY_PROGRAM,
                        GVFS_VERSION,
                        proc3::READ,
                        read_args.clone(),
                        cred(id),
                    )
                    .expect("read");
            });
        }

        // The writer modifies it: the server must recall all N holders.
        let writer = clients as u32 + 1;
        let write_args = gvfs_xdr::to_bytes(&gvfs_nfs3::WriteArgs {
            file: shared,
            offset: 0,
            count: 64,
            stable: gvfs_nfs3::StableHow::FileSync,
            data: vec![9u8; 64],
        })
        .expect("encode write");
        let t0 = gvfs_netsim::now();
        transports[0]
            .call_with_cred(
                GVFS_PROXY_PROGRAM,
                GVFS_VERSION,
                proc3::WRITE,
                write_args,
                cred(writer),
            )
            .expect("write");
        let round_s = gvfs_netsim::now().saturating_since(t0).as_secs_f64();

        let stats = world.server.scale_stats();
        assert!(
            stats.recalls_sent >= clients as u64,
            "expected >= {clients} recalls, sent {}",
            stats.recalls_sent
        );
        assert!(
            stats.fanout_in_flight_hwm <= window as u64,
            "window {} exceeded: hwm {}",
            window,
            stats.fanout_in_flight_hwm
        );
        let json = serde_json::json!({
            "window": window,
            "recall_round_s": round_s,
            "recalls_per_sec": clients as f64 / round_s,
            "server": crate::server_meta(&world.server),
        });
        *out.lock() = Some((round_s, json));
    });
    sim.run();
    let v = result.lock().take();
    v.expect("fanout round produced no result")
}
