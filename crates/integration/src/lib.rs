//! `gvfs-integration`: cross-crate scenario infrastructure and the
//! workspace-level integration tests in `/tests`.
//!
//! The library half is the **deterministic chaos harness** ([`chaos`]):
//! seeded fault plans compiled onto the simulated links, a scenario
//! driver running randomized multi-client workloads over every
//! consistency model, per-model consistency oracles over the recorded
//! history, and a shrinker that bisects a violating fault plan to a
//! minimal reproducer. [`matrix`] adds the scripted consistency matrix
//! used to pin each model's visibility semantics.
//!
//! The `[[test]]` targets in this crate's `Cargo.toml` exercise the
//! full GVFS stack — XDR, ONC RPC, the NFSv3 server over the in-memory
//! filesystem, the kernel-client emulation, the proxies, and the
//! workload drivers — across consistency models and failure scenarios.

pub mod chaos;
pub mod matrix;
