//! A minimal Rust token scanner.
//!
//! The build environment has no access to crates.io, so the lint pass
//! cannot use `syn`; this hand-rolled lexer produces just enough
//! structure for the checks in [`crate::lint`]: identifiers and
//! punctuation with line numbers, with comments, strings, character
//! literals and lifetimes stripped so brace/paren tracking over the
//! token stream is reliable.

/// What a token is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// An identifier or keyword (including `_`).
    Ident,
    /// A single punctuation character.
    Punct,
    /// A number, string, byte-string or char literal (contents elided).
    Literal,
}

/// One token with its source line (1-based).
#[derive(Debug, Clone)]
pub struct Token {
    /// Token kind.
    pub kind: Kind,
    /// Token text; for [`Kind::Literal`] this is a placeholder.
    pub text: String,
    /// 1-based source line of the token's first character.
    pub line: u32,
}

impl Token {
    /// Whether this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == Kind::Ident && self.text == s
    }

    /// Whether this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == Kind::Punct && self.text.len() == 1 && self.text.as_bytes()[0] as char == c
    }
}

/// Tokenizes `source`, dropping comments and literal contents.
pub fn tokenize(source: &str) -> Vec<Token> {
    let bytes: Vec<char> = source.chars().collect();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    let n = bytes.len();

    let is_ident_start = |c: char| c.is_alphabetic() || c == '_';
    let is_ident_cont = |c: char| c.is_alphanumeric() || c == '_';

    while i < n {
        let c = bytes[i];
        if c == '\n' {
            line += 1;
            i += 1;
        } else if c.is_whitespace() {
            i += 1;
        } else if c == '/' && i + 1 < n && bytes[i + 1] == '/' {
            while i < n && bytes[i] != '\n' {
                i += 1;
            }
        } else if c == '/' && i + 1 < n && bytes[i + 1] == '*' {
            // Block comment; Rust block comments nest.
            let mut depth = 1;
            i += 2;
            while i < n && depth > 0 {
                if bytes[i] == '\n' {
                    line += 1;
                    i += 1;
                } else if bytes[i] == '/' && i + 1 < n && bytes[i + 1] == '*' {
                    depth += 1;
                    i += 2;
                } else if bytes[i] == '*' && i + 1 < n && bytes[i + 1] == '/' {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
        } else if c == '"' {
            let start = line;
            i += 1;
            while i < n {
                match bytes[i] {
                    '\\' => i += 2,
                    '"' => {
                        i += 1;
                        break;
                    }
                    '\n' => {
                        line += 1;
                        i += 1;
                    }
                    _ => i += 1,
                }
            }
            toks.push(Token { kind: Kind::Literal, text: "\"str\"".into(), line: start });
        } else if c == '\'' {
            // Lifetime (`'a`) or char literal (`'x'`, `'\n'`).
            let start = line;
            if i + 1 < n && is_ident_start(bytes[i + 1]) && !(i + 2 < n && bytes[i + 2] == '\'') {
                // Lifetime: consume the quote and the identifier.
                i += 1;
                while i < n && is_ident_cont(bytes[i]) {
                    i += 1;
                }
            } else {
                i += 1;
                while i < n {
                    match bytes[i] {
                        '\\' => i += 2,
                        '\'' => {
                            i += 1;
                            break;
                        }
                        _ => i += 1,
                    }
                }
                toks.push(Token { kind: Kind::Literal, text: "'c'".into(), line: start });
            }
        } else if c.is_ascii_digit() {
            let start = line;
            i += 1;
            while i < n
                && (is_ident_cont(bytes[i])
                    || (bytes[i] == '.' && i + 1 < n && bytes[i + 1].is_ascii_digit()))
            {
                i += 1;
            }
            toks.push(Token { kind: Kind::Literal, text: "0".into(), line: start });
        } else if is_ident_start(c) {
            let start_idx = i;
            let start = line;
            i += 1;
            while i < n && is_ident_cont(bytes[i]) {
                i += 1;
            }
            let text: String = bytes[start_idx..i].iter().collect();
            // Raw / byte string prefixes: r"..", r#".."#, b"..", br"..".
            let raw = matches!(text.as_str(), "r" | "br" | "rb");
            let byte = text == "b";
            if (raw || byte) && i < n && (bytes[i] == '"' || (raw && bytes[i] == '#')) {
                let mut hashes = 0usize;
                while i < n && bytes[i] == '#' {
                    hashes += 1;
                    i += 1;
                }
                if i < n && bytes[i] == '"' {
                    i += 1;
                    'raw: while i < n {
                        if bytes[i] == '\n' {
                            line += 1;
                        } else if byte && bytes[i] == '\\' {
                            i += 2;
                            continue;
                        } else if bytes[i] == '"' {
                            let mut j = 0;
                            while j < hashes && i + 1 + j < n && bytes[i + 1 + j] == '#' {
                                j += 1;
                            }
                            if j == hashes {
                                i += 1 + hashes;
                                break 'raw;
                            }
                        }
                        i += 1;
                    }
                    toks.push(Token { kind: Kind::Literal, text: "\"str\"".into(), line: start });
                    continue;
                }
                // A lone `r#`/`#` run not followed by a quote: emit the
                // ident and let the `#`s re-lex as punctuation.
                toks.push(Token { kind: Kind::Ident, text, line: start });
                for _ in 0..hashes {
                    toks.push(Token { kind: Kind::Punct, text: "#".into(), line: start });
                }
                continue;
            }
            if byte && i + 1 < n && bytes[i] == '\'' {
                // Byte char literal b'x'.
                i += 1;
                while i < n {
                    match bytes[i] {
                        '\\' => i += 2,
                        '\'' => {
                            i += 1;
                            break;
                        }
                        _ => i += 1,
                    }
                }
                toks.push(Token { kind: Kind::Literal, text: "'c'".into(), line: start });
                continue;
            }
            toks.push(Token { kind: Kind::Ident, text, line: start });
        } else {
            toks.push(Token { kind: Kind::Punct, text: c.to_string(), line });
            i += 1;
        }
    }
    toks
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        tokenize(src).into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn idents_and_punct() {
        assert_eq!(texts("let x = a.lock();"), ["let", "x", "=", "a", ".", "lock", "(", ")", ";"]);
    }

    #[test]
    fn comments_and_strings_elided() {
        let toks = tokenize("a // comment .lock()\n/* b */ \"x.lock()\" c");
        let idents: Vec<_> =
            toks.iter().filter(|t| t.kind == Kind::Ident).map(|t| t.text.clone()).collect();
        assert_eq!(idents, ["a", "c"]);
    }

    #[test]
    fn lines_tracked_through_multiline_strings() {
        let toks = tokenize("\"a\nb\"\nx");
        let x = toks.iter().find(|t| t.is_ident("x")).expect("x token");
        assert_eq!(x.line, 3);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = tokenize("fn f<'a>(x: &'a str) {} let c = 'y';");
        assert_eq!(toks.iter().filter(|t| t.kind == Kind::Literal).count(), 1);
    }

    #[test]
    fn raw_strings() {
        let toks = tokenize(r##"let s = r#"un.lock()"terminated"#; done"##);
        assert!(toks.iter().any(|t| t.is_ident("done")));
        assert!(!toks.iter().any(|t| t.is_ident("unterminated")));
    }
}
