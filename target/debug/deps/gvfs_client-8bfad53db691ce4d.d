/root/repo/target/debug/deps/gvfs_client-8bfad53db691ce4d.d: crates/client/src/lib.rs crates/client/src/cache.rs crates/client/src/client.rs crates/client/src/options.rs

/root/repo/target/debug/deps/libgvfs_client-8bfad53db691ce4d.rlib: crates/client/src/lib.rs crates/client/src/cache.rs crates/client/src/client.rs crates/client/src/options.rs

/root/repo/target/debug/deps/libgvfs_client-8bfad53db691ce4d.rmeta: crates/client/src/lib.rs crates/client/src/cache.rs crates/client/src/client.rs crates/client/src/options.rs

crates/client/src/lib.rs:
crates/client/src/cache.rs:
crates/client/src/client.rs:
crates/client/src/options.rs:
