/root/repo/target/debug/deps/fig4-25cbf8ad538c9529.d: /root/repo/clippy.toml crates/bench/src/bin/fig4.rs Cargo.toml

/root/repo/target/debug/deps/libfig4-25cbf8ad538c9529.rmeta: /root/repo/clippy.toml crates/bench/src/bin/fig4.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/src/bin/fig4.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
