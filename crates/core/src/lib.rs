//! GVFS — the Grid Virtual File System.
//!
//! This crate is the paper's primary contribution: user-level NFS *proxy*
//! clients and servers that interpose between unmodified kernel NFS
//! clients and servers and add per-session, application-tailored disk
//! caching and cache consistency:
//!
//! * [`protocol`] — the GVFS wire extensions: the proxy RPC program that
//!   wraps NFSv3 procedures with piggybacked delegation grants, the
//!   `GETINV` invalidation-polling call (§4.2), and the server→client
//!   `CALLBACK`/`RECOVER` program (§4.3).
//! * [`cache::DiskCache`] — the proxy client's disk cache for attributes
//!   and data blocks, with dirty-block tracking for write-back.
//! * [`invalidation`] — the proxy server's per-client, logically
//!   timestamped invalidation buffers (bounded circular queues with
//!   coalescing, wrap-around detection and force-invalidation).
//! * [`delegation`] — the proxy server's per-file read/write delegation
//!   state machine with speculated open/close, expiration and LRU
//!   eviction.
//! * [`proxy`] — the proxy client and proxy server services themselves.
//! * [`session`] — the middleware: establishes a GVFS session (Figure 1)
//!   over shared physical resources, wiring kernel clients → proxy
//!   clients → WAN → proxy server → kernel NFS server, with the
//!   consistency model chosen per session.
//!
//! # Consistency models
//!
//! [`ConsistencyModel`] selects among:
//!
//! * **Passthrough** — forward everything; measures interception
//!   overhead only.
//! * **Invalidation polling** — relaxed consistency: proxy clients serve
//!   cached attributes/data without per-file revalidation and poll the
//!   proxy server for invalidation buffers within a configurable window
//!   (fixed or exponential back-off).
//! * **Delegation + callback** — strong consistency: per-file read/write
//!   delegations recalled by server→client callbacks, with delayed
//!   writes and partial write-back.
//!
//! # Examples
//!
//! Establishing a session and running one client (see `examples/` for
//! complete programs):
//!
//! ```
//! use gvfs_core::session::{Session, SessionConfig};
//! use gvfs_core::ConsistencyModel;
//! use gvfs_client::{MountOptions, NfsClient};
//! use gvfs_netsim::link::LinkConfig;
//! use gvfs_netsim::Sim;
//! use std::time::Duration;
//!
//! let sim = Sim::new();
//! let config = SessionConfig {
//!     model: ConsistencyModel::InvalidationPolling {
//!         period: Duration::from_secs(30),
//!         backoff_max: None,
//!     },
//!     ..SessionConfig::default()
//! };
//! let session = Session::builder(config)
//!     .clients(1)
//!     .wan(LinkConfig::wan())
//!     .establish(&sim);
//! let transport = session.client_transport(0);
//! let root = session.root_fh();
//! let handle = session.handle();
//! sim.spawn("app", move || {
//!     let client = NfsClient::new(transport, root, MountOptions::default());
//!     client.write_file("/data", b"hello grid").unwrap();
//!     assert_eq!(client.read_file("/data").unwrap(), b"hello grid");
//!     handle.shutdown();
//! });
//! sim.run();
//! ```

pub mod cache;
pub mod delegation;
pub mod invalidation;
pub mod protocol;
pub mod proxy;
pub mod session;
pub mod store;
pub mod trace;

mod model;

pub use model::{ConsistencyModel, DelegationConfig};
