/root/repo/target/debug/deps/proptest_protocols-eaed77bde2501070.d: /root/repo/clippy.toml crates/integration/../../tests/proptest_protocols.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_protocols-eaed77bde2501070.rmeta: /root/repo/clippy.toml crates/integration/../../tests/proptest_protocols.rs Cargo.toml

/root/repo/clippy.toml:
crates/integration/../../tests/proptest_protocols.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
