/root/repo/target/release/deps/gvfs_workloads-7e8c8feb4132f8ce.d: crates/workloads/src/lib.rs crates/workloads/src/ch1d.rs crates/workloads/src/lock.rs crates/workloads/src/make.rs crates/workloads/src/nanomos.rs crates/workloads/src/postmark.rs

/root/repo/target/release/deps/libgvfs_workloads-7e8c8feb4132f8ce.rlib: crates/workloads/src/lib.rs crates/workloads/src/ch1d.rs crates/workloads/src/lock.rs crates/workloads/src/make.rs crates/workloads/src/nanomos.rs crates/workloads/src/postmark.rs

/root/repo/target/release/deps/libgvfs_workloads-7e8c8feb4132f8ce.rmeta: crates/workloads/src/lib.rs crates/workloads/src/ch1d.rs crates/workloads/src/lock.rs crates/workloads/src/make.rs crates/workloads/src/nanomos.rs crates/workloads/src/postmark.rs

crates/workloads/src/lib.rs:
crates/workloads/src/ch1d.rs:
crates/workloads/src/lock.rs:
crates/workloads/src/make.rs:
crates/workloads/src/nanomos.rs:
crates/workloads/src/postmark.rs:
