/root/repo/target/debug/deps/fig8-9edc2003b2a7ecc4.d: /root/repo/clippy.toml crates/bench/src/bin/fig8.rs Cargo.toml

/root/repo/target/debug/deps/libfig8-9edc2003b2a7ecc4.rmeta: /root/repo/clippy.toml crates/bench/src/bin/fig8.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/src/bin/fig8.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
