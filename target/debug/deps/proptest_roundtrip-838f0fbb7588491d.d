/root/repo/target/debug/deps/proptest_roundtrip-838f0fbb7588491d.d: /root/repo/clippy.toml crates/xdr/tests/proptest_roundtrip.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_roundtrip-838f0fbb7588491d.rmeta: /root/repo/clippy.toml crates/xdr/tests/proptest_roundtrip.rs Cargo.toml

/root/repo/clippy.toml:
crates/xdr/tests/proptest_roundtrip.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
