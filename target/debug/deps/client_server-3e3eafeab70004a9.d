/root/repo/target/debug/deps/client_server-3e3eafeab70004a9.d: crates/client/tests/client_server.rs

/root/repo/target/debug/deps/client_server-3e3eafeab70004a9: crates/client/tests/client_server.rs

crates/client/tests/client_server.rs:
