//! Shared NFSv3 data types: file handles, attributes, weak cache
//! consistency data.

use gvfs_vfs::{Attr, FileKind, Timestamp};
use gvfs_xdr::{Decoder, Encoder, Xdr, XdrError};

/// Maximum file-handle size in bytes (RFC 1813).
pub const FHSIZE3: usize = 64;

/// An NFSv3 file handle: opaque to clients, minted by the server.
///
/// This implementation encodes the backing filesystem's stable file id
/// in eight bytes; handles of deleted files are detected as stale by the
/// id never being reused.
///
/// # Examples
///
/// ```
/// let fh = gvfs_nfs3::Fh3::from_fileid(42);
/// assert_eq!(fh.fileid(), 42);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fh3 {
    fileid: u64,
}

impl Fh3 {
    /// Builds a handle for a file id.
    pub const fn from_fileid(fileid: u64) -> Self {
        Fh3 { fileid }
    }

    /// The embedded file id.
    pub const fn fileid(self) -> u64 {
        self.fileid
    }
}

impl Xdr for Fh3 {
    fn encode(&self, enc: &mut Encoder) -> Result<(), XdrError> {
        enc.put_opaque(&self.fileid.to_be_bytes())
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, XdrError> {
        let data = dec.get_opaque_bounded("Fh3", FHSIZE3)?;
        if data.len() != 8 {
            return Err(XdrError::LengthBound { type_name: "Fh3", declared: data.len(), max: 8 });
        }
        let mut bytes = [0u8; 8];
        bytes.copy_from_slice(&data);
        Ok(Fh3 { fileid: u64::from_be_bytes(bytes) })
    }
}

/// NFS object type (`ftype3`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u32)]
pub enum Ftype3 {
    /// Regular file.
    Reg = 1,
    /// Directory.
    Dir = 2,
    /// Symbolic link.
    Lnk = 5,
}

impl Xdr for Ftype3 {
    fn encode(&self, enc: &mut Encoder) -> Result<(), XdrError> {
        enc.put_u32(*self as u32);
        Ok(())
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, XdrError> {
        match dec.get_u32()? {
            1 => Ok(Ftype3::Reg),
            2 => Ok(Ftype3::Dir),
            5 => Ok(Ftype3::Lnk),
            value => Err(XdrError::InvalidDiscriminant { type_name: "Ftype3", value }),
        }
    }
}

impl From<FileKind> for Ftype3 {
    fn from(kind: FileKind) -> Self {
        match kind {
            FileKind::Regular => Ftype3::Reg,
            FileKind::Directory => Ftype3::Dir,
            FileKind::Symlink => Ftype3::Lnk,
        }
    }
}

/// NFS timestamp (`nfstime3`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct NfsTime3 {
    /// Whole seconds.
    pub seconds: u32,
    /// Nanoseconds within the second.
    pub nseconds: u32,
}

impl Xdr for NfsTime3 {
    fn encode(&self, enc: &mut Encoder) -> Result<(), XdrError> {
        enc.put_u32(self.seconds);
        enc.put_u32(self.nseconds);
        Ok(())
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, XdrError> {
        Ok(NfsTime3 { seconds: dec.get_u32()?, nseconds: dec.get_u32()? })
    }
}

impl From<Timestamp> for NfsTime3 {
    fn from(t: Timestamp) -> Self {
        let (seconds, nseconds) = t.to_secs_nanos();
        NfsTime3 { seconds, nseconds }
    }
}

impl From<NfsTime3> for Timestamp {
    fn from(t: NfsTime3) -> Self {
        Timestamp::from_nanos(t.seconds as u64 * 1_000_000_000 + t.nseconds as u64)
    }
}

/// File attributes (`fattr3`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fattr3 {
    /// Object type.
    pub ftype: Ftype3,
    /// Permission bits.
    pub mode: u32,
    /// Hard-link count.
    pub nlink: u32,
    /// Owner uid.
    pub uid: u32,
    /// Owner gid.
    pub gid: u32,
    /// File size in bytes.
    pub size: u64,
    /// Bytes actually used on disk.
    pub used: u64,
    /// Device numbers (always zero here).
    pub rdev: (u32, u32),
    /// Filesystem id.
    pub fsid: u64,
    /// Stable file id.
    pub fileid: u64,
    /// Last access time.
    pub atime: NfsTime3,
    /// Last modification time.
    pub mtime: NfsTime3,
    /// Last attribute change time.
    pub ctime: NfsTime3,
}

impl Xdr for Fattr3 {
    fn encode(&self, enc: &mut Encoder) -> Result<(), XdrError> {
        self.ftype.encode(enc)?;
        enc.put_u32(self.mode);
        enc.put_u32(self.nlink);
        enc.put_u32(self.uid);
        enc.put_u32(self.gid);
        enc.put_u64(self.size);
        enc.put_u64(self.used);
        enc.put_u32(self.rdev.0);
        enc.put_u32(self.rdev.1);
        enc.put_u64(self.fsid);
        enc.put_u64(self.fileid);
        self.atime.encode(enc)?;
        self.mtime.encode(enc)?;
        self.ctime.encode(enc)
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, XdrError> {
        Ok(Fattr3 {
            ftype: Ftype3::decode(dec)?,
            mode: dec.get_u32()?,
            nlink: dec.get_u32()?,
            uid: dec.get_u32()?,
            gid: dec.get_u32()?,
            size: dec.get_u64()?,
            used: dec.get_u64()?,
            rdev: (dec.get_u32()?, dec.get_u32()?),
            fsid: dec.get_u64()?,
            fileid: dec.get_u64()?,
            atime: NfsTime3::decode(dec)?,
            mtime: NfsTime3::decode(dec)?,
            ctime: NfsTime3::decode(dec)?,
        })
    }
}

impl From<Attr> for Fattr3 {
    fn from(a: Attr) -> Self {
        Fattr3 {
            ftype: a.kind.into(),
            mode: a.mode,
            nlink: a.nlink,
            uid: a.uid,
            gid: a.gid,
            size: a.size,
            used: a.size,
            rdev: (0, 0),
            fsid: 1,
            fileid: a.fileid,
            atime: a.atime.into(),
            mtime: a.mtime.into(),
            ctime: a.ctime.into(),
        }
    }
}

/// Optional post-operation attributes (`post_op_attr`).
pub type PostOpAttr = Option<Fattr3>;

/// Optional post-operation file handle (`post_op_fh3`).
pub type PostOpFh3 = Option<Fh3>;

/// The attribute subset carried in pre-operation WCC data (`wcc_attr`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WccAttr {
    /// File size before the operation.
    pub size: u64,
    /// Modification time before the operation.
    pub mtime: NfsTime3,
    /// Change time before the operation.
    pub ctime: NfsTime3,
}

impl Xdr for WccAttr {
    fn encode(&self, enc: &mut Encoder) -> Result<(), XdrError> {
        enc.put_u64(self.size);
        self.mtime.encode(enc)?;
        self.ctime.encode(enc)
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, XdrError> {
        Ok(WccAttr {
            size: dec.get_u64()?,
            mtime: NfsTime3::decode(dec)?,
            ctime: NfsTime3::decode(dec)?,
        })
    }
}

impl From<Attr> for WccAttr {
    fn from(a: Attr) -> Self {
        WccAttr { size: a.size, mtime: a.mtime.into(), ctime: a.ctime.into() }
    }
}

/// Optional pre-operation attributes (`pre_op_attr`).
pub type PreOpAttr = Option<WccAttr>;

/// Weak cache consistency data (`wcc_data`): before/after attributes so
/// clients can detect whether their cached view remained valid across
/// the operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WccData {
    /// Attributes before the operation, if the server captured them.
    pub before: PreOpAttr,
    /// Attributes after the operation, if available.
    pub after: PostOpAttr,
}

impl Xdr for WccData {
    fn encode(&self, enc: &mut Encoder) -> Result<(), XdrError> {
        self.before.encode(enc)?;
        self.after.encode(enc)
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, XdrError> {
        Ok(WccData { before: PreOpAttr::decode(dec)?, after: PostOpAttr::decode(dec)? })
    }
}

/// How to set a time field in `sattr3`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TimeHow {
    /// Leave the time unchanged.
    #[default]
    DontChange,
    /// Set to the server's current time.
    ServerTime,
    /// Set to this client-supplied time.
    Client(NfsTime3),
}

impl Xdr for TimeHow {
    fn encode(&self, enc: &mut Encoder) -> Result<(), XdrError> {
        match self {
            TimeHow::DontChange => enc.put_u32(0),
            TimeHow::ServerTime => enc.put_u32(1),
            TimeHow::Client(t) => {
                enc.put_u32(2);
                t.encode(enc)?;
            }
        }
        Ok(())
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, XdrError> {
        match dec.get_u32()? {
            0 => Ok(TimeHow::DontChange),
            1 => Ok(TimeHow::ServerTime),
            2 => Ok(TimeHow::Client(NfsTime3::decode(dec)?)),
            value => Err(XdrError::InvalidDiscriminant { type_name: "TimeHow", value }),
        }
    }
}

/// Settable attributes (`sattr3`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Sattr3 {
    /// New mode bits.
    pub mode: Option<u32>,
    /// New owner uid.
    pub uid: Option<u32>,
    /// New owner gid.
    pub gid: Option<u32>,
    /// New size (truncate/extend).
    pub size: Option<u64>,
    /// Access-time policy.
    pub atime: TimeHow,
    /// Modification-time policy.
    pub mtime: TimeHow,
}

impl Xdr for Sattr3 {
    fn encode(&self, enc: &mut Encoder) -> Result<(), XdrError> {
        self.mode.encode(enc)?;
        self.uid.encode(enc)?;
        self.gid.encode(enc)?;
        self.size.encode(enc)?;
        self.atime.encode(enc)?;
        self.mtime.encode(enc)
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, XdrError> {
        Ok(Sattr3 {
            mode: Option::<u32>::decode(dec)?,
            uid: Option::<u32>::decode(dec)?,
            gid: Option::<u32>::decode(dec)?,
            size: Option::<u64>::decode(dec)?,
            atime: TimeHow::decode(dec)?,
            mtime: TimeHow::decode(dec)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rt<T: Xdr + PartialEq + std::fmt::Debug>(v: &T) {
        let bytes = gvfs_xdr::to_bytes(v).unwrap();
        assert_eq!(&gvfs_xdr::from_bytes::<T>(&bytes).unwrap(), v);
    }

    #[test]
    fn fh3_roundtrip_and_width() {
        let fh = Fh3::from_fileid(0x0102_0304_0506_0708);
        let bytes = gvfs_xdr::to_bytes(&fh).unwrap();
        assert_eq!(bytes.len(), 12); // 4-byte length + 8 data
        rt(&fh);
    }

    #[test]
    fn fh3_rejects_wrong_width() {
        let mut enc = Encoder::new();
        enc.put_opaque(&[1, 2, 3]).unwrap();
        assert!(gvfs_xdr::from_bytes::<Fh3>(&enc.into_bytes()).is_err());
    }

    #[test]
    fn fattr3_roundtrip() {
        let attr = Fattr3 {
            ftype: Ftype3::Reg,
            mode: 0o644,
            nlink: 2,
            uid: 1000,
            gid: 100,
            size: 12345,
            used: 12345,
            rdev: (0, 0),
            fsid: 1,
            fileid: 99,
            atime: NfsTime3 { seconds: 1, nseconds: 2 },
            mtime: NfsTime3 { seconds: 3, nseconds: 4 },
            ctime: NfsTime3 { seconds: 5, nseconds: 6 },
        };
        rt(&attr);
        // fattr3 is 84 bytes on the wire (RFC 1813).
        assert_eq!(gvfs_xdr::encoded_len(&attr).unwrap(), 84);
    }

    #[test]
    fn wcc_data_roundtrip() {
        rt(&WccData::default());
        let wcc = WccData {
            before: Some(WccAttr {
                size: 1,
                mtime: NfsTime3::default(),
                ctime: NfsTime3::default(),
            }),
            after: None,
        };
        rt(&wcc);
    }

    #[test]
    fn sattr3_roundtrip() {
        rt(&Sattr3::default());
        rt(&Sattr3 {
            mode: Some(0o755),
            uid: None,
            gid: Some(5),
            size: Some(0),
            atime: TimeHow::ServerTime,
            mtime: TimeHow::Client(NfsTime3 { seconds: 9, nseconds: 9 }),
        });
    }

    #[test]
    fn ftype_from_kind() {
        assert_eq!(Ftype3::from(FileKind::Regular), Ftype3::Reg);
        assert_eq!(Ftype3::from(FileKind::Directory), Ftype3::Dir);
        assert_eq!(Ftype3::from(FileKind::Symlink), Ftype3::Lnk);
    }

    #[test]
    fn time_conversions_roundtrip() {
        let t = Timestamp::from_nanos(5_123_456_789);
        let nfs: NfsTime3 = t.into();
        assert_eq!(nfs, NfsTime3 { seconds: 5, nseconds: 123_456_789 });
        assert_eq!(Timestamp::from(nfs), t);
    }
}
