//! Repo-specific static analysis for the GVFS workspace: a source lint
//! pass keyed to the consistency protocol's concurrency discipline, and
//! an explicit-state model checker for the delegation and invalidation
//! state machines. The `gvfs-analysis` binary (`src/main.rs`) is the CI
//! entry point; this library exists so the checks themselves are
//! testable (`tests/self_check.rs` proves the lint catches seeded
//! violations and the models really explore).

pub mod lexer;
pub mod lint;
pub mod model;
pub mod product;
pub mod replay;
