//! The Make benchmark (§5.1.1, Figure 4).
//!
//! Models `make` building Tcl/Tk 8.4.5: the tool stats every node of
//! the dependency graph, then compiles each source — opening the source
//! and each transitively included header (close-to-open consistency
//! turns every open into a `GETATTR`), writing a per-source temporary,
//! emitting an object for a subset of sources, deleting the temporary —
//! and finally links the objects.

use gvfs_client::NfsClient;
use gvfs_vfs::{Timestamp, Vfs};
use std::time::Duration;

/// Parameters of the Make benchmark; defaults are the paper's
/// "357 C sources and 103 headers to generate 168 objects".
#[derive(Debug, Clone)]
pub struct MakeConfig {
    /// Number of C source files.
    pub sources: usize,
    /// Number of header files.
    pub headers: usize,
    /// Number of object files produced.
    pub objects: usize,
    /// Headers opened (cross-referenced) per source compile.
    pub includes_per_source: usize,
    /// Bytes per source file.
    pub source_bytes: usize,
    /// Bytes per header file.
    pub header_bytes: usize,
    /// Bytes per object file (and per compile temporary).
    pub object_bytes: usize,
    /// CPU time modelled per source compile.
    pub compile_time: Duration,
    /// CPU time modelled for the final link.
    pub link_time: Duration,
    /// Application-level write chunk (stdio buffer size): the compiler
    /// emits output in buffered chunks, each becoming one NFS `WRITE`
    /// on a synchronous export — which is exactly what write-back
    /// caching coalesces.
    pub write_chunk: usize,
}

impl Default for MakeConfig {
    fn default() -> Self {
        MakeConfig {
            sources: 357,
            headers: 103,
            objects: 168,
            includes_per_source: 30,
            source_bytes: 9 * 1024,
            header_bytes: 5 * 1024,
            object_bytes: 24 * 1024,
            compile_time: Duration::from_millis(500),
            link_time: Duration::from_secs(5),
            write_chunk: 8 * 1024,
        }
    }
}

impl MakeConfig {
    /// A reduced configuration for fast tests.
    pub fn small() -> Self {
        MakeConfig {
            sources: 30,
            headers: 12,
            objects: 15,
            includes_per_source: 6,
            compile_time: Duration::from_millis(100),
            link_time: Duration::from_millis(500),
            ..Default::default()
        }
    }

    fn source_name(i: usize) -> String {
        format!("src{i:03}.c")
    }
    fn header_name(i: usize) -> String {
        format!("hdr{i:03}.h")
    }
    fn object_name(i: usize) -> String {
        format!("obj{i:03}.o")
    }

    /// The headers source `i` includes (deterministic spread).
    fn includes(&self, i: usize) -> impl Iterator<Item = usize> + '_ {
        (0..self.includes_per_source).map(move |k| (i * 7 + k * 3) % self.headers)
    }

    /// Whether compiling source `i` completes an object.
    fn emits_object(&self, i: usize) -> Option<usize> {
        let before = i * self.objects / self.sources;
        let after = (i + 1) * self.objects / self.sources;
        (after > before).then_some(before)
    }
}

/// Result of a Make run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MakeReport {
    /// Wall-clock (virtual) duration of the build.
    pub runtime: Duration,
    /// Objects produced.
    pub objects_built: usize,
}

/// Populates the source tree at `/src` (sources + headers) on the
/// server filesystem, out of band.
///
/// # Panics
///
/// Panics if the tree already exists.
pub fn populate(vfs: &Vfs, config: &MakeConfig) {
    let t = Timestamp::from_nanos(0);
    let src = vfs.mkdir(vfs.root(), "src", 0o755, t).expect("mkdir src");
    vfs.mkdir(vfs.root(), "obj", 0o755, t).expect("mkdir obj");
    for i in 0..config.sources {
        let f = vfs.create(src, &MakeConfig::source_name(i), 0o644, t).expect("create source");
        vfs.write(f, 0, &vec![b'c'; config.source_bytes], t).expect("write source");
    }
    for i in 0..config.headers {
        let f = vfs.create(src, &MakeConfig::header_name(i), 0o644, t).expect("create header");
        vfs.write(f, 0, &vec![b'h'; config.header_bytes], t).expect("write header");
    }
}

fn write_chunked(client: &NfsClient, fh: gvfs_nfs3::Fh3, total: usize, chunk: usize, byte: u8) {
    let payload = vec![byte; chunk];
    let mut written = 0;
    while written < total {
        let n = chunk.min(total - written);
        client.write(fh, written as u64, &payload[..n]).expect("chunked write");
        written += n;
    }
}

/// Runs the build through `client`. Must run inside a simulation actor.
///
/// # Panics
///
/// Panics on filesystem errors (the benchmark tree must have been
/// populated).
pub fn run(client: &NfsClient, config: &MakeConfig) -> MakeReport {
    let t0 = gvfs_netsim::now();
    let src = client.resolve("/src").expect("src dir");
    let obj = client.resolve("/obj").expect("obj dir");

    // Dependency scan: make stats every node it knows about.
    for i in 0..config.sources {
        client.stat(&format!("/src/{}", MakeConfig::source_name(i))).expect("stat source");
    }
    for i in 0..config.headers {
        client.stat(&format!("/src/{}", MakeConfig::header_name(i))).expect("stat header");
    }
    for i in 0..config.objects {
        // Objects do not exist yet; the stat fails (and caches the
        // negative entry, as the kernel does).
        let _ = client.stat(&format!("/obj/{}", MakeConfig::object_name(i)));
    }

    let mut objects_built = 0;
    for i in 0..config.sources {
        // Compile source i: open + read the source and every header it
        // cross-references.
        let sfh =
            client.open(&format!("/src/{}", MakeConfig::source_name(i))).expect("open source");
        let _ = client.read(sfh, 0, config.source_bytes as u32).expect("read source");
        for h in config.includes(i) {
            let hfh =
                client.open(&format!("/src/{}", MakeConfig::header_name(h))).expect("open header");
            let _ = client.read(hfh, 0, config.header_bytes as u32).expect("read header");
        }
        gvfs_netsim::sleep(config.compile_time);

        // The compiler writes an intermediate temporary next to the
        // objects (in buffered chunks), reads it back, and removes it.
        let tmp_name = format!("tmp{i:03}.s");
        let tmp = client.create(obj, &tmp_name, false).expect("create temp");
        write_chunked(client, tmp, config.object_bytes, config.write_chunk, b's');
        let _ = client.read(tmp, 0, config.object_bytes as u32).expect("read temp");

        if let Some(o) = config.emits_object(i) {
            let ofh =
                client.create(obj, &MakeConfig::object_name(o), false).expect("create object");
            write_chunked(client, ofh, config.object_bytes, config.write_chunk, b'o');
            objects_built += 1;
        }
        client.remove(obj, &tmp_name).expect("remove temp");
    }

    // Link: read every object, write the binary.
    for o in 0..objects_built {
        let ofh =
            client.open(&format!("/obj/{}", MakeConfig::object_name(o))).expect("open object");
        let _ = client.read(ofh, 0, config.object_bytes as u32).expect("read object");
    }
    gvfs_netsim::sleep(config.link_time);
    let bin = client.create(obj, "tclsh", false).expect("create binary");
    write_chunked(
        client,
        bin,
        config.object_bytes * objects_built.min(40),
        config.write_chunk,
        b'b',
    );

    let _ = src;
    MakeReport { runtime: gvfs_netsim::now().saturating_since(t0), objects_built }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_emission_covers_exactly_the_object_count() {
        let config = MakeConfig::default();
        let emitted: Vec<usize> =
            (0..config.sources).filter_map(|i| config.emits_object(i)).collect();
        assert_eq!(emitted.len(), config.objects);
        assert_eq!(emitted.first(), Some(&0));
        assert_eq!(emitted.last(), Some(&(config.objects - 1)));
    }

    #[test]
    fn includes_stay_in_range() {
        let config = MakeConfig::default();
        for i in 0..config.sources {
            for h in config.includes(i) {
                assert!(h < config.headers);
            }
        }
    }

    #[test]
    fn populate_builds_the_tree() {
        let vfs = Vfs::new();
        let config = MakeConfig::small();
        populate(&vfs, &config);
        assert!(vfs.lookup_path("/src/src000.c").is_ok());
        assert!(vfs.lookup_path(&format!("/src/hdr{:03}.h", config.headers - 1)).is_ok());
        assert!(vfs.lookup_path("/obj").is_ok());
    }
}
