//! The shared cross-transport conformance suite, run over the simulated
//! channel inside a virtual-time actor. The rpc crate runs the identical
//! suite over TCP (`crates/rpc/tests/channel_conformance.rs`); keeping
//! both green is what guarantees the two [`RpcChannel`] implementations
//! stay behavior-identical.
//!
//! [`RpcChannel`]: gvfs_rpc::channel::RpcChannel

use gvfs_netsim::link::{Link, LinkConfig};
use gvfs_netsim::transport::{ServerNode, SimRpcClient};
use gvfs_netsim::Sim;
use gvfs_rpc::channel::testkit;
use gvfs_rpc::dispatch::Dispatcher;
use gvfs_rpc::stats::RpcStats;
use std::time::Duration;

fn with_sim_channel(check: impl FnOnce(&SimRpcClient) + Send + 'static) {
    let mut dispatcher = Dispatcher::new();
    dispatcher.register(testkit::ConformanceService);
    let server = ServerNode::new("conformance", dispatcher, Duration::from_micros(200));
    let link = Link::new(LinkConfig::wan());
    let client = SimRpcClient::new(link.forward(), server, RpcStats::new());
    let sim = Sim::new();
    sim.spawn("conformance-client", move || check(&client));
    sim.run();
}

#[test]
fn sim_channel_echo_roundtrip() {
    with_sim_channel(|c| testkit::check_echo_roundtrip(c));
}

#[test]
fn sim_channel_garbage_args() {
    with_sim_channel(|c| testkit::check_garbage_args(c));
}

#[test]
fn sim_channel_unknown_procedure() {
    with_sim_channel(|c| testkit::check_unknown_procedure(c));
}

#[test]
fn sim_channel_oversized_record() {
    with_sim_channel(|c| testkit::check_oversized_record(c));
}

#[test]
fn sim_channel_concurrent_xids_out_of_order() {
    with_sim_channel(|c| testkit::check_concurrent_xids_out_of_order(c));
}

#[test]
fn sim_channel_concurrent_read_burst() {
    with_sim_channel(|c| testkit::check_concurrent_read_burst(c));
}

#[test]
fn sim_channel_concurrent_peerread_burst() {
    with_sim_channel(|c| testkit::check_concurrent_peerread_burst(c));
}
