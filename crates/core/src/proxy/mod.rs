//! The GVFS proxies: the user-level processes that interpose on NFS
//! traffic (Figure 1 of the paper).
//!
//! * [`client::ProxyClient`] — runs beside each kernel NFS client,
//!   serving its RPCs from a disk cache and forwarding misses over the
//!   WAN; also hosts the callback service.
//! * [`server::ProxyServer`] — runs beside the kernel NFS server,
//!   forwarding NFS calls over loopback while tracking modifications
//!   (invalidation buffers) or delegations, and issuing callbacks.

pub mod client;
pub mod server;

use gvfs_nfs3::{proc3, Fh3};
use gvfs_rpc::RpcError;
use gvfs_xdr::Xdr;

/// The block size used for data caching and write-back accounting,
/// matching the NFS transfer size.
pub const BLOCK_SIZE: u64 = gvfs_server::TRANSFER_SIZE as u64;

/// Aligns a byte offset down to its block.
pub fn block_of(offset: u64) -> u64 {
    offset / BLOCK_SIZE * BLOCK_SIZE
}

/// What an NFS call does, from the proxies' point of view.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OpClass {
    /// Reads attributes of one object (GETATTR, ACCESS, COMMIT).
    AttrRead {
        /// Target object.
        fh: Fh3,
    },
    /// Resolves a name in a directory.
    Lookup {
        /// The directory.
        dir: Fh3,
        /// The name.
        name: String,
    },
    /// Reads file data.
    Read {
        /// The file.
        fh: Fh3,
        /// Byte offset.
        offset: u64,
        /// Byte count.
        count: u32,
    },
    /// Writes file data.
    Write {
        /// The file.
        fh: Fh3,
        /// Byte offset.
        offset: u64,
    },
    /// Modifies one object's attributes (SETATTR).
    SetAttr {
        /// The object.
        fh: Fh3,
    },
    /// Modifies directory contents (CREATE, MKDIR, SYMLINK, REMOVE,
    /// RMDIR, RENAME, LINK).
    DirModify {
        /// The primary directory.
        dir: Fh3,
        /// Names affected in `dir`.
        names: Vec<String>,
        /// A second affected directory (RENAME target dir) with its
        /// affected name.
        extra: Option<(Fh3, String)>,
        /// An affected file handle carried in the arguments (LINK).
        file: Option<Fh3>,
    },
    /// Reads directory contents.
    ReadDir {
        /// The directory.
        dir: Fh3,
    },
    /// Anything else (NULL, FSSTAT, FSINFO, READLINK).
    Other,
}

impl OpClass {
    /// Whether this operation modifies server state.
    pub fn is_modification(&self) -> bool {
        matches!(self, OpClass::Write { .. } | OpClass::SetAttr { .. } | OpClass::DirModify { .. })
    }

    /// The handle delegation decisions attach to (the file for data
    /// ops, the directory for namespace ops).
    pub fn delegation_target(&self) -> Option<Fh3> {
        match self {
            OpClass::AttrRead { fh }
            | OpClass::Read { fh, .. }
            | OpClass::Write { fh, .. }
            | OpClass::SetAttr { fh } => Some(*fh),
            OpClass::Lookup { dir, .. }
            | OpClass::DirModify { dir, .. }
            | OpClass::ReadDir { dir } => Some(*dir),
            OpClass::Other => None,
        }
    }
}

fn decode<T: Xdr>(bytes: &[u8]) -> Result<T, RpcError> {
    gvfs_xdr::from_bytes(bytes).map_err(|_| RpcError::GarbageArgs)
}

/// Classifies an NFSv3 call for the proxies.
///
/// # Errors
///
/// Returns [`RpcError::GarbageArgs`] when the arguments do not decode.
pub fn classify(procedure: u32, args: &[u8]) -> Result<OpClass, RpcError> {
    use gvfs_nfs3 as n;
    Ok(match procedure {
        proc3::GETATTR | proc3::ACCESS | proc3::COMMIT | proc3::FSSTAT | proc3::FSINFO => {
            // All start with a file handle.
            let fh = {
                let mut dec = gvfs_xdr::Decoder::new(args);
                Fh3::decode(&mut dec).map_err(|_| RpcError::GarbageArgs)?
            };
            match procedure {
                proc3::FSSTAT | proc3::FSINFO => OpClass::Other,
                _ => OpClass::AttrRead { fh },
            }
        }
        proc3::LOOKUP => {
            let a: n::LookupArgs = decode(args)?;
            OpClass::Lookup { dir: a.dir, name: a.name }
        }
        proc3::READ => {
            let a: n::ReadArgs = decode(args)?;
            OpClass::Read { fh: a.file, offset: a.offset, count: a.count }
        }
        proc3::WRITE => {
            let a: n::WriteArgs = decode(args)?;
            OpClass::Write { fh: a.file, offset: a.offset }
        }
        proc3::SETATTR => {
            let a: n::SetattrArgs = decode(args)?;
            OpClass::SetAttr { fh: a.object }
        }
        proc3::CREATE => {
            let a: n::CreateArgs = decode(args)?;
            OpClass::DirModify { dir: a.dir, names: vec![a.name], extra: None, file: None }
        }
        proc3::MKDIR => {
            let a: n::MkdirArgs = decode(args)?;
            OpClass::DirModify { dir: a.dir, names: vec![a.name], extra: None, file: None }
        }
        proc3::SYMLINK => {
            let a: n::SymlinkArgs = decode(args)?;
            OpClass::DirModify { dir: a.dir, names: vec![a.name], extra: None, file: None }
        }
        proc3::REMOVE | proc3::RMDIR => {
            let a: n::DirOpArgs = decode(args)?;
            OpClass::DirModify { dir: a.dir, names: vec![a.name], extra: None, file: None }
        }
        proc3::RENAME => {
            let a: n::RenameArgs = decode(args)?;
            OpClass::DirModify {
                dir: a.from_dir,
                names: vec![a.from_name],
                extra: Some((a.to_dir, a.to_name)),
                file: None,
            }
        }
        proc3::LINK => {
            let a: n::LinkArgs = decode(args)?;
            OpClass::DirModify { dir: a.dir, names: vec![a.name], extra: None, file: Some(a.file) }
        }
        proc3::READDIR => {
            let a: n::ReaddirArgs = decode(args)?;
            OpClass::ReadDir { dir: a.dir }
        }
        proc3::READDIRPLUS => {
            let a: n::ReaddirplusArgs = decode(args)?;
            OpClass::ReadDir { dir: a.dir }
        }
        proc3::READLINK | proc3::NULL => OpClass::Other,
        _ => OpClass::Other,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gvfs_nfs3::{CreateHow, Sattr3};

    #[test]
    fn classify_covers_key_procedures() {
        let fh = Fh3::from_fileid(5);
        let args = gvfs_xdr::to_bytes(&gvfs_nfs3::GetattrArgs { object: fh }).unwrap();
        assert_eq!(classify(proc3::GETATTR, &args).unwrap(), OpClass::AttrRead { fh });

        let args =
            gvfs_xdr::to_bytes(&gvfs_nfs3::ReadArgs { file: fh, offset: 64, count: 32 }).unwrap();
        let c = classify(proc3::READ, &args).unwrap();
        assert_eq!(c, OpClass::Read { fh, offset: 64, count: 32 });
        assert!(!c.is_modification());
        assert_eq!(c.delegation_target(), Some(fh));

        let args = gvfs_xdr::to_bytes(&gvfs_nfs3::CreateArgs {
            dir: fh,
            name: "x".into(),
            how: CreateHow::Unchecked(Sattr3::default()),
        })
        .unwrap();
        let c = classify(proc3::CREATE, &args).unwrap();
        assert!(c.is_modification());
        assert_eq!(c.delegation_target(), Some(fh));
    }

    #[test]
    fn classify_rename_tracks_both_dirs() {
        let a = gvfs_nfs3::RenameArgs {
            from_dir: Fh3::from_fileid(1),
            from_name: "a".into(),
            to_dir: Fh3::from_fileid(2),
            to_name: "b".into(),
        };
        let c = classify(proc3::RENAME, &gvfs_xdr::to_bytes(&a).unwrap()).unwrap();
        let OpClass::DirModify { dir, extra, .. } = c else { panic!() };
        assert_eq!(dir, Fh3::from_fileid(1));
        assert_eq!(extra, Some((Fh3::from_fileid(2), "b".to_string())));
    }

    #[test]
    fn classify_garbage_is_error() {
        assert!(classify(proc3::READ, &[1, 2, 3]).is_err());
    }

    #[test]
    fn block_alignment() {
        assert_eq!(block_of(0), 0);
        assert_eq!(block_of(32767), 0);
        assert_eq!(block_of(32768), 32768);
        assert_eq!(block_of(40000), 32768);
    }
}
