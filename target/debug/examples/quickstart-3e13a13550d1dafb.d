/root/repo/target/debug/examples/quickstart-3e13a13550d1dafb.d: crates/bench/../../examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-3e13a13550d1dafb: crates/bench/../../examples/quickstart.rs

crates/bench/../../examples/quickstart.rs:
