/root/repo/target/debug/deps/gvfs_integration-ed07177d326b56fd.d: crates/integration/src/lib.rs

/root/repo/target/debug/deps/libgvfs_integration-ed07177d326b56fd.rlib: crates/integration/src/lib.rs

/root/repo/target/debug/deps/libgvfs_integration-ed07177d326b56fd.rmeta: crates/integration/src/lib.rs

crates/integration/src/lib.rs:
