//! The wire protocol of the simplified AFS.

use gvfs_xdr::{Decoder, Encoder, Xdr, XdrError};

/// RPC program number of the file server.
pub const AFS_PROGRAM: u32 = 0x4000_0200;
/// RPC program number of the client's callback service.
pub const AFS_CALLBACK_PROGRAM: u32 = 0x4000_0201;
/// Protocol version.
pub const AFS_VERSION: u32 = 1;

/// Procedure numbers.
pub mod procs {
    /// Resolve a path to a file id + status, taking a promise.
    pub const LOOKUP: u32 = 1;
    /// Fetch status for a file id, taking a promise.
    pub const FETCH_STATUS: u32 = 2;
    /// Fetch a whole file, taking a promise.
    pub const FETCH_DATA: u32 = 3;
    /// Store a whole file.
    pub const STORE: u32 = 4;

    /// Hard link (atomic; the lock primitive).
    pub const LINK: u32 = 6;
    /// Remove a name.
    pub const REMOVE: u32 = 7;
    /// Callback-break (callback program): invalidate one file id.
    pub const BREAK: u32 = 1;
}

/// Status of an AFS file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AfsStatus {
    /// Stable file id.
    pub fid: u64,
    /// File length in bytes.
    pub length: u64,
    /// Data version, bumped on every store.
    pub version: u64,
}

impl Xdr for AfsStatus {
    fn encode(&self, enc: &mut Encoder) -> Result<(), XdrError> {
        enc.put_u64(self.fid);
        enc.put_u64(self.length);
        enc.put_u64(self.version);
        Ok(())
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, XdrError> {
        Ok(AfsStatus { fid: dec.get_u64()?, length: dec.get_u64()?, version: dec.get_u64()? })
    }
}

/// A string path argument (all namespace procedures are path-based in
/// this simplified model).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathArgs {
    /// Absolute path.
    pub path: String,
}

impl Xdr for PathArgs {
    fn encode(&self, enc: &mut Encoder) -> Result<(), XdrError> {
        enc.put_string(&self.path)
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, XdrError> {
        Ok(PathArgs { path: dec.get_string()? })
    }
}

/// Two-path argument (LINK).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TwoPathArgs {
    /// Existing file.
    pub from: String,
    /// New name.
    pub to: String,
}

impl Xdr for TwoPathArgs {
    fn encode(&self, enc: &mut Encoder) -> Result<(), XdrError> {
        enc.put_string(&self.from)?;
        enc.put_string(&self.to)
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, XdrError> {
        Ok(TwoPathArgs { from: dec.get_string()?, to: dec.get_string()? })
    }
}

/// Store arguments: path + whole content.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreArgs {
    /// Absolute path (created if absent).
    pub path: String,
    /// Whole new content.
    pub data: Vec<u8>,
}

impl Xdr for StoreArgs {
    fn encode(&self, enc: &mut Encoder) -> Result<(), XdrError> {
        enc.put_string(&self.path)?;
        enc.put_opaque(&self.data)
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, XdrError> {
        Ok(StoreArgs { path: dec.get_string()?, data: dec.get_opaque()? })
    }
}

/// Generic result status.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u32)]
pub enum AfsStat {
    /// Success.
    Ok = 0,
    /// No such file.
    NoEnt = 1,
    /// Name already exists (LINK/CREATE conflict).
    Exist = 2,
    /// Server-side failure.
    Fault = 3,
}

impl Xdr for AfsStat {
    fn encode(&self, enc: &mut Encoder) -> Result<(), XdrError> {
        enc.put_u32(*self as u32);
        Ok(())
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, XdrError> {
        match dec.get_u32()? {
            0 => Ok(AfsStat::Ok),
            1 => Ok(AfsStat::NoEnt),
            2 => Ok(AfsStat::Exist),
            3 => Ok(AfsStat::Fault),
            value => Err(XdrError::InvalidDiscriminant { type_name: "AfsStat", value }),
        }
    }
}

/// Status reply: result plus optional status (present on success).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatusRes {
    /// Outcome.
    pub stat: AfsStat,
    /// The file's status on success.
    pub status: Option<AfsStatus>,
}

impl Xdr for StatusRes {
    fn encode(&self, enc: &mut Encoder) -> Result<(), XdrError> {
        self.stat.encode(enc)?;
        self.status.encode(enc)
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, XdrError> {
        Ok(StatusRes { stat: AfsStat::decode(dec)?, status: Option::<AfsStatus>::decode(dec)? })
    }
}

/// Data reply: status + whole content.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataRes {
    /// Outcome.
    pub stat: AfsStat,
    /// Status on success.
    pub status: Option<AfsStatus>,
    /// Whole file content on success.
    pub data: Vec<u8>,
}

impl Xdr for DataRes {
    fn encode(&self, enc: &mut Encoder) -> Result<(), XdrError> {
        self.stat.encode(enc)?;
        self.status.encode(enc)?;
        enc.put_opaque(&self.data)
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, XdrError> {
        Ok(DataRes {
            stat: AfsStat::decode(dec)?,
            status: Option::<AfsStatus>::decode(dec)?,
            data: dec.get_opaque()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips() {
        let status = AfsStatus { fid: 7, length: 100, version: 3 };
        let bytes = gvfs_xdr::to_bytes(&status).unwrap();
        assert_eq!(gvfs_xdr::from_bytes::<AfsStatus>(&bytes).unwrap(), status);

        let res = DataRes { stat: AfsStat::Ok, status: Some(status), data: vec![1, 2, 3] };
        let bytes = gvfs_xdr::to_bytes(&res).unwrap();
        assert_eq!(gvfs_xdr::from_bytes::<DataRes>(&bytes).unwrap(), res);

        for s in [AfsStat::Ok, AfsStat::NoEnt, AfsStat::Exist, AfsStat::Fault] {
            let bytes = gvfs_xdr::to_bytes(&s).unwrap();
            assert_eq!(gvfs_xdr::from_bytes::<AfsStat>(&bytes).unwrap(), s);
        }
    }
}
