//! Integration coverage for the `PEERREAD` peer-sourcing layer's
//! failure and lifecycle paths:
//!
//! * a breaker-open peer is skipped for the next-best advertised holder
//!   without a single byte hitting its LAN link;
//! * with every advertised peer unreachable, the reader falls back to
//!   the origin and still observes correct bytes;
//! * an idle-swept holder is de-advertised server-side, and a holder
//!   that evicted the content for capacity answers an honest `Miss`
//!   that the reader converts into an origin fallback;
//! * a delegation recall condemns every advertised peer copy before the
//!   conflicting writer proceeds.

use gvfs_client::{MountOptions, NfsClient};
use gvfs_core::session::{Session, SessionConfig};
use gvfs_integration::chaos::ModelKind;
use gvfs_netsim::{Sim, SimTime};
use parking_lot::Mutex;
use std::sync::Arc;

/// The proxy cache's transfer-block granularity (one fetch per block).
const BLOCK: u64 = 32 * 1024;
/// Scenario files span two blocks: block 0 always comes from the origin
/// (attestation + advert), block 1 is the one the mesh sources.
const BLOCKS: u64 = 2;
/// Fill byte of the seeded version.
const V1: u8 = 0x5a;
/// Fill byte the conflicting writer lands.
const V2: u8 = 0xa5;

fn sleep_to(secs: u64) {
    let target = SimTime::from_secs(secs);
    let wait = target.saturating_since(gvfs_netsim::now());
    if !wait.is_zero() {
        gvfs_netsim::sleep(wait);
    }
}

/// A delegation-model session with peer sourcing on and read-ahead off,
/// so every block read is exactly one demand fetch and the per-test
/// accounting is deterministic.
fn peer_config() -> SessionConfig {
    let mut config = ModelKind::Delegation.session_config();
    config.peer_read = true;
    config.readahead_window = 0;
    config
}

/// Seeds `names` as two-block files filled with [`V1`], out of band.
fn seed_files(session: &Session, names: &[&str]) {
    let vfs = Arc::clone(session.vfs());
    let t0 = gvfs_vfs::Timestamp::from_nanos(0);
    for name in names {
        let id = vfs.create(vfs.root(), name, 0o644, t0).expect("create");
        vfs.write(id, 0, &vec![V1; (BLOCKS * BLOCK) as usize], t0).expect("seed");
    }
}

#[test]
fn breaker_open_peer_is_skipped_for_next_best() {
    let sim = Sim::new();
    let session = Session::builder(peer_config()).clients(3).establish(&sim);
    seed_files(&session, &["skip"]);
    let session = Arc::new(session);

    let s = Arc::clone(&session);
    let handle = session.handle();
    sim.spawn("breaker-skip", move || {
        let clients: Vec<NfsClient> = (0..3)
            .map(|i| NfsClient::new(s.client_transport(i), s.root_fh(), MountOptions::noac()))
            .collect();
        let fh = clients[0].resolve("/skip").expect("resolve");
        // Both candidate holders warm the whole file. (Client 2's own
        // block 1 may itself arrive over the mesh from client 1 — that
        // is fine; both end up advertised.)
        for holder in [1usize, 2] {
            for b in 0..BLOCKS {
                clients[holder].read(fh, b * BLOCK, BLOCK as u32).expect("warm");
                sleep_to(gvfs_netsim::now().saturating_since(SimTime::ZERO).as_secs() + 1);
            }
        }
        // The reader's block-0 read carries the advert naming both.
        clients[0].read(fh, 0, BLOCK as u32).expect("attested read");
        // Untried peers tie-break by id, so the lowest-id holder
        // (client index 1, proxy id 2) would carry the fetch. Trip its
        // breaker open first.
        for _ in 0..3 {
            s.proxy_client(0).note_peer_failure(2);
        }
        let served_low_before = s.proxy_client(1).stats().peer_bytes_served;
        let lan_low_before = s.peer_link(0, 1).expect("peer link 0-1").traffic();
        let hits_before = s.proxy_client(0).stats().peer_hits;

        let data = clients[0].read(fh, BLOCK, BLOCK as u32).expect("peer read");
        assert!(data.iter().all(|&b| b == V1), "next-best peer served wrong bytes");

        let r = s.proxy_client(0).stats();
        assert_eq!(r.peer_hits, hits_before + 1, "the fetch must still be a peer hit");
        assert_eq!(r.peer_fallbacks, 0, "next-best selection must not fall back to origin");
        assert_eq!(
            s.proxy_client(1).stats().peer_bytes_served,
            served_low_before,
            "the breaker-open peer must not serve"
        );
        assert_eq!(
            s.peer_link(0, 1).expect("peer link 0-1").traffic(),
            lan_low_before,
            "breaker-open skip must not even touch the peer's LAN link"
        );
        assert!(
            s.proxy_client(2).stats().peer_bytes_served > 0,
            "the next-best holder must carry the fetch"
        );
        handle.shutdown();
    });
    sim.run();
}

#[test]
fn all_peers_dead_falls_back_to_origin() {
    let sim = Sim::new();
    let session = Session::builder(peer_config()).clients(3).establish(&sim);
    seed_files(&session, &["dead"]);
    let session = Arc::new(session);

    let s = Arc::clone(&session);
    let handle = session.handle();
    sim.spawn("all-dead", move || {
        let clients: Vec<NfsClient> = (0..3)
            .map(|i| NfsClient::new(s.client_transport(i), s.root_fh(), MountOptions::noac()))
            .collect();
        let fh = clients[0].resolve("/dead").expect("resolve");
        for holder in [1usize, 2] {
            for b in 0..BLOCKS {
                clients[holder].read(fh, b * BLOCK, BLOCK as u32).expect("warm");
                sleep_to(gvfs_netsim::now().saturating_since(SimTime::ZERO).as_secs() + 1);
            }
        }
        clients[0].read(fh, 0, BLOCK as u32).expect("attested read");
        // Cut the reader's entire mesh: both advertised holders are
        // unreachable at send time.
        s.peer_link(0, 1).expect("peer link 0-1").set_partitioned(true);
        s.peer_link(0, 2).expect("peer link 0-2").set_partitioned(true);
        let hits_before = s.proxy_client(0).stats().peer_hits;

        let data = clients[0].read(fh, BLOCK, BLOCK as u32).expect("fallback read");
        assert!(data.iter().all(|&b| b == V1), "origin fallback served wrong bytes");

        let r = s.proxy_client(0).stats();
        assert_eq!(r.peer_hits, hits_before, "no peer was reachable — a hit is impossible");
        assert!(r.peer_fallbacks >= 1, "the dead mesh must be accounted as a fallback");
        handle.shutdown();
    });
    sim.run();
}

#[test]
fn idle_swept_holder_is_deadvertised() {
    let sim = Sim::new();
    let session = Session::builder(peer_config()).clients(2).establish(&sim);
    seed_files(&session, &["swept"]);
    let session = Arc::new(session);

    let s = Arc::clone(&session);
    let handle = session.handle();
    sim.spawn("idle-sweep", move || {
        let holder = NfsClient::new(s.client_transport(1), s.root_fh(), MountOptions::noac());
        let fh = holder.resolve("/swept").expect("resolve");
        for b in 0..BLOCKS {
            holder.read(fh, b * BLOCK, BLOCK as u32).expect("warm");
        }
        let server = s.proxy_server();
        assert_eq!(server.peer_holders(fh), vec![2], "the warm holder must be advertised");
        let condemned_before = server.scale_stats().inval.peer_condemned;

        // One idle epoch with a zero-idle budget drops the holder's
        // per-client state — holdings go with the slot.
        server.set_idle_epochs(0);
        server.maintain();
        assert!(server.peer_holders(fh).is_empty(), "an idle-swept holder must be de-advertised");
        assert!(
            server.scale_stats().inval.peer_condemned > condemned_before,
            "the sweep must account the condemned adverts"
        );
        handle.shutdown();
    });
    sim.run();
}

#[test]
fn capacity_evicted_holder_answers_miss_and_reader_falls_back() {
    let sim = Sim::new();
    // A cache that holds at most three blocks: warming the second file
    // evicts the first file's content from the holder's store.
    let mut config = peer_config();
    config.disk_cache_bytes = (3 * BLOCK) as usize;
    let session = Session::builder(config).clients(2).establish(&sim);
    seed_files(&session, &["evicted", "filler"]);
    let session = Arc::new(session);

    let s = Arc::clone(&session);
    let handle = session.handle();
    sim.spawn("capacity-miss", move || {
        let reader = NfsClient::new(s.client_transport(0), s.root_fh(), MountOptions::noac());
        let holder = NfsClient::new(s.client_transport(1), s.root_fh(), MountOptions::noac());
        let fh = holder.resolve("/evicted").expect("resolve");
        let filler = holder.resolve("/filler").expect("resolve");
        for b in 0..BLOCKS {
            holder.read(fh, b * BLOCK, BLOCK as u32).expect("warm target");
        }
        // The origin advertises the holder...
        assert_eq!(s.proxy_server().peer_holders(fh), vec![2]);
        // ...but its capacity-squeezed store evicts the target's blocks
        // while warming the filler.
        for b in 0..BLOCKS {
            holder.read(filler, b * BLOCK, BLOCK as u32).expect("warm filler");
        }
        reader.read(fh, 0, BLOCK as u32).expect("attested read");

        let data = reader.read(fh, BLOCK, BLOCK as u32).expect("miss-fallback read");
        assert!(data.iter().all(|&b| b == V1), "fallback read served wrong bytes");
        let r = s.proxy_client(0).stats();
        assert!(r.peer_misses >= 1, "the evicted holder must answer an honest Miss (stats: {r:?})");
        assert!(r.peer_fallbacks >= 1, "a Miss must fall back to the origin");
        handle.shutdown();
    });
    sim.run();
}

#[test]
fn recall_condemns_peer_copies_before_writer_proceeds() {
    let sim = Sim::new();
    let session = Session::builder(peer_config()).clients(3).establish(&sim);
    seed_files(&session, &["recalled"]);
    let session = Arc::new(session);

    let s = Arc::clone(&session);
    let handle = session.handle();
    let observed = Arc::new(Mutex::new(Vec::<u8>::new()));
    let obs = Arc::clone(&observed);
    sim.spawn("recall-condemn", move || {
        let clients: Vec<NfsClient> = (0..3)
            .map(|i| NfsClient::new(s.client_transport(i), s.root_fh(), MountOptions::noac()))
            .collect();
        let fh = clients[0].resolve("/recalled").expect("resolve");
        // Both readers warm the file; the origin advertises both.
        for reader in [0usize, 1] {
            for b in 0..BLOCKS {
                clients[reader].read(fh, b * BLOCK, BLOCK as u32).expect("warm");
                sleep_to(gvfs_netsim::now().saturating_since(SimTime::ZERO).as_secs() + 1);
            }
        }
        let server = s.proxy_server();
        let mut holders = server.peer_holders(fh);
        holders.sort_unstable();
        assert_eq!(holders, vec![1, 2], "both warm readers must be advertised");
        let condemned_before = server.scale_stats().inval.peer_condemned;

        // The conflicting write recalls both read delegations; the
        // recall condemns every advertised copy before it completes, so
        // by the time the writer's WRITE is acknowledged no advert for
        // the pre-recall version can exist.
        clients[2].write(fh, 0, &vec![V2; (BLOCKS * BLOCK) as usize]).expect("recall write");
        assert!(server.peer_holders(fh).is_empty(), "acked write left stale peer adverts behind");
        assert!(
            server.scale_stats().inval.peer_condemned > condemned_before,
            "the recall must account the condemned adverts"
        );

        // And the post-recall read observes the writer's version,
        // whichever path serves it.
        let data = clients[0].read(fh, 0, (BLOCKS * BLOCK) as u32).expect("post-recall read");
        obs.lock().extend_from_slice(&data);
        handle.shutdown();
    });
    sim.run();
    let data = observed.lock();
    assert_eq!(data.len(), (BLOCKS * BLOCK) as usize);
    assert!(data.iter().all(|&b| b == V2), "post-recall read observed a condemned version");
}
