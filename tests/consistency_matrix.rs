//! The consistency matrix: for each model, measure the staleness window
//! actually observed by a second client and the WAN traffic profile.

use gvfs_client::{MountOptions, NfsClient};
use gvfs_core::session::{NativeMount, Session, SessionConfig};
use gvfs_core::ConsistencyModel;
use gvfs_netsim::link::LinkConfig;
use gvfs_netsim::Sim;
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::Duration;

/// Writer updates a shared file at t=100s; reader polls every second.
/// Returns the observed staleness (seconds from write to first read of
/// the new value).
fn staleness_for(model: Option<ConsistencyModel>, reader_mount: MountOptions) -> f64 {
    let sim = Sim::new();
    let observed = Arc::new(Mutex::new(None));
    let (wt, rt, root, handle) = match model {
        Some(model) => {
            let session = Session::builder(SessionConfig { model, ..SessionConfig::default() })
                .clients(2)
                .establish(&sim);
            (
                session.client_transport(0),
                session.client_transport(1),
                session.root_fh(),
                Some(session.handle()),
            )
        }
        None => {
            let native = NativeMount::establish(2, LinkConfig::wan(), None);
            (native.client_transport(0), native.client_transport(1), native.root_fh(), None)
        }
    };
    sim.spawn("writer", move || {
        let c = NfsClient::new(wt, root, MountOptions::noac());
        c.write_file("/shared", b"old").unwrap();
        gvfs_netsim::sleep(Duration::from_secs(100));
        let fh = c.resolve("/shared").unwrap();
        c.write(fh, 0, b"new").unwrap();
    });
    let o = Arc::clone(&observed);
    sim.spawn("reader", move || {
        let c = NfsClient::new(rt, root, reader_mount);
        gvfs_netsim::sleep(Duration::from_secs(10));
        loop {
            let data = c.read_file("/shared").unwrap();
            if data == b"new" {
                *o.lock() = Some(gvfs_netsim::now().as_secs_f64() - 100.0);
                break;
            }
            gvfs_netsim::sleep(Duration::from_secs(1));
        }
        if let Some(h) = handle {
            h.shutdown();
        }
    });
    sim.run();
    let out = observed.lock().expect("reader saw the update");
    out
}

#[test]
fn staleness_ordering_matches_the_models() {
    // Native NFS with a fixed 30 s attribute timeout: bounded by ~30 s.
    let nfs = staleness_for(None, MountOptions::with_attr_timeout(Duration::from_secs(30)));
    // GVFS polling(30): bounded by the polling window.
    let polling = staleness_for(Some(ConsistencyModel::polling_30s()), MountOptions::noac());
    // GVFS delegation: effectively immediate (one probe interval).
    let strong = staleness_for(Some(ConsistencyModel::delegation()), MountOptions::noac());

    assert!(nfs <= 31.0, "kernel revalidation bounds staleness: {nfs}");
    assert!(polling <= 31.0, "polling window bounds staleness: {polling}");
    assert!(strong <= 1.5, "delegation recall is immediate: {strong}");
    assert!(strong < polling && strong < nfs, "strong < relaxed ({strong} vs {polling}/{nfs})");
}

#[test]
fn passthrough_matches_native_semantics_with_proxy_hop() {
    let passthrough = staleness_for(
        Some(ConsistencyModel::Passthrough),
        MountOptions::with_attr_timeout(Duration::from_secs(30)),
    );
    assert!(passthrough <= 31.0, "passthrough adds no staleness: {passthrough}");
}

#[test]
fn polling_backoff_reduces_idle_traffic() {
    fn getinv_count(backoff: Option<Duration>) -> u64 {
        let sim = Sim::new();
        let session = Session::builder(SessionConfig {
            model: ConsistencyModel::InvalidationPolling {
                period: Duration::from_secs(10),
                backoff_max: backoff,
            },
            ..SessionConfig::default()
        })
        .clients(1)
        .establish(&sim);
        let transport = session.client_transport(0);
        let root = session.root_fh();
        let stats = session.wan_stats().clone();
        let handle = session.handle();
        sim.spawn("idle-app", move || {
            let c = NfsClient::new(transport, root, MountOptions::noac());
            c.write_file("/f", b"x").unwrap();
            // Idle for ten minutes; nothing changes server-side.
            gvfs_netsim::sleep(Duration::from_secs(600));
            handle.shutdown();
        });
        sim.run();
        gvfs_bench_stub::getinv(&stats.snapshot())
    }
    // A tiny local helper so the integration test does not depend on
    // the bench crate.
    mod gvfs_bench_stub {
        pub fn getinv(snap: &gvfs_rpc::stats::StatsSnapshot) -> u64 {
            snap.calls(
                gvfs_core::protocol::GVFS_PROXY_PROGRAM,
                gvfs_core::protocol::proc_ext::GETINV,
            )
        }
    }
    let fixed = getinv_count(None);
    let backoff = getinv_count(Some(Duration::from_secs(120)));
    assert!((55..=65).contains(&fixed), "fixed 10 s polling ≈ 60 polls, got {fixed}");
    assert!(backoff < fixed / 3, "exponential back-off cuts idle polls: {backoff} vs {fixed}");
}

#[test]
fn delegation_survives_partition_for_cached_reads() {
    // The paper: delegations let clients keep serving cached data during
    // server crashes or partitions.
    let sim = Sim::new();
    let session = Session::builder(SessionConfig {
        model: ConsistencyModel::delegation(),
        ..SessionConfig::default()
    })
    .clients(1)
    .establish(&sim);
    let transport = session.client_transport(0);
    let root = session.root_fh();
    let handle = session.handle();
    let session = Arc::new(session);
    let s = Arc::clone(&session);
    sim.spawn("app", move || {
        let c = NfsClient::new(transport, root, MountOptions::noac());
        c.write_file("/cached", &[9u8; 10_000]).unwrap();
        let _ = c.read_file("/cached").unwrap();
        s.wan_link(0).set_partitioned(true);
        // Reads keep working from the delegated cache.
        let t0 = gvfs_netsim::now();
        for _ in 0..20 {
            assert_eq!(c.read_file("/cached").unwrap().len(), 10_000);
        }
        assert!(
            gvfs_netsim::now().saturating_since(t0) < Duration::from_millis(200),
            "cached reads must not touch the partitioned WAN"
        );
        s.wan_link(0).set_partitioned(false);
        handle.shutdown();
    });
    sim.run();
}
