/root/repo/target/debug/deps/proptest_filecache-946d44fe9b0bec61.d: /root/repo/clippy.toml crates/core/tests/proptest_filecache.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_filecache-946d44fe9b0bec61.rmeta: /root/repo/clippy.toml crates/core/tests/proptest_filecache.rs Cargo.toml

/root/repo/clippy.toml:
crates/core/tests/proptest_filecache.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
