/root/repo/target/release/deps/gvfs_integration-3ab94fbe45edb14e.d: crates/integration/src/lib.rs

/root/repo/target/release/deps/libgvfs_integration-3ab94fbe45edb14e.rlib: crates/integration/src/lib.rs

/root/repo/target/release/deps/libgvfs_integration-3ab94fbe45edb14e.rmeta: crates/integration/src/lib.rs

crates/integration/src/lib.rs:
