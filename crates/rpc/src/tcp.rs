//! ONC RPC over real TCP sockets.
//!
//! The simulation transport (`gvfs-netsim`) carries the same wire
//! bytes over virtual links; this module carries them over actual
//! sockets with RFC 5531 record marking, demonstrating that the whole
//! protocol stack is transport-independent. One thread per connection;
//! replies are cached in a [duplicate request cache](crate::drc) so
//! retransmitted non-idempotent calls are replayed, not re-executed.
//!
//! [`TcpRpcClient`] implements [`RpcChannel`]: a background reader
//! thread demultiplexes replies by xid into an outstanding-call table,
//! so many calls can be in flight on one connection at once. Each call
//! carries a timeout; on expiry the identical record (same xid) is
//! retransmitted a bounded number of times, relying on the server's
//! duplicate request cache to replay rather than re-execute.
//!
//! # Examples
//!
//! ```
//! use gvfs_rpc::dispatch::{Dispatcher, RpcService};
//! use gvfs_rpc::message::OpaqueAuth;
//! use gvfs_rpc::tcp::{TcpRpcClient, TcpRpcServer};
//!
//! struct Echo;
//! impl RpcService for Echo {
//!     fn program(&self) -> u32 { 99 }
//!     fn version(&self) -> u32 { 1 }
//!     fn call(&self, _p: u32, args: &[u8]) -> Result<Vec<u8>, gvfs_rpc::RpcError> {
//!         Ok(args.to_vec())
//!     }
//! }
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut dispatcher = Dispatcher::new();
//! dispatcher.register(Echo);
//! let server = TcpRpcServer::bind("127.0.0.1:0", dispatcher)?;
//! let addr = server.local_addr();
//! let handle = server.spawn();
//!
//! let client = TcpRpcClient::connect(addr)?;
//! let reply = client.call(99, 1, 0, OpaqueAuth::none(), vec![0, 0, 0, 7])?;
//! assert_eq!(reply, vec![0, 0, 0, 7]);
//!
//! handle.shutdown();
//! # Ok(())
//! # }
//! ```

use crate::channel::{CallSlot, PendingCall, RpcChannel};
use crate::dispatch::Dispatcher;
use crate::drc::{DrcKey, DuplicateRequestCache};
use crate::message::{CallBody, MessageBody, OpaqueAuth, ReplyBody, RpcMessage};
use crate::record::{ensure_sendable, write_record, RecordReader, MAX_FRAGMENT};
use crate::stats::RpcStats;
use crate::RpcError;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex, MutexGuard, PoisonError, Weak};
use std::time::{Duration, Instant};

/// A TCP RPC server: accepts connections and dispatches record-marked
/// RPC messages.
#[derive(Debug)]
pub struct TcpRpcServer {
    listener: TcpListener,
    addr: SocketAddr,
    dispatcher: Arc<Dispatcher>,
}

/// Running-server control handle; joins the acceptor on shutdown.
#[derive(Debug)]
pub struct TcpServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: Option<std::thread::JoinHandle<()>>,
}

impl TcpRpcServer {
    /// Binds to `addr` (use port 0 for an ephemeral port).
    ///
    /// # Errors
    ///
    /// I/O errors from binding.
    pub fn bind<A: ToSocketAddrs>(addr: A, dispatcher: Dispatcher) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        Ok(TcpRpcServer { listener, addr, dispatcher: Arc::new(dispatcher) })
    }

    /// The bound address, captured at bind time.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Starts the acceptor thread and returns the control handle.
    pub fn spawn(self) -> TcpServerHandle {
        let addr = self.local_addr();
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let dispatcher = Arc::clone(&self.dispatcher);
        let listener = self.listener;
        let acceptor = std::thread::spawn(move || {
            for stream in listener.incoming() {
                if stop2.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                let dispatcher = Arc::clone(&dispatcher);
                std::thread::spawn(move || {
                    let _ = serve_connection(stream, &dispatcher);
                });
            }
        });
        TcpServerHandle { addr, stop, acceptor: Some(acceptor) }
    }
}

impl TcpServerHandle {
    /// The server's address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting connections and joins the acceptor thread.
    /// Existing connections finish their in-flight calls and close when
    /// their peers disconnect.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the acceptor with one last connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
    }
}

impl Drop for TcpServerHandle {
    fn drop(&mut self) {
        if self.acceptor.is_some() {
            self.stop.store(true, Ordering::SeqCst);
            let _ = TcpStream::connect(self.addr);
            if let Some(acceptor) = self.acceptor.take() {
                let _ = acceptor.join();
            }
        }
    }
}

fn serve_connection(mut stream: TcpStream, dispatcher: &Dispatcher) -> std::io::Result<()> {
    let peer = stream.peer_addr().map(|a| a.to_string()).unwrap_or_else(|_| "?".into());
    let drc = Mutex::new(DuplicateRequestCache::new(256));
    let mut reader = RecordReader::new();
    let mut buf = [0u8; 64 * 1024];
    loop {
        let n = stream.read(&mut buf)?;
        if n == 0 {
            return Ok(()); // peer closed
        }
        if reader.push(&buf[..n]).is_err() {
            return Ok(()); // hostile record; drop the connection
        }
        while let Some(record) = reader.pop() {
            let Ok(msg) = gvfs_xdr::from_bytes::<RpcMessage>(&record) else { continue };
            let MessageBody::Call(call) = msg.body else { continue };
            let key = DrcKey { client: peer.clone(), xid: msg.xid, procedure: call.procedure() };
            // The DRC lock is released before dispatching: handlers may
            // perform their own (slow) RPCs and must not run under it.
            let cached = drc.lock().lookup(&key).map(<[u8]>::to_vec);
            let reply_bytes = if let Some(bytes) = cached {
                bytes
            } else {
                let reply = dispatcher.dispatch(msg.xid, &call);
                let reply_msg = RpcMessage { xid: msg.xid, body: MessageBody::Reply(reply) };
                let Ok(bytes) = gvfs_xdr::to_bytes(&reply_msg) else {
                    // An unencodable reply is a local protocol bug; skip
                    // the record rather than kill the connection thread.
                    continue;
                };
                drc.lock().insert(key, bytes.clone());
                bytes
            };
            stream.write_all(&write_record(&reply_bytes, MAX_FRAGMENT))?;
        }
    }
}

/// Default per-call timeout before a retransmission is attempted.
pub const DEFAULT_CALL_TIMEOUT: Duration = Duration::from_secs(30);
/// Default number of retransmissions after the first timeout.
pub const DEFAULT_RETRIES: u32 = 2;

/// A TCP RPC client with xid-multiplexed concurrency.
///
/// A background reader thread demultiplexes replies into an
/// outstanding-call table, so any number of [`send`](RpcChannel::send)s
/// may be in flight before their [`wait`](RpcChannel::wait)s. Calls that
/// time out are retransmitted verbatim — same xid — up to the configured
/// retry bound; the server's [duplicate request cache](crate::drc)
/// replays the reply if the original execution already happened.
#[derive(Debug)]
pub struct TcpRpcClient {
    inner: Arc<ClientInner>,
    reader: Option<std::thread::JoinHandle<()>>,
}

#[derive(Debug)]
struct ClientInner {
    writer: Mutex<TcpStream>,
    pending: Mutex<HashMap<u32, Arc<TcpSlot>>>,
    next_xid: AtomicU32,
    timeout: Mutex<Duration>,
    retries: AtomicU32,
    stats: RpcStats,
    dead: AtomicBool,
}

/// Completion slot for one outstanding TCP call.
#[derive(Debug)]
struct TcpSlot {
    client: Weak<ClientInner>,
    xid: u32,
    program: u32,
    procedure: u32,
    /// The framed record, kept verbatim for retransmission with the
    /// same xid.
    frame: Vec<u8>,
    wire_out: u64,
    started: Instant,
    // std primitives: the reader thread parks waiters on a condvar with
    // a timeout, which the vendored parking_lot shim does not provide.
    state: StdMutex<SlotState>,
    cond: Condvar,
}

#[derive(Debug)]
enum SlotState {
    Waiting,
    Done(ReplyBody, u64),
    Failed(RpcError),
}

impl TcpSlot {
    fn lock_state(&self) -> MutexGuard<'_, SlotState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Resolves the slot exactly once; later resolutions are ignored.
    /// Accounts the call's completion in the shared stats.
    fn complete(&self, inner: &ClientInner, outcome: SlotState) {
        let mut st = self.lock_state();
        if !matches!(*st, SlotState::Waiting) {
            return;
        }
        if let SlotState::Done(_, wire_in) = &outcome {
            let latency = u64::try_from(self.started.elapsed().as_nanos()).unwrap_or(u64::MAX);
            inner.stats.record_latency(
                self.program,
                self.procedure,
                self.wire_out,
                *wire_in,
                latency,
            );
        }
        inner.stats.call_finished();
        *st = outcome;
        self.cond.notify_all();
    }
}

impl CallSlot for TcpSlot {
    fn wait(&self) -> Result<Vec<u8>, RpcError> {
        let Some(inner) = self.client.upgrade() else {
            return Err(RpcError::Unreachable);
        };
        let mut remaining = inner.retries.load(Ordering::SeqCst);
        let timeout = *inner.timeout.lock();
        let mut st = self.lock_state();
        loop {
            match &*st {
                SlotState::Waiting => {}
                SlotState::Done(body, _) => return body.results().map(<[u8]>::to_vec),
                SlotState::Failed(e) => return Err(e.clone()),
            }
            let (guard, wait) =
                self.cond.wait_timeout(st, timeout).unwrap_or_else(PoisonError::into_inner);
            st = guard;
            if !wait.timed_out() || !matches!(*st, SlotState::Waiting) {
                continue; // woken, or resolved at the same instant
            }
            if remaining == 0 {
                drop(st);
                // Forget the xid so a late reply is dropped, then fail
                // the slot (unless the reader resolved it just now).
                inner.pending.lock().remove(&self.xid);
                self.complete(&inner, SlotState::Failed(RpcError::Timeout));
                st = self.lock_state();
                continue;
            }
            remaining -= 1;
            drop(st);
            // Retransmit the identical record: the xid is reused so the
            // server's duplicate request cache can suppress re-execution.
            let _ = inner.writer.lock().write_all(&self.frame);
            st = self.lock_state();
        }
    }
}

/// Reader half: demultiplexes record-marked replies into the
/// outstanding-call table until the connection dies, then fails every
/// still-outstanding call.
fn run_reader(mut stream: TcpStream, client: Weak<ClientInner>) {
    let mut reader = RecordReader::new();
    let mut buf = [0u8; 64 * 1024];
    'io: loop {
        let n = match stream.read(&mut buf) {
            Ok(0) | Err(_) => break 'io,
            Ok(n) => n,
        };
        if reader.push(&buf[..n]).is_err() {
            break 'io; // hostile record from the server side
        }
        while let Some(record) = reader.pop() {
            let Ok(msg) = gvfs_xdr::from_bytes::<RpcMessage>(&record) else { continue };
            let MessageBody::Reply(body) = msg.body else { continue };
            let Some(inner) = client.upgrade() else { return };
            let slot = inner.pending.lock().remove(&msg.xid);
            // A miss is a stale reply from a call that already timed out.
            if let Some(slot) = slot {
                slot.complete(&inner, SlotState::Done(body, record.len() as u64 + 4));
            }
        }
    }
    let Some(inner) = client.upgrade() else { return };
    inner.dead.store(true, Ordering::SeqCst);
    let slots: Vec<Arc<TcpSlot>> = inner.pending.lock().drain().map(|(_, s)| s).collect();
    for slot in slots {
        slot.complete(&inner, SlotState::Failed(RpcError::Unreachable));
    }
}

impl TcpRpcClient {
    /// Connects to an RPC server and starts the reply-reader thread.
    ///
    /// # Errors
    ///
    /// I/O errors from connecting.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        let read_half = stream.try_clone()?;
        let inner = Arc::new(ClientInner {
            writer: Mutex::new(stream),
            pending: Mutex::new(HashMap::new()),
            next_xid: AtomicU32::new(1),
            timeout: Mutex::new(DEFAULT_CALL_TIMEOUT),
            retries: AtomicU32::new(DEFAULT_RETRIES),
            stats: RpcStats::new(),
            dead: AtomicBool::new(false),
        });
        let weak = Arc::downgrade(&inner);
        let reader = std::thread::spawn(move || run_reader(read_half, weak));
        Ok(TcpRpcClient { inner, reader: Some(reader) })
    }

    /// Sets the per-call timeout after which the call is retransmitted.
    #[must_use]
    pub fn with_timeout(self, timeout: Duration) -> Self {
        *self.inner.timeout.lock() = timeout;
        self
    }

    /// Sets how many times a timed-out call is retransmitted before it
    /// fails with [`RpcError::Timeout`].
    #[must_use]
    pub fn with_retries(self, retries: u32) -> Self {
        self.inner.retries.store(retries, Ordering::SeqCst);
        self
    }

    /// The per-procedure statistics recorded by this client.
    pub fn stats(&self) -> &RpcStats {
        &self.inner.stats
    }

    /// Performs one blocking call — a thin wrapper over
    /// [`send`](RpcChannel::send) + [`wait`](RpcChannel::wait).
    ///
    /// # Errors
    ///
    /// Transport failures surface as [`RpcError::Unreachable`] or
    /// [`RpcError::Timeout`]; protocol errors as their RFC 5531 statuses.
    pub fn call(
        &self,
        program: u32,
        version: u32,
        procedure: u32,
        credential: OpaqueAuth,
        args: Vec<u8>,
    ) -> Result<Vec<u8>, RpcError> {
        RpcChannel::call(self, program, version, procedure, credential, args)
    }
}

impl RpcChannel for TcpRpcClient {
    fn send(
        &self,
        program: u32,
        version: u32,
        procedure: u32,
        credential: OpaqueAuth,
        args: Vec<u8>,
    ) -> Result<PendingCall, RpcError> {
        let inner = &self.inner;
        if inner.dead.load(Ordering::SeqCst) {
            return Err(RpcError::Unreachable);
        }
        let xid = inner.next_xid.fetch_add(1, Ordering::SeqCst);
        let msg = RpcMessage {
            xid,
            body: MessageBody::Call(CallBody::new(program, version, procedure, credential, args)),
        };
        let bytes = gvfs_xdr::to_bytes(&msg)?;
        ensure_sendable(bytes.len())?;
        let slot = Arc::new(TcpSlot {
            client: Arc::downgrade(inner),
            xid,
            program,
            procedure,
            frame: write_record(&bytes, MAX_FRAGMENT),
            wire_out: bytes.len() as u64 + 4,
            started: Instant::now(),
            state: StdMutex::new(SlotState::Waiting),
            cond: Condvar::new(),
        });
        inner.pending.lock().insert(xid, Arc::clone(&slot));
        if inner.writer.lock().write_all(&slot.frame).is_err() {
            inner.pending.lock().remove(&xid);
            return Err(RpcError::Unreachable);
        }
        inner.stats.call_started();
        Ok(PendingCall::new(xid, program, procedure, slot))
    }
}

impl Drop for TcpRpcClient {
    fn drop(&mut self) {
        self.inner.dead.store(true, Ordering::SeqCst);
        let _ = self.inner.writer.lock().shutdown(Shutdown::Both);
        if let Some(reader) = self.reader.take() {
            let _ = reader.join();
        }
    }
}
