/root/repo/target/release/deps/fig6-14c0bec2f82444b1.d: crates/bench/src/bin/fig6.rs

/root/repo/target/release/deps/fig6-14c0bec2f82444b1: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
