//! Offline stand-in for the `parking_lot` crate, backed by `std::sync`.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small slice of the `parking_lot` API it actually uses:
//! [`Mutex`], [`RwLock`] and [`Condvar`] with non-poisoning guards that
//! are returned directly from `lock()`/`read()`/`write()` (no
//! `Result`). Poisoned std locks are recovered transparently — GVFS
//! treats a panic while holding a lock as a bug surfaced elsewhere, not
//! as a reason to wedge every other thread.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync;

/// A mutual-exclusion lock whose guard is returned without a `Result`.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex`]. The inner `Option` is only ever `None`
/// transiently inside [`Condvar::wait`], which must move the std guard
/// by value.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex { inner: sync::Mutex::new(value) }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(sync::PoisonError::into_inner)),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(sync::TryLockError::Poisoned(p)) => {
                Some(MutexGuard { inner: Some(p.into_inner()) })
            }
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

impl<'a, T: ?Sized> Deref for MutexGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard invariant: only vacated inside Condvar::wait")
    }
}

impl<'a, T: ?Sized> DerefMut for MutexGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard invariant: only vacated inside Condvar::wait")
    }
}

impl<'a, T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'a, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

impl<'a, T: ?Sized + fmt::Display> fmt::Display for MutexGuard<'a, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&**self, f)
    }
}

impl<'a, T: ?Sized + fmt::Debug> fmt::Debug for RwLockReadGuard<'a, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

impl<'a, T: ?Sized + fmt::Display> fmt::Display for RwLockReadGuard<'a, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&**self, f)
    }
}

impl<'a, T: ?Sized + fmt::Debug> fmt::Debug for RwLockWriteGuard<'a, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

impl<'a, T: ?Sized + fmt::Display> fmt::Display for RwLockWriteGuard<'a, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&**self, f)
    }
}

/// A reader-writer lock whose guards are returned without a `Result`.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared-read RAII guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-write RAII guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock { inner: sync::RwLock::new(value) }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(sync::PoisonError::into_inner),
        }
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(sync::PoisonError::into_inner),
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_read() {
            Ok(g) => f.debug_struct("RwLock").field("data", &&*g).finish(),
            Err(_) => f.write_str("RwLock { <locked> }"),
        }
    }
}

impl<'a, T: ?Sized> Deref for RwLockReadGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<'a, T: ?Sized> Deref for RwLockWriteGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<'a, T: ?Sized> DerefMut for RwLockWriteGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// A condition variable compatible with [`Mutex`]/[`MutexGuard`].
#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar { inner: sync::Condvar::new() }
    }

    /// Blocks until notified, releasing the guard's mutex while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard invariant: present outside wait");
        let inner = self.inner.wait(inner).unwrap_or_else(sync::PoisonError::into_inner);
        guard.inner = Some(inner);
    }

    /// Wakes one waiting thread.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiting threads.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let h = thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut done = m.lock();
            while !*done {
                cv.wait(&mut done);
            }
        });
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        h.join().expect("waiter thread");
    }
}
