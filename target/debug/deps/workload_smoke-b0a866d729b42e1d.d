/root/repo/target/debug/deps/workload_smoke-b0a866d729b42e1d.d: /root/repo/clippy.toml crates/integration/../../tests/workload_smoke.rs Cargo.toml

/root/repo/target/debug/deps/libworkload_smoke-b0a866d729b42e1d.rmeta: /root/repo/clippy.toml crates/integration/../../tests/workload_smoke.rs Cargo.toml

/root/repo/clippy.toml:
crates/integration/../../tests/workload_smoke.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
