//! Offline stand-in for `criterion`.
//!
//! Implements just enough of the criterion API for
//! `benches/microbench.rs` to build and produce useful wall-clock
//! numbers: timed warm-up, a fixed measurement window, and mean
//! ns/iteration (plus throughput when declared). No statistics, plots
//! or comparison to saved baselines.

use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer value barrier (re-export of `std::hint`).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declared throughput of a benchmark, used to derive rate output.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// How batched inputs are sized (accepted, but the stub always runs
/// moderate batches).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Per-iteration timing driver handed to benchmark closures.
pub struct Bencher {
    total: Duration,
    iters: u64,
}

const MEASURE_WINDOW: Duration = Duration::from_millis(200);

impl Bencher {
    fn new() -> Self {
        Bencher { total: Duration::ZERO, iters: 0 }
    }

    /// Times `routine` repeatedly for the measurement window.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up: one untimed call.
        black_box(routine());
        let start = Instant::now();
        while start.elapsed() < MEASURE_WINDOW {
            let t0 = Instant::now();
            black_box(routine());
            self.total += t0.elapsed();
            self.iters += 1;
        }
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        let start = Instant::now();
        while start.elapsed() < MEASURE_WINDOW {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.total += t0.elapsed();
            self.iters += 1;
        }
    }

    fn report(&self, name: &str, throughput: Option<Throughput>) {
        if self.iters == 0 {
            println!("{name:<44} (no iterations)");
            return;
        }
        let ns = self.total.as_nanos() as f64 / self.iters as f64;
        let rate = match throughput {
            Some(Throughput::Bytes(b)) => {
                let gib = b as f64 / ns; // bytes per ns == GB/s
                format!("  {gib:>8.3} GB/s")
            }
            Some(Throughput::Elements(e)) => {
                let meps = e as f64 * 1e3 / ns;
                format!("  {meps:>8.3} Melem/s")
            }
            None => String::new(),
        };
        println!("{name:<44} {ns:>12.1} ns/iter{rate}");
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Declares the throughput of subsequent benchmarks in the group.
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new();
        f(&mut b);
        b.report(&format!("{}/{}", self.name, id), self.throughput);
        self
    }

    /// Ends the group (separator line).
    pub fn finish(self) {
        println!();
    }
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion;

impl Criterion {
    /// Opens a named group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup { name: name.to_string(), throughput: None, _parent: self }
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new();
        f(&mut b);
        b.report(id, None);
        self
    }
}

/// Declares a function that runs each listed benchmark with a fresh
/// [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
