/root/repo/target/debug/deps/proptest_invalidation-3d85a8f2522d2576.d: /root/repo/clippy.toml crates/core/tests/proptest_invalidation.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_invalidation-3d85a8f2522d2576.rmeta: /root/repo/clippy.toml crates/core/tests/proptest_invalidation.rs Cargo.toml

/root/repo/clippy.toml:
crates/core/tests/proptest_invalidation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
