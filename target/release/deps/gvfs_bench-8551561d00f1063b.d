/root/repo/target/release/deps/gvfs_bench-8551561d00f1063b.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libgvfs_bench-8551561d00f1063b.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libgvfs_bench-8551561d00f1063b.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
