/root/repo/target/debug/deps/proptest_invariants-810ff26c20ca6d28.d: /root/repo/clippy.toml crates/vfs/tests/proptest_invariants.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_invariants-810ff26c20ca6d28.rmeta: /root/repo/clippy.toml crates/vfs/tests/proptest_invariants.rs Cargo.toml

/root/repo/clippy.toml:
crates/vfs/tests/proptest_invariants.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
