//! File attributes and timestamps.

/// A point in time, in nanoseconds since an arbitrary epoch.
///
/// The filesystem never reads a clock; callers supply timestamps
/// (in the simulation, the virtual clock).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Timestamp(u64);

impl Timestamp {
    /// Builds a timestamp from nanoseconds since the epoch.
    pub const fn from_nanos(nanos: u64) -> Self {
        Timestamp(nanos)
    }

    /// Nanoseconds since the epoch.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Splits into `(seconds, nanoseconds)` as NFS `nfstime3` does.
    pub const fn to_secs_nanos(self) -> (u32, u32) {
        ((self.0 / 1_000_000_000) as u32, (self.0 % 1_000_000_000) as u32)
    }
}

/// The kind of a filesystem object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FileKind {
    /// Regular file.
    Regular,
    /// Directory.
    Directory,
    /// Symbolic link.
    Symlink,
}

/// Object attributes, the source for NFS `fattr3`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Attr {
    /// Object kind.
    pub kind: FileKind,
    /// Permission bits.
    pub mode: u32,
    /// Hard-link count.
    pub nlink: u32,
    /// Owner uid.
    pub uid: u32,
    /// Owner gid.
    pub gid: u32,
    /// Size in bytes (for directories, a nominal size).
    pub size: u64,
    /// Stable file id (never reused within a [`crate::Vfs`]).
    pub fileid: u64,
    /// Last data access.
    pub atime: Timestamp,
    /// Last data modification.
    pub mtime: Timestamp,
    /// Last attribute change.
    pub ctime: Timestamp,
}

/// A partial attribute update (NFS `sattr3`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SetAttr {
    /// New permission bits.
    pub mode: Option<u32>,
    /// New owner uid.
    pub uid: Option<u32>,
    /// New owner gid.
    pub gid: Option<u32>,
    /// Truncate/extend to this size (regular files only).
    pub size: Option<u64>,
    /// Set access time.
    pub atime: Option<Timestamp>,
    /// Set modification time.
    pub mtime: Option<Timestamp>,
}

impl SetAttr {
    /// Returns `true` if no field is set.
    pub fn is_empty(&self) -> bool {
        *self == SetAttr::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timestamp_split() {
        let t = Timestamp::from_nanos(3_500_000_001);
        assert_eq!(t.to_secs_nanos(), (3, 500_000_001));
    }

    #[test]
    fn setattr_default_is_empty() {
        assert!(SetAttr::default().is_empty());
        assert!(!SetAttr { size: Some(0), ..Default::default() }.is_empty());
    }
}
