/root/repo/target/debug/examples/tcp_nfs-87984e2a6f69ce82.d: /root/repo/clippy.toml crates/bench/../../examples/tcp_nfs.rs Cargo.toml

/root/repo/target/debug/examples/libtcp_nfs-87984e2a6f69ce82.rmeta: /root/repo/clippy.toml crates/bench/../../examples/tcp_nfs.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/../../examples/tcp_nfs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
