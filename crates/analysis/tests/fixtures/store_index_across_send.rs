// expect: guard-across-send
// as: crates/core/src/store/persist.rs
// Known-bad: the persistent store's extent-index guard is live at a
// WAN entry point. The store must never reach the wire — a replay
// fetch belongs in the proxy client, after every store guard drops.
fn refetch_evicted(&self) {
    let idx = self.index.lock();
    self.transport.call(READ, idx.first_gap);
}
