//! Trace conformance: the protocol-event emitter is exercised by a
//! fully scripted netsim run whose event sequence is asserted exactly,
//! and recorded partition-heal traces are replayed through
//! `gvfs-analysis`'s conformance checker as accepted paths of the
//! protocol model.

use gvfs_analysis::replay;
use gvfs_client::{MountOptions, NfsClient};
use gvfs_core::session::Session;
use gvfs_core::trace::{ProtocolEvent, TraceKind};
use gvfs_integration::chaos::driver::ModelKind;
use gvfs_integration::chaos::scenario;
use gvfs_netsim::Sim;
use std::sync::Arc;

/// A scripted recall round, driven from one actor so the op order (and
/// therefore the emitted event order) is exact: client 0 takes a write
/// delegation, client 1's conflicting read recalls it, and the server
/// re-resolves both ends non-cacheable.
#[test]
fn scripted_recall_emits_exact_event_sequence() {
    let sim = Sim::new();
    let session =
        Session::builder(ModelKind::Delegation.session_config()).clients(2).establish(&sim);
    let trace = session.install_trace();

    let vfs = Arc::clone(session.vfs());
    let t0 = gvfs_vfs::Timestamp::from_nanos(0);
    let id = vfs.create(vfs.root(), "traced", 0o644, t0).expect("create traced file");
    vfs.write(id, 0, &[0u8; 32], t0).expect("seed traced file");

    let tr0 = session.client_transport(0);
    let tr1 = session.client_transport(1);
    let root = session.root_fh();
    let handle = session.handle();
    sim.spawn("script", move || {
        let c0 = NfsClient::new(tr0, root, MountOptions::noac());
        let c1 = NfsClient::new(tr1, root, MountOptions::noac());
        let fh = c0.resolve("/traced").expect("resolve /traced");
        c0.write(fh, 0, b"from-zero").expect("scripted write");
        let buf = c1.read(fh, 0, 9).expect("scripted read");
        assert_eq!(&buf, b"from-zero");
        handle.shutdown();
    });
    sim.run();

    // Client IDs in the trace are 1-based; fh 1 is the root directory
    // and fh 2 is `/traced`. The sequence reads: client 1's path
    // resolution takes a read delegation on the root, its write takes
    // the write delegation; client 2's conflicting read (it skips
    // resolution by reusing the handle) recalls that delegation — sent,
    // received, completed with the holder's write-back — and the server
    // then re-resolves client 2 non-cacheable while the round is still
    // open and as a read delegation once the table is clear.
    let events: Vec<ProtocolEvent> = trace.records().into_iter().map(|r| r.ev).collect();
    let expected = vec![
        ProtocolEvent::Meta {
            lease_ms: 30_000,
            degrade_after_ms: 2_000,
            max_staleness_ms: 30_000,
            clients: 2,
        },
        ProtocolEvent::Grant { client: 1, fh: 1, kind: TraceKind::Read },
        ProtocolEvent::Grant { client: 1, fh: 2, kind: TraceKind::Write },
        ProtocolEvent::RecallSent { client: 1, fh: 2, kind: TraceKind::Write },
        ProtocolEvent::RecallRecv { client: 1, fh: 2, kind: TraceKind::Write },
        ProtocolEvent::RecallDone { client: 1, fh: 2, ok: true, pending: 0 },
        ProtocolEvent::Grant { client: 2, fh: 2, kind: TraceKind::NonCacheable },
        ProtocolEvent::Grant { client: 2, fh: 2, kind: TraceKind::Read },
    ];
    assert_eq!(events, expected);

    // And the recorded sequence is, of course, an accepted model path.
    let replayed = replay::replay_str(std::path::Path::new("scripted-recall"), &trace.to_jsonl());
    assert!(replayed.accepted(), "scripted trace rejected: {:#?}", replayed.rejections);
}

/// Every partition-heal trace must be an accepted path of the protocol
/// model, and the milestone events must appear in ladder order: the
/// breaker degrades the writer, the degraded rung serves, and the heal
/// re-promotes.
#[test]
fn partition_heal_trace_replays_clean_with_ladder_milestones() {
    let report = scenario::run_partition_heal(0);
    assert!(report.violations.is_empty(), "{:#?}", report.violations);

    let replayed =
        replay::replay_str(std::path::Path::new("partition-heal-seed0"), &report.protocol_trace);
    assert!(replayed.accepted(), "trace rejected: {:#?}", replayed.rejections);
    assert!(replayed.events > 0, "empty protocol trace");

    let names: Vec<&str> = report
        .protocol_trace
        .lines()
        .filter_map(|l| l.split(r#""ev":""#).nth(1))
        .filter_map(|rest| rest.split('"').next())
        .collect();
    let degrade = names.iter().position(|&n| n == "degrade");
    let degraded_serve = names.iter().position(|&n| n == "degraded_serve");
    let repromote = names.iter().position(|&n| n == "repromote");
    let (Some(d), Some(s), Some(r)) = (degrade, degraded_serve, repromote) else {
        panic!("ladder milestones missing from trace: {names:?}");
    };
    assert!(d < s && s < r, "ladder milestones out of order: {names:?}");
}
