/root/repo/target/debug/deps/tcp_transport-c4546640e0fe6465.d: /root/repo/clippy.toml crates/rpc/tests/tcp_transport.rs Cargo.toml

/root/repo/target/debug/deps/libtcp_transport-c4546640e0fe6465.rmeta: /root/repo/clippy.toml crates/rpc/tests/tcp_transport.rs Cargo.toml

/root/repo/clippy.toml:
crates/rpc/tests/tcp_transport.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
