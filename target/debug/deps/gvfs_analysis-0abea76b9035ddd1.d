/root/repo/target/debug/deps/gvfs_analysis-0abea76b9035ddd1.d: /root/repo/clippy.toml crates/analysis/src/lib.rs crates/analysis/src/lexer.rs crates/analysis/src/lint.rs crates/analysis/src/model.rs Cargo.toml

/root/repo/target/debug/deps/libgvfs_analysis-0abea76b9035ddd1.rmeta: /root/repo/clippy.toml crates/analysis/src/lib.rs crates/analysis/src/lexer.rs crates/analysis/src/lint.rs crates/analysis/src/model.rs Cargo.toml

/root/repo/clippy.toml:
crates/analysis/src/lib.rs:
crates/analysis/src/lexer.rs:
crates/analysis/src/lint.rs:
crates/analysis/src/model.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
