//! Failure injection across the stack: kernel NFS server outages,
//! repeated proxy-server crashes, flapping partitions, and recovery
//! interleaved with live traffic.

use gvfs_client::{MountOptions, NfsClient};
use gvfs_core::session::{NativeMount, Session, SessionConfig};
use gvfs_core::ConsistencyModel;
use gvfs_netsim::link::LinkConfig;
use gvfs_netsim::Sim;
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::Duration;

#[test]
fn kernel_nfs_server_outage_rides_on_retries() {
    let sim = Sim::new();
    let native = NativeMount::establish(1, LinkConfig::wan(), None);
    let (t, root) = (native.client_transport(0), native.root_fh());
    let node = Arc::clone(native.nfs_node());
    sim.spawn("app", move || {
        let c = NfsClient::new(
            t,
            root,
            MountOptions { retry_backoff: Duration::from_secs(2), ..MountOptions::default() },
        );
        c.write_file("/f", b"pre").unwrap();
        // Server goes down for 30 s in the middle of work.
        gvfs_netsim::spawn_from_actor("outage", {
            let node = Arc::clone(&node);
            move || {
                node.set_up(false);
                gvfs_netsim::sleep(Duration::from_secs(30));
                node.set_up(true);
            }
        });
        gvfs_netsim::sleep(Duration::from_millis(10));
        let t0 = gvfs_netsim::now();
        c.write_file("/g", b"written through the outage").unwrap();
        assert!(gvfs_netsim::now().saturating_since(t0) >= Duration::from_secs(29));
        assert_eq!(c.read_file("/g").unwrap(), b"written through the outage");
    });
    sim.run();
}

#[test]
fn repeated_proxy_server_crashes_under_polling() {
    let sim = Sim::new();
    let session = Session::builder(SessionConfig {
        model: ConsistencyModel::InvalidationPolling {
            period: Duration::from_secs(10),
            backoff_max: None,
        },
        ..SessionConfig::default()
    })
    .clients(2)
    .establish(&sim);
    let (t0, t1) = (session.client_transport(0), session.client_transport(1));
    let root = session.root_fh();
    let handle = session.handle();
    let session = Arc::new(session);
    let s = Arc::clone(&session);
    let writes_seen = Arc::new(Mutex::new(0usize));
    sim.spawn("writer", move || {
        let c = NfsClient::new(t0, root, MountOptions::noac());
        for round in 0..5 {
            c.write_file(&format!("/round-{round}"), &[round as u8; 512]).unwrap();
            // Crash and restart the proxy server every round.
            s.crash_proxy_server();
            gvfs_netsim::sleep(Duration::from_secs(2));
            s.restart_proxy_server();
            gvfs_netsim::sleep(Duration::from_secs(20));
        }
    });
    let seen = Arc::clone(&writes_seen);
    sim.spawn("reader", move || {
        let c = NfsClient::new(t1, root, MountOptions::noac());
        gvfs_netsim::sleep(Duration::from_secs(115));
        for round in 0..5 {
            if c.read_file(&format!("/round-{round}")).is_ok() {
                *seen.lock() += 1;
            }
        }
        handle.shutdown();
    });
    sim.run();
    assert_eq!(
        *writes_seen.lock(),
        5,
        "every write survives every crash (server-side data is durable)"
    );
}

#[test]
fn flapping_partition_preserves_order_and_data() {
    let sim = Sim::new();
    let session = Session::builder(SessionConfig {
        model: ConsistencyModel::polling_30s(),
        ..SessionConfig::default()
    })
    .clients(1)
    .establish(&sim);
    let transport = session.client_transport(0);
    let root = session.root_fh();
    let handle = session.handle();
    let session = Arc::new(session);
    let link = Arc::clone(session.wan_link(0));
    let vfs = Arc::clone(session.vfs());
    sim.spawn("flapper", {
        let link = Arc::clone(&link);
        move || {
            for _ in 0..20 {
                gvfs_netsim::sleep(Duration::from_millis(2500));
                link.set_partitioned(true);
                gvfs_netsim::sleep(Duration::from_millis(1500));
                link.set_partitioned(false);
            }
        }
    });
    sim.spawn("app", move || {
        let c = NfsClient::new(transport, root, MountOptions::noac());
        let fh = c.create_path("/journal", true).unwrap();
        let mut offset = 0u64;
        for n in 0..40u8 {
            let rec = [n; 100];
            c.write(fh, offset, &rec).unwrap();
            offset += 100;
            gvfs_netsim::sleep(Duration::from_millis(700));
        }
        handle.shutdown();
    });
    sim.run();
    // Every record landed exactly once, in order, despite the flapping.
    let id = vfs.lookup_path("/journal").unwrap();
    let (data, _) = vfs.read(id, 0, 4000).unwrap();
    assert_eq!(data.len(), 4000);
    for n in 0..40u8 {
        assert!(
            data[n as usize * 100..(n as usize + 1) * 100].iter().all(|&b| b == n),
            "record {n} intact"
        );
    }
}

#[test]
fn recovery_during_live_reads_blocks_then_resumes() {
    // A proxy-server restart's recovery round happens while another
    // client is mid-workload; everything continues afterwards.
    let sim = Sim::new();
    let session = Session::builder(SessionConfig {
        model: ConsistencyModel::delegation(),
        write_back: true,
        ..SessionConfig::default()
    })
    .clients(2)
    .establish(&sim);
    let (t0, t1) = (session.client_transport(0), session.client_transport(1));
    let root = session.root_fh();
    let handle = session.handle();
    let session = Arc::new(session);
    let s = Arc::clone(&session);
    sim.spawn("worker", move || {
        let c = NfsClient::new(t0, root, MountOptions::noac());
        for n in 0..30 {
            c.write_file(&format!("/w-{n}"), &[n as u8; 2048]).unwrap();
            gvfs_netsim::sleep(Duration::from_secs(1));
        }
        for n in 0..30 {
            assert_eq!(c.read_file(&format!("/w-{n}")).unwrap(), vec![n as u8; 2048]);
        }
        handle.shutdown();
    });
    sim.spawn("chaos", move || {
        let c = NfsClient::new(t1, root, MountOptions::noac());
        let _ = c.readdir_all(root);
        gvfs_netsim::sleep(Duration::from_secs(10));
        s.crash_proxy_server();
        gvfs_netsim::sleep(Duration::from_secs(3));
        let answered = s.restart_proxy_server();
        assert!(answered >= 1, "recovery round reached the clients");
    });
    sim.run();
}
