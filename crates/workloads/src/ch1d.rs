//! The CH1D producer/consumer benchmark (§5.2.2, Figure 8).
//!
//! Real-time coastal data accumulates on an observation site (the
//! producer) while an off-site computing center (the consumer)
//! re-analyzes the full accumulated dataset after every collection run:
//! run *r* adds 30 more input files, and the consumer then processes
//! all `30 × r` files. The dataset fits the consumer's cache, so what
//! grows on native NFS is purely the per-file consistency checking —
//! while a delegation-based session keeps it nearly constant.

use gvfs_client::NfsClient;
use gvfs_vfs::{Timestamp, Vfs};
use std::time::Duration;

/// CH1D parameters (defaults = the paper's 15 runs × 30 files).
#[derive(Debug, Clone)]
pub struct Ch1dConfig {
    /// Number of producer runs.
    pub runs: usize,
    /// New input files per run.
    pub files_per_run: usize,
    /// Bytes per input file.
    pub file_bytes: usize,
    /// Modelled analysis time per *new* file.
    pub process_per_file: Duration,
    /// Fixed analysis overhead per consumer run.
    pub process_fixed: Duration,
}

impl Default for Ch1dConfig {
    fn default() -> Self {
        Ch1dConfig {
            runs: 15,
            files_per_run: 30,
            file_bytes: 64 * 1024,
            process_per_file: Duration::from_millis(120),
            process_fixed: Duration::from_secs(5),
        }
    }
}

impl Ch1dConfig {
    /// A reduced configuration for fast tests.
    pub fn small() -> Self {
        Ch1dConfig {
            runs: 4,
            files_per_run: 6,
            file_bytes: 8 * 1024,
            process_per_file: Duration::from_millis(50),
            process_fixed: Duration::from_millis(500),
        }
    }

    /// Name of input file `i` of run `r`.
    pub fn file_name(r: usize, i: usize) -> String {
        format!("in_r{r:02}_{i:03}.dat")
    }
}

/// Prepares the shared data directory.
///
/// # Panics
///
/// Panics if the directory already exists.
pub fn populate(vfs: &Vfs) {
    vfs.mkdir(vfs.root(), "data", 0o755, Timestamp::from_nanos(0)).expect("mkdir data");
}

/// One producer run: writes the run's input files. Must run inside an
/// actor.
///
/// # Panics
///
/// Panics on filesystem errors.
pub fn produce_run(producer: &NfsClient, config: &Ch1dConfig, run: usize) {
    let dir = producer.resolve("/data").expect("data dir");
    let payload = vec![b'd'; config.file_bytes];
    for i in 0..config.files_per_run {
        let fh = producer.create(dir, &Ch1dConfig::file_name(run, i), true).expect("create input");
        producer.write(fh, 0, &payload).expect("write input");
    }
}

/// One consumer run after producer run `run`: processes every
/// accumulated file (opens each — the consistency cost — and reads the
/// new ones), then computes. Returns the run's virtual duration. Must
/// run inside an actor.
///
/// # Panics
///
/// Panics on filesystem errors.
pub fn consume_run(consumer: &NfsClient, config: &Ch1dConfig, run: usize) -> Duration {
    let t0 = gvfs_netsim::now();
    for r in 0..=run {
        for i in 0..config.files_per_run {
            let path = format!("/data/{}", Ch1dConfig::file_name(r, i));
            let fh = consumer.open(&path).expect("open input");
            // Old runs' data is cached; the analysis still re-reads
            // everything, but only new files cost WAN transfers.
            let _ = consumer.read(fh, 0, config.file_bytes as u32).expect("read input");
        }
    }
    gvfs_netsim::sleep(config.process_per_file * config.files_per_run as u32);
    gvfs_netsim::sleep(config.process_fixed);
    gvfs_netsim::now().saturating_since(t0)
}

/// Drives the full pipeline, alternating producer and consumer phases
/// in one actor (the analysis starts when each collection run lands).
/// Returns the consumer-phase runtime of each run — the series of
/// Figure 8. Must run inside an actor.
///
/// # Panics
///
/// Panics on filesystem errors.
pub fn run_pipeline(
    producer: &NfsClient,
    consumer: &NfsClient,
    config: &Ch1dConfig,
) -> Vec<Duration> {
    let mut runtimes = Vec::with_capacity(config.runs);
    for run in 0..config.runs {
        produce_run(producer, config, run);
        runtimes.push(consume_run(consumer, config, run));
    }
    runtimes
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = Ch1dConfig::default();
        assert_eq!(c.runs, 15);
        assert_eq!(c.files_per_run, 30);
    }

    #[test]
    fn file_names_are_unique_across_runs() {
        let mut names = std::collections::HashSet::new();
        for r in 0..15 {
            for i in 0..30 {
                assert!(names.insert(Ch1dConfig::file_name(r, i)));
            }
        }
        assert_eq!(names.len(), 450);
    }
}
