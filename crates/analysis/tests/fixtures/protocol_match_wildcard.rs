// expect: protocol-match-exhaustive
// as: crates/core/src/proxy/client.rs
// Known-bad: a `_` arm over a wire-protocol enum silently absorbs new
// protocol states instead of failing to compile.
fn grant_rank(g: DelegationGrant) -> u32 {
    match g {
        DelegationGrant::Write => 2,
        _ => 0,
    }
}
