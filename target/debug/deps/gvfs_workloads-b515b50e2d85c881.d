/root/repo/target/debug/deps/gvfs_workloads-b515b50e2d85c881.d: /root/repo/clippy.toml crates/workloads/src/lib.rs crates/workloads/src/ch1d.rs crates/workloads/src/lock.rs crates/workloads/src/make.rs crates/workloads/src/nanomos.rs crates/workloads/src/postmark.rs Cargo.toml

/root/repo/target/debug/deps/libgvfs_workloads-b515b50e2d85c881.rmeta: /root/repo/clippy.toml crates/workloads/src/lib.rs crates/workloads/src/ch1d.rs crates/workloads/src/lock.rs crates/workloads/src/make.rs crates/workloads/src/nanomos.rs crates/workloads/src/postmark.rs Cargo.toml

/root/repo/clippy.toml:
crates/workloads/src/lib.rs:
crates/workloads/src/ch1d.rs:
crates/workloads/src/lock.rs:
crates/workloads/src/make.rs:
crates/workloads/src/nanomos.rs:
crates/workloads/src/postmark.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
