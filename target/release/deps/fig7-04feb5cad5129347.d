/root/repo/target/release/deps/fig7-04feb5cad5129347.d: crates/bench/src/bin/fig7.rs

/root/repo/target/release/deps/fig7-04feb5cad5129347: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
