//! Trace-conformance replay: asserts that a protocol-event trace
//! recorded by `gvfs_core::trace` (chaos soak, netsim integration
//! tests) is an accepted path of the composed protocol model.
//!
//! The checker is a deterministic abstract machine mirroring the
//! server's delegation table, the breaker-driven recall lifecycle, and
//! the client degradation ladder. Every rule errs conservative: when
//! the trace cannot prove a violation (because an internal transition
//! is not observable), the event is accepted. What it *can* prove:
//!
//! - structure: `meta` first, `seq` strictly increasing, `t_ms`
//!   non-decreasing, known discriminators, required fields present;
//! - exclusivity: a `write` grant admits no other holder, a `read`
//!   grant admits no write holder (modulo in-flight recalls);
//! - recall lifecycle: every `recall_done` consumes a prior
//!   `recall_sent` (ok) or `recall_short`/`recall_fail` (not ok), and
//!   `recall_recv` on a client consumes a matching `recall_sent`;
//! - lease discipline: an in-table `lease_revoke` only fires after a
//!   full lease elapsed since the holder's last observed grant;
//! - ladder discipline: `degrade` only from healthy, `degraded_serve`
//!   and `repromote` only while degraded, and every `repromote` drains
//!   GETINV first (a `validate` for that client after the `degrade`);
//! - bounded staleness: a degraded read is served within
//!   `max_staleness_ms` (plus poll-cadence slack) of the client's last
//!   proof of freshness;
//! - invalidation clock: per-client GETINV timestamps are monotone,
//!   resetting only across a server crash;
//! - peer sourcing: a `peer_serve` never comes from a condemned copy —
//!   a client that received a recall for the handle must re-validate
//!   (a later grant) before it may serve peers again — and a verified
//!   `peer_fetch` always has a matching prior `peer_serve`;
//! - integrity: no block whose checksum failed verification is ever
//!   returned to a reader — an `integrity_fault` with `served` set
//!   (the `--break-scrub` knob's signature) is a violation — and every
//!   `scrub_repair` is backed by a prior quarantine on that client and
//!   handle.
//!
//! Lines are flat JSON objects (see `TraceRecord::to_json_line`); the
//! parser here is hand-rolled because the vendored `serde_json` stub
//! has no deserializer.

use std::collections::HashMap;
use std::fmt;
use std::path::{Path, PathBuf};

/// Freshness slack for the bounded-staleness rule, covering the gap
/// between a client's last *observable* freshness proof (grant or
/// GETINV exchange) and the cache entry's actual validation stamp,
/// which the poll loop may have refreshed without emitting an event.
const STALENESS_SLACK_MS: u64 = 5_000;

/// One rejected event with enough context to find it in the trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rejection {
    pub line: usize,
    pub seq: u64,
    pub t_ms: u64,
    pub rule: &'static str,
    pub detail: String,
}

impl fmt::Display for Rejection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "line {} (seq {}, t={}ms): {}: {}",
            self.line, self.seq, self.t_ms, self.rule, self.detail
        )
    }
}

/// Outcome of replaying one trace file.
#[derive(Debug)]
pub struct ReplayReport {
    pub path: PathBuf,
    pub events: usize,
    pub rejections: Vec<Rejection>,
}

impl ReplayReport {
    pub fn accepted(&self) -> bool {
        self.rejections.is_empty()
    }
}

// ---------------------------------------------------------------------------
// Flat-JSON line parsing
// ---------------------------------------------------------------------------

/// A parsed trace line: the discriminator plus its numeric and string
/// fields. The writer emits only `u64` numbers and plain strings.
struct RawEvent {
    seq: u64,
    t_ms: u64,
    ev: String,
    nums: HashMap<String, u64>,
    strs: HashMap<String, String>,
}

/// Parses one `{"k":v,...}` line. Returns `Err` with a human-readable
/// reason on malformed input; the writer never produces nesting,
/// escapes, floats, or negative numbers, so none are accepted.
fn parse_line(line: &str) -> Result<RawEvent, String> {
    let inner = line
        .trim()
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
        .ok_or("not a JSON object")?;
    let mut nums = HashMap::new();
    let mut strs = HashMap::new();
    let bytes = inner.as_bytes();
    let mut i = 0usize;
    while i < bytes.len() {
        // Key.
        if bytes[i] != b'"' {
            return Err(format!("expected '\"' at byte {i}"));
        }
        let kstart = i + 1;
        let kend = inner[kstart..].find('"').ok_or("unterminated key")? + kstart;
        let key = &inner[kstart..kend];
        i = kend + 1;
        if i >= bytes.len() || bytes[i] != b':' {
            return Err(format!("expected ':' after key {key:?}"));
        }
        i += 1;
        // Value: string or unsigned integer.
        if i < bytes.len() && bytes[i] == b'"' {
            let vstart = i + 1;
            let vend = inner[vstart..].find('"').ok_or("unterminated string value")? + vstart;
            strs.insert(key.to_string(), inner[vstart..vend].to_string());
            i = vend + 1;
        } else {
            let vstart = i;
            while i < bytes.len() && bytes[i].is_ascii_digit() {
                i += 1;
            }
            if i == vstart {
                return Err(format!("expected value for key {key:?}"));
            }
            let v: u64 =
                inner[vstart..i].parse().map_err(|e| format!("bad number for {key:?}: {e}"))?;
            nums.insert(key.to_string(), v);
        }
        if i < bytes.len() {
            if bytes[i] != b',' {
                return Err(format!("expected ',' at byte {i}"));
            }
            i += 1;
        }
    }
    let seq = *nums.get("seq").ok_or("missing seq")?;
    let t_ms = *nums.get("t_ms").ok_or("missing t_ms")?;
    let ev = strs.get("ev").ok_or("missing ev")?.clone();
    Ok(RawEvent { seq, t_ms, ev, nums, strs })
}

impl RawEvent {
    fn num(&self, key: &str) -> Result<u64, String> {
        self.nums.get(key).copied().ok_or_else(|| format!("{}: missing field {key:?}", self.ev))
    }
    fn str_field(&self, key: &str) -> Result<&str, String> {
        self.strs
            .get(key)
            .map(String::as_str)
            .ok_or_else(|| format!("{}: missing field {key:?}", self.ev))
    }
}

// ---------------------------------------------------------------------------
// Conformance state machine
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Read,
    Write,
    NonCacheable,
}

impl Kind {
    fn parse(s: &str) -> Option<Self> {
        match s {
            "read" => Some(Kind::Read),
            "write" => Some(Kind::Write),
            "noncacheable" => Some(Kind::NonCacheable),
            _ => None,
        }
    }
}

/// Client-side degradation ladder position, reconstructed from events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ladder {
    Healthy,
    /// Degraded since (seq, with or without a completed GETINV drain).
    Degraded {
        since_seq: u64,
        drained: bool,
    },
}

#[derive(Default)]
struct ClientState {
    ladder: Option<Ladder>,
    /// Timestamp of the last GETINV exchange (freshness proof).
    last_validate_t: Option<u64>,
    /// Last GETINV invalidation-clock value; monotone between crashes.
    last_ts: Option<u64>,
}

struct Checker {
    lease_ms: u64,
    max_staleness_ms: u64,
    /// fh → (client → kind): delegations the trace shows outstanding.
    holders: HashMap<u64, HashMap<u32, Kind>>,
    /// (client, fh) → timestamp of the last grant/regrant observed.
    last_grant: HashMap<(u32, u64), u64>,
    /// (client, fh) pairs that have ever been sent a recall. The fault
    /// injector duplicates packets, so delivery is at-least-once and a
    /// recv cannot be matched one-to-one against a send.
    recall_sent_ever: std::collections::HashSet<(u32, u64)>,
    /// (client, fh) → (ok-capable, fail-capable) outstanding recall
    /// outcomes awaiting a recall_done.
    done_credit: HashMap<(u32, u64), (u64, u64)>,
    clients: HashMap<u32, ClientState>,
    server_crashed_once: bool,
    /// (client, fh) pairs whose cached copy the trace shows condemned
    /// (a recall arrived) with no re-validation (grant) since. Serving
    /// a peer from such a copy is the peer-sourcing cardinal sin.
    condemned: std::collections::HashSet<(u32, u64)>,
    /// (client, fh) pairs that have ever answered a PEERREAD with data;
    /// a verified peer_fetch must be backed by one of these.
    served_ever: std::collections::HashSet<(u32, u64)>,
    /// (client, fh) pairs whose store quarantined an extent; a
    /// scrub_repair must be backed by one of these.
    quarantined_ever: std::collections::HashSet<(u32, u64)>,
}

impl Checker {
    fn new(lease_ms: u64, max_staleness_ms: u64) -> Self {
        Checker {
            lease_ms,
            max_staleness_ms,
            holders: HashMap::new(),
            last_grant: HashMap::new(),
            recall_sent_ever: std::collections::HashSet::new(),
            done_credit: HashMap::new(),
            clients: HashMap::new(),
            server_crashed_once: false,
            condemned: std::collections::HashSet::new(),
            served_ever: std::collections::HashSet::new(),
            quarantined_ever: std::collections::HashSet::new(),
        }
    }

    fn client(&mut self, id: u32) -> &mut ClientState {
        self.clients.entry(id).or_default()
    }

    /// Applies one event; returns Err(rule, detail) on a violation.
    fn step(&mut self, ev: &RawEvent) -> Result<(), (&'static str, String)> {
        let field = |r: Result<u64, String>| r.map_err(|d| ("malformed-event", d));
        match ev.ev.as_str() {
            "grant" => {
                let client = field(ev.num("client"))? as u32;
                let fh = field(ev.num("fh"))?;
                let kind = Kind::parse(ev.str_field("kind").map_err(|d| ("malformed-event", d))?)
                    .ok_or(("malformed-event", String::from("unknown kind in grant")))?;
                // Exclusivity, modulo holders a concurrent recall is
                // already evicting (their recall_done arrives later).
                let conflict = self.holders.get(&fh).and_then(|held| {
                    held.iter().find(|&(&c, &k)| {
                        c != client
                            && self.done_credit.get(&(c, fh)).is_none_or(|&(a, b)| a + b == 0)
                            && match kind {
                                Kind::Write => k != Kind::NonCacheable,
                                Kind::Read => k == Kind::Write,
                                Kind::NonCacheable => false,
                            }
                    })
                });
                if let Some((&c, &k)) = conflict {
                    return Err((
                        "grant-exclusivity",
                        format!(
                            "{kind:?} grant to client {client} for fh {fh} while client {c} \
                             holds {k:?}"
                        ),
                    ));
                }
                self.holders.entry(fh).or_default().insert(client, kind);
                self.last_grant.insert((client, fh), ev.t_ms);
                // A fresh grant is a re-validation: the client's copy is
                // current again and may back PEERREADs.
                self.condemned.remove(&(client, fh));
            }
            "regrant" => {
                let client = field(ev.num("client"))? as u32;
                let fh = field(ev.num("fh"))?;
                if !self.server_crashed_once {
                    return Err((
                        "regrant-without-crash",
                        format!("regrant to client {client} for fh {fh} before any server crash"),
                    ));
                }
                self.holders.entry(fh).or_default().insert(client, Kind::Read);
                self.last_grant.insert((client, fh), ev.t_ms);
                self.condemned.remove(&(client, fh));
            }
            "recall_sent" => {
                let client = field(ev.num("client"))? as u32;
                let fh = field(ev.num("fh"))?;
                self.recall_sent_ever.insert((client, fh));
                self.done_credit.entry((client, fh)).or_default().0 += 1;
            }
            "recall_short" | "recall_fail" => {
                let client = field(ev.num("client"))? as u32;
                let fh = field(ev.num("fh"))?;
                self.done_credit.entry((client, fh)).or_default().1 += 1;
            }
            "recall_recv" => {
                let client = field(ev.num("client"))? as u32;
                let fh = field(ev.num("fh"))?;
                if !self.recall_sent_ever.contains(&(client, fh)) {
                    return Err((
                        "recall-recv-unsent",
                        format!("client {client} received a recall for fh {fh} never sent"),
                    ));
                }
                // The recall condemns this client's cached copy until a
                // later grant proves it re-validated.
                self.condemned.insert((client, fh));
            }
            "recall_done" => {
                let client = field(ev.num("client"))? as u32;
                let fh = field(ev.num("fh"))?;
                let ok = field(ev.num("ok"))? != 0;
                let credit = self.done_credit.entry((client, fh)).or_default();
                if ok {
                    if credit.0 == 0 {
                        return Err((
                            "recall-done-unsent",
                            format!(
                                "answered recall_done for client {client} fh {fh} with no \
                                 outstanding recall_sent"
                            ),
                        ));
                    }
                    credit.0 -= 1;
                } else {
                    // An unanswered recall was either never sent (the
                    // breaker short-circuited it, or the send failed:
                    // recall_short/recall_fail) or sent and then timed
                    // out unanswered (recall_sent only).
                    if credit.1 > 0 {
                        credit.1 -= 1;
                    } else if credit.0 > 0 {
                        credit.0 -= 1;
                    } else {
                        return Err((
                            "recall-done-unfailed",
                            format!(
                                "unanswered recall_done for client {client} fh {fh} with no \
                                 prior recall_sent/recall_short/recall_fail"
                            ),
                        ));
                    }
                }
                if let Some(held) = self.holders.get_mut(&fh) {
                    held.remove(&client);
                }
            }
            "lease_revoke" => {
                let client = field(ev.num("client"))? as u32;
                let fh = field(ev.num("fh"))?;
                if self.lease_ms == 0 {
                    return Err((
                        "lease-revoke-unleased",
                        format!("lease_revoke for client {client} fh {fh} but no lease configured"),
                    ));
                }
                // The table revokes only when a full lease elapsed since
                // the holder's last access. The trace's last grant is at
                // or before that access, so this bound is conservative.
                if let Some(&granted) = self.last_grant.get(&(client, fh)) {
                    let elapsed = ev.t_ms.saturating_sub(granted);
                    if elapsed < self.lease_ms {
                        return Err((
                            "lease-revoke-early",
                            format!(
                                "client {client} fh {fh} revoked {elapsed}ms after its last \
                                 grant (< lease {}ms)",
                                self.lease_ms
                            ),
                        ));
                    }
                }
                if let Some(held) = self.holders.get_mut(&fh) {
                    held.remove(&client);
                }
            }
            "degrade" => {
                let client = field(ev.num("client"))? as u32;
                let state = self.client(client);
                if matches!(state.ladder, Some(Ladder::Degraded { .. })) {
                    return Err((
                        "degrade-while-degraded",
                        format!("client {client} degraded twice without a repromote"),
                    ));
                }
                state.ladder = Some(Ladder::Degraded { since_seq: ev.seq, drained: false });
            }
            "degraded_serve" => {
                let client = field(ev.num("client"))? as u32;
                let fh = field(ev.num("fh"))?;
                let state = self.clients.entry(client).or_default();
                if !matches!(state.ladder, Some(Ladder::Degraded { .. })) {
                    return Err((
                        "degraded-serve-healthy",
                        format!("client {client} served a degraded read for fh {fh} while healthy"),
                    ));
                }
                // Bounded staleness: the serve must sit within
                // max_staleness of the client's freshest proof.
                let grant_t = self.last_grant.get(&(client, fh)).copied();
                let freshness = match (state.last_validate_t, grant_t) {
                    (Some(a), Some(b)) => Some(a.max(b)),
                    (a, b) => a.or(b),
                };
                if self.max_staleness_ms > 0 {
                    if let Some(fresh) = freshness {
                        let age = ev.t_ms.saturating_sub(fresh);
                        if age > self.max_staleness_ms + STALENESS_SLACK_MS {
                            return Err((
                                "staleness-bound",
                                format!(
                                    "client {client} served fh {fh} {age}ms after its last \
                                     freshness proof (bound {}ms + {STALENESS_SLACK_MS}ms slack)",
                                    self.max_staleness_ms
                                ),
                            ));
                        }
                    }
                }
            }
            "validate" => {
                let client = field(ev.num("client"))? as u32;
                let ts = field(ev.num("ts"))?;
                let force = field(ev.num("force"))? != 0;
                let state = self.client(client);
                if let Some(prev) = state.last_ts {
                    if ts < prev && !force {
                        return Err((
                            "invalidation-clock-regressed",
                            format!("client {client} GETINV timestamp went {prev} -> {ts}"),
                        ));
                    }
                }
                state.last_ts = Some(ts);
                state.last_validate_t = Some(ev.t_ms);
                if let Some(Ladder::Degraded { since_seq, drained }) = state.ladder {
                    if ev.seq > since_seq && !drained {
                        state.ladder = Some(Ladder::Degraded { since_seq, drained: true });
                    }
                }
            }
            "repromote" => {
                let client = field(ev.num("client"))? as u32;
                let state = self.client(client);
                match state.ladder {
                    Some(Ladder::Degraded { drained: true, .. }) => {
                        state.ladder = Some(Ladder::Healthy);
                    }
                    Some(Ladder::Degraded { drained: false, .. }) => {
                        return Err((
                            "repromote-undrained",
                            format!(
                                "client {client} repromoted without draining GETINV (no \
                                 validate since degrade)"
                            ),
                        ));
                    }
                    _ => {
                        return Err((
                            "repromote-healthy",
                            format!("client {client} repromoted while not degraded"),
                        ));
                    }
                }
            }
            "server_crash" => {
                self.server_crashed_once = true;
                // The table is wiped; every outstanding delegation dies.
                self.holders.clear();
                // GETINV clocks restart from zero after recovery.
                for state in self.clients.values_mut() {
                    state.last_ts = None;
                }
                // Post-crash the trace can no longer prove a copy stale
                // (the condemning writes may have been lost); err
                // conservative and accept.
                self.condemned.clear();
            }
            "server_recover" => {
                if !self.server_crashed_once {
                    return Err((
                        "recover-without-crash",
                        "server_recover with no preceding server_crash".to_string(),
                    ));
                }
            }
            "client_crash" => {
                let client = field(ev.num("client"))? as u32;
                // The crashed client loses its cache, but the resync
                // flag behind the ladder survives (it is repromote that
                // clears it), and the server-side table keeps its
                // entries until recall or lease expiry — so neither the
                // ladder nor the holders map changes here.
                let _ = self.client(client);
            }
            "peer_serve" => {
                let client = field(ev.num("client"))? as u32;
                let fh = field(ev.num("fh"))?;
                // Recorded before the verdict: even a condemned serve
                // structurally backs the requester's peer_fetch, which
                // should not be convicted a second time for it.
                self.served_ever.insert((client, fh));
                if self.condemned.contains(&(client, fh)) {
                    return Err((
                        "peer-serve-condemned",
                        format!(
                            "client {client} served fh {fh} to a peer after a recall condemned \
                             its copy and before any re-validating grant"
                        ),
                    ));
                }
            }
            "peer_fetch" => {
                let client = field(ev.num("client"))? as u32;
                let peer = field(ev.num("peer"))? as u32;
                let fh = field(ev.num("fh"))?;
                let ok = field(ev.num("ok"))? != 0;
                if ok && !self.served_ever.contains(&(peer, fh)) {
                    return Err((
                        "peer-fetch-unserved",
                        format!(
                            "client {client} verified a peer transfer of fh {fh} from peer \
                             {peer}, which never served that handle"
                        ),
                    ));
                }
            }
            "peer_fallback" => {
                // An origin fallback is always a legal move; the event
                // only needs its fields present.
                let _ = field(ev.num("client"))?;
                let _ = field(ev.num("fh"))?;
            }
            "integrity_fault" => {
                let client = field(ev.num("client"))? as u32;
                let fh = field(ev.num("fh"))?;
                let served = field(ev.num("served"))? != 0;
                let _dirty = field(ev.num("dirty"))?;
                self.quarantined_ever.insert((client, fh));
                // The integrity cardinal sin: the store detected the
                // corruption and handed the bytes to the reader anyway.
                // A conforming store quarantines instead (served=0).
                if served {
                    return Err((
                        "corrupt-served",
                        format!(
                            "client {client} served fh {fh} after its checksum failed \
                             verification"
                        ),
                    ));
                }
            }
            "scrub_repair" => {
                let client = field(ev.num("client"))? as u32;
                let fh = field(ev.num("fh"))?;
                if !self.quarantined_ever.contains(&(client, fh)) {
                    return Err((
                        "scrub-repair-unfaulted",
                        format!(
                            "client {client} scrub-repaired fh {fh} with no prior quarantine \
                             on that handle"
                        ),
                    ));
                }
            }
            "meta" => {
                return Err(("duplicate-meta", "second meta record".to_string()));
            }
            other => {
                return Err(("unknown-event", format!("unknown discriminator {other:?}")));
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

/// Replays one JSONL trace string against the conformance machine.
pub fn replay_str(path: &Path, text: &str) -> ReplayReport {
    let mut rejections = Vec::new();
    let mut events = 0usize;
    let mut checker: Option<Checker> = None;
    let mut prev_seq: Option<u64> = None;
    let mut prev_t: u64 = 0;

    for (idx, line) in text.lines().enumerate() {
        let lineno = idx + 1;
        if line.trim().is_empty() {
            continue;
        }
        let ev = match parse_line(line) {
            Ok(ev) => ev,
            Err(detail) => {
                rejections.push(Rejection {
                    line: lineno,
                    seq: 0,
                    t_ms: 0,
                    rule: "malformed-line",
                    detail,
                });
                continue;
            }
        };
        events += 1;
        let reject = |rule: &'static str, detail: String| Rejection {
            line: lineno,
            seq: ev.seq,
            t_ms: ev.t_ms,
            rule,
            detail,
        };
        if let Some(p) = prev_seq {
            if ev.seq <= p {
                rejections.push(reject("seq-not-increasing", format!("seq {} after {p}", ev.seq)));
            }
        }
        if ev.t_ms < prev_t {
            rejections.push(reject("time-regressed", format!("t_ms {} after {prev_t}", ev.t_ms)));
        }
        prev_seq = Some(ev.seq);
        prev_t = prev_t.max(ev.t_ms);

        match (&mut checker, ev.ev.as_str()) {
            (None, "meta") => match (ev.num("lease_ms"), ev.num("max_staleness_ms")) {
                (Ok(lease), Ok(stale)) => checker = Some(Checker::new(lease, stale)),
                (a, b) => {
                    let detail = a.err().or(b.err()).unwrap_or_default();
                    rejections.push(reject("malformed-event", detail));
                }
            },
            (None, _) => {
                rejections.push(reject(
                    "missing-meta",
                    format!("first record is {:?}, expected meta", ev.ev),
                ));
                // Synthesize a permissive config so later structural
                // checks still run instead of cascading.
                checker = Some(Checker::new(0, 0));
            }
            (Some(c), _) => {
                if let Err((rule, detail)) = c.step(&ev) {
                    rejections.push(reject(rule, detail));
                }
            }
        }
    }
    ReplayReport { path: path.to_path_buf(), events, rejections }
}

/// Replays one trace file from disk.
pub fn replay_file(path: &Path) -> std::io::Result<ReplayReport> {
    let text = std::fs::read_to_string(path)?;
    Ok(replay_str(path, &text))
}

/// Replays a file, or every `*.jsonl` under a directory (sorted for
/// deterministic output).
pub fn replay_path(path: &Path) -> std::io::Result<Vec<ReplayReport>> {
    if path.is_dir() {
        let mut files: Vec<PathBuf> = std::fs::read_dir(path)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|x| x == "jsonl"))
            .collect();
        files.sort();
        files.iter().map(|f| replay_file(f)).collect()
    } else {
        Ok(vec![replay_file(path)?])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const META: &str = r#"{"seq":0,"t_ms":0,"ev":"meta","lease_ms":30000,"degrade_after_ms":2000,"max_staleness_ms":30000,"clients":2}"#;

    fn replay(lines: &[&str]) -> ReplayReport {
        let text = lines.join("\n");
        replay_str(Path::new("<test>"), &text)
    }

    #[test]
    fn accepts_grant_recall_cycle() {
        let r = replay(&[
            META,
            r#"{"seq":1,"t_ms":100,"ev":"grant","client":1,"fh":7,"kind":"write"}"#,
            r#"{"seq":2,"t_ms":200,"ev":"recall_sent","client":1,"fh":7,"kind":"write"}"#,
            r#"{"seq":3,"t_ms":210,"ev":"recall_recv","client":1,"fh":7,"kind":"write"}"#,
            r#"{"seq":4,"t_ms":250,"ev":"recall_done","client":1,"fh":7,"ok":1,"pending":0}"#,
            r#"{"seq":5,"t_ms":260,"ev":"grant","client":2,"fh":7,"kind":"write"}"#,
        ]);
        assert!(r.accepted(), "{:?}", r.rejections);
        assert_eq!(r.events, 6);
    }

    #[test]
    fn rejects_conflicting_write_grants() {
        let r = replay(&[
            META,
            r#"{"seq":1,"t_ms":100,"ev":"grant","client":1,"fh":7,"kind":"write"}"#,
            r#"{"seq":2,"t_ms":150,"ev":"grant","client":2,"fh":7,"kind":"write"}"#,
        ]);
        assert_eq!(r.rejections.len(), 1);
        assert_eq!(r.rejections[0].rule, "grant-exclusivity");
    }

    #[test]
    fn rejects_early_lease_revoke() {
        let r = replay(&[
            META,
            r#"{"seq":1,"t_ms":1000,"ev":"grant","client":1,"fh":3,"kind":"write"}"#,
            r#"{"seq":2,"t_ms":5000,"ev":"lease_revoke","client":1,"fh":3}"#,
        ]);
        assert_eq!(r.rejections.len(), 1);
        assert_eq!(r.rejections[0].rule, "lease-revoke-early");
    }

    #[test]
    fn accepts_expired_lease_revoke() {
        let r = replay(&[
            META,
            r#"{"seq":1,"t_ms":1000,"ev":"grant","client":1,"fh":3,"kind":"write"}"#,
            r#"{"seq":2,"t_ms":40000,"ev":"lease_revoke","client":1,"fh":3}"#,
        ]);
        assert!(r.accepted(), "{:?}", r.rejections);
    }

    #[test]
    fn rejects_repromote_without_drain() {
        let r = replay(&[
            META,
            r#"{"seq":1,"t_ms":100,"ev":"degrade","client":1}"#,
            r#"{"seq":2,"t_ms":200,"ev":"repromote","client":1,"discarded":0}"#,
        ]);
        assert_eq!(r.rejections.len(), 1);
        assert_eq!(r.rejections[0].rule, "repromote-undrained");
    }

    #[test]
    fn accepts_drained_repromote() {
        let r = replay(&[
            META,
            r#"{"seq":1,"t_ms":100,"ev":"degrade","client":1}"#,
            r#"{"seq":2,"t_ms":200,"ev":"validate","client":1,"force":1,"n":0,"ts":0}"#,
            r#"{"seq":3,"t_ms":250,"ev":"repromote","client":1,"discarded":0}"#,
        ]);
        assert!(r.accepted(), "{:?}", r.rejections);
    }

    #[test]
    fn rejects_degraded_serve_while_healthy() {
        let r = replay(&[META, r#"{"seq":1,"t_ms":100,"ev":"degraded_serve","client":1,"fh":2}"#]);
        assert_eq!(r.rejections.len(), 1);
        assert_eq!(r.rejections[0].rule, "degraded-serve-healthy");
    }

    #[test]
    fn rejects_stale_degraded_serve() {
        let r = replay(&[
            META,
            r#"{"seq":1,"t_ms":1000,"ev":"grant","client":1,"fh":2,"kind":"read"}"#,
            r#"{"seq":2,"t_ms":2000,"ev":"degrade","client":1}"#,
            r#"{"seq":3,"t_ms":90000,"ev":"degraded_serve","client":1,"fh":2}"#,
        ]);
        assert_eq!(r.rejections.len(), 1);
        assert_eq!(r.rejections[0].rule, "staleness-bound");
    }

    #[test]
    fn rejects_recall_done_without_sent() {
        let r = replay(&[
            META,
            r#"{"seq":1,"t_ms":100,"ev":"recall_done","client":1,"fh":7,"ok":1,"pending":0}"#,
        ]);
        assert_eq!(r.rejections.len(), 1);
        assert_eq!(r.rejections[0].rule, "recall-done-unsent");
    }

    #[test]
    fn unanswered_recall_done_needs_failure_evidence() {
        let bad = replay(&[
            META,
            r#"{"seq":1,"t_ms":100,"ev":"recall_done","client":1,"fh":7,"ok":0,"pending":0}"#,
        ]);
        assert_eq!(bad.rejections[0].rule, "recall-done-unfailed");
        let good = replay(&[
            META,
            r#"{"seq":1,"t_ms":100,"ev":"recall_fail","client":1,"fh":7}"#,
            r#"{"seq":2,"t_ms":150,"ev":"recall_done","client":1,"fh":7,"ok":0,"pending":0}"#,
        ]);
        assert!(good.accepted(), "{:?}", good.rejections);
    }

    #[test]
    fn rejects_clock_regression_and_missing_meta() {
        let r = replay(&[
            META,
            r#"{"seq":1,"t_ms":100,"ev":"validate","client":1,"force":0,"n":1,"ts":5}"#,
            r#"{"seq":2,"t_ms":200,"ev":"validate","client":1,"force":0,"n":0,"ts":3}"#,
        ]);
        assert_eq!(r.rejections[0].rule, "invalidation-clock-regressed");

        let r = replay(&[r#"{"seq":1,"t_ms":100,"ev":"degrade","client":1}"#]);
        assert_eq!(r.rejections[0].rule, "missing-meta");
    }

    #[test]
    fn server_crash_resets_clock_and_holders() {
        let r = replay(&[
            META,
            r#"{"seq":1,"t_ms":100,"ev":"grant","client":1,"fh":7,"kind":"write"}"#,
            r#"{"seq":2,"t_ms":200,"ev":"validate","client":1,"force":0,"n":1,"ts":9}"#,
            r#"{"seq":3,"t_ms":300,"ev":"server_crash"}"#,
            r#"{"seq":4,"t_ms":400,"ev":"server_recover","answered":1}"#,
            r#"{"seq":5,"t_ms":500,"ev":"regrant","client":1,"fh":7}"#,
            r#"{"seq":6,"t_ms":600,"ev":"validate","client":1,"force":0,"n":0,"ts":0}"#,
            r#"{"seq":7,"t_ms":700,"ev":"grant","client":2,"fh":9,"kind":"write"}"#,
        ]);
        assert!(r.accepted(), "{:?}", r.rejections);
    }

    #[test]
    fn accepts_revalidated_peer_serve() {
        let r = replay(&[
            META,
            r#"{"seq":1,"t_ms":100,"ev":"grant","client":1,"fh":7,"kind":"read"}"#,
            r#"{"seq":2,"t_ms":200,"ev":"peer_serve","client":1,"fh":7,"bytes":32768}"#,
            r#"{"seq":3,"t_ms":300,"ev":"recall_sent","client":1,"fh":7,"kind":"read"}"#,
            r#"{"seq":4,"t_ms":310,"ev":"recall_recv","client":1,"fh":7,"kind":"read"}"#,
            r#"{"seq":5,"t_ms":350,"ev":"recall_done","client":1,"fh":7,"ok":1,"pending":0}"#,
            r#"{"seq":6,"t_ms":400,"ev":"grant","client":1,"fh":7,"kind":"read"}"#,
            r#"{"seq":7,"t_ms":500,"ev":"peer_serve","client":1,"fh":7,"bytes":32768}"#,
            r#"{"seq":8,"t_ms":510,"ev":"peer_fetch","client":2,"peer":1,"fh":7,"ok":1}"#,
        ]);
        assert!(r.accepted(), "{:?}", r.rejections);
    }

    #[test]
    fn rejects_condemned_peer_serve() {
        let r = replay(&[
            META,
            r#"{"seq":1,"t_ms":100,"ev":"grant","client":1,"fh":7,"kind":"read"}"#,
            r#"{"seq":2,"t_ms":300,"ev":"recall_sent","client":1,"fh":7,"kind":"read"}"#,
            r#"{"seq":3,"t_ms":310,"ev":"recall_recv","client":1,"fh":7,"kind":"read"}"#,
            r#"{"seq":4,"t_ms":350,"ev":"recall_done","client":1,"fh":7,"ok":1,"pending":0}"#,
            r#"{"seq":5,"t_ms":500,"ev":"peer_serve","client":1,"fh":7,"bytes":32768}"#,
        ]);
        assert_eq!(r.rejections.len(), 1);
        assert_eq!(r.rejections[0].rule, "peer-serve-condemned");
    }

    #[test]
    fn rejects_verified_fetch_without_serve() {
        let r = replay(&[
            META,
            r#"{"seq":1,"t_ms":100,"ev":"peer_fetch","client":2,"peer":1,"fh":7,"ok":1}"#,
        ]);
        assert_eq!(r.rejections.len(), 1);
        assert_eq!(r.rejections[0].rule, "peer-fetch-unserved");
        // An unverified fetch (miss or garbled) needs no serve behind it.
        let r = replay(&[
            META,
            r#"{"seq":1,"t_ms":100,"ev":"peer_fetch","client":2,"peer":1,"fh":7,"ok":0}"#,
            r#"{"seq":2,"t_ms":150,"ev":"peer_fallback","client":2,"fh":7}"#,
        ]);
        assert!(r.accepted(), "{:?}", r.rejections);
    }

    #[test]
    fn convicts_served_corruption_and_accepts_quarantine() {
        // Quarantine → scrub repair is the conforming path.
        let good = replay(&[
            META,
            r#"{"seq":1,"t_ms":100,"ev":"integrity_fault","client":1,"fh":7,"dirty":0,"served":0}"#,
            r#"{"seq":2,"t_ms":200,"ev":"scrub_repair","client":1,"fh":7}"#,
        ]);
        assert!(good.accepted(), "{:?}", good.rejections);
        // Detect-but-serve (the --break-scrub knob) is the violation.
        let bad = replay(&[
            META,
            r#"{"seq":1,"t_ms":100,"ev":"integrity_fault","client":1,"fh":7,"dirty":0,"served":1}"#,
        ]);
        assert_eq!(bad.rejections.len(), 1);
        assert_eq!(bad.rejections[0].rule, "corrupt-served");
        // A repair with no quarantine behind it is structural nonsense.
        let orphan =
            replay(&[META, r#"{"seq":1,"t_ms":100,"ev":"scrub_repair","client":1,"fh":7}"#]);
        assert_eq!(orphan.rejections[0].rule, "scrub-repair-unfaulted");
    }

    #[test]
    fn rejects_seq_regression_and_malformed_lines() {
        let r = replay(&[
            META,
            r#"{"seq":5,"t_ms":100,"ev":"degrade","client":1}"#,
            r#"{"seq":4,"t_ms":150,"ev":"validate","client":1,"force":0,"n":0,"ts":0}"#,
            "not json at all",
        ]);
        let rules: Vec<_> = r.rejections.iter().map(|x| x.rule).collect();
        assert!(rules.contains(&"seq-not-increasing"), "{rules:?}");
        assert!(rules.contains(&"malformed-line"), "{rules:?}");
    }
}
