//! Chaos soak: runs the seeded fault-injection scenarios over a seed
//! matrix, replaying every seed twice to prove determinism, shrinking
//! any violation to a minimal reproducer, and writing
//! `results/chaos_violations.json` for CI artifact upload.
//!
//! Run: `cargo run --release -p gvfs-bench --bin chaos_soak --
//!       [--seeds N] [--start S] [--model all|passthrough|polling|delegation]
//!       [--break-recall] [--break-peerread] [--break-scrub]
//!       [--trace-dir DIR]`
//!
//! `--trace-dir DIR` writes each run's protocol-event trace to
//! `DIR/<model>-seed<N>.jsonl` for `gvfs-analysis -- replay` conformance
//! checking; the traces also join the determinism comparison.
//!
//! `--break-recall` is the harness self-test: it re-runs the matrix with
//! delegation recalls suppressed and **fails unless** the oracles catch
//! the breakage and the shrinker produces a reproducer — a chaos harness
//! that cannot see a broken protocol is worse than none.
//! `--break-peerread` is the same idea for the peer mesh: it re-runs the
//! peer-partition scenario with de-advertisement suppressed and the
//! serving peer answering from raw (condemned) store bytes, and fails
//! unless the oracle convicts the stale read on at least one seed.
//! `--break-scrub` is the same idea for store integrity: it re-runs the
//! disk-corruption scenario with verify-on-read disabled, so the store
//! serves rotted bytes, and fails unless the oracle convicts at least
//! 7 in 8 seeds (the rot is planted deterministically, so conviction
//! should be near-universal).
//!
//! Exit codes: 0 clean, 1 violations or a determinism break, 2 a
//! `--break-*` self-test found the harness toothless.

use gvfs_bench::save_json;
use gvfs_integration::chaos::{
    format_reproducer, generate_events, run_crash_restart, run_disk_corruption, run_partition_heal,
    run_peer_partition, run_scenario, shrink_failure, ModelKind, ScenarioConfig,
};
use serde_json::json;

struct Args {
    seeds: u64,
    start: u64,
    models: Vec<ModelKind>,
    break_recall: bool,
    break_peerread: bool,
    break_scrub: bool,
    trace_dir: Option<std::path::PathBuf>,
}

fn parse_args() -> Args {
    let mut out = Args {
        seeds: 8,
        start: 1,
        models: ModelKind::ALL.to_vec(),
        break_recall: false,
        break_peerread: false,
        break_scrub: false,
        trace_dir: None,
    };
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--seeds" => {
                let v = argv.next().expect("--seeds needs a count");
                out.seeds = v.parse().expect("--seeds takes a number");
            }
            "--start" => {
                let v = argv.next().expect("--start needs a seed");
                out.start = v.parse().expect("--start takes a number");
            }
            "--model" => {
                let v = argv.next().expect("--model needs a name");
                out.models =
                    match v.as_str() {
                        "all" => ModelKind::ALL.to_vec(),
                        name => vec![ModelKind::parse(name)
                            .unwrap_or_else(|| panic!("unknown model {name:?}"))],
                    };
            }
            "--break-recall" => out.break_recall = true,
            "--break-peerread" => out.break_peerread = true,
            "--break-scrub" => out.break_scrub = true,
            "--trace-dir" => {
                let v = argv.next().expect("--trace-dir needs a directory");
                out.trace_dir = Some(std::path::PathBuf::from(v));
            }
            other => panic!("unknown argument {other:?}"),
        }
    }
    out
}

fn write_trace(dir: &std::path::Path, name: &str, seed: u64, trace: &str) {
    if let Err(e) = std::fs::create_dir_all(dir) {
        panic!("cannot create trace dir {}: {e}", dir.display());
    }
    let path = dir.join(format!("{name}-seed{seed}.jsonl"));
    if let Err(e) = std::fs::write(&path, trace) {
        panic!("cannot write trace {}: {e}", path.display());
    }
}

fn main() {
    let args = parse_args();
    let mut violations = Vec::new();
    let mut determinism_breaks = 0u64;
    let mut runs = 0u64;

    for &model in &args.models {
        for seed in args.start..args.start + args.seeds {
            let cfg = ScenarioConfig::new(seed, model);
            let a = run_scenario(&cfg);
            let b = run_scenario(&cfg);
            runs += 2;
            if let Some(dir) = &args.trace_dir {
                write_trace(dir, model.name(), seed, &a.protocol_trace);
            }
            if a.trace_hash != b.trace_hash
                || a.violations != b.violations
                || a.protocol_trace != b.protocol_trace
            {
                determinism_breaks += 1;
                println!(
                    "DETERMINISM BREAK: seed={seed} model={} hashes {:#x} vs {:#x}",
                    model.name(),
                    a.trace_hash,
                    b.trace_hash
                );
                continue;
            }
            if a.violations.is_empty() {
                println!("seed={seed} model={} ok (trace {:#x})", model.name(), a.trace_hash);
                continue;
            }
            println!(
                "seed={seed} model={}: {} violation(s), shrinking...",
                model.name(),
                a.violations.len()
            );
            let events = generate_events(seed, cfg.clients);
            let shrunk = shrink_failure(&cfg, &events);
            let reproducer = shrunk.as_ref().map(format_reproducer);
            if let Some(repro) = &reproducer {
                println!("{repro}");
            }
            violations.push(json!({
                "seed": seed,
                "model": model.name(),
                "suppress_recalls": false,
                "violations": a.violations.iter().map(|v| v.to_string()).collect::<Vec<_>>(),
                "shrunk_events": shrunk
                    .as_ref()
                    .map(|s| s.events.iter().map(|e| e.to_string()).collect::<Vec<_>>()),
                "reproducer": reproducer,
            }));
        }
    }

    // The scripted partition-heal scenario rides alongside the random
    // matrix whenever delegation is in scope: a 35 s partition must trip
    // the breaker, the ladder must serve bounded-staleness reads, and
    // the heal must re-promote without losing an acknowledged write.
    if args.models.contains(&ModelKind::Delegation) {
        for seed in args.start..args.start + args.seeds {
            let a = run_partition_heal(seed);
            let b = run_partition_heal(seed);
            runs += 2;
            if let Some(dir) = &args.trace_dir {
                write_trace(dir, "partition-heal", seed, &a.protocol_trace);
            }
            if a.trace_hash != b.trace_hash
                || a.history != b.history
                || a.protocol_trace != b.protocol_trace
            {
                determinism_breaks += 1;
                println!(
                    "DETERMINISM BREAK: partition-heal seed={seed} hashes {:#x} vs {:#x}",
                    a.trace_hash, b.trace_hash
                );
                continue;
            }
            if a.violations.is_empty() {
                println!(
                    "seed={seed} partition-heal ok (trips {}, degraded reads {}, trace {:#x})",
                    a.breaker_trips, a.writer_stats.degraded_reads, a.trace_hash
                );
                continue;
            }
            println!("seed={seed} partition-heal: {} violation(s)", a.violations.len());
            violations.push(json!({
                "seed": seed,
                "model": "partition-heal",
                "suppress_recalls": false,
                "violations": a.violations.iter().map(|v| v.to_string()).collect::<Vec<_>>(),
                "shrunk_events": Option::<Vec<String>>::None,
                "reproducer": Option::<String>::None,
            }));
        }
    }

    // The scripted crash-restart scenario also rides along for the
    // delegation model: a mid-write-back machine crash on a persistent
    // block store must recover exactly the synced prefix — the torn WAL
    // tail discarded, the surviving dirty data reconciled, and no reader
    // ever served a torn or never-synced block from disk.
    if args.models.contains(&ModelKind::Delegation) {
        for seed in args.start..args.start + args.seeds {
            let a = run_crash_restart(seed);
            let b = run_crash_restart(seed);
            runs += 2;
            if let Some(dir) = &args.trace_dir {
                write_trace(dir, "crash-restart", seed, &a.protocol_trace);
            }
            if a.trace_hash != b.trace_hash
                || a.history != b.history
                || a.protocol_trace != b.protocol_trace
            {
                determinism_breaks += 1;
                println!(
                    "DETERMINISM BREAK: crash-restart seed={seed} hashes {:#x} vs {:#x}",
                    a.trace_hash, b.trace_hash
                );
                continue;
            }
            if a.violations.is_empty() {
                println!(
                    "seed={seed} crash-restart ok (warm blocks {}, trace {:#x})",
                    a.writer_stats.restart_warm_blocks, a.trace_hash
                );
                continue;
            }
            println!("seed={seed} crash-restart: {} violation(s)", a.violations.len());
            violations.push(json!({
                "seed": seed,
                "model": "crash-restart",
                "suppress_recalls": false,
                "violations": a.violations.iter().map(|v| v.to_string()).collect::<Vec<_>>(),
                "shrunk_events": Option::<Vec<String>>::None,
                "reproducer": Option::<String>::None,
            }));
        }
    }

    // The scripted peer-partition scenario: a serving peer is cut off
    // mid-PEERREAD (the read must complete via origin fallback, never
    // torn or stale), and a later write must condemn every advertised
    // peer copy before the verify-phase mesh reads.
    if args.models.contains(&ModelKind::Delegation) {
        for seed in args.start..args.start + args.seeds {
            let a = run_peer_partition(seed, false);
            let b = run_peer_partition(seed, false);
            runs += 2;
            if let Some(dir) = &args.trace_dir {
                write_trace(dir, "peer-partition", seed, &a.protocol_trace);
            }
            if a.trace_hash != b.trace_hash
                || a.history != b.history
                || a.protocol_trace != b.protocol_trace
            {
                determinism_breaks += 1;
                println!(
                    "DETERMINISM BREAK: peer-partition seed={seed} hashes {:#x} vs {:#x}",
                    a.trace_hash, b.trace_hash
                );
                continue;
            }
            if a.violations.is_empty() {
                println!(
                    "seed={seed} peer-partition ok (peer hits {}, fallbacks {}, trace {:#x})",
                    a.reader_stats.peer_hits, a.reader_stats.peer_fallbacks, a.trace_hash
                );
                continue;
            }
            println!("seed={seed} peer-partition: {} violation(s)", a.violations.len());
            violations.push(json!({
                "seed": seed,
                "model": "peer-partition",
                "suppress_recalls": false,
                "violations": a.violations.iter().map(|v| v.to_string()).collect::<Vec<_>>(),
                "shrunk_events": Option::<Vec<String>>::None,
                "reproducer": Option::<String>::None,
            }));
        }
    }

    // The scripted disk-corruption scenario: silent media rot on a
    // client's persistent store must be quarantined by verify-on-read
    // and repaired by the background scrubber — no reader may ever
    // observe a checksum-failed block.
    if args.models.contains(&ModelKind::Delegation) {
        for seed in args.start..args.start + args.seeds {
            let a = run_disk_corruption(seed, false);
            let b = run_disk_corruption(seed, false);
            runs += 2;
            if let Some(dir) = &args.trace_dir {
                write_trace(dir, "disk-corruption", seed, &a.protocol_trace);
            }
            if a.trace_hash != b.trace_hash
                || a.history != b.history
                || a.protocol_trace != b.protocol_trace
            {
                determinism_breaks += 1;
                println!(
                    "DETERMINISM BREAK: disk-corruption seed={seed} hashes {:#x} vs {:#x}",
                    a.trace_hash, b.trace_hash
                );
                continue;
            }
            if a.violations.is_empty() {
                println!(
                    "seed={seed} disk-corruption ok (rotted {}, quarantined {}, scrub repairs \
                     {}, trace {:#x})",
                    a.corrupted_paths,
                    a.reader_stats.quarantined_blocks,
                    a.reader_stats.scrub_repairs,
                    a.trace_hash
                );
                continue;
            }
            println!("seed={seed} disk-corruption: {} violation(s)", a.violations.len());
            violations.push(json!({
                "seed": seed,
                "model": "disk-corruption",
                "suppress_recalls": false,
                "quarantine_report": {
                    "corrupted_paths": a.corrupted_paths,
                    "integrity_failures": a.reader_stats.integrity_failures,
                    "quarantined_blocks": a.reader_stats.quarantined_blocks,
                    "refetch_repairs": a.reader_stats.refetch_repairs,
                    "scrub_repairs": a.reader_stats.scrub_repairs,
                    "integrity_dirty_loss": a.reader_stats.integrity_dirty_loss,
                },
                "violations": a.violations.iter().map(|v| v.to_string()).collect::<Vec<_>>(),
                "shrunk_events": Option::<Vec<String>>::None,
                "reproducer": Option::<String>::None,
            }));
        }
    }

    // Self-test: with recalls suppressed the oracles MUST fire on at
    // least one seed, and the shrinker must produce a reproducer.
    let mut selftest_failed = false;
    if args.break_recall {
        let mut caught = 0u64;
        let mut shrunk_ok = false;
        for seed in args.start..args.start + args.seeds {
            let mut cfg = ScenarioConfig::new(seed, ModelKind::Delegation);
            cfg.suppress_recalls = true;
            let report = run_scenario(&cfg);
            runs += 1;
            if report.violations.is_empty() {
                continue;
            }
            caught += 1;
            if !shrunk_ok {
                let events = generate_events(seed, cfg.clients);
                if let Some(s) = shrink_failure(&cfg, &events) {
                    shrunk_ok = true;
                    println!(
                        "self-test: suppression caught at seed={seed}, shrunk to {} event(s)",
                        s.events.len()
                    );
                    println!("{}", format_reproducer(&s));
                }
            }
        }
        if caught == 0 || !shrunk_ok {
            selftest_failed = true;
            println!(
                "SELF-TEST FAILED: recall suppression caught on {caught}/{} seeds, \
                 shrinker ok: {shrunk_ok} — the harness has lost its teeth",
                args.seeds
            );
        } else {
            println!("self-test passed: suppression caught on {caught}/{} seeds", args.seeds);
        }
    }

    // Self-test: with de-advertisement suppressed and the serving peer
    // answering from condemned store bytes, the peer-partition oracle
    // MUST convict the stale read on at least one seed.
    if args.break_peerread {
        let mut caught = 0u64;
        for seed in args.start..args.start + args.seeds {
            let report = run_peer_partition(seed, true);
            runs += 1;
            if report.violations.is_empty() {
                continue;
            }
            caught += 1;
            if caught == 1 {
                println!(
                    "self-test: broken peer convicted at seed={seed}: {}",
                    report.violations[0]
                );
            }
        }
        if caught == 0 {
            selftest_failed = true;
            println!(
                "SELF-TEST FAILED: a peer serving condemned blocks went unconvicted on all \
                 {} seeds — the peer oracle has lost its teeth",
                args.seeds
            );
        } else {
            println!("self-test passed: broken peer convicted on {caught}/{} seeds", args.seeds);
        }
    }

    // Self-test: with verify-on-read disabled the store serves rotted
    // bytes, and the disk-corruption oracle MUST convict nearly every
    // seed — the rot is planted deterministically, so anything short of
    // 7 in 8 means the integrity machinery has a blind spot.
    let mut break_scrub_caught = 0u64;
    if args.break_scrub {
        for seed in args.start..args.start + args.seeds {
            let report = run_disk_corruption(seed, true);
            runs += 1;
            if report.violations.is_empty() {
                println!("self-test: seed={seed} served rot UNCONVICTED");
                continue;
            }
            break_scrub_caught += 1;
            if break_scrub_caught == 1 {
                println!(
                    "self-test: served rot convicted at seed={seed}: {}",
                    report.violations[0]
                );
            }
        }
        if break_scrub_caught * 8 < args.seeds * 7 {
            selftest_failed = true;
            println!(
                "SELF-TEST FAILED: a store serving rotted bytes was convicted on only \
                 {break_scrub_caught}/{} seeds (need 7 in 8) — the integrity oracle has lost \
                 its teeth",
                args.seeds
            );
        } else {
            println!(
                "self-test passed: served rot convicted on {break_scrub_caught}/{} seeds",
                args.seeds
            );
        }
    }

    save_json(
        "chaos_violations.json",
        &json!({
            "runs": runs,
            "seed_start": args.start,
            "seeds": args.seeds,
            "models": args.models.iter().map(|m| m.name()).collect::<Vec<_>>(),
            "determinism_breaks": determinism_breaks,
            "break_recall_selftest": if args.break_recall {
                Some(!selftest_failed)
            } else {
                None
            },
            "break_peerread_selftest": if args.break_peerread {
                Some(!selftest_failed)
            } else {
                None
            },
            "break_scrub_selftest": if args.break_scrub {
                Some(break_scrub_caught * 8 >= args.seeds * 7)
            } else {
                None
            },
            "violations": violations.clone(),
        }),
    );

    if selftest_failed {
        std::process::exit(2);
    }
    if determinism_breaks > 0 || !violations.is_empty() {
        std::process::exit(1);
    }
    println!("chaos soak clean: {runs} runs, no violations, no determinism breaks");
}
