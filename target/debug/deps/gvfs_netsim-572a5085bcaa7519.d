/root/repo/target/debug/deps/gvfs_netsim-572a5085bcaa7519.d: /root/repo/clippy.toml crates/netsim/src/lib.rs crates/netsim/src/link.rs crates/netsim/src/transport.rs crates/netsim/src/sched.rs crates/netsim/src/time.rs Cargo.toml

/root/repo/target/debug/deps/libgvfs_netsim-572a5085bcaa7519.rmeta: /root/repo/clippy.toml crates/netsim/src/lib.rs crates/netsim/src/link.rs crates/netsim/src/transport.rs crates/netsim/src/sched.rs crates/netsim/src/time.rs Cargo.toml

/root/repo/clippy.toml:
crates/netsim/src/lib.rs:
crates/netsim/src/link.rs:
crates/netsim/src/transport.rs:
crates/netsim/src/sched.rs:
crates/netsim/src/time.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
