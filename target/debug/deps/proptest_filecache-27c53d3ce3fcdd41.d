/root/repo/target/debug/deps/proptest_filecache-27c53d3ce3fcdd41.d: crates/core/tests/proptest_filecache.rs

/root/repo/target/debug/deps/proptest_filecache-27c53d3ce3fcdd41: crates/core/tests/proptest_filecache.rs

crates/core/tests/proptest_filecache.rs:
