//! The chaos scenario driver: spins up a full simulated session, runs a
//! seeded multi-client workload while a controller actor executes the
//! crash events of a fault plan, and hands the recorded history to the
//! per-model oracles.
//!
//! A run is a pure function of ([`ScenarioConfig`], fault-event list):
//! all randomness comes from RNGs derived from the scenario seed, all
//! time is virtual, and the scheduler serializes every actor — the
//! returned [`ChaosReport::trace_hash`] is therefore bit-identical
//! across repeated runs of the same scenario, which CI checks on every
//! seed.

use crate::chaos::history::{
    encode_tag, make_tag, trace_hash, Event, History, Observation, FILE_LEN,
};
use crate::chaos::oracle::{self, Violation};
use crate::chaos::plan::{compile_fault_plans, generate_events, FaultEvent};
use gvfs_client::{MountOptions, NfsClient};
use gvfs_core::delegation::DelegationKind;
use gvfs_core::session::{Session, SessionConfig};
use gvfs_core::{ConsistencyModel, DelegationConfig};
use gvfs_netsim::{Sim, SimTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Polling period used by chaos polling scenarios.
pub const POLL_PERIOD: Duration = Duration::from_secs(5);
/// Poll back-off cap used by chaos polling scenarios.
pub const POLL_BACKOFF_MAX: Duration = Duration::from_secs(30);
/// Delegation renewal window used by chaos delegation scenarios.
pub const DELEG_RENEWAL: Duration = Duration::from_secs(20);
/// Delegation lease used by chaos delegation scenarios: a partitioned
/// holder blocks a conflicting writer for at most this long before the
/// server revokes it without a recall round trip.
pub const DELEG_LEASE: Duration = Duration::from_secs(30);
/// Bounded-staleness limit the degradation ladder enforces while a
/// chaos client's WAN breaker is open. The oracle's degraded-mode rule
/// is calibrated against this value.
pub const MAX_STALENESS: Duration = Duration::from_secs(30);
/// How long a breaker must stay open before chaos clients degrade.
pub const DEGRADE_AFTER: Duration = Duration::from_secs(2);

/// Which consistency model a scenario exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelKind {
    /// Every RPC forwarded, no proxy caching.
    Passthrough,
    /// Invalidation polling, write-through.
    Polling,
    /// Delegation callbacks, write-back.
    Delegation,
}

impl ModelKind {
    /// All three models, in matrix order.
    pub const ALL: [ModelKind; 3] =
        [ModelKind::Passthrough, ModelKind::Polling, ModelKind::Delegation];

    /// Stable name for reports and CLI flags.
    pub fn name(self) -> &'static str {
        match self {
            ModelKind::Passthrough => "passthrough",
            ModelKind::Polling => "polling",
            ModelKind::Delegation => "delegation",
        }
    }

    /// Parses [`ModelKind::name`] back.
    pub fn parse(s: &str) -> Option<ModelKind> {
        ModelKind::ALL.into_iter().find(|m| m.name() == s)
    }

    /// The session configuration a chaos run of this model uses.
    ///
    /// Polling runs write-through: under write-back the polling model
    /// only flushes at shutdown, which would make mid-run staleness
    /// unbounded by design rather than by fault.
    pub fn session_config(self) -> SessionConfig {
        match self {
            ModelKind::Passthrough => SessionConfig {
                model: ConsistencyModel::Passthrough,
                write_back: false,
                ..SessionConfig::default()
            },
            ModelKind::Polling => SessionConfig {
                model: ConsistencyModel::InvalidationPolling {
                    period: POLL_PERIOD,
                    backoff_max: Some(POLL_BACKOFF_MAX),
                },
                write_back: false,
                ..SessionConfig::default()
            },
            ModelKind::Delegation => SessionConfig {
                model: ConsistencyModel::DelegationCallback(DelegationConfig {
                    expiration: Duration::from_secs(90),
                    renewal: DELEG_RENEWAL,
                    lease: DELEG_LEASE,
                    ..DelegationConfig::default()
                }),
                write_back: true,
                degrade_after: DEGRADE_AFTER,
                max_staleness: Some(MAX_STALENESS),
                ..SessionConfig::default()
            },
        }
    }

    /// Undisturbed staleness bound the freshness oracle grants this
    /// model (fault windows extend it; see the oracle).
    pub fn staleness_base(self) -> Duration {
        match self {
            // One forwarded round trip plus scheduling slack.
            ModelKind::Passthrough => Duration::from_secs(8),
            // A full polling window, one backed-off window, and slack.
            ModelKind::Polling => POLL_PERIOD + POLL_BACKOFF_MAX + Duration::from_secs(5),
            // Recalls run before the conflicting write is acknowledged,
            // so an undisturbed run has near-zero staleness; the bound
            // only covers recall round trips and scheduling slack. It is
            // deliberately below the 20 s renewal window: a holder that
            // was *silently* revoked (which only a fault window or the
            // suppression knob can cause) serves stale data until its
            // renewal bypass, and the oracle must catch that unless a
            // fault window excuses it.
            ModelKind::Delegation => Duration::from_secs(12),
        }
    }

    /// Whether the workload restricts each file to one writing client.
    /// Without write delegations there is no cross-client write
    /// serialization, so the oracles could not order concurrent writers.
    pub fn single_writer_per_file(self) -> bool {
        !matches!(self, ModelKind::Delegation)
    }
}

/// Everything that parameterizes one chaos run.
#[derive(Debug, Clone, Copy)]
pub struct ScenarioConfig {
    /// Master seed: expands into the fault plan and every workload RNG.
    pub seed: u64,
    /// The consistency model under test.
    pub model: ModelKind,
    /// Client machines.
    pub clients: usize,
    /// Shared files (`/chaos-{i}`).
    pub files: usize,
    /// Operations each client performs.
    pub ops_per_client: usize,
    /// Breakage knob for the harness self-test: delegation recalls are
    /// silently swallowed, so holders are revoked without being told.
    pub suppress_recalls: bool,
}

impl ScenarioConfig {
    /// The default chaos scenario for `seed` and `model`.
    pub fn new(seed: u64, model: ModelKind) -> Self {
        ScenarioConfig {
            seed,
            model,
            clients: 3,
            files: 3,
            ops_per_client: 25,
            suppress_recalls: false,
        }
    }
}

/// The outcome of one chaos run.
#[derive(Debug)]
pub struct ChaosReport {
    /// The scenario seed.
    pub seed: u64,
    /// The model exercised.
    pub model: ModelKind,
    /// The fault-event list the run executed.
    pub events: Vec<FaultEvent>,
    /// The full recorded history.
    pub history: Vec<Event>,
    /// Final content of each chaos file, read out of band.
    pub final_tags: Vec<Observation>,
    /// Deterministic fingerprint of (history, final state).
    pub trace_hash: u64,
    /// Everything the oracles rejected; empty means the run is clean.
    pub violations: Vec<Violation>,
    /// The protocol-event trace (JSONL; see `gvfs_core::trace`), fed to
    /// `gvfs-analysis -- replay` for spec-conformance checking.
    pub protocol_trace: String,
}

fn worker_seed(seed: u64, client: usize) -> u64 {
    // Offset past the per-direction link seeds derived from the same
    // multiplier in `compile_fault_plans`.
    seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(0x1_0000 + client as u64)
}

fn sleep_until(t: SimTime) {
    let wait = t.saturating_since(gvfs_netsim::now());
    if !wait.is_zero() {
        gvfs_netsim::sleep(wait);
    }
}

/// Expands the seed into its fault-event list and runs the scenario.
pub fn run_scenario(cfg: &ScenarioConfig) -> ChaosReport {
    let events = generate_events(cfg.seed, cfg.clients);
    run_with_events(cfg, &events)
}

/// Runs the scenario under an explicit fault-event list (the shrinker
/// re-enters here with subsets of the generated list).
pub fn run_with_events(cfg: &ScenarioConfig, events: &[FaultEvent]) -> ChaosReport {
    let sim = Sim::new();
    let session = Session::builder(cfg.model.session_config()).clients(cfg.clients).establish(&sim);
    let protocol_trace = session.install_trace();

    // Pre-populate the chaos files out of band, before virtual time
    // starts: every file begins as FILE_LEN zero bytes (tag 0).
    let vfs = Arc::clone(session.vfs());
    let t0 = gvfs_vfs::Timestamp::from_nanos(0);
    for f in 0..cfg.files {
        let id =
            vfs.create(vfs.root(), &format!("chaos-{f}"), 0o644, t0).expect("create chaos file");
        vfs.write(id, 0, &vec![0u8; FILE_LEN], t0).expect("initialize chaos file");
    }

    if cfg.suppress_recalls {
        session.proxy_server().set_recall_suppressed(true);
    }
    for (client, to_server, plan) in compile_fault_plans(cfg.seed, events) {
        session.wan_link(client).set_fault_plan(to_server, Some(plan));
    }

    let history = Arc::new(History::new());
    let done = Arc::new(AtomicUsize::new(0));
    let stop_sampler = Arc::new(AtomicBool::new(false));
    let session = Arc::new(session);

    for i in 0..cfg.clients {
        let transport = session.client_transport(i);
        let root = session.root_fh();
        let history = Arc::clone(&history);
        let done = Arc::clone(&done);
        let cfg = *cfg;
        sim.spawn(&format!("chaos-worker-{i}"), move || {
            gvfs_netsim::sleep(Duration::from_secs(2));
            let client = NfsClient::new(transport, root, MountOptions::noac());
            let mut fhs = Vec::with_capacity(cfg.files);
            for f in 0..cfg.files {
                let path = format!("/chaos-{f}");
                let mut tries = 0u32;
                loop {
                    match client.resolve(&path) {
                        Ok(fh) => {
                            fhs.push(fh);
                            break;
                        }
                        // The local proxy may be mid-crash; retry.
                        Err(_) if tries < 600 => {
                            tries += 1;
                            gvfs_netsim::sleep(Duration::from_secs(1));
                        }
                        Err(e) => panic!("chaos worker {i}: cannot resolve {path}: {e:?}"),
                    }
                }
            }
            let single_writer = cfg.model.single_writer_per_file();
            let mut rng = StdRng::seed_from_u64(worker_seed(cfg.seed, i));
            let mut seq = 0u64;
            for _ in 0..cfg.ops_per_client {
                gvfs_netsim::sleep(Duration::from_millis(rng.gen_range(400u64..6000)));
                let file = rng.gen_range(0..cfg.files);
                let wants_write = rng.gen_bool(0.45);
                if wants_write && (!single_writer || file % cfg.clients == i) {
                    seq += 1;
                    let tag = make_tag(i, seq);
                    let started = gvfs_netsim::now();
                    let outcome = client.write(fhs[file], 0, &encode_tag(tag));
                    let finished = gvfs_netsim::now();
                    history.push(match outcome {
                        Ok(()) => Event::WriteAcked { client: i, file, tag, started, finished },
                        Err(_) => Event::WriteFailed { client: i, file, tag, started, finished },
                    });
                } else {
                    let started = gvfs_netsim::now();
                    if let Ok(buf) = client.read(fhs[file], 0, FILE_LEN as u32) {
                        let finished = gvfs_netsim::now();
                        history.push(Event::Read {
                            client: i,
                            file,
                            observed: Observation::decode(&buf),
                            started,
                            finished,
                        });
                    }
                }
            }
            done.fetch_add(1, Ordering::SeqCst);
        });
    }

    // Controller: executes the crash events at their scheduled instants.
    {
        let session = Arc::clone(&session);
        let history = Arc::clone(&history);
        let done = Arc::clone(&done);
        let crashes: Vec<FaultEvent> = events
            .iter()
            .copied()
            .filter(|e| {
                matches!(e, FaultEvent::ServerCrash { .. } | FaultEvent::ClientCrash { .. })
            })
            .collect();
        sim.spawn("chaos-controller", move || {
            for ev in crashes {
                match ev {
                    FaultEvent::ServerCrash { at_ms, down_ms } => {
                        sleep_until(SimTime::from_millis(at_ms));
                        session.crash_proxy_server();
                        history.push(Event::ServerCrashed { at: gvfs_netsim::now() });
                        gvfs_netsim::sleep(Duration::from_millis(down_ms));
                        let answered = session.restart_proxy_server();
                        history.push(Event::ServerRestarted { at: gvfs_netsim::now(), answered });
                    }
                    FaultEvent::ClientCrash { client, at_ms, down_ms } => {
                        sleep_until(SimTime::from_millis(at_ms));
                        session.crash_proxy_client(client);
                        history.push(Event::ClientCrashed { client, at: gvfs_netsim::now() });
                        gvfs_netsim::sleep(Duration::from_millis(down_ms));
                        let corrupted = session.restart_proxy_client(client).len();
                        history.push(Event::ClientRestarted {
                            client,
                            at: gvfs_netsim::now(),
                            corrupted,
                        });
                    }
                    FaultEvent::Partition { .. }
                    | FaultEvent::Drop { .. }
                    | FaultEvent::Duplicate { .. }
                    | FaultEvent::Jitter { .. } => {}
                }
            }
            done.fetch_add(1, Ordering::SeqCst);
        });
    }

    // Exclusion sampler: under delegation, periodically checks the
    // server-side table for two concurrent holders with a writer among
    // them (outside recall/write-back transients) — the write-exclusion
    // invariant the model promises.
    if matches!(cfg.model, ModelKind::Delegation) {
        let session = Arc::clone(&session);
        let history = Arc::clone(&history);
        let stop = Arc::clone(&stop_sampler);
        sim.spawn("chaos-exclusion-sampler", move || loop {
            gvfs_netsim::park_timeout(Duration::from_secs(2));
            if stop.load(Ordering::SeqCst) {
                return;
            }
            for snap in session.proxy_server().delegation_snapshot() {
                let holders = snap.sharers.iter().filter(|(_, k)| k.is_some()).count();
                let writers = snap
                    .sharers
                    .iter()
                    .filter(|(_, k)| matches!(k, Some(DelegationKind::Write)))
                    .count();
                if writers >= 1 && holders >= 2 && snap.recalling == 0 && snap.pending.is_none() {
                    history.push(Event::ExclusionViolation {
                        at: gvfs_netsim::now(),
                        fh: snap.fh.fileid(),
                        sharers: holders,
                        writers,
                    });
                }
            }
        });
    }

    // Closer: once every worker and the controller are done, heal all
    // links, stop the sampler, and shut the session down (flushing any
    // delayed writes).
    {
        let session = Arc::clone(&session);
        let done = Arc::clone(&done);
        let stop = Arc::clone(&stop_sampler);
        let handle = session.handle();
        let total = cfg.clients + 1;
        let clients = cfg.clients;
        sim.spawn("chaos-closer", move || {
            loop {
                gvfs_netsim::park_timeout(Duration::from_secs(1));
                if done.load(Ordering::SeqCst) >= total {
                    break;
                }
            }
            for i in 0..clients {
                let link = session.wan_link(i);
                link.set_partitioned(false);
                link.clear_fault_plans();
            }
            stop.store(true, Ordering::SeqCst);
            handle.shutdown();
        });
    }

    sim.run();

    let mut final_tags = Vec::with_capacity(cfg.files);
    for f in 0..cfg.files {
        let id = vfs.lookup_path(&format!("/chaos-{f}")).expect("chaos file still present");
        let (buf, _eof) = vfs.read(id, 0, FILE_LEN as u32).expect("read final state");
        final_tags.push(Observation::decode(&buf));
    }

    let history = history.events();
    let violations = oracle::check(cfg.model, events, &history, &final_tags);
    let mut hash = trace_hash(&history);
    for obs in &final_tags {
        for byte in format!("{obs:?}").bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    ChaosReport {
        seed: cfg.seed,
        model: cfg.model,
        events: events.to_vec(),
        history,
        final_tags,
        trace_hash: hash,
        violations,
        protocol_trace: protocol_trace.to_jsonl(),
    }
}
