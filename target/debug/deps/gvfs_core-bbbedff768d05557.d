/root/repo/target/debug/deps/gvfs_core-bbbedff768d05557.d: /root/repo/clippy.toml crates/core/src/lib.rs crates/core/src/cache.rs crates/core/src/delegation.rs crates/core/src/invalidation.rs crates/core/src/protocol.rs crates/core/src/proxy/mod.rs crates/core/src/proxy/client.rs crates/core/src/proxy/server.rs crates/core/src/session.rs crates/core/src/model.rs Cargo.toml

/root/repo/target/debug/deps/libgvfs_core-bbbedff768d05557.rmeta: /root/repo/clippy.toml crates/core/src/lib.rs crates/core/src/cache.rs crates/core/src/delegation.rs crates/core/src/invalidation.rs crates/core/src/protocol.rs crates/core/src/proxy/mod.rs crates/core/src/proxy/client.rs crates/core/src/proxy/server.rs crates/core/src/session.rs crates/core/src/model.rs Cargo.toml

/root/repo/clippy.toml:
crates/core/src/lib.rs:
crates/core/src/cache.rs:
crates/core/src/delegation.rs:
crates/core/src/invalidation.rs:
crates/core/src/protocol.rs:
crates/core/src/proxy/mod.rs:
crates/core/src/proxy/client.rs:
crates/core/src/proxy/server.rs:
crates/core/src/session.rs:
crates/core/src/model.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
