//! The scripted consistency matrix: one fixed two-client scenario run
//! under each model, returning what the reader observed at each step so
//! a test can assert the *model-specific* visibility — passthrough sees
//! a remote write immediately, polling sees it only after the next
//! polling window, delegation sees it immediately because the write
//! recalls the reader's delegation first.

use crate::chaos::ModelKind;
use gvfs_client::{MountOptions, NfsClient};
use gvfs_core::session::{Session, SessionConfig};
use gvfs_core::ConsistencyModel;
use gvfs_netsim::Sim;
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::Duration;

/// The polling window the matrix scenario uses — long enough that the
/// read right after the remote write predates the next poll.
pub const MATRIX_POLL_PERIOD: Duration = Duration::from_secs(30);

/// What the reader observed at the three scripted instants.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MatrixOutcome {
    /// The model that produced this outcome.
    pub model: ModelKind,
    /// Read at t=50 s, after the writer wrote `v1` at t≈1 s.
    pub warm: Vec<u8>,
    /// Read at t=103 s, right after the writer wrote `v2` at t=100 s
    /// (before the next polling window).
    pub after_write: Vec<u8>,
    /// Read at t=135 s, after every model's visibility window passed.
    pub after_window: Vec<u8>,
}

fn matrix_config(model: ModelKind) -> SessionConfig {
    match model {
        ModelKind::Passthrough => SessionConfig {
            model: ConsistencyModel::Passthrough,
            write_back: false,
            ..SessionConfig::default()
        },
        ModelKind::Polling => SessionConfig {
            model: ConsistencyModel::InvalidationPolling {
                period: MATRIX_POLL_PERIOD,
                backoff_max: None,
            },
            write_back: false,
            ..SessionConfig::default()
        },
        ModelKind::Delegation => SessionConfig {
            model: ConsistencyModel::delegation(),
            write_back: true,
            ..SessionConfig::default()
        },
    }
}

fn sleep_until(at: Duration) {
    let elapsed = gvfs_netsim::now().saturating_since(gvfs_netsim::SimTime::ZERO);
    if at > elapsed {
        gvfs_netsim::sleep(at - elapsed);
    }
}

/// Runs the scripted two-client scenario under `model`.
pub fn run_matrix(model: ModelKind) -> MatrixOutcome {
    let sim = Sim::new();
    let session = Session::builder(matrix_config(model)).clients(2).establish(&sim);
    let (wt, rt, root, handle) = (
        session.client_transport(0),
        session.client_transport(1),
        session.root_fh(),
        session.handle(),
    );

    sim.spawn("matrix-writer", move || {
        let c = NfsClient::new(wt, root, MountOptions::noac());
        gvfs_netsim::sleep(Duration::from_secs(1));
        c.write_file("/matrix", b"v1").expect("write v1");
        sleep_until(Duration::from_secs(100));
        let fh = c.resolve("/matrix").expect("resolve for v2");
        c.write(fh, 0, b"v2").expect("write v2");
    });

    let observed = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&observed);
    sim.spawn("matrix-reader", move || {
        let c = NfsClient::new(rt, root, MountOptions::noac());
        for at in [Duration::from_secs(50), Duration::from_secs(103), Duration::from_secs(135)] {
            sleep_until(at);
            let data = c.read_file("/matrix").expect("matrix read");
            sink.lock().push(data);
        }
        handle.shutdown();
    });

    sim.run();
    let reads = observed.lock().clone();
    assert_eq!(reads.len(), 3, "the reader performs exactly three scripted reads");
    MatrixOutcome {
        model,
        warm: reads[0].clone(),
        after_write: reads[1].clone(),
        after_window: reads[2].clone(),
    }
}
