/root/repo/target/debug/deps/gvfs_bench-fd05e0518e43f419.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/gvfs_bench-fd05e0518e43f419: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
