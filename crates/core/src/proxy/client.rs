//! The GVFS proxy client.
//!
//! Runs beside each kernel NFS client (mounted over loopback, so the
//! kernel talks ordinary NFSv3 to it) and implements the client half of
//! the session's consistency model over its disk cache:
//!
//! * serves `GETATTR`/`LOOKUP`/`READ` hits locally — absorbing the
//!   kernel's consistency-check storms — and forwards misses over the
//!   WAN wrapped in the proxy program;
//! * under **invalidation polling**, runs a poller that drains the proxy
//!   server's invalidation buffer with `GETINV` (fixed period or
//!   exponential back-off) and invalidates cached attributes;
//! * under **delegation/callback**, tracks granted delegations, renews
//!   them by periodically letting a request bypass the cache, serves the
//!   callback program (recalls, partial write-back with a background
//!   flusher), and reconciles after crashes;
//! * with **write-back** enabled, absorbs writes as dirty extents and
//!   flushes them on recall, shutdown, or file removal (delayed writes
//!   to later-deleted files are never sent — the paper's `make`
//!   temporary-file win).

use crate::cache::DiskCache;
use crate::model::{ConsistencyModel, DelegationConfig};
use crate::protocol::{
    change_of, proc_ext, CallbackArgs, CallbackKind, CallbackRes, DelegationGrant, GetinvArgs,
    GetinvRes, PeerAdvert, PeerReadArgs, PeerReadRes, RecoverRes, WrappedReply,
    GVFS_CALLBACK_PROGRAM, GVFS_PROXY_PROGRAM, GVFS_VERSION,
};
use crate::proxy::{block_of, BLOCK_SIZE};
use crate::store::persist::fnv;
#[cfg(feature = "trace")]
use crate::trace::{ProtocolEvent, TraceBuffer, TraceKind};
use gvfs_netsim::transport::SimRpcClient;
use gvfs_netsim::SimTime;
use gvfs_nfs3::{
    proc3, CreateArgs, DirOpArgs, Fh3, GetattrArgs, GetattrRes, LinkArgs, LookupArgs, LookupRes,
    MkdirArgs, NfsTime3, Nfsstat3, ReadArgs, ReadRes, ReaddirRes, RenameArgs, SetattrRes,
    StableHow, SymlinkArgs, WccData, WriteArgs, WriteRes,
};
use gvfs_rpc::breaker::{BreakerConfig, BreakerState, CircuitBreaker};
use gvfs_rpc::channel::PendingCall;
use gvfs_rpc::dispatch::RpcService;
use gvfs_rpc::RpcError;
use gvfs_xdr::Xdr;
use parking_lot::Mutex;
use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, HashSet, VecDeque};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Deterministic per-client retry jitter: a hash of `(client_id,
/// attempt)` spreads N clients' k-th retransmissions across
/// `[0, delay/2)`, so a heal after a shared partition is not greeted by
/// a synchronized retry storm. `DefaultHasher` has fixed keys, so the
/// schedule is reproducible across runs — the simulator's determinism
/// contract holds.
pub fn retry_jitter(client_id: u32, attempt: u32, delay: Duration) -> Duration {
    let mut hasher = DefaultHasher::new();
    (client_id, attempt).hash(&mut hasher);
    let slot = (hasher.finish() % 1024) as u32;
    delay * slot / 2048
}

#[derive(Debug, Default)]
struct ClientState {
    delegations: HashMap<Fh3, DelegationGrant>,
    noncacheable: HashSet<Fh3>,
    last_forward: HashMap<Fh3, SimTime>,
    /// Server mtime observed when a file first accumulated dirty data —
    /// persisted with the disk cache, used for post-crash reconciliation.
    wb_base: HashMap<Fh3, NfsTime3>,
    corrupted: HashSet<Fh3>,
}

/// Statistics a proxy client keeps about its own effectiveness.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ProxyClientStats {
    /// Kernel RPCs answered from the disk cache.
    pub served_local: u64,
    /// Kernel RPCs forwarded over the WAN.
    pub forwarded: u64,
    /// Invalidation handles applied from `GETINV` replies.
    pub invalidations_applied: u64,
    /// Invalidation drains applied from piggybacked NFS replies
    /// (polls that cost zero extra messages).
    pub piggyback_drains: u64,
    /// Callbacks received.
    pub callbacks: u64,
    /// READ requests served entirely from cached extents.
    pub read_hits: u64,
    /// READ requests that found at least one uncached gap.
    pub read_misses: u64,
    /// Speculative read-ahead READs put on the wire.
    pub prefetch_issued: u64,
    /// Prefetched replies that landed in the cache for a demand read.
    pub prefetch_hits: u64,
    /// Prefetched replies discarded: cancelled by an invalidation or
    /// recall, or failed in flight.
    pub prefetch_wasted: u64,
    /// Transient WAN failures (timeout/unreachable) retried with
    /// back-off by [`ProxyClient::forward`].
    pub transport_retries: u64,
    /// `GETINV` replies that demanded a full attribute purge (buffer
    /// wrap or server restart, §4.2).
    pub force_invalidations: u64,
    /// Files whose dirty data was discarded during crash recovery
    /// because the server-side copy changed during the outage (§4.3.4).
    pub corrupted_discards: u64,
    /// READ and GETATTR calls answered from cache by the degradation
    /// ladder's bounded-staleness rung while the WAN breaker was open.
    pub degraded_reads: u64,
    /// Files whose dirty data was discarded during post-heal
    /// re-promotion because the server-side copy changed during the
    /// outage (the lease-revocation analogue of `corrupted_discards`;
    /// the file is *not* poisoned — fresh data is refetched).
    pub stale_discards: u64,
    /// Times the supervisor re-promoted the session to full delegation
    /// semantics after an outage healed.
    pub repromotions: u64,
    /// Bytes of file content currently held by the block store.
    pub cache_bytes: u64,
    /// Files whose clean content the block store evicted for capacity.
    pub cache_evictions: u64,
    /// Clean chunk insertions deduplicated against an identical stored
    /// chunk (persistent store only).
    pub dedup_hits: u64,
    /// Clean blocks served warm from the replayed on-disk index after
    /// the last restart (persistent store only).
    pub restart_warm_blocks: u64,
    /// Block fetches satisfied by a peer's clean cache over the LAN
    /// (verified against the origin-attested change/length/hash).
    pub peer_hits: u64,
    /// Peer fetches that came back empty or failed verification (the
    /// block then falls back to the origin).
    pub peer_misses: u64,
    /// Block fetches that fell back to the origin: no live peer, peer
    /// miss, breaker-open, timeout, or verification failure.
    pub peer_fallbacks: u64,
    /// Bytes this client served to other peers' `PEERREAD`s.
    pub peer_bytes_served: u64,
    /// Checksum verifications the block store failed (bit rot, torn
    /// writes, unreadable media) — merged from the store's counters.
    pub integrity_failures: u64,
    /// Extents the block store quarantined instead of serving — merged
    /// from the store's counters.
    pub quarantined_blocks: u64,
    /// Quarantined *clean* extents the demand read path turned into
    /// misses and transparently re-fetched from the origin or a peer.
    pub refetch_repairs: u64,
    /// Quarantined clean extents the background scrub actor re-fetched
    /// ahead of any demand read.
    pub scrub_repairs: u64,
    /// Quarantined *dirty* extents: locally written bytes lost to
    /// corruption before write-back. Explicit data loss — the file is
    /// poisoned like `corrupted_discards`, never silently zero-filled.
    pub integrity_dirty_loss: u64,
}

/// One fetch (demand gap or speculative read-ahead) in flight over the
/// WAN. Lives in [`ReadAheadState::files`] from the moment the range is
/// reserved until its reply is applied, discarded, or cancelled.
struct PendingFetch {
    /// Unique reservation id: the issuer applies the reply only while
    /// the token is still present, so a cancellation (which removes the
    /// entry) makes every in-flight reply land on the floor instead of
    /// overwriting a newer invalidation.
    token: u64,
    offset: u64,
    len: usize,
    /// Speculative read-ahead (true) vs a demand gap fetch (false) —
    /// only speculative entries move the prefetch counters.
    speculative: bool,
    /// The in-flight call, present while unclaimed. A demand read takes
    /// it and waits on it; `None` means some actor is already completing
    /// this fetch, so overlapping readers park as waiters instead of
    /// re-sending.
    call: Option<PendingCall>,
    /// Set when the in-flight call is a `PEERREAD` instead of an origin
    /// READ: the claimant must verify the reply against these
    /// origin-attested values (and knows which breaker to feed).
    peer: Option<PeerMeta>,
    /// Actors parked until this fetch resolves.
    waiters: Vec<gvfs_netsim::ActorHandle>,
}

/// Per-file sequential-access detector plus in-flight fetch table.
#[derive(Default)]
struct FileReadState {
    /// Offset one past the last served read; a read starting here (or
    /// overlapping it) extends the sequential run.
    next_expected: u64,
    /// Consecutive sequential reads observed.
    run: usize,
    pending: Vec<PendingFetch>,
}

/// One registered peer: a LAN-priced transport to the peer's callback
/// node plus a dedicated health breaker. The breaker's integer-EWMA
/// latency is the peer-selection key; an open breaker removes the peer
/// from candidacy until its cooldown elapses.
struct PeerTransport {
    rpc: SimRpcClient,
    breaker: CircuitBreaker,
}

/// Provenance of one in-flight `PEERREAD`: which peer it went to and the
/// origin-attested values its reply must verify against. Travels with
/// the [`PendingFetch`] so a demand read claiming a peer-sent prefetch
/// knows how to complete (and verify) it.
struct PeerMeta {
    peer: Arc<PeerTransport>,
    peer_id: u32,
    started: Duration,
    /// Origin-attested change attribute the block must match.
    change: u64,
    /// Origin-attested file length the reply must stay within.
    total_len: u64,
}

/// One `PEERREAD` in flight to a peer (phase 1 of the fan-out), carrying
/// everything phase 2 needs to verify the reply against the
/// origin-attested advertisement.
struct PeerSent {
    token: u64,
    speculative: bool,
    offset: u64,
    count: u32,
    call: PendingCall,
    meta: PeerMeta,
}

/// What became of one peer-sourced fetch after its reply was claimed.
enum PeerOutcome {
    /// Verified and applied to the cache.
    Applied,
    /// The reservation token vanished (invalidation/recall raced the
    /// transfer): the caller falls back to the serial path.
    Cancelled,
    /// Miss, transport failure, or verification failure: the chunk
    /// `(token, offset, count, speculative)` re-fetches from the origin.
    Fallback(u64, u64, u32, bool),
}

/// The read engine's shared state (lock rank: after `disk`).
struct ReadAheadState {
    /// Read-ahead window in blocks; 0 disables speculation.
    window: usize,
    /// Sequential run length that arms the prefetcher.
    trigger: usize,
    files: HashMap<Fh3, FileReadState>,
}

/// The proxy client service (see module docs).
pub struct ProxyClient {
    id: u32,
    model: ConsistencyModel,
    write_back: bool,
    wan: SimRpcClient,
    disk: Mutex<DiskCache>,
    state: Mutex<ClientState>,
    poll_ts: Mutex<Option<u64>>,
    flush_queue: Mutex<VecDeque<(Fh3, u64)>>,
    flusher: Mutex<Option<gvfs_netsim::ActorHandle>>,
    poller: Mutex<Option<gvfs_netsim::ActorHandle>>,
    stopped: AtomicBool,
    /// Pipeline write-back batches over the WAN (ablation knob; the
    /// serial fallback pays one round trip per block).
    pipeline: AtomicBool,
    /// Pipeline the read path: fan gap READs out concurrently and run
    /// the read-ahead window (ablation knob; off restores the serial
    /// all-or-nothing read path).
    pipeline_read: AtomicBool,
    readahead: Mutex<ReadAheadState>,
    fetch_token: AtomicU64,
    stats: Mutex<ProxyClientStats>,
    /// Per-peer WAN health: fed by every forwarded call's outcome,
    /// consulted by the degradation ladder and the supervisor.
    breaker: CircuitBreaker,
    /// Maximum transparent retransmissions per forwarded call.
    retry_budget: AtomicU32,
    /// Ladder engagement delay, milliseconds (see `SessionConfig`).
    degrade_after_ms: AtomicU64,
    /// Bounded-staleness limit for degraded serving, milliseconds;
    /// 0 disables the ladder (hard-retry through outages).
    max_staleness_ms: AtomicU64,
    /// Set when the breaker degrades a delegation session: the held
    /// delegations may have been revoked server-side, so the supervisor
    /// must resync before trusting them again.
    needs_resync: AtomicBool,
    /// Last whole-cache validation point (a successful `GETINV`
    /// exchange), in virtual milliseconds since the epoch; 0 = never.
    last_validated_ms: AtomicU64,
    supervisor: Mutex<Option<gvfs_netsim::ActorHandle>>,
    /// Peer-sourced reads enabled (`SessionConfig.peer_read`): gap
    /// fetches try an advertised live peer over the LAN before the WAN.
    peer_read: AtomicBool,
    /// LAN transports to registered peers, keyed by peer client id
    /// (lock rank: terminal — nothing else is taken under it).
    peers: Mutex<HashMap<u32, Arc<PeerTransport>>>,
    /// Origin-attested peer advertisements, one per handle, absorbed
    /// from `WrappedReply.peers` and dropped whenever the handle is
    /// invalidated (lock rank: terminal).
    peer_hints: Mutex<HashMap<Fh3, PeerAdvert>>,
    /// Chaos selftest knob: serve `PEERREAD`s from raw store content,
    /// skipping the attestation checks — the oracle must convict this.
    break_peerread: AtomicBool,
    /// The scrub actor's handle, for shutdown (lock rank: after
    /// `supervisor`; only taken to install/unpark the handle).
    scrubber: Mutex<Option<gvfs_netsim::ActorHandle>>,
    /// Protocol-event sink for spec-conformance replay, installed once
    /// by the session (shared with the proxy server so `seq` is a
    /// session-global order).
    #[cfg(feature = "trace")]
    trace: std::sync::OnceLock<Arc<TraceBuffer>>,
}

impl std::fmt::Debug for ProxyClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProxyClient").field("id", &self.id).field("model", &self.model).finish()
    }
}

fn decode<T: Xdr>(bytes: &[u8]) -> Result<T, RpcError> {
    gvfs_xdr::from_bytes(bytes).map_err(|_| RpcError::GarbageArgs)
}

fn encode<T: Xdr>(value: &T) -> Result<Vec<u8>, RpcError> {
    Ok(gvfs_xdr::to_bytes(value)?)
}

/// Outcome of a forwarded WAN call that may escape to the degradation
/// ladder instead of blocking through an outage.
enum Forwarded {
    /// The call completed; the unwrapped NFS bytes follow.
    Replied(Vec<u8>),
    /// The ladder engaged mid-retry: the caller serves from cache.
    Degraded,
}

impl ProxyClient {
    /// Creates a proxy client.
    ///
    /// `wan` must carry a GVFS credential identifying `id` (the session
    /// middleware arranges this).
    pub fn new(
        id: u32,
        model: ConsistencyModel,
        write_back: bool,
        wan: SimRpcClient,
        cache_bytes: usize,
    ) -> Arc<Self> {
        Self::with_store(
            id,
            model,
            write_back,
            wan,
            Box::new(crate::store::mem::MemStore::new(cache_bytes)),
        )
    }

    /// Creates a proxy client over an explicit block store (e.g. a
    /// [`crate::store::persist::PersistentStore`] whose disk survives
    /// restarts).
    pub fn with_store(
        id: u32,
        model: ConsistencyModel,
        write_back: bool,
        wan: SimRpcClient,
        store: Box<dyn crate::store::BlockStore>,
    ) -> Arc<Self> {
        let breaker = CircuitBreaker::new(BreakerConfig::default()).with_stats(wan.stats().clone());
        Arc::new(ProxyClient {
            id,
            model,
            write_back,
            wan,
            disk: Mutex::new(DiskCache::with_store(store)),
            state: Mutex::new(ClientState::default()),
            poll_ts: Mutex::new(None),
            flush_queue: Mutex::new(VecDeque::new()),
            flusher: Mutex::new(None),
            poller: Mutex::new(None),
            stopped: AtomicBool::new(false),
            pipeline: AtomicBool::new(true),
            pipeline_read: AtomicBool::new(true),
            readahead: Mutex::new(ReadAheadState { window: 8, trigger: 2, files: HashMap::new() }),
            fetch_token: AtomicU64::new(0),
            stats: Mutex::new(ProxyClientStats::default()),
            breaker,
            retry_budget: AtomicU32::new(600),
            degrade_after_ms: AtomicU64::new(2_000),
            // The ladder stays off until the session middleware opts in
            // via `set_resilience`: a bare client hard-retries.
            max_staleness_ms: AtomicU64::new(0),
            needs_resync: AtomicBool::new(false),
            last_validated_ms: AtomicU64::new(0),
            supervisor: Mutex::new(None),
            peer_read: AtomicBool::new(false),
            peers: Mutex::new(HashMap::new()),
            peer_hints: Mutex::new(HashMap::new()),
            break_peerread: AtomicBool::new(false),
            scrubber: Mutex::new(None),
            #[cfg(feature = "trace")]
            trace: std::sync::OnceLock::new(),
        })
    }

    /// Installs the shared protocol-trace buffer (first call wins).
    #[cfg(feature = "trace")]
    pub fn install_trace(&self, buf: Arc<TraceBuffer>) {
        let _ = self.trace.set(buf);
    }

    #[cfg(feature = "trace")]
    fn emit_trace(&self, ev: ProtocolEvent) {
        if let Some(buf) = self.trace.get() {
            buf.record(ev);
        }
    }

    /// Enables or disables pipelined write-back (on by default). With
    /// pipelining off, every flushed block pays its own WAN round trip —
    /// the ablation baseline.
    pub fn set_pipelining(&self, on: bool) {
        self.pipeline.store(on, Ordering::SeqCst);
    }

    /// Enables or disables the pipelined read path (on by default).
    /// Off restores the serial all-or-nothing miss path: one forwarded
    /// READ per kernel request, one WAN round trip each — the ablation
    /// baseline.
    pub fn set_read_pipelining(&self, on: bool) {
        self.pipeline_read.store(on, Ordering::SeqCst);
    }

    /// Configures the sequential read-ahead window (blocks speculatively
    /// fetched past a detected sequential run) and the run length that
    /// arms it. A zero window disables speculation but keeps gap-only
    /// fetching.
    pub fn set_readahead(&self, window: usize, trigger: usize) {
        let mut ra = self.readahead.lock();
        ra.window = window;
        ra.trigger = trigger.max(1);
    }

    /// Configures the resilience knobs: the retry budget for forwarded
    /// calls, how long the breaker must be open before the degradation
    /// ladder engages, and the bounded-staleness limit for degraded
    /// serving (`None` disables the ladder — hard-retry semantics).
    pub fn set_resilience(
        &self,
        retry_budget: u32,
        degrade_after: Duration,
        max_staleness: Option<Duration>,
    ) {
        self.retry_budget.store(retry_budget, Ordering::SeqCst);
        let degrade_ms = u64::try_from(degrade_after.as_millis()).unwrap_or(u64::MAX);
        self.degrade_after_ms.store(degrade_ms, Ordering::SeqCst);
        let staleness_ms = max_staleness
            .map(|d| u64::try_from(d.as_millis()).unwrap_or(u64::MAX).max(1))
            .unwrap_or(0);
        self.max_staleness_ms.store(staleness_ms, Ordering::SeqCst);
    }

    /// This client's WAN health breaker (diagnostics).
    pub fn breaker(&self) -> &CircuitBreaker {
        &self.breaker
    }

    /// Enables or disables peer-sourced reads (off by default; the
    /// session middleware turns it on for `SessionConfig.peer_read`).
    pub fn set_peer_read(&self, on: bool) {
        self.peer_read.store(on, Ordering::SeqCst);
        if !on {
            self.peer_hints.lock().clear();
        }
    }

    /// Registers a LAN transport to peer `id` (the session middleware
    /// wires the full mesh). Each peer gets its own health breaker.
    pub fn add_peer(&self, id: u32, rpc: SimRpcClient) {
        let breaker = CircuitBreaker::new(BreakerConfig::default());
        self.peers.lock().insert(id, Arc::new(PeerTransport { rpc, breaker }));
    }

    /// Feeds one failure into peer `id`'s health breaker at the current
    /// virtual time (tests force a breaker open with a burst of these).
    pub fn note_peer_failure(&self, id: u32) {
        if let Some(p) = self.peers.lock().get(&id) {
            p.breaker.on_failure(Self::now_dur());
        }
    }

    /// Chaos selftest knob: when set, this client answers `PEERREAD`s
    /// from raw store content with the requester's attestation echoed
    /// back, skipping the change/cleanliness checks — deliberately
    /// serving condemned bytes so the chaos oracle can prove it convicts.
    pub fn set_break_peerread(&self, on: bool) {
        self.break_peerread.store(on, Ordering::SeqCst);
    }

    /// Chaos selftest knob: disables the block store's verify-on-read
    /// (and the scrub sweep), so rotten bytes are served as-is instead
    /// of quarantined — deliberately breaking the integrity layer so
    /// the analysis invariant and the chaos oracle can prove they
    /// convict it.
    pub fn set_break_scrub(&self, on: bool) {
        self.disk.lock().set_store_verify(!on);
    }

    /// Drops the peer hint for one invalidated handle: the origin
    /// condemned its advertised copies, so the hint is dead.
    fn drop_peer_hint(&self, fh: Fh3) {
        self.peer_hints.lock().remove(&fh);
    }

    /// Drops every peer hint (force invalidation, crash, recovery).
    fn drop_all_peer_hints(&self) {
        self.peer_hints.lock().clear();
    }

    /// Virtual time as a `Duration` since the simulation epoch (the
    /// breaker's clock representation).
    fn now_dur() -> Duration {
        gvfs_netsim::now().saturating_since(SimTime::ZERO)
    }

    /// This client's session-local id.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// Effectiveness counters, merged with the block store's.
    pub fn stats(&self) -> ProxyClientStats {
        let store = self.disk.lock().store_stats();
        let mut s = *self.stats.lock();
        s.cache_bytes = store.bytes;
        s.cache_evictions = store.evictions;
        s.dedup_hits = store.dedup_hits;
        s.restart_warm_blocks = store.restart_warm_blocks;
        s.integrity_failures = store.integrity_failures;
        s.quarantined_blocks = store.quarantined_blocks;
        s
    }

    /// Forces a durability barrier on the block store (no-op for the
    /// in-memory store). Everything cached so far survives a crash.
    pub fn sync_store(&self) {
        self.disk.lock().sync_store();
        self.settle_disk();
    }

    /// Charges any simulated disk I/O cost accrued by the block store to
    /// this actor's virtual clock. Must be called with no locks held;
    /// outside an actor the cost is absorbed silently (unit tests).
    /// Doubles as the backstop drain for integrity events, so a
    /// quarantine raised anywhere in a service call is attributed
    /// before the call returns.
    fn settle_disk(&self) {
        self.drain_integrity_events(false);
        let cost = self.disk.lock().take_disk_cost();
        if !cost.is_zero() && gvfs_netsim::in_actor() {
            gvfs_netsim::sleep(cost);
        }
    }

    /// Attributes the store's quarantine events. Dirty extents are
    /// unrecoverable local writes: the file is poisoned (`corrupted`,
    /// like crash-recovery conflicts) and counted as explicit data
    /// loss. Clean extents are now plain cache misses: on the demand
    /// path (`scrub` false) the very read that uncovered them refetches,
    /// counted as `refetch_repairs`; the scrub actor (`scrub` true)
    /// repairs them itself and does its own accounting, so clean events
    /// are only traced here. `served` events (verification disabled by
    /// the `--break-scrub` knob) are traced for the replay oracle to
    /// convict and deliberately not repaired.
    fn drain_integrity_events(&self, scrub: bool) -> Vec<crate::store::IntegrityEvent> {
        let events = self.disk.lock().take_integrity_events();
        for ev in &events {
            #[cfg(feature = "trace")]
            self.emit_trace(ProtocolEvent::IntegrityFault {
                client: self.id,
                fh: ev.fh.fileid(),
                dirty: ev.dirty,
                served: ev.served,
            });
            if ev.served {
                continue;
            }
            if ev.dirty {
                self.state.lock().corrupted.insert(ev.fh);
                self.stats.lock().integrity_dirty_loss += 1;
            } else if !scrub {
                self.stats.lock().refetch_repairs += 1;
            }
        }
        events
    }

    /// Re-fetches a quarantined clean range ahead of demand (the scrub
    /// repair). Returns whether the range is fully cached again.
    fn repair_clean_range(&self, fh: Fh3, offset: u64, len: u64) -> bool {
        let Ok(len) = usize::try_from(len) else { return false };
        for _ in 0..4 {
            if self.disk.lock().missing_ranges(fh, offset, len).is_empty() {
                return true;
            }
            if !self.fetch_missing(fh, offset, len) {
                return false;
            }
        }
        self.disk.lock().missing_ranges(fh, offset, len).is_empty()
    }

    /// Runs the background scrub actor until shutdown: every `period`
    /// it verifies up to `batch` bytes of stored content against their
    /// checksums (advancing a persistent sweep cursor), re-fetches any
    /// clean extent the sweep quarantined, and surfaces dirty ones as
    /// data loss — rot is found and healed ahead of demand instead of
    /// at first read. Spawn this on its own actor (the session
    /// middleware does when `scrub_period` is configured).
    pub fn run_scrubber(self: &Arc<Self>, period: Duration, batch: usize) {
        *self.scrubber.lock() = Some(gvfs_netsim::current_actor());
        loop {
            gvfs_netsim::park_timeout(period);
            if self.stopped.load(Ordering::SeqCst) {
                return;
            }
            let _ = self.disk.lock().scrub_step(batch);
            for ev in self.drain_integrity_events(true) {
                if ev.served || ev.dirty {
                    continue; // attributed by the drain
                }
                if self.repair_clean_range(ev.fh, ev.offset, ev.len) {
                    self.stats.lock().scrub_repairs += 1;
                    #[cfg(feature = "trace")]
                    self.emit_trace(ProtocolEvent::ScrubRepair {
                        client: self.id,
                        fh: ev.fh.fileid(),
                    });
                }
            }
            self.settle_disk();
        }
    }

    fn deleg_config(&self) -> DelegationConfig {
        match self.model {
            ConsistencyModel::DelegationCallback(c) => c,
            _ => DelegationConfig::default(),
        }
    }

    /// Whether cached state for `fh` may be served without contacting
    /// the server.
    fn can_serve(&self, fh: Fh3) -> bool {
        let st = self.state.lock();
        if st.noncacheable.contains(&fh) {
            return false;
        }
        match self.model {
            ConsistencyModel::Passthrough => false,
            ConsistencyModel::InvalidationPolling { .. } => true,
            ConsistencyModel::DelegationCallback(config) => {
                if !st.delegations.contains_key(&fh) {
                    return false;
                }
                // Renewal: periodically let a request through to keep
                // the server's speculated-open fresh (§4.3.1).
                match st.last_forward.get(&fh) {
                    Some(t) => gvfs_netsim::now().saturating_since(*t) < config.renewal,
                    None => false,
                }
            }
        }
    }

    /// One wrapped WAN call; applies the piggybacked grant for `target`.
    ///
    /// Transport failures (partition, proxy server down) are retried
    /// with jittered exponential backoff up to the configured retry
    /// budget: a user-level proxy simply holds the kernel's request
    /// until the upstream answers, exactly as a hard NFS mount over TCP
    /// behaves.
    fn forward(
        &self,
        procedure: u32,
        args: Vec<u8>,
        target: Option<Fh3>,
    ) -> Result<Vec<u8>, RpcError> {
        match self.forward_wan(procedure, args, target, false)? {
            Forwarded::Replied(bytes) => Ok(bytes),
            // With `degrade` off the retry loop only ends in a reply or
            // an error; this arm is unreachable but must not panic.
            Forwarded::Degraded => Err(RpcError::Unreachable),
        }
    }

    /// The retrying WAN call behind [`ProxyClient::forward`]. Every
    /// outcome feeds the health breaker; with `degrade` set, the loop
    /// re-checks the degradation ladder before each attempt and escapes
    /// with [`Forwarded::Degraded`] once it engages, so a read that was
    /// already blocked when the breaker opened reaches the cache instead
    /// of sleeping through the whole outage.
    fn forward_wan(
        &self,
        procedure: u32,
        args: Vec<u8>,
        target: Option<Fh3>,
        degrade: bool,
    ) -> Result<Forwarded, RpcError> {
        const RETRY_CAP: Duration = Duration::from_secs(60);
        let budget = self.retry_budget.load(Ordering::SeqCst);
        let mut attempts = 0u32;
        let mut delay = Duration::from_secs(1);
        let bytes = loop {
            if degrade && self.degraded_now() {
                return Ok(Forwarded::Degraded);
            }
            let started = Self::now_dur();
            match self.wan.call(GVFS_PROXY_PROGRAM, GVFS_VERSION, procedure, args.clone()) {
                Ok(bytes) => {
                    let now = Self::now_dur();
                    self.breaker.on_success(now, now.saturating_sub(started));
                    break bytes;
                }
                Err(e) if e.is_transient() && attempts < budget => {
                    // Exponential back-off, like the empty-poll path: a
                    // long partition costs O(log) attempts, not one per
                    // second. The jitter decorrelates parallel clients'
                    // post-heal retransmissions.
                    self.note_wan_failure(&e);
                    attempts += 1;
                    self.stats.lock().transport_retries += 1;
                    gvfs_netsim::sleep(delay + retry_jitter(self.id, attempts, delay));
                    delay = (delay * 2).min(RETRY_CAP);
                }
                Err(e) => {
                    self.note_wan_failure(&e);
                    return Err(e);
                }
            }
        };
        self.absorb_reply(target, &bytes).map(Forwarded::Replied)
    }

    /// Feeds one failed WAN call into the breaker and, once the breaker
    /// degrades a delegation session, flags the post-heal resync.
    fn note_wan_failure(&self, e: &RpcError) {
        if !e.trips_breaker() {
            return;
        }
        let now = Self::now_dur();
        self.breaker.on_failure(now);
        if self.breaker.state(now).is_degraded()
            && matches!(self.model, ConsistencyModel::DelegationCallback(_))
        {
            // Held delegations may be revoked server-side (lease expiry,
            // short-circuited recalls) while we cannot hear the recalls.
            let first = !self.needs_resync.swap(true, Ordering::SeqCst);
            let _ = first;
            #[cfg(feature = "trace")]
            if first {
                self.emit_trace(ProtocolEvent::Degrade { client: self.id });
            }
        }
    }

    /// Whether the degradation ladder is engaged right now: enabled,
    /// delegation model, and the breaker open (or probing) for at least
    /// `degrade_after`.
    fn degraded_now(&self) -> bool {
        if self.max_staleness_ms.load(Ordering::SeqCst) == 0
            || !matches!(self.model, ConsistencyModel::DelegationCallback(_))
        {
            return false;
        }
        let now = Self::now_dur();
        if !self.breaker.state(now).is_degraded() {
            return false;
        }
        let degrade_after = Duration::from_millis(self.degrade_after_ms.load(Ordering::SeqCst));
        self.breaker.open_for(now).is_some_and(|open| open >= degrade_after)
    }

    /// Unwraps one proxy-program reply: counts it, applies the
    /// piggybacked grant for `target`, and returns the inner NFS bytes.
    /// Shared by the blocking [`ProxyClient::forward`] path and the
    /// pipelined write-back path, which claims replies after the fact.
    fn absorb_reply(&self, target: Option<Fh3>, bytes: &[u8]) -> Result<Vec<u8>, RpcError> {
        let wrapped: WrappedReply = decode(bytes)?;
        self.stats.lock().forwarded += 1;
        if let Some(fh) = target {
            let mut st = self.state.lock();
            st.last_forward.insert(fh, gvfs_netsim::now());
            match wrapped.grant {
                DelegationGrant::Read | DelegationGrant::Write => {
                    st.delegations.insert(fh, wrapped.grant);
                    st.noncacheable.remove(&fh);
                }
                DelegationGrant::NonCacheable => {
                    st.delegations.remove(&fh);
                    st.noncacheable.insert(fh);
                }
                DelegationGrant::None => {}
            }
        }
        if let Some(inv) = &wrapped.inv {
            self.apply_piggyback_inv(inv);
        }
        if let Some(advert) = wrapped.peers {
            // The advert is absorbed after the piggybacked drain: a
            // drain that just invalidated this handle dropped the old
            // hint, and the advert (served with the reply that carries
            // the drain) postdates it.
            if self.peer_read.load(Ordering::SeqCst) {
                self.peer_hints.lock().insert(advert.fh, advert);
            }
        }
        Ok(wrapped.nfs_bytes)
    }

    /// Applies an invalidation drain piggybacked on an NFS reply — the
    /// poll the server answered for free on this round trip.
    ///
    /// Only a client that has already bootstrapped (holds a poll
    /// timestamp) applies piggybacks, and only forward in time: a
    /// pre-bootstrap or stale drain is dropped, which is always safe —
    /// the server detects the resulting timestamp lag on the next real
    /// `GETINV` and force-invalidates.
    fn apply_piggyback_inv(&self, res: &crate::protocol::GetinvRes) {
        {
            let mut ts = self.poll_ts.lock();
            match *ts {
                Some(current) if res.timestamp > current => *ts = Some(res.timestamp),
                _ => return,
            }
        }
        // Same discipline as `poll_once`: prefetch cancellation happens
        // under the disk-lock hold that applies the invalidations.
        let mut disk = self.disk.lock();
        if res.force_invalidate {
            disk.invalidate_all_attrs();
            self.cancel_all_prefetch();
            self.drop_all_peer_hints();
        }
        for fh in &res.handles {
            disk.invalidate_attr(*fh);
            self.cancel_prefetch(*fh);
            self.drop_peer_hint(*fh);
        }
        drop(disk);
        let mut stats = self.stats.lock();
        stats.piggyback_drains += 1;
        stats.invalidations_applied += res.handles.len() as u64;
        if res.force_invalidate {
            stats.force_invalidations += 1;
        }
        drop(stats);
        #[cfg(feature = "trace")]
        self.emit_trace(ProtocolEvent::Validate {
            client: self.id,
            force: res.force_invalidate,
            n: res.handles.len() as u32,
            ts: res.timestamp,
        });
        if res.poll_again {
            // More pages are waiting server-side: kick the poller so a
            // real GETINV drains them now instead of at the next window.
            if let Some(poller) = self.poller.lock().clone() {
                poller.unpark();
            }
        }
    }

    fn served(&self) {
        self.stats.lock().served_local += 1;
    }

    // --- per-procedure handlers -------------------------------------

    fn op_getattr(&self, args: &[u8]) -> Result<Vec<u8>, RpcError> {
        let a: GetattrArgs = decode(args)?;
        if self.can_serve(a.object) {
            if let Some(attr) = self.disk.lock().attr(a.object) {
                self.served();
                return encode(&GetattrRes::Ok(attr));
            }
        }
        // Degradation ladder: `noac` kernels revalidate attributes
        // before every read, so the bounded-staleness rung must answer
        // GETATTR too — otherwise reads block on the dead WAN one RPC
        // before the READ the rung was built for.
        if self.degraded_now() {
            if let Some(reply) = self.serve_degraded_getattr(a.object)? {
                return Ok(reply);
            }
        }
        let reply = match self.forward_wan(proc3::GETATTR, args.to_vec(), Some(a.object), true)? {
            Forwarded::Replied(bytes) => bytes,
            Forwarded::Degraded => {
                // The breaker opened while this GETATTR was blocked
                // mid-retry: escape to the cached attributes if the
                // staleness bound allows, otherwise keep blocking like a
                // hard mount.
                match self.serve_degraded_getattr(a.object)? {
                    Some(reply) => return Ok(reply),
                    None => self.forward(proc3::GETATTR, args.to_vec(), Some(a.object))?,
                }
            }
        };
        match gvfs_xdr::from_bytes::<GetattrRes>(&reply) {
            Ok(GetattrRes::Ok(attr)) => self.disk.lock().put_attr(a.object, attr),
            Ok(GetattrRes::Fail(Nfsstat3::Stale)) => {
                let mut disk = self.disk.lock();
                disk.forget_file(a.object);
                disk.purge_bindings_to(a.object);
                self.cancel_prefetch(a.object);
                self.drop_peer_hint(a.object);
            }
            _ => {}
        }
        Ok(reply)
    }

    /// Bulk-refreshes a stale directory's name bindings with a
    /// READDIRPLUS sweep — a few WAN RPCs bring back hundreds of names
    /// *with handles and attributes*, the proxy's prefetching advantage
    /// over per-name LOOKUPs.
    fn ensure_dir_bindings(&self, dir: Fh3) {
        if !self.disk.lock().take_stale_dir(dir) {
            return;
        }
        let mut cookie = 0u64;
        let mut cookieverf = 0u64;
        loop {
            let Ok(args) = gvfs_xdr::to_bytes(&gvfs_nfs3::ReaddirplusArgs {
                dir,
                cookie,
                cookieverf,
                dircount: 16384,
                maxcount: 65536,
            }) else {
                return;
            };
            let Ok(reply) = self.forward(proc3::READDIRPLUS, args, Some(dir)) else { return };
            match gvfs_xdr::from_bytes::<gvfs_nfs3::ReaddirplusRes>(&reply) {
                Ok(gvfs_nfs3::ReaddirplusRes::Ok {
                    dir_attributes,
                    cookieverf: verf,
                    entries,
                    eof,
                }) => {
                    let mut disk = self.disk.lock();
                    if let Some(attr) = dir_attributes {
                        disk.put_attr(dir, attr);
                    }
                    for e in &entries {
                        let fh = e.name_handle.unwrap_or(Fh3::from_fileid(e.fileid));
                        disk.put_lookup(dir, &e.name, fh);
                        if let Some(attr) = e.name_attributes {
                            disk.put_attr(fh, attr);
                        }
                        cookie = e.cookie;
                    }
                    cookieverf = verf;
                    if eof {
                        return;
                    }
                }
                _ => return,
            }
        }
    }

    fn op_lookup(&self, args: &[u8]) -> Result<Vec<u8>, RpcError> {
        let a: LookupArgs = decode(args)?;
        if self.model.caches() {
            self.ensure_dir_bindings(a.dir);
        }
        if self.can_serve(a.dir) {
            let disk = self.disk.lock();
            if let Some(dir_attr) = disk.attr(a.dir) {
                match disk.lookup(a.dir, &a.name) {
                    Some(Some(child)) => {
                        let res = LookupRes::Ok {
                            object: child,
                            obj_attributes: disk.attr(child),
                            dir_attributes: Some(dir_attr),
                        };
                        drop(disk);
                        self.served();
                        return encode(&res);
                    }
                    Some(None) => {
                        let res = LookupRes::Fail {
                            status: Nfsstat3::Noent,
                            dir_attributes: Some(dir_attr),
                        };
                        drop(disk);
                        self.served();
                        return encode(&res);
                    }
                    None => {}
                }
            }
        }
        let reply = self.forward(proc3::LOOKUP, args.to_vec(), Some(a.dir))?;
        match gvfs_xdr::from_bytes::<LookupRes>(&reply) {
            Ok(LookupRes::Ok { object, obj_attributes, dir_attributes }) => {
                let mut disk = self.disk.lock();
                disk.put_lookup(a.dir, &a.name, object);
                if let Some(attr) = obj_attributes {
                    disk.put_attr(object, attr);
                }
                if let Some(attr) = dir_attributes {
                    disk.put_attr(a.dir, attr);
                }
            }
            Ok(LookupRes::Fail { status, dir_attributes }) => {
                let mut disk = self.disk.lock();
                if status == Nfsstat3::Noent {
                    disk.put_negative_lookup(a.dir, &a.name);
                }
                if let Some(attr) = dir_attributes {
                    disk.put_attr(a.dir, attr);
                }
            }
            Err(_) => {}
        }
        Ok(reply)
    }

    fn op_read(&self, args: &[u8]) -> Result<Vec<u8>, RpcError> {
        let a: ReadArgs = decode(args)?;
        if self.state.lock().corrupted.contains(&a.file) {
            return encode(&ReadRes::Fail { status: Nfsstat3::Io, file_attributes: None });
        }
        if self.model.caches() && self.can_serve(a.file) {
            if let Some(reply) = self.read_from_cache(&a)? {
                return Ok(reply);
            }
        }
        // Degradation ladder: while the WAN breaker is open, answer from
        // sufficiently fresh cached state instead of blocking on a
        // partitioned upstream (bounded staleness, §4 tailored per
        // session).
        if self.degraded_now() {
            if let Some(reply) = self.serve_degraded_read(&a)? {
                return Ok(reply);
            }
        }
        let reply = match self.forward_wan(proc3::READ, args.to_vec(), Some(a.file), true)? {
            Forwarded::Replied(bytes) => bytes,
            Forwarded::Degraded => {
                // The breaker opened while this read was blocked
                // mid-retry: escape to the cache if the staleness bound
                // allows, otherwise keep blocking like a hard mount.
                match self.serve_degraded_read(&a)? {
                    Some(reply) => return Ok(reply),
                    None => self.forward(proc3::READ, args.to_vec(), Some(a.file))?,
                }
            }
        };
        if let Ok(ReadRes::Ok { file_attributes, data, eof, .. }) =
            gvfs_xdr::from_bytes::<ReadRes>(&reply)
        {
            if self.model.caches() {
                {
                    let mut disk = self.disk.lock();
                    if let Some(attr) = file_attributes {
                        disk.put_attr(a.file, attr);
                    }
                    disk.insert_clean(a.file, a.offset, data.clone());
                }
                if self.can_serve(a.file) {
                    self.maybe_prefetch(a.file, a.offset, a.count);
                }
                // Local dirty bytes win over what the server returned:
                // re-serve from the merged cache when possible.
                let mut disk = self.disk.lock();
                if disk.has_dirty(a.file) {
                    if let Some(merged) = disk.read(a.file, a.offset, data.len()) {
                        let attr = disk.attr(a.file);
                        let res = ReadRes::Ok {
                            file_attributes: attr,
                            count: merged.len() as u32,
                            eof,
                            data: merged,
                        };
                        return encode(&res);
                    }
                }
            }
        }
        Ok(reply)
    }

    /// Serves a READ from the disk cache under the bounded-staleness
    /// rung of the degradation ladder. The cached state qualifies only
    /// if it was validated against the server within `max_staleness`:
    /// the validation point is the newer of the last successful `GETINV`
    /// exchange (which carries every invalidation the server saw, so it
    /// vouches for the whole cache) and the file's own last forwarded
    /// access. Returns `Ok(None)` when the state is too old or absent —
    /// the caller then blocks on the WAN like a hard mount.
    fn serve_degraded_read(&self, a: &ReadArgs) -> Result<Option<Vec<u8>>, RpcError> {
        if !self.degraded_fresh_enough(a.file) {
            return Ok(None);
        }
        let (attr, end, data) = {
            let mut disk = self.disk.lock();
            let Some(attr) = disk.attr(a.file) else { return Ok(None) };
            let end = (a.offset + u64::from(a.count)).min(attr.size);
            let len = end.saturating_sub(a.offset) as usize;
            match disk.read(a.file, a.offset, len) {
                Some(data) => (attr, end, data),
                None => return Ok(None),
            }
        };
        {
            let mut stats = self.stats.lock();
            stats.degraded_reads += 1;
            stats.served_local += 1;
        }
        #[cfg(feature = "trace")]
        self.emit_trace(ProtocolEvent::DegradedServe { client: self.id, fh: a.file.fileid() });
        let res = ReadRes::Ok {
            file_attributes: Some(attr),
            count: data.len() as u32,
            eof: end >= attr.size,
            data,
        };
        encode(&res).map(Some)
    }

    /// Whether `fh`'s cached state is fresh enough for the ladder's
    /// bounded-staleness rung: validated against the server within
    /// `max_staleness`, where the validation point is the newer of the
    /// last successful `GETINV` exchange (which carries every
    /// invalidation the server saw, so it vouches for the whole cache)
    /// and the file's own last forwarded access.
    fn degraded_fresh_enough(&self, fh: Fh3) -> bool {
        let staleness = Duration::from_millis(self.max_staleness_ms.load(Ordering::SeqCst));
        let now = gvfs_netsim::now();
        let validated_ms = self.last_validated_ms.load(Ordering::SeqCst);
        let mut age = Self::now_dur().saturating_sub(Duration::from_millis(validated_ms));
        if validated_ms == 0 {
            // Never polled: only the file's own forwarding history can
            // vouch for it.
            age = Duration::MAX;
        }
        if let Some(t) = self.state.lock().last_forward.get(&fh) {
            age = age.min(now.saturating_since(*t));
        }
        age <= staleness
    }

    /// Serves a GETATTR from cached attributes under the same
    /// bounded-staleness rung as [`ProxyClient::serve_degraded_read`].
    /// Attribute refreshes gate every kernel read (`noac` clients
    /// revalidate per operation), so degraded serving must cover them or
    /// the read path blocks on the dead WAN before the READ is even
    /// issued.
    fn serve_degraded_getattr(&self, fh: Fh3) -> Result<Option<Vec<u8>>, RpcError> {
        if !self.degraded_fresh_enough(fh) {
            return Ok(None);
        }
        let Some(attr) = self.disk.lock().attr(fh) else { return Ok(None) };
        {
            let mut stats = self.stats.lock();
            stats.degraded_reads += 1;
            stats.served_local += 1;
        }
        #[cfg(feature = "trace")]
        self.emit_trace(ProtocolEvent::DegradedServe { client: self.id, fh: fh.fileid() });
        encode(&GetattrRes::Ok(attr)).map(Some)
    }

    // --- pipelined read path & read-ahead -----------------------------

    /// Serves a READ from the disk cache, fetching uncached gaps over
    /// the WAN as a concurrent pipelined burst (one round trip per miss
    /// burst instead of one per gap). Returns `Ok(None)` to fall back to
    /// the serial full-forward path: no cached attributes, read
    /// pipelining disabled, or a fetch failed (the fallback retries like
    /// a hard mount and surfaces server errors verbatim).
    fn read_from_cache(&self, a: &ReadArgs) -> Result<Option<Vec<u8>>, RpcError> {
        let pipelined = self.pipeline_read.load(Ordering::SeqCst);
        for attempt in 0..32 {
            let (attr, end, len, hit) = {
                let mut disk = self.disk.lock();
                let Some(attr) = disk.attr(a.file) else { return Ok(None) };
                let end = (a.offset + u64::from(a.count)).min(attr.size);
                let len = end.saturating_sub(a.offset) as usize;
                let hit = disk.read(a.file, a.offset, len);
                (attr, end, len, hit)
            };
            if let Some(data) = hit {
                {
                    let mut stats = self.stats.lock();
                    if attempt == 0 {
                        stats.read_hits += 1;
                        stats.served_local += 1;
                    }
                }
                self.maybe_prefetch(a.file, a.offset, a.count);
                let res = ReadRes::Ok {
                    file_attributes: Some(attr),
                    count: data.len() as u32,
                    eof: end >= attr.size,
                    data,
                };
                return encode(&res).map(Some);
            }
            // The miss may be a fresh quarantine. Attribute it *before*
            // refetching: a lost dirty extent must surface as an I/O
            // error here, not be papered over by origin data.
            self.drain_integrity_events(false);
            if self.state.lock().corrupted.contains(&a.file) {
                return encode(&ReadRes::Fail { status: Nfsstat3::Io, file_attributes: None })
                    .map(Some);
            }
            if !pipelined {
                return Ok(None);
            }
            if attempt == 0 {
                self.stats.lock().read_misses += 1;
            }
            if !self.fetch_missing(a.file, a.offset, len) {
                return Ok(None);
            }
        }
        Ok(None)
    }

    /// Fills the uncached gaps of `[offset, offset+len)`: claims
    /// overlapping in-flight fetches (prefetches pay off here — their
    /// reply is already on the wire, often already arrived), parks on
    /// gaps some other reader is completing, and fans out concurrent
    /// READs for the rest. Returns whether the caller should re-check
    /// the cache; `false` falls back to the serial path.
    fn fetch_missing(&self, fh: Fh3, offset: u64, len: usize) -> bool {
        struct Claimed {
            token: u64,
            speculative: bool,
            offset: u64,
            count: u32,
            call: PendingCall,
            peer: Option<PeerMeta>,
        }
        let mut claimed: Vec<Claimed> = Vec::new();
        let mut own: Vec<(u64, u64, u32)> = Vec::new();
        let mut parked = false;
        {
            let disk = self.disk.lock();
            let gaps = disk.missing_ranges(fh, offset, len);
            if gaps.is_empty() {
                return true; // raced to a hit; caller re-serves
            }
            let mut ra = self.readahead.lock();
            let fs = ra.files.entry(fh).or_default();
            for (goff, glen) in gaps {
                let gend = goff + glen as u64;
                let mut pos = goff;
                while pos < gend {
                    // One chunk per block: prefetch entries are
                    // block-granular, so a chunk never spans two.
                    let chunk_end = gend.min(block_of(pos) + BLOCK_SIZE);
                    if let Some(e) = fs
                        .pending
                        .iter_mut()
                        .find(|e| e.offset <= pos && e.offset + e.len as u64 >= chunk_end)
                    {
                        if claimed.iter().any(|c| c.token == e.token) {
                            // Already claimed for an earlier chunk.
                        } else if let Some(call) = e.call.take() {
                            claimed.push(Claimed {
                                token: e.token,
                                speculative: e.speculative,
                                offset: e.offset,
                                count: e.len as u32,
                                call,
                                peer: e.peer.take(),
                            });
                        } else {
                            e.waiters.push(gvfs_netsim::current_actor());
                            parked = true;
                        }
                    } else {
                        let token = self.fetch_token.fetch_add(1, Ordering::SeqCst);
                        let clen = (chunk_end - pos) as usize;
                        fs.pending.push(PendingFetch {
                            token,
                            offset: pos,
                            len: clen,
                            speculative: false,
                            call: None,
                            peer: None,
                            waiters: Vec::new(),
                        });
                        own.push((token, pos, clen as u32));
                    }
                    pos = chunk_end;
                }
            }
        }
        // Phase 1: every gap fetch on the wire before the first reply is
        // claimed. With peer sourcing on and an advertised live holder,
        // the chunk goes to the lowest-latency peer over the LAN; the
        // rest go to the origin as before.
        let hint = if self.peer_read.load(Ordering::SeqCst) {
            self.peer_hints.lock().get(&fh).cloned()
        } else {
            None
        };
        let mut sent: Vec<(u64, bool, PendingCall)> = Vec::new();
        let mut peer_sent: Vec<PeerSent> = Vec::new();
        let mut ok = true;
        for (token, off, count) in own {
            if let Some(h) = &hint {
                if let Some((call, meta)) = self.peer_transmit(fh, off, count, h) {
                    peer_sent.push(PeerSent {
                        token,
                        speculative: false,
                        offset: off,
                        count,
                        call,
                        meta,
                    });
                    continue;
                }
            }
            let sendres = gvfs_xdr::to_bytes(&ReadArgs { file: fh, offset: off, count })
                .map_err(RpcError::from)
                .and_then(|args| {
                    self.wan.send(GVFS_PROXY_PROGRAM, GVFS_VERSION, proc3::READ, args)
                });
            match sendres {
                Ok(call) => sent.push((token, false, call)),
                Err(_) => {
                    self.discard_fetch(fh, token);
                    ok = false;
                }
            }
        }
        // Phase 2: claim replies, earliest sends (claimed prefetches)
        // first. A claimed prefetch that went to a peer verifies exactly
        // like a demand peer fetch.
        let mut fallback: Vec<(u64, u64, u32, bool)> = Vec::new();
        for c in claimed {
            match c.peer {
                Some(meta) => peer_sent.push(PeerSent {
                    token: c.token,
                    speculative: c.speculative,
                    offset: c.offset,
                    count: c.count,
                    call: c.call,
                    meta,
                }),
                None => match self.wan.wait_pending(c.call) {
                    Ok(bytes) => {
                        if !self.apply_fetch(fh, c.token, c.speculative, &bytes) {
                            ok = false;
                        }
                    }
                    Err(_) => {
                        self.discard_fetch(fh, c.token);
                        ok = false;
                    }
                },
            }
        }
        // Peer replies verify against the origin-attested advert; every
        // chunk a peer could not serve falls back to the origin as one
        // more pipelined burst.
        for ps in peer_sent {
            match self.finish_peer_fetch(fh, ps) {
                PeerOutcome::Applied => {}
                PeerOutcome::Cancelled => ok = false,
                PeerOutcome::Fallback(token, off, count, spec) => {
                    fallback.push((token, off, count, spec));
                }
            }
        }
        for (token, off, count, spec) in fallback {
            self.stats.lock().peer_fallbacks += 1;
            #[cfg(feature = "trace")]
            self.emit_trace(ProtocolEvent::PeerFallback { client: self.id, fh: fh.fileid() });
            let sendres = gvfs_xdr::to_bytes(&ReadArgs { file: fh, offset: off, count })
                .map_err(RpcError::from)
                .and_then(|args| {
                    self.wan.send(GVFS_PROXY_PROGRAM, GVFS_VERSION, proc3::READ, args)
                });
            match sendres {
                Ok(call) => sent.push((token, spec, call)),
                Err(_) => {
                    self.discard_fetch(fh, token);
                    ok = false;
                }
            }
        }
        for (token, spec, call) in sent {
            match self.wan.wait_pending(call) {
                Ok(bytes) => {
                    if !self.apply_fetch(fh, token, spec, &bytes) {
                        ok = false;
                    }
                }
                Err(_) => {
                    self.discard_fetch(fh, token);
                    ok = false;
                }
            }
        }
        if !ok {
            return false;
        }
        if parked {
            // The completing actor unparks us when its fetch resolves;
            // permits are banked, so a resolution that already happened
            // returns immediately.
            gvfs_netsim::park();
        }
        true
    }

    /// Applies one fetched READ reply to the disk cache — unless the
    /// reservation token is gone, which means an invalidation or recall
    /// cancelled the fetch while it was in flight: the bytes (and the
    /// piggybacked attributes) predate the invalidation and are
    /// discarded. Attributes go through the monotonic
    /// `put_attr_prefetch` guard so a reply racing a delayed write can
    /// never regress the file's own-write mtime.
    fn apply_fetch(&self, fh: Fh3, token: u64, speculative: bool, bytes: &[u8]) -> bool {
        let inner = match self.absorb_reply(Some(fh), bytes) {
            Ok(inner) => inner,
            Err(_) => {
                self.discard_fetch(fh, token);
                return false;
            }
        };
        match gvfs_xdr::from_bytes::<ReadRes>(&inner) {
            Ok(ReadRes::Ok { file_attributes, data, .. }) => {
                let mut disk = self.disk.lock();
                let mut ra = self.readahead.lock();
                let Some(entry) = ra.files.get_mut(&fh).and_then(|fs| {
                    fs.pending.iter().position(|e| e.token == token).map(|i| fs.pending.remove(i))
                }) else {
                    drop(ra);
                    drop(disk);
                    if speculative {
                        self.stats.lock().prefetch_wasted += 1;
                    }
                    return false;
                };
                if let Some(attr) = file_attributes {
                    disk.put_attr_prefetch(fh, attr);
                }
                disk.insert_clean(fh, entry.offset, data);
                drop(ra);
                drop(disk);
                if speculative {
                    self.stats.lock().prefetch_hits += 1;
                }
                for w in entry.waiters {
                    w.unpark();
                }
                true
            }
            _ => {
                self.discard_fetch(fh, token);
                false
            }
        }
    }

    /// Drops one reserved fetch (send failure, error reply) and wakes
    /// its waiters so they re-plan.
    fn discard_fetch(&self, fh: Fh3, token: u64) {
        let entry = {
            let mut ra = self.readahead.lock();
            ra.files.get_mut(&fh).and_then(|fs| {
                fs.pending.iter().position(|e| e.token == token).map(|i| fs.pending.remove(i))
            })
        };
        if let Some(entry) = entry {
            if entry.speculative {
                self.stats.lock().prefetch_wasted += 1;
            }
            for w in entry.waiters {
                w.unpark();
            }
        }
    }

    // --- peer sourcing (PEERREAD) -------------------------------------

    /// Picks the lowest-EWMA live peer advertised for `fh` and puts one
    /// `PEERREAD` for `[off, off+count)` on its LAN link. Breaker-open
    /// peers are skipped for the next-best; a send failure feeds that
    /// peer's breaker and tries the next. `None` means no live peer
    /// could take the send — the caller uses the origin.
    fn peer_transmit(
        &self,
        fh: Fh3,
        off: u64,
        count: u32,
        hint: &PeerAdvert,
    ) -> Option<(PendingCall, PeerMeta)> {
        let now = Self::now_dur();
        let mut candidates: Vec<(Duration, u32, Arc<PeerTransport>)> = Vec::new();
        {
            let peers = self.peers.lock();
            for &holder in &hint.holders {
                if holder == self.id {
                    continue;
                }
                let Some(p) = peers.get(&holder) else { continue };
                if matches!(p.breaker.state(now), BreakerState::Open) {
                    continue;
                }
                candidates.push((p.breaker.ewma_latency(), holder, Arc::clone(p)));
            }
        }
        // Proven peers (a successful transfer behind them) first by
        // EWMA latency; untried peers — whose zero EWMA says nothing —
        // are probes of last resort. The peer id breaks ties so the
        // selection is deterministic.
        candidates.sort_by_key(|(ewma, id, _)| (ewma.is_zero(), *ewma, *id));
        let args =
            gvfs_xdr::to_bytes(&PeerReadArgs { fh, offset: off, count, change: hint.change })
                .ok()?;
        for (_, id, peer) in candidates {
            let started = Self::now_dur();
            match peer.rpc.send(
                GVFS_CALLBACK_PROGRAM,
                GVFS_VERSION,
                proc_ext::PEERREAD,
                args.clone(),
            ) {
                Ok(call) => {
                    let meta = PeerMeta {
                        peer,
                        peer_id: id,
                        started,
                        change: hint.change,
                        total_len: hint.len,
                    };
                    return Some((call, meta));
                }
                Err(_) => peer.breaker.on_failure(Self::now_dur()),
            }
        }
        // The advert named live holders but none could carry the fetch
        // (breaker open, unregistered, or the send itself failed — e.g.
        // a partitioned LAN link errors at transmit time). The caller
        // goes to the origin, and that is a peer fallback just as much
        // as a post-flight timeout.
        if hint.holders.iter().any(|&h| h != self.id) {
            self.stats.lock().peer_fallbacks += 1;
            #[cfg(feature = "trace")]
            self.emit_trace(ProtocolEvent::PeerFallback { client: self.id, fh: fh.fileid() });
        }
        None
    }

    /// Claims one peer reply and verifies it end to end against the
    /// origin-attested advert: the echoed change attribute must match,
    /// the data must be exactly the requested length and stay within the
    /// attested file size, and the FNV content hash must check out. A
    /// verified block applies under the same reservation-token
    /// discipline as an origin fetch, so an invalidation that raced the
    /// transfer drops it on the floor.
    fn finish_peer_fetch(&self, fh: Fh3, ps: PeerSent) -> PeerOutcome {
        let m = &ps.meta;
        let res = m.peer.rpc.wait_pending(ps.call);
        let now = Self::now_dur();
        let verified: Option<Vec<u8>> = match res {
            Ok(bytes) => match gvfs_xdr::from_bytes::<PeerReadRes>(&bytes) {
                Ok(PeerReadRes::Ok { change, len: _, hash, data })
                    if change == m.change
                        && data.len() == ps.count as usize
                        && ps.offset + data.len() as u64 <= m.total_len
                        && fnv(&data) == hash =>
                {
                    m.peer.breaker.on_success(now, now.saturating_sub(m.started));
                    Some(data)
                }
                Ok(PeerReadRes::Miss) => {
                    // An honest miss is a healthy RPC (no breaker
                    // failure) but not a transfer: recording it as a
                    // success would hand a consistently-missing peer an
                    // attractive EWMA, so the breaker only samples
                    // verified transfers.
                    None
                }
                Ok(PeerReadRes::Ok { .. }) | Err(_) => {
                    // Garbled or attestation-mismatched reply: the peer
                    // is stale or misbehaving; its breaker absorbs it.
                    m.peer.breaker.on_failure(now);
                    None
                }
            },
            Err(_) => {
                m.peer.breaker.on_failure(now);
                None
            }
        };
        #[cfg(feature = "trace")]
        self.emit_trace(ProtocolEvent::PeerFetch {
            client: self.id,
            peer: m.peer_id,
            fh: fh.fileid(),
            ok: verified.is_some(),
        });
        #[cfg(not(feature = "trace"))]
        let _ = m.peer_id;
        match verified {
            Some(data) => {
                if self.apply_peer_fetch(fh, ps.token, ps.speculative, data) {
                    self.stats.lock().peer_hits += 1;
                    PeerOutcome::Applied
                } else {
                    PeerOutcome::Cancelled
                }
            }
            None => {
                self.stats.lock().peer_misses += 1;
                PeerOutcome::Fallback(ps.token, ps.offset, ps.count, ps.speculative)
            }
        }
    }

    /// Applies one verified peer-served block under the reservation
    /// token: if an invalidation or recall removed the token while the
    /// transfer was in flight, the bytes predate the invalidation and
    /// are discarded (same discipline as [`ProxyClient::apply_fetch`]).
    /// Peers never carry attributes — the reader's own origin-attested
    /// attributes stay authoritative.
    fn apply_peer_fetch(&self, fh: Fh3, token: u64, speculative: bool, data: Vec<u8>) -> bool {
        let mut disk = self.disk.lock();
        let mut ra = self.readahead.lock();
        let Some(entry) = ra.files.get_mut(&fh).and_then(|fs| {
            fs.pending.iter().position(|e| e.token == token).map(|i| fs.pending.remove(i))
        }) else {
            drop(ra);
            drop(disk);
            if speculative {
                self.stats.lock().prefetch_wasted += 1;
            }
            return false;
        };
        disk.insert_clean(fh, entry.offset, data);
        drop(ra);
        drop(disk);
        if speculative {
            self.stats.lock().prefetch_hits += 1;
        }
        for w in entry.waiters {
            w.unpark();
        }
        true
    }

    /// Serves one `PEERREAD` from this client's clean cache. The block
    /// is served only while every origin attestation holds: cached
    /// attributes present (an invalidation or recall drops them, so a
    /// condemned block is never served), the change attribute matching
    /// the requester's origin-attested value, no local dirty bytes, and
    /// the range fully cached. Anything else is an honest `Miss` — the
    /// requester falls back to the origin.
    fn handle_peerread(&self, args: &[u8]) -> Result<Vec<u8>, RpcError> {
        let a: PeerReadArgs = decode(args)?;
        let res = if self.break_peerread.load(Ordering::SeqCst) {
            // Chaos selftest knob: serve raw store content with the
            // requester's attestation echoed back. After an invalidation
            // the attributes are gone but the condemned bytes linger in
            // the store until revalidation — exactly the stale serve the
            // oracle must convict.
            let data = self.disk.lock().read(a.fh, a.offset, a.count as usize);
            match data {
                Some(data) => PeerReadRes::Ok {
                    change: a.change,
                    len: a.offset + data.len() as u64,
                    hash: fnv(&data),
                    data,
                },
                None => PeerReadRes::Miss,
            }
        } else {
            let mut disk = self.disk.lock();
            let attested = disk.attr(a.fh).filter(|attr| change_of(attr.mtime) == a.change);
            let served = attested.and_then(|attr| {
                if disk.has_dirty(a.fh) {
                    return None;
                }
                let end = (a.offset + u64::from(a.count)).min(attr.size);
                let len = end.saturating_sub(a.offset) as usize;
                if len != a.count as usize {
                    // The requester clamps against the same attested
                    // size; a disagreement means a different version.
                    return None;
                }
                disk.read(a.fh, a.offset, len).map(|data| (attr.size, data))
            });
            match served {
                Some((size, data)) => {
                    PeerReadRes::Ok { change: a.change, len: size, hash: fnv(&data), data }
                }
                None => PeerReadRes::Miss,
            }
        };
        if let PeerReadRes::Ok { data, .. } = &res {
            self.stats.lock().peer_bytes_served += data.len() as u64;
            #[cfg(feature = "trace")]
            self.emit_trace(ProtocolEvent::PeerServe {
                client: self.id,
                fh: a.fh.fileid(),
                bytes: data.len() as u32,
            });
        }
        encode(&res)
    }

    /// Feeds the sequential-access detector with one served read and,
    /// when a run of `trigger` sequential reads is up, speculatively
    /// pipelines the next `window` uncached block-aligned READs onto the
    /// wire. Nobody waits on them: a later demand read claims the
    /// pending reply (usually already arrived — the WAN round trip
    /// overlapped the application's compute) or parks on it.
    fn maybe_prefetch(&self, fh: Fh3, offset: u64, count: u32) {
        let mut plan: Vec<(u64, u64, u32)> = Vec::new();
        {
            let disk = self.disk.lock();
            let Some(attr) = disk.attr(fh) else { return };
            let end = (offset + u64::from(count)).min(attr.size);
            let mut ra = self.readahead.lock();
            let (window, trigger) = (ra.window, ra.trigger);
            let fs = ra.files.entry(fh).or_default();
            if offset == fs.next_expected || (offset < fs.next_expected && end > fs.next_expected) {
                fs.run = fs.run.saturating_add(1);
            } else {
                fs.run = 1;
            }
            fs.next_expected = end;
            if window == 0 || fs.run < trigger || !self.pipeline_read.load(Ordering::SeqCst) {
                return;
            }
            let first = block_of(end);
            for i in 0..window {
                let b = first + i as u64 * BLOCK_SIZE;
                if b >= attr.size {
                    break;
                }
                let blen = BLOCK_SIZE.min(attr.size - b) as usize;
                let blocked = fs
                    .pending
                    .iter()
                    .any(|e| e.offset < b + blen as u64 && e.offset + e.len as u64 > b);
                if blocked || disk.missing_ranges(fh, b, blen).is_empty() {
                    continue;
                }
                let token = self.fetch_token.fetch_add(1, Ordering::SeqCst);
                fs.pending.push(PendingFetch {
                    token,
                    offset: b,
                    len: blen,
                    speculative: true,
                    call: None,
                    peer: None,
                    waiters: Vec::new(),
                });
                plan.push((token, b, blen as u32));
            }
        }
        // Read-ahead pipelines over peers too: with an advertised live
        // holder, speculative blocks go out as LAN `PEERREAD`s; the
        // claimant verifies them like any peer fetch.
        let hint = if self.peer_read.load(Ordering::SeqCst) {
            self.peer_hints.lock().get(&fh).cloned()
        } else {
            None
        };
        let mut issued = 0u64;
        for (token, b, blen) in plan {
            let peer_tx = hint.as_ref().and_then(|h| self.peer_transmit(fh, b, blen, h));
            let sendres = match peer_tx {
                Some((call, meta)) => Ok((call, Some(meta))),
                None => gvfs_xdr::to_bytes(&ReadArgs { file: fh, offset: b, count: blen })
                    .map_err(RpcError::from)
                    .and_then(|args| {
                        self.wan.send(GVFS_PROXY_PROGRAM, GVFS_VERSION, proc3::READ, args)
                    })
                    .map(|call| (call, None)),
            };
            match sendres {
                Ok((call, meta)) => {
                    let mut stored = false;
                    {
                        let mut ra = self.readahead.lock();
                        if let Some(e) = ra
                            .files
                            .get_mut(&fh)
                            .and_then(|fs| fs.pending.iter_mut().find(|e| e.token == token))
                        {
                            e.call = Some(call);
                            e.peer = meta;
                            stored = true;
                        }
                    }
                    if stored {
                        issued += 1;
                    } else {
                        // Cancelled between reservation and send;
                        // dropping the call abandons the reply.
                        self.stats.lock().prefetch_wasted += 1;
                    }
                }
                Err(_) => self.discard_fetch(fh, token),
            }
        }
        if issued > 0 {
            self.stats.lock().prefetch_issued += issued;
        }
    }

    /// Cancels every in-flight fetch for `fh` and disarms its detector.
    /// Must be called under the same disk-lock hold that invalidates the
    /// file so a stale reply can never apply after the invalidation.
    fn cancel_prefetch(&self, fh: Fh3) {
        let entries = {
            let mut ra = self.readahead.lock();
            match ra.files.get_mut(&fh) {
                Some(fs) => {
                    fs.run = 0;
                    std::mem::take(&mut fs.pending)
                }
                None => return,
            }
        };
        self.retire_cancelled(entries);
    }

    /// Cancels every in-flight fetch of every file (force invalidation,
    /// RECOVER, crash reconciliation).
    fn cancel_all_prefetch(&self) {
        let mut all = Vec::new();
        {
            let mut ra = self.readahead.lock();
            for fs in ra.files.values_mut() {
                fs.run = 0;
                all.append(&mut fs.pending);
            }
        }
        self.retire_cancelled(all);
    }

    fn retire_cancelled(&self, entries: Vec<PendingFetch>) {
        let mut wasted = 0u64;
        let mut waiters = Vec::new();
        for e in entries {
            // Dropping an unclaimed call abandons its reply at the
            // transport. Claimed calls are discarded by their claimant,
            // which finds the token gone and counts the waste itself.
            if e.speculative && e.call.is_some() {
                wasted += 1;
            }
            waiters.extend(e.waiters);
        }
        if wasted > 0 {
            self.stats.lock().prefetch_wasted += wasted;
        }
        for w in waiters {
            w.unpark();
        }
    }

    fn op_write(&self, args: &[u8]) -> Result<Vec<u8>, RpcError> {
        let a: WriteArgs = decode(args)?;
        if self.state.lock().corrupted.contains(&a.file) {
            return encode(&WriteRes::Fail { status: Nfsstat3::Io, file_wcc: WccData::default() });
        }
        let wb_allowed = self.write_back
            && match self.model {
                ConsistencyModel::Passthrough => false,
                ConsistencyModel::InvalidationPolling { .. } => true,
                ConsistencyModel::DelegationCallback(_) => {
                    self.state.lock().delegations.get(&a.file) == Some(&DelegationGrant::Write)
                }
            }
            && self.disk.lock().attr(a.file).is_some();
        if wb_allowed {
            let mut disk = self.disk.lock();
            // Re-checked under one lock hold: the attribute could have
            // been evicted since the wb_allowed probe. If it is gone the
            // write simply forwards.
            if let Some(mut attr) = disk.attr(a.file) {
                {
                    let mut st = self.state.lock();
                    st.wb_base.entry(a.file).or_insert(attr.mtime);
                }
                disk.write_dirty(a.file, a.offset, a.data.clone());
                let before =
                    gvfs_nfs3::WccAttr { size: attr.size, mtime: attr.mtime, ctime: attr.ctime };
                attr.size = attr.size.max(a.offset + a.data.len() as u64);
                attr.used = attr.size;
                let now = gvfs_netsim::now();
                attr.mtime = NfsTime3 {
                    seconds: (now.as_nanos() / 1_000_000_000) as u32,
                    nseconds: (now.as_nanos() % 1_000_000_000) as u32,
                };
                attr.ctime = attr.mtime;
                disk.put_attr_own_write(a.file, attr);
                drop(disk);
                self.served();
                return encode(&WriteRes::Ok {
                    file_wcc: WccData { before: Some(before), after: Some(attr) },
                    count: a.data.len() as u32,
                    committed: StableHow::FileSync,
                    verf: 1,
                });
            }
        }
        let reply = self.forward(proc3::WRITE, args.to_vec(), Some(a.file))?;
        if let Ok(WriteRes::Ok { file_wcc, .. }) = gvfs_xdr::from_bytes::<WriteRes>(&reply) {
            if self.model.caches() {
                let mut disk = self.disk.lock();
                if let Some(attr) = file_wcc.after {
                    disk.put_attr_own_write(a.file, attr);
                }
                disk.insert_clean(a.file, a.offset, a.data.clone());
            }
        }
        Ok(reply)
    }

    fn op_create_like(&self, procedure: u32, args: &[u8]) -> Result<Vec<u8>, RpcError> {
        // CREATE / MKDIR / SYMLINK share the NewObjRes shape.
        let (dir, name) = match procedure {
            proc3::CREATE => {
                let a: CreateArgs = decode(args)?;
                (a.dir, a.name)
            }
            proc3::MKDIR => {
                let a: MkdirArgs = decode(args)?;
                (a.dir, a.name)
            }
            proc3::SYMLINK => {
                let a: SymlinkArgs = decode(args)?;
                (a.dir, a.name)
            }
            _ => unreachable!("caller routes only create-like procedures"),
        };
        let reply = self.forward(procedure, args.to_vec(), Some(dir))?;
        if let Ok(gvfs_nfs3::NewObjRes::Ok { obj, obj_attributes, dir_wcc }) =
            gvfs_xdr::from_bytes::<gvfs_nfs3::NewObjRes>(&reply)
        {
            if self.model.caches() {
                let mut disk = self.disk.lock();
                if let (Some(fh), Some(attr)) = (obj, obj_attributes) {
                    disk.put_attr(fh, attr);
                    disk.put_lookup(dir, &name, fh);
                }
                if let Some(attr) = dir_wcc.after {
                    disk.put_attr_own_write(dir, attr);
                }
            }
        }
        Ok(reply)
    }

    fn op_remove_like(&self, procedure: u32, args: &[u8]) -> Result<Vec<u8>, RpcError> {
        let a: DirOpArgs = decode(args)?;
        let reply = self.forward(procedure, args.to_vec(), Some(a.dir))?;
        if let Ok(res) = gvfs_xdr::from_bytes::<gvfs_nfs3::DirOpRes>(&reply) {
            if self.model.caches() && res.status.is_ok() {
                let mut disk = self.disk.lock();
                if let Some(Some(gone)) = disk.lookup(a.dir, &a.name) {
                    disk.forget_file(gone);
                    self.cancel_prefetch(gone);
                    self.drop_peer_hint(gone);
                    {
                        let mut st = self.state.lock();
                        st.wb_base.remove(&gone);
                        st.corrupted.remove(&gone);
                        st.delegations.remove(&gone);
                    }
                }
                disk.put_negative_lookup(a.dir, &a.name);
                if let Some(attr) = res.dir_wcc.after {
                    disk.put_attr_own_write(a.dir, attr);
                }
            }
        }
        Ok(reply)
    }

    fn op_rename(&self, args: &[u8]) -> Result<Vec<u8>, RpcError> {
        let a: RenameArgs = decode(args)?;
        let reply = self.forward(proc3::RENAME, args.to_vec(), Some(a.from_dir))?;
        if let Ok(res) = gvfs_xdr::from_bytes::<gvfs_nfs3::RenameRes>(&reply) {
            if self.model.caches() && res.status.is_ok() {
                let mut disk = self.disk.lock();
                let moved = disk.lookup(a.from_dir, &a.from_name).flatten();
                disk.put_negative_lookup(a.from_dir, &a.from_name);
                if let Some(fh) = moved {
                    disk.put_lookup(a.to_dir, &a.to_name, fh);
                }
                if let Some(attr) = res.fromdir_wcc.after {
                    disk.put_attr_own_write(a.from_dir, attr);
                }
                if let Some(attr) = res.todir_wcc.after {
                    disk.put_attr_own_write(a.to_dir, attr);
                }
            }
        }
        Ok(reply)
    }

    fn op_link(&self, args: &[u8]) -> Result<Vec<u8>, RpcError> {
        let a: LinkArgs = decode(args)?;
        let reply = self.forward(proc3::LINK, args.to_vec(), Some(a.dir))?;
        if let Ok(res) = gvfs_xdr::from_bytes::<gvfs_nfs3::LinkRes>(&reply) {
            if self.model.caches() && res.status.is_ok() {
                let mut disk = self.disk.lock();
                disk.put_lookup(a.dir, &a.name, a.file);
                if let Some(attr) = res.file_attributes {
                    disk.put_attr(a.file, attr);
                }
                if let Some(attr) = res.linkdir_wcc.after {
                    disk.put_attr_own_write(a.dir, attr);
                }
            }
        }
        Ok(reply)
    }

    fn op_setattr(&self, args: &[u8]) -> Result<Vec<u8>, RpcError> {
        let a: gvfs_nfs3::SetattrArgs = decode(args)?;
        let reply = self.forward(proc3::SETATTR, args.to_vec(), Some(a.object))?;
        if let Ok(res) = gvfs_xdr::from_bytes::<SetattrRes>(&reply) {
            if self.model.caches() && res.status.is_ok() {
                if let Some(attr) = res.obj_wcc.after {
                    self.disk.lock().put_attr_own_write(a.object, attr);
                }
            }
        }
        Ok(reply)
    }

    fn op_readdir(&self, procedure: u32, args: &[u8]) -> Result<Vec<u8>, RpcError> {
        let dir = if procedure == proc3::READDIR {
            decode::<gvfs_nfs3::ReaddirArgs>(args)?.dir
        } else {
            decode::<gvfs_nfs3::ReaddirplusArgs>(args)?.dir
        };
        let reply = self.forward(procedure, args.to_vec(), Some(dir))?;
        if self.model.caches() {
            if procedure == proc3::READDIR {
                if let Ok(ReaddirRes::Ok { dir_attributes: Some(attr), .. }) =
                    gvfs_xdr::from_bytes::<ReaddirRes>(&reply)
                {
                    self.disk.lock().put_attr(dir, attr);
                }
            } else if let Ok(gvfs_nfs3::ReaddirplusRes::Ok { dir_attributes, entries, .. }) =
                gvfs_xdr::from_bytes::<gvfs_nfs3::ReaddirplusRes>(&reply)
            {
                let mut disk = self.disk.lock();
                if let Some(attr) = dir_attributes {
                    disk.put_attr(dir, attr);
                }
                for e in &entries {
                    let fh = e.name_handle.unwrap_or(Fh3::from_fileid(e.fileid));
                    disk.put_lookup(dir, &e.name, fh);
                    if let Some(attr) = e.name_attributes {
                        disk.put_attr(fh, attr);
                    }
                }
            }
        }
        Ok(reply)
    }

    // --- polling (§4.2) ----------------------------------------------

    /// Performs one `GETINV` exchange (including any `poll-again`
    /// continuation) and applies the invalidations. Returns the number
    /// of invalidation handles applied, or `None` if the server was
    /// unreachable (soft state: just poll again next window).
    pub fn poll_once(&self) -> Option<usize> {
        let mut applied = 0;
        loop {
            let last = *self.poll_ts.lock();
            let args = gvfs_xdr::to_bytes(&GetinvArgs { last_timestamp: last }).ok()?;
            let started = Self::now_dur();
            let bytes =
                match self.wan.call(GVFS_PROXY_PROGRAM, GVFS_VERSION, proc_ext::GETINV, args) {
                    Ok(bytes) => {
                        let now = Self::now_dur();
                        self.breaker.on_success(now, now.saturating_sub(started));
                        bytes
                    }
                    Err(e) => {
                        self.note_wan_failure(&e);
                        return None;
                    }
                };
            let res: GetinvRes = gvfs_xdr::from_bytes(&bytes).ok()?;
            // A successful exchange validates the whole cache as of its
            // send time: the reply carries every invalidation since the
            // previous poll, so anything still cached is provably
            // current up to `started`. This is what the degradation
            // ladder's bounded-staleness rung measures age against.
            let started_ms = u64::try_from(started.as_millis()).unwrap_or(u64::MAX);
            self.last_validated_ms.fetch_max(started_ms, Ordering::SeqCst);
            if std::env::var_os("GVFS_DEBUG_POLL").is_some() {
                eprintln!(
                    "[{}] poller id={} getinv last={last:?} -> ts={} force={} n={}",
                    gvfs_netsim::now(),
                    self.id,
                    res.timestamp,
                    res.force_invalidate,
                    res.handles.len()
                );
            }
            *self.poll_ts.lock() = Some(res.timestamp);
            // Cancellations happen under the same disk-lock hold as the
            // invalidations: a prefetch still in flight for an
            // invalidated file must be discarded before any of its
            // stale bytes can reach the cache.
            let mut disk = self.disk.lock();
            if res.force_invalidate {
                disk.invalidate_all_attrs();
                self.cancel_all_prefetch();
                self.drop_all_peer_hints();
            }
            for fh in &res.handles {
                disk.invalidate_attr(*fh);
                self.cancel_prefetch(*fh);
                self.drop_peer_hint(*fh);
                applied += 1;
            }
            drop(disk);
            let mut stats = self.stats.lock();
            stats.invalidations_applied += res.handles.len() as u64;
            if res.force_invalidate {
                stats.force_invalidations += 1;
            }
            drop(stats);
            #[cfg(feature = "trace")]
            self.emit_trace(ProtocolEvent::Validate {
                client: self.id,
                force: res.force_invalidate,
                n: res.handles.len() as u32,
                ts: res.timestamp,
            });
            if !res.poll_again {
                self.settle_disk();
                return Some(applied);
            }
        }
    }

    /// Runs the polling loop until [`ProxyClient::shutdown`]. Spawn this
    /// on its own actor.
    pub fn run_poller(self: &Arc<Self>, period: Duration, backoff_max: Option<Duration>) {
        *self.poller.lock() = Some(gvfs_netsim::current_actor());
        let mut window = period;
        loop {
            gvfs_netsim::park_timeout(window);
            if self.stopped.load(Ordering::SeqCst) {
                return;
            }
            let applied = self.poll_once();
            window = match (backoff_max, applied) {
                // Exponential back-off while quiet — and while the server
                // is unreachable, so a partition doesn't turn the poller
                // into a hot loop of doomed GETINVs.
                (Some(max), Some(0) | None) => (window * 2).min(max),
                (Some(_), Some(_)) => period,
                (None, _) => period,
            };
        }
    }

    // --- write-back flushing ------------------------------------------

    /// Writes back the dirty segments of one block over the WAN and
    /// marks them clean.
    fn flush_block(&self, fh: Fh3, block_offset: u64) {
        let segments: Vec<(u64, Vec<u8>)> =
            self.disk.lock().dirty_in_block(fh, block_offset, BLOCK_SIZE);
        if segments.is_empty() {
            return;
        }
        for (offset, data) in segments {
            let count = data.len() as u32;
            let Ok(args) = gvfs_xdr::to_bytes(&WriteArgs {
                file: fh,
                offset,
                count,
                stable: StableHow::FileSync,
                data,
            }) else {
                // Leave the segment dirty; a later flush retries it.
                return;
            };
            // Failures leave the segment dirty for a later retry.
            if self.forward(proc3::WRITE, args, Some(fh)).is_err() {
                return;
            }
        }
        let mut disk = self.disk.lock();
        disk.clean_range(fh, block_offset, BLOCK_SIZE);
        if !disk.has_dirty(fh) {
            self.state.lock().wb_base.remove(&fh);
        }
    }

    /// Writes back the dirty segments of the given blocks as one
    /// pipelined batch: every WRITE goes on the wire before the first
    /// reply is claimed, so a trickle of N blocks costs N serializations
    /// plus one WAN round trip instead of N round trips. Blocks whose
    /// WRITEs fail stay dirty and are retried through the serial
    /// (hard-mount) path.
    fn flush_blocks(&self, fh: Fh3, blocks: &[u64]) {
        if blocks.is_empty() {
            return;
        }
        if !self.pipeline.load(Ordering::SeqCst) {
            for &block in blocks {
                self.flush_block(fh, block);
            }
            return;
        }
        // Phase 1: every segment of every block on the wire.
        let mut in_flight = Vec::new();
        let mut failed: HashSet<u64> = HashSet::new();
        for &block in blocks {
            let segments: Vec<(u64, Vec<u8>)> =
                self.disk.lock().dirty_in_block(fh, block, BLOCK_SIZE);
            for (offset, data) in segments {
                let count = data.len() as u32;
                let Ok(args) = gvfs_xdr::to_bytes(&WriteArgs {
                    file: fh,
                    offset,
                    count,
                    stable: StableHow::FileSync,
                    data,
                }) else {
                    failed.insert(block);
                    continue;
                };
                match self.wan.send(GVFS_PROXY_PROGRAM, GVFS_VERSION, proc3::WRITE, args) {
                    Ok(call) => in_flight.push((block, call)),
                    Err(_) => {
                        failed.insert(block);
                    }
                }
            }
        }
        // Phase 2: claim replies (in send order) and apply piggybacked
        // grants.
        for (block, call) in in_flight {
            match self.wan.wait_pending(call) {
                Ok(bytes) => {
                    if self.absorb_reply(Some(fh), &bytes).is_err() {
                        failed.insert(block);
                    }
                }
                Err(_) => {
                    failed.insert(block);
                }
            }
        }
        // Mark the fully-acknowledged blocks clean.
        {
            let mut disk = self.disk.lock();
            for &block in blocks {
                if !failed.contains(&block) {
                    disk.clean_range(fh, block, BLOCK_SIZE);
                }
            }
            if !disk.has_dirty(fh) {
                self.state.lock().wb_base.remove(&fh);
            }
        }
        // Transport failures retry serially; the serial path waits out
        // an outage like a hard mount.
        for &block in blocks {
            if failed.contains(&block) {
                self.flush_block(fh, block);
            }
        }
    }

    /// Flushes every dirty block of every file (unmount/shutdown path),
    /// one pipelined batch per file.
    pub fn flush_all(&self) {
        let files = self.disk.lock().dirty_files();
        for fh in files {
            let blocks = self.disk.lock().dirty_blocks(fh, BLOCK_SIZE);
            self.flush_blocks(fh, &blocks);
        }
    }

    /// Drains the flush queue, grouping queued blocks into one pipelined
    /// batch per file.
    fn drain_flush_queue(&self) {
        loop {
            let mut batch: Vec<(Fh3, u64)> = Vec::new();
            {
                let mut q = self.flush_queue.lock();
                while let Some(item) = q.pop_front() {
                    batch.push(item);
                }
            }
            if batch.is_empty() {
                return;
            }
            let mut by_file: Vec<(Fh3, Vec<u64>)> = Vec::new();
            for (fh, block) in batch {
                match by_file.iter_mut().find(|(f, _)| *f == fh) {
                    Some((_, blocks)) => blocks.push(block),
                    None => by_file.push((fh, vec![block])),
                }
            }
            for (fh, blocks) in by_file {
                self.flush_blocks(fh, &blocks);
            }
            self.settle_disk();
        }
    }

    /// Runs the background flusher until shutdown: parked until a
    /// partial write-back queues blocks. Spawn this on its own actor.
    pub fn run_flusher(self: &Arc<Self>) {
        *self.flusher.lock() = Some(gvfs_netsim::current_actor());
        loop {
            gvfs_netsim::park();
            let stopping = self.stopped.load(Ordering::SeqCst);
            // Drain whatever is queued (everything, when stopping).
            self.drain_flush_queue();
            if stopping {
                return;
            }
        }
    }

    // --- WAN health supervision -----------------------------------------

    /// Runs the WAN health supervisor until shutdown: while the breaker
    /// is degraded it paces half-open probes (a `GETINV`, which doubles
    /// as a whole-cache validation point on success), and after a heal
    /// it re-promotes the session to full delegation semantics. Spawn
    /// this on its own actor (the session middleware does, for
    /// delegation-model sessions with the ladder enabled).
    pub fn run_supervisor(self: &Arc<Self>) {
        const TICK: Duration = Duration::from_secs(1);
        *self.supervisor.lock() = Some(gvfs_netsim::current_actor());
        loop {
            gvfs_netsim::park_timeout(TICK);
            if self.stopped.load(Ordering::SeqCst) {
                return;
            }
            match self.breaker.state(Self::now_dur()) {
                // Open: the cooldown has not elapsed; wait it out.
                BreakerState::Open => {}
                // Probe. Success closes the breaker and advances the
                // validation point; failure re-opens it with a doubled
                // cooldown. Either way `poll_once` feeds the breaker.
                BreakerState::HalfOpen => {
                    self.poll_once();
                }
                BreakerState::Closed => {
                    if self.needs_resync.swap(false, Ordering::SeqCst) {
                        self.repromote();
                    }
                }
            }
        }
    }

    /// Re-promotes the session after an outage healed. The delegations
    /// held before the outage may have been revoked server-side (lease
    /// expiry, short-circuited recalls) without this client hearing the
    /// recalls, so they are dropped wholesale and re-acquired through
    /// normal forwarding; dirty write-back data is reconciled against
    /// the server under the crash-recovery rules — replayed only when
    /// the server copy is provably unchanged (§4.3.4). Unlike a crash,
    /// a conflicting change does not poison the file: the stale dirty
    /// data is dropped and fresh data refetched, so applications see a
    /// consistent (if late) view instead of a permanent I/O error.
    fn repromote(&self) {
        // Drain the invalidation stream first: every file the server
        // saw modified during the outage loses its cached attributes,
        // so post-heal reads revalidate instead of serving outage-stale
        // data. A failed poll means the heal was illusory — retry on a
        // later tick.
        if self.poll_once().is_none() {
            self.needs_resync.store(true, Ordering::SeqCst);
            return;
        }
        {
            let mut st = self.state.lock();
            st.delegations.clear();
            st.noncacheable.clear();
        }
        let discarded = self.reconcile_dirty(false);
        let _ = &discarded;
        self.stats.lock().repromotions += 1;
        #[cfg(feature = "trace")]
        self.emit_trace(ProtocolEvent::Repromote {
            client: self.id,
            discarded: discarded.len() as u32,
        });
    }

    /// Stops the poller, flusher, supervisor, and scrubber actors.
    pub fn shutdown(&self) {
        self.stopped.store(true, Ordering::SeqCst);
        if let Some(h) = self.poller.lock().clone() {
            h.unpark();
        }
        if let Some(h) = self.flusher.lock().clone() {
            h.unpark();
        }
        if let Some(h) = self.supervisor.lock().clone() {
            h.unpark();
        }
        if let Some(h) = self.scrubber.lock().clone() {
            h.unpark();
        }
    }

    // --- callbacks (§4.3) ----------------------------------------------

    fn handle_callback(&self, args: &[u8]) -> Result<Vec<u8>, RpcError> {
        let a: CallbackArgs = decode(args)?;
        if std::env::var_os("GVFS_DEBUG_RECALL").is_some() {
            eprintln!("[{}] client {} callback {:?}", gvfs_netsim::now(), self.id, a);
        }
        self.stats.lock().callbacks += 1;
        #[cfg(feature = "trace")]
        self.emit_trace(ProtocolEvent::RecallRecv {
            client: self.id,
            fh: a.fh.fileid(),
            kind: match a.kind {
                CallbackKind::RecallRead => TraceKind::Read,
                CallbackKind::RecallWrite => TraceKind::Write,
            },
        });
        match a.kind {
            CallbackKind::RecallRead => {
                self.state.lock().delegations.remove(&a.fh);
                {
                    let mut disk = self.disk.lock();
                    disk.invalidate_attr(a.fh);
                    self.cancel_prefetch(a.fh);
                    self.drop_peer_hint(a.fh);
                }
                encode(&CallbackRes::default())
            }
            CallbackKind::RecallWrite => {
                self.state.lock().delegations.remove(&a.fh);
                {
                    let mut disk = self.disk.lock();
                    disk.invalidate_attr(a.fh);
                    self.cancel_prefetch(a.fh);
                    self.drop_peer_hint(a.fh);
                }
                let blocks = self.disk.lock().dirty_blocks(a.fh, BLOCK_SIZE);
                if blocks.is_empty() {
                    return encode(&CallbackRes::default());
                }
                let threshold = self.deleg_config().partial_writeback_threshold;
                if blocks.len() <= threshold {
                    // Small enough: flush inline (pipelined) before
                    // replying.
                    self.flush_blocks(a.fh, &blocks);
                    encode(&CallbackRes::default())
                } else {
                    // Partial write-back: submit the contended block
                    // immediately, report the rest, trickle them in the
                    // background (§4.3.2). A metadata-only recall (no
                    // requested block) flushes the highest block so the
                    // server's file size becomes correct at once.
                    let mut remaining = blocks;
                    let wanted =
                        a.requested_offset.map(block_of).or_else(|| remaining.last().copied());
                    if let Some(wanted) = wanted {
                        if let Some(pos) = remaining.iter().position(|b| *b == wanted) {
                            remaining.remove(pos);
                            self.flush_block(a.fh, wanted);
                        }
                    }
                    {
                        let mut q = self.flush_queue.lock();
                        for block in &remaining {
                            q.push_back((a.fh, *block));
                        }
                    }
                    if let Some(h) = self.flusher.lock().clone() {
                        h.unpark();
                    }
                    encode(&CallbackRes { pending_blocks: remaining })
                }
            }
        }
    }

    fn handle_recover(&self) -> Result<Vec<u8>, RpcError> {
        // Cache-wide callback: invalidate all attributes and report the
        // files we hold dirty so the server can rebuild its table.
        let mut disk = self.disk.lock();
        disk.invalidate_all_attrs();
        self.cancel_all_prefetch();
        self.drop_all_peer_hints();
        let dirty_files = disk.dirty_files();
        drop(disk);
        self.state.lock().delegations.clear();
        encode(&RecoverRes { dirty_files })
    }

    // --- crash recovery (§4.3.4, client side) ---------------------------

    /// Reconciles after a proxy-client crash: the disk cache survived,
    /// volatile state did not. All attributes are invalidated; for each
    /// file with dirty data, one block is written back to try to
    /// reacquire the delegation — unless the server-side file changed
    /// during the crash, in which case the dirty data is discarded as
    /// corrupted and subsequent application access reports an I/O error.
    ///
    /// Returns the handles found corrupted.
    pub fn crash_recover(&self) -> Vec<Fh3> {
        #[cfg(feature = "trace")]
        self.emit_trace(ProtocolEvent::ClientCrash { client: self.id });
        self.crash_recover_inner()
    }

    /// Reconciles after a whole-machine crash and restart: the block
    /// store reopens from its backing disk first — a persistent store
    /// replays its index and discards entries whose dirty WAL records
    /// are torn; the in-memory store comes back empty — and then the
    /// usual crash recovery of [`ProxyClient::crash_recover`] runs over
    /// whatever dirty data provably survived.
    pub fn crash_restart(&self) -> Vec<Fh3> {
        #[cfg(feature = "trace")]
        self.emit_trace(ProtocolEvent::ClientCrash { client: self.id });
        self.disk.lock().crash_reopen_store();
        // Replaying the on-disk index is real I/O: charge it to the
        // restarting actor's clock.
        self.settle_disk();
        self.crash_recover_inner()
    }

    fn crash_recover_inner(&self) -> Vec<Fh3> {
        {
            let mut st = self.state.lock();
            st.delegations.clear();
            st.noncacheable.clear();
            st.last_forward.clear();
        }
        *self.poll_ts.lock() = None; // next GETINV bootstraps with null
        self.last_validated_ms.store(0, Ordering::SeqCst);
        {
            let mut disk = self.disk.lock();
            disk.invalidate_all_attrs();
            self.cancel_all_prefetch();
            self.drop_all_peer_hints();
        }
        self.reconcile_dirty(true)
    }

    /// Reconciles every dirty file against the server (§4.3.4): the
    /// dirty data is replayed only when the server copy is provably
    /// unchanged since it accumulated (`wb_base` mtime match) —
    /// otherwise it is discarded, with `poison` deciding whether the
    /// file is additionally marked corrupted (crash recovery) or just
    /// dropped for refetch (post-heal re-promotion). Returns the
    /// discarded handles.
    fn reconcile_dirty(&self, poison: bool) -> Vec<Fh3> {
        let dirty = self.disk.lock().dirty_files();
        let mut discarded = Vec::new();
        for fh in dirty {
            let base = self.state.lock().wb_base.get(&fh).copied();
            let current = gvfs_xdr::to_bytes(&GetattrArgs { object: fh })
                .ok()
                .and_then(|args| self.forward(proc3::GETATTR, args, Some(fh)).ok())
                .and_then(|bytes| gvfs_xdr::from_bytes::<GetattrRes>(&bytes).ok());
            let unchanged = matches!(
                (current, base),
                (Some(GetattrRes::Ok(attr)), Some(base_mtime)) if attr.mtime == base_mtime
            );
            if unchanged {
                // Write back one block to reacquire the delegation.
                let first = self.disk.lock().dirty_blocks(fh, BLOCK_SIZE).first().copied();
                if let Some(block) = first {
                    self.flush_block(fh, block);
                }
                // Remaining blocks flush lazily (queue to flusher).
                let rest = self.disk.lock().dirty_blocks(fh, BLOCK_SIZE);
                if !rest.is_empty() {
                    let mut q = self.flush_queue.lock();
                    for block in rest {
                        q.push_back((fh, block));
                    }
                    drop(q);
                    if let Some(h) = self.flusher.lock().clone() {
                        h.unpark();
                    }
                }
            } else {
                let mut disk = self.disk.lock();
                disk.forget_file(fh);
                drop(disk);
                let mut st = self.state.lock();
                st.wb_base.remove(&fh);
                if poison {
                    st.corrupted.insert(fh);
                }
                drop(st);
                let mut stats = self.stats.lock();
                if poison {
                    stats.corrupted_discards += 1;
                } else {
                    stats.stale_discards += 1;
                }
                drop(stats);
                discarded.push(fh);
            }
        }
        discarded
    }
}

impl RpcService for ProxyClient {
    fn program(&self) -> u32 {
        gvfs_nfs3::NFS_PROGRAM
    }
    fn version(&self) -> u32 {
        gvfs_nfs3::NFS_V3
    }
    fn call(&self, procedure: u32, args: &[u8]) -> Result<Vec<u8>, RpcError> {
        let result = match procedure {
            proc3::NULL => Ok(Vec::new()),
            proc3::GETATTR => self.op_getattr(args),
            proc3::LOOKUP => self.op_lookup(args),
            proc3::READ => self.op_read(args),
            proc3::WRITE => self.op_write(args),
            proc3::CREATE | proc3::MKDIR | proc3::SYMLINK => self.op_create_like(procedure, args),
            proc3::REMOVE | proc3::RMDIR => self.op_remove_like(procedure, args),
            proc3::RENAME => self.op_rename(args),
            proc3::LINK => self.op_link(args),
            proc3::SETATTR => self.op_setattr(args),
            proc3::READDIR | proc3::READDIRPLUS => self.op_readdir(procedure, args),
            proc3::ACCESS | proc3::READLINK | proc3::FSSTAT | proc3::FSINFO | proc3::COMMIT => {
                self.forward(procedure, args.to_vec(), None)
            }
            p => Err(RpcError::ProcedureUnavailable {
                program: gvfs_nfs3::NFS_PROGRAM,
                procedure: p,
            }),
        };
        // Pay for any block-store I/O this call performed, with no
        // locks held, so a persistent store's seek/throughput costs
        // land on this actor's virtual clock deterministically.
        self.settle_disk();
        result
    }
}

/// The callback service facade: the same proxy client, addressable as
/// the callback RPC program.
#[derive(Debug, Clone)]
pub struct CallbackService(pub Arc<ProxyClient>);

impl RpcService for CallbackService {
    fn program(&self) -> u32 {
        crate::protocol::GVFS_CALLBACK_PROGRAM
    }
    fn version(&self) -> u32 {
        GVFS_VERSION
    }
    fn call(&self, procedure: u32, args: &[u8]) -> Result<Vec<u8>, RpcError> {
        let result = match procedure {
            proc_ext::CALLBACK => self.0.handle_callback(args),
            proc_ext::RECOVER => self.0.handle_recover(),
            proc_ext::PEERREAD => self.0.handle_peerread(args),
            p => Err(RpcError::ProcedureUnavailable {
                program: crate::protocol::GVFS_CALLBACK_PROGRAM,
                procedure: p,
            }),
        };
        self.0.settle_disk();
        result
    }
}

#[cfg(test)]
mod tests {
    use super::retry_jitter;
    use std::time::Duration;

    #[test]
    fn retry_jitter_stays_under_half_the_delay_and_reproduces() {
        for delay in [Duration::from_secs(1), Duration::from_secs(8), Duration::from_secs(60)] {
            for client in 0..8u32 {
                for attempt in 1..=8u32 {
                    let j = retry_jitter(client, attempt, delay);
                    assert!(j < delay / 2, "jitter {j:?} must stay in [0, {delay:?}/2)");
                    assert_eq!(
                        j,
                        retry_jitter(client, attempt, delay),
                        "the schedule must be reproducible for the determinism contract"
                    );
                }
            }
        }
    }

    /// Clients cut by one shared partition back off in lockstep without
    /// jitter, so the heal would be greeted by a synchronized retry
    /// storm. The per-client hash must spread them: no two clients may
    /// share a retransmission schedule, and each round's offsets must
    /// actually scatter instead of clustering on a few slots.
    #[test]
    fn retry_jitter_decorrelates_parallel_clients() {
        let delay = Duration::from_secs(8);
        let schedules: Vec<Vec<Duration>> = (0..16u32)
            .map(|client| (1..=6u32).map(|a| retry_jitter(client, a, delay)).collect())
            .collect();
        for i in 0..schedules.len() {
            for j in i + 1..schedules.len() {
                assert_ne!(
                    schedules[i], schedules[j],
                    "clients {i} and {j} would retransmit in lockstep after a heal"
                );
            }
        }
        for attempt in 0..6 {
            let mut offsets: Vec<Duration> = schedules.iter().map(|s| s[attempt]).collect();
            offsets.sort();
            offsets.dedup();
            assert!(
                offsets.len() >= schedules.len() / 2,
                "round {attempt} clusters on {} slot(s) across {} clients",
                offsets.len(),
                schedules.len()
            );
        }
    }
}
