//! The NanoMOS software-repository benchmark (§5.2.1, Figure 7).
//!
//! Six WAN clients run the NanoMOS device simulator in parallel for
//! eight iterations, read-sharing the MATLAB + MPITB installation from
//! a repository; between the fourth and fifth run a LAN administrator
//! updates (a) the entire MATLAB tree (~14 K entries) or (b) only the
//! MPITB toolbox (540 entries). The clients' working set (~30 MB)
//! fits their caches from the second run on — what distinguishes the
//! systems is the consistency traffic for the cached files.

use gvfs_client::NfsClient;
use gvfs_vfs::{FileId, Timestamp, Vfs};
use std::time::Duration;

/// Which part of the repository the administrator updates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateScope {
    /// The entire MATLAB package (Figure 7a).
    Matlab,
    /// Only the MPITB toolbox (Figure 7b).
    Mpitb,
}

/// Repository and run parameters (defaults = the paper's).
#[derive(Debug, Clone)]
pub struct NanomosConfig {
    /// Total files in the MATLAB tree (excluding MPITB).
    pub matlab_files: usize,
    /// Files in the MPITB subtree.
    pub mpitb_files: usize,
    /// Directories the MATLAB files are spread over.
    pub matlab_dirs: usize,
    /// Files each client touches per iteration (the working set).
    pub working_set: usize,
    /// Bytes per repository file (working set ≈ `working_set ×
    /// file_bytes` ≈ 30 MB).
    pub file_bytes: usize,
    /// Times each working-set file is opened per iteration (script
    /// passes).
    pub opens_per_iteration: usize,
    /// Iterations per client.
    pub iterations: usize,
    /// Modelled compute time per iteration.
    pub compute: Duration,
}

impl Default for NanomosConfig {
    fn default() -> Self {
        NanomosConfig {
            matlab_files: 13_460,
            mpitb_files: 540,
            matlab_dirs: 100,
            working_set: 600,
            file_bytes: 50 * 1024,
            opens_per_iteration: 3,
            iterations: 8,
            compute: Duration::from_secs(20),
        }
    }
}

impl NanomosConfig {
    /// A reduced configuration for fast tests.
    pub fn small() -> Self {
        NanomosConfig {
            matlab_files: 300,
            mpitb_files: 40,
            matlab_dirs: 10,
            working_set: 60,
            file_bytes: 8 * 1024,
            opens_per_iteration: 2,
            iterations: 4,
            compute: Duration::from_secs(2),
        }
    }

    /// Path of MATLAB file `i`.
    pub fn matlab_path(&self, i: usize) -> String {
        format!("/repo/matlab/d{:03}/m{:05}.m", i % self.matlab_dirs, i)
    }

    /// Path of MPITB file `i`.
    pub fn mpitb_path(&self, i: usize) -> String {
        format!("/repo/matlab/mpitb/p{i:04}.m")
    }

    /// The working set: spread over the MATLAB tree with a tail of
    /// MPITB files (clients do use the MPI toolbox).
    pub fn working_set_paths(&self) -> Vec<String> {
        let mpitb_share = (self.working_set / 10).min(self.mpitb_files);
        let matlab_share = self.working_set - mpitb_share;
        let mut paths = Vec::with_capacity(self.working_set);
        for k in 0..matlab_share {
            let i = k * self.matlab_files / matlab_share.max(1);
            paths.push(self.matlab_path(i));
        }
        for k in 0..mpitb_share {
            paths.push(self.mpitb_path(k * self.mpitb_files / mpitb_share.max(1)));
        }
        paths
    }
}

/// Builds the repository tree on the server, out of band.
///
/// # Panics
///
/// Panics if the tree already exists.
pub fn populate(vfs: &Vfs, config: &NanomosConfig) {
    let t = Timestamp::from_nanos(0);
    let repo = vfs.mkdir(vfs.root(), "repo", 0o755, t).expect("mkdir repo");
    let matlab = vfs.mkdir(repo, "matlab", 0o755, t).expect("mkdir matlab");
    let mut dirs: Vec<FileId> = Vec::with_capacity(config.matlab_dirs);
    for d in 0..config.matlab_dirs {
        dirs.push(vfs.mkdir(matlab, &format!("d{d:03}"), 0o755, t).expect("mkdir d"));
    }
    let payload = vec![b'm'; config.file_bytes];
    for i in 0..config.matlab_files {
        let f = vfs
            .create(dirs[i % config.matlab_dirs], &format!("m{i:05}.m"), 0o644, t)
            .expect("create matlab file");
        vfs.write(f, 0, &payload, t).expect("write");
    }
    let mpitb = vfs.mkdir(matlab, "mpitb", 0o755, t).expect("mkdir mpitb");
    for i in 0..config.mpitb_files {
        let f = vfs.create(mpitb, &format!("p{i:04}.m"), 0o644, t).expect("create mpitb file");
        vfs.write(f, 0, &payload, t).expect("write");
    }
}

/// Runs one NanoMOS iteration on one client: opens the working set (the
/// interpreter re-opens scripts on every pass), reads it, computes.
/// Returns the iteration's virtual runtime. Must run inside an actor.
///
/// # Panics
///
/// Panics on filesystem errors.
pub fn run_iteration(client: &NfsClient, config: &NanomosConfig) -> Duration {
    let t0 = gvfs_netsim::now();
    let paths = config.working_set_paths();
    for pass in 0..config.opens_per_iteration {
        for path in &paths {
            let fh = client.open(path).expect("open working-set file");
            if pass == 0 {
                let _ = client.read(fh, 0, config.file_bytes as u32).expect("read");
            }
        }
    }
    gvfs_netsim::sleep(config.compute);
    gvfs_netsim::now().saturating_since(t0)
}

/// The administrator's update pass (run from the LAN client): touches
/// every file in scope, as reinstalling the package does. Returns the
/// number of files touched. Must run inside an actor.
///
/// # Panics
///
/// Panics on filesystem errors.
pub fn admin_update(client: &NfsClient, config: &NanomosConfig, scope: UpdateScope) -> usize {
    let mut touched = 0;
    match scope {
        UpdateScope::Matlab => {
            for i in 0..config.matlab_files {
                let fh = client.resolve(&config.matlab_path(i)).expect("resolve");
                client.touch(fh).expect("touch");
                touched += 1;
            }
            for i in 0..config.mpitb_files {
                let fh = client.resolve(&config.mpitb_path(i)).expect("resolve");
                client.touch(fh).expect("touch");
                touched += 1;
            }
        }
        UpdateScope::Mpitb => {
            for i in 0..config.mpitb_files {
                let fh = client.resolve(&config.mpitb_path(i)).expect("resolve");
                client.touch(fh).expect("touch");
                touched += 1;
            }
        }
    }
    touched
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tree_size_matches_paper() {
        let c = NanomosConfig::default();
        assert_eq!(c.matlab_files + c.mpitb_files, 14_000);
        assert_eq!(c.mpitb_files, 540);
    }

    #[test]
    fn working_set_is_plausible() {
        let c = NanomosConfig::default();
        let ws = c.working_set_paths();
        assert_eq!(ws.len(), c.working_set);
        assert!(ws.iter().any(|p| p.contains("mpitb")));
        // ~30 MB per client, as the paper states.
        let bytes = ws.len() * c.file_bytes;
        assert!((25 << 20..35 << 20).contains(&bytes), "working set = {bytes} bytes");
    }

    #[test]
    fn populate_and_resolve() {
        let vfs = Vfs::new();
        let c = NanomosConfig::small();
        populate(&vfs, &c);
        for path in c.working_set_paths() {
            assert!(vfs.lookup_path(&path).is_ok(), "missing {path}");
        }
    }
}
