//! Host crate for the workspace-level integration tests in `/tests`.
//!
//! The tests exercise the full GVFS stack — XDR, ONC RPC, the NFSv3
//! server over the in-memory filesystem, the kernel-client emulation,
//! the proxies, and the workload drivers — across consistency models
//! and failure scenarios. See the `[[test]]` targets in this crate's
//! `Cargo.toml`.
