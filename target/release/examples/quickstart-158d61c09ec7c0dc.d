/root/repo/target/release/examples/quickstart-158d61c09ec7c0dc.d: crates/bench/../../examples/quickstart.rs

/root/repo/target/release/examples/quickstart-158d61c09ec7c0dc: crates/bench/../../examples/quickstart.rs

crates/bench/../../examples/quickstart.rs:
