/root/repo/target/debug/deps/gvfs_bench-88a358d08326d6b9.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libgvfs_bench-88a358d08326d6b9.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libgvfs_bench-88a358d08326d6b9.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
