/root/repo/target/debug/deps/workload_smoke-bbdf94b6bf26bebf.d: crates/integration/../../tests/workload_smoke.rs

/root/repo/target/debug/deps/workload_smoke-bbdf94b6bf26bebf: crates/integration/../../tests/workload_smoke.rs

crates/integration/../../tests/workload_smoke.rs:
