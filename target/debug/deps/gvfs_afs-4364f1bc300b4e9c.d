/root/repo/target/debug/deps/gvfs_afs-4364f1bc300b4e9c.d: crates/afs/src/lib.rs crates/afs/src/client.rs crates/afs/src/proto.rs crates/afs/src/server.rs

/root/repo/target/debug/deps/gvfs_afs-4364f1bc300b4e9c: crates/afs/src/lib.rs crates/afs/src/client.rs crates/afs/src/proto.rs crates/afs/src/server.rs

crates/afs/src/lib.rs:
crates/afs/src/client.rs:
crates/afs/src/proto.rs:
crates/afs/src/server.rs:
