//! Failure handling walkthrough (paper §4.2.3 and §4.3.4): proxy-server
//! crash and recovery under both consistency models, a WAN partition,
//! and proxy-client crash reconciliation.
//!
//! ```sh
//! cargo run --release -p gvfs-bench --example failure_recovery
//! ```

use gvfs_client::{ClientError, MountOptions, NfsClient};
use gvfs_core::session::{Session, SessionConfig};
use gvfs_core::ConsistencyModel;
use gvfs_netsim::link::LinkConfig;
use gvfs_netsim::Sim;
use gvfs_nfs3::Nfsstat3;
use std::sync::Arc;
use std::time::Duration;

fn polling_server_crash() {
    println!("--- scenario 1: proxy-server crash under invalidation polling (soft state) ---");
    let sim = Sim::new();
    let session = Session::builder(SessionConfig {
        model: ConsistencyModel::InvalidationPolling {
            period: Duration::from_secs(10),
            backoff_max: None,
        },
        ..SessionConfig::default()
    })
    .clients(1)
    .wan(LinkConfig::wan())
    .establish(&sim);
    let transport = session.client_transport(0);
    let root = session.root_fh();
    let handle = session.handle();
    let session = Arc::new(session);
    let s = Arc::clone(&session);
    sim.spawn("app", move || {
        let client = NfsClient::new(transport, root, MountOptions::noac());
        client.write_file("/state", b"before crash").unwrap();
        println!("  wrote /state; crashing the proxy server (buffers and timestamps lost)");
        s.crash_proxy_server();
        gvfs_netsim::sleep(Duration::from_secs(3));
        s.restart_proxy_server();
        println!("  restarted; the poller re-bootstraps with a null timestamp -> force-invalidate");
        gvfs_netsim::sleep(Duration::from_secs(15));
        assert_eq!(client.read_file("/state").unwrap(), b"before crash");
        client.write_file("/state2", b"after recovery").unwrap();
        println!("  all operations work; soft state was rebuilt from scratch");
        handle.shutdown();
    });
    sim.run();
}

fn delegation_server_crash() {
    println!("--- scenario 2: proxy-server crash under delegation (RECOVER multicast) ---");
    let sim = Sim::new();
    let session = Session::builder(SessionConfig {
        model: ConsistencyModel::delegation(),
        write_back: true,
        ..SessionConfig::default()
    })
    .clients(2)
    .wan(LinkConfig::wan())
    .establish(&sim);
    let (t0, t1) = (session.client_transport(0), session.client_transport(1));
    let root = session.root_fh();
    let handle = session.handle();
    let session = Arc::new(session);
    let s = Arc::clone(&session);
    sim.spawn("writer", move || {
        let client = NfsClient::new(t0, root, MountOptions::noac());
        let fh = client.write_file("/delayed", b"seed").unwrap();
        client.write(fh, 0, b"delayed write held in the disk cache").unwrap();
        println!("  writer holds a write delegation with dirty data");
        s.crash_proxy_server();
        gvfs_netsim::sleep(Duration::from_secs(2));
        let answered = s.restart_proxy_server();
        println!("  server recovered; RECOVER callbacks answered by {answered} clients");
        gvfs_netsim::sleep(Duration::from_secs(600));
    });
    sim.spawn("reader", move || {
        let client = NfsClient::new(t1, root, MountOptions::noac());
        let _ = client.readdir_all(root); // register with the session
        gvfs_netsim::sleep(Duration::from_secs(60));
        let data = client.read_file("/delayed").unwrap();
        assert_eq!(data, b"delayed write held in the disk cache");
        println!("  reader sees the delayed write: the rebuilt table recalled it correctly");
        handle.shutdown();
    });
    sim.run();
}

fn client_crash_reconciliation() {
    println!("--- scenario 3: proxy-client crash: reconcile or report corruption ---");
    let sim = Sim::new();
    let session = Session::builder(SessionConfig {
        model: ConsistencyModel::delegation(),
        write_back: true,
        ..SessionConfig::default()
    })
    .clients(2)
    .wan(LinkConfig::wan())
    .establish(&sim);
    let (t0, t1) = (session.client_transport(0), session.client_transport(1));
    let root = session.root_fh();
    let handle = session.handle();
    let session = Arc::new(session);
    let s = Arc::clone(&session);
    sim.spawn("victim", move || {
        let client = NfsClient::new(t0, root, MountOptions::noac());
        let safe = client.write_file("/safe", b"s").unwrap();
        let doomed = client.write_file("/doomed", b"d").unwrap();
        client.write(safe, 0, b"survives the crash").unwrap();
        client.write(doomed, 0, b"will conflict").unwrap();
        // "Crash": drop off the network while the other client writes.
        s.wan_link(0).set_partitioned(true);
        gvfs_netsim::sleep(Duration::from_secs(120));
        s.wan_link(0).set_partitioned(false);
        let corrupted = s.proxy_client(0).crash_recover();
        println!("  recovery reconciled dirty files; {} corrupted", corrupted.len());
        assert_eq!(client.read_file("/safe").unwrap(), b"survives the crash");
        client.drop_caches();
        let err = client.read_file("/doomed").unwrap_err();
        assert!(matches!(err, ClientError::Nfs(Nfsstat3::Io)));
        println!(
            "  /safe reconciled and readable; /doomed reports an I/O error as the paper specifies"
        );
        handle.shutdown();
    });
    sim.spawn("interferer", move || {
        let client = NfsClient::new(t1, root, MountOptions::noac());
        gvfs_netsim::sleep(Duration::from_secs(60));
        if let Ok(fh) = client.resolve("/doomed") {
            let _ = client.write(fh, 0, b"overwritten!");
        }
    });
    sim.run();
}

fn main() {
    polling_server_crash();
    delegation_server_crash();
    client_crash_reconciliation();
    println!("all failure scenarios recovered as designed");
}
