//! End-to-end consistency tests: kernel clients → proxy clients → WAN →
//! proxy server → kernel NFS server, under each consistency model.

use gvfs_client::{ClientError, MountOptions, NfsClient};
use gvfs_core::session::{NativeMount, Session, SessionConfig};
use gvfs_core::ConsistencyModel;
use gvfs_core::DelegationConfig;
use gvfs_netsim::link::LinkConfig;
use gvfs_netsim::Sim;
use gvfs_nfs3::{proc3, Nfsstat3};
use gvfs_rpc::stats::StatsSnapshot;
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::Duration;

fn polling(period_secs: u64) -> SessionConfig {
    SessionConfig {
        model: ConsistencyModel::InvalidationPolling {
            period: Duration::from_secs(period_secs),
            backoff_max: None,
        },
        ..SessionConfig::default()
    }
}

fn delegation() -> SessionConfig {
    SessionConfig { model: ConsistencyModel::delegation(), ..SessionConfig::default() }
}

/// Sums calls across the NFS and GVFS-proxy programs for one procedure.
fn wan_calls(snap: &StatsSnapshot, procedure: u32) -> u64 {
    snap.calls(gvfs_nfs3::NFS_PROGRAM, procedure)
        + snap.calls(gvfs_core::protocol::GVFS_PROXY_PROGRAM, procedure)
}

#[test]
fn polling_proxy_absorbs_getattr_storm() {
    let sim = Sim::new();
    let session = Session::builder(polling(30)).clients(1).establish(&sim);
    let transport = session.client_transport(0);
    let root = session.root_fh();
    let wan = session.wan_stats().clone();
    let handle = session.handle();
    sim.spawn("app", move || {
        // noac kernel: every stat reaches the proxy.
        let client = NfsClient::new(transport, root, MountOptions::noac());
        client.write_file("/f", b"data").unwrap();
        let before = wan.snapshot();
        for _ in 0..200 {
            client.stat("/f").unwrap();
        }
        let delta = wan.snapshot().since(&before);
        assert_eq!(
            wan_calls(&delta, proc3::GETATTR),
            0,
            "proxy cache must absorb all revalidations: {delta}"
        );
        handle.shutdown();
    });
    sim.run();
}

#[test]
fn polling_invalidation_propagates_within_window() {
    let sim = Sim::new();
    let session = Session::builder(polling(30)).clients(2).establish(&sim);
    let (t0, t1) = (session.client_transport(0), session.client_transport(1));
    let root = session.root_fh();
    let handle = session.handle();
    let seen_at = Arc::new(Mutex::new(None));
    let writer_done = Arc::new(Mutex::new(false));

    let wd = writer_done.clone();
    sim.spawn("writer", move || {
        let c = NfsClient::new(t0, root, MountOptions::noac());
        c.write_file("/shared", b"v1").unwrap();
        gvfs_netsim::sleep(Duration::from_secs(100));
        let fh = c.resolve("/shared").unwrap();
        c.write(fh, 0, b"v2").unwrap();
        *wd.lock() = true;
    });
    let sa = seen_at.clone();
    sim.spawn("reader", move || {
        let c = NfsClient::new(t1, root, MountOptions::noac());
        gvfs_netsim::sleep(Duration::from_secs(50));
        assert_eq!(c.read_file("/shared").unwrap(), b"v1");
        // Poll for the new version; relaxed model may serve v1 for up
        // to one polling window.
        let write_time = 100.0;
        loop {
            gvfs_netsim::sleep(Duration::from_secs(2));
            let data = c.read_file("/shared").unwrap();
            if data == b"v2" {
                *sa.lock() = Some(gvfs_netsim::now().as_secs_f64() - write_time);
                break;
            }
        }
        handle.shutdown();
    });
    sim.run();
    let delay = seen_at.lock().expect("reader saw v2");
    assert!(delay <= 35.0, "stale window bounded by polling period, got {delay}");
    assert!(*writer_done.lock());
}

#[test]
fn polling_getinv_traffic_is_periodic_and_small() {
    let sim = Sim::new();
    let session = Session::builder(polling(30)).clients(1).establish(&sim);
    let transport = session.client_transport(0);
    let root = session.root_fh();
    let wan = session.wan_stats().clone();
    let handle = session.handle();
    sim.spawn("app", move || {
        let client = NfsClient::new(transport, root, MountOptions::noac());
        client.write_file("/f", b"x").unwrap();
        let before = wan.snapshot();
        gvfs_netsim::sleep(Duration::from_secs(300)); // ten polling windows
        let delta = wan.snapshot().since(&before);
        let getinvs = delta
            .calls(gvfs_core::protocol::GVFS_PROXY_PROGRAM, gvfs_core::protocol::proc_ext::GETINV);
        assert!((9..=11).contains(&getinvs), "expected ~10 GETINVs, got {getinvs}");
        handle.shutdown();
    });
    sim.run();
}

#[test]
fn delegation_gives_strong_consistency() {
    let sim = Sim::new();
    let session = Session::builder(delegation()).clients(2).establish(&sim);
    let (t0, t1) = (session.client_transport(0), session.client_transport(1));
    let root = session.root_fh();
    let handle = session.handle();
    sim.spawn("writer", move || {
        let c = NfsClient::new(t0, root, MountOptions::noac());
        c.write_file("/strong", b"one").unwrap();
        gvfs_netsim::sleep(Duration::from_secs(10));
        let fh = c.resolve("/strong").unwrap();
        c.write(fh, 0, b"two").unwrap();
    });
    sim.spawn("reader", move || {
        let c = NfsClient::new(t1, root, MountOptions::noac());
        gvfs_netsim::sleep(Duration::from_secs(5));
        assert_eq!(c.read_file("/strong").unwrap(), b"one");
        // Immediately after the write lands, the view must be current:
        // the write recalled our read delegation.
        gvfs_netsim::sleep(Duration::from_secs(6));
        assert_eq!(c.read_file("/strong").unwrap(), b"two");
        handle.shutdown();
    });
    sim.run();
}

#[test]
fn delegation_caches_locally_without_extra_calls() {
    let sim = Sim::new();
    let session = Session::builder(delegation()).clients(1).establish(&sim);
    let transport = session.client_transport(0);
    let root = session.root_fh();
    let wan = session.wan_stats().clone();
    let handle = session.handle();
    sim.spawn("app", move || {
        let client = NfsClient::new(transport, root, MountOptions::noac());
        client.write_file("/f", &[9u8; 50_000]).unwrap();
        let _ = client.read_file("/f").unwrap();
        let before = wan.snapshot();
        for _ in 0..50 {
            let _ = client.read_file("/f").unwrap();
            client.stat("/f").unwrap();
        }
        let delta = wan.snapshot().since(&before);
        assert_eq!(delta.total_calls(), 0, "delegated reads are fully local: {delta}");
        handle.shutdown();
    });
    sim.run();
}

#[test]
fn write_back_delays_and_coalesces_writes() {
    let config = SessionConfig { write_back: true, ..polling(30) };
    let sim = Sim::new();
    let session = Session::builder(config).clients(1).establish(&sim);
    let transport = session.client_transport(0);
    let root = session.root_fh();
    let wan = session.wan_stats().clone();
    let vfs = Arc::clone(session.vfs());
    let handle = session.handle();
    sim.spawn("app", move || {
        let client = NfsClient::new(transport, root, MountOptions::noac());
        let fh = client.create_path("/wb", true).unwrap();
        let before = wan.snapshot();
        // Rewrite the same range many times.
        for round in 0..20u8 {
            client.write(fh, 0, &[round; 1000]).unwrap();
        }
        let delta = wan.snapshot().since(&before);
        assert_eq!(wan_calls(&delta, proc3::WRITE), 0, "writes delayed in the disk cache");
        // Unmount: the single coalesced extent goes back.
        handle.shutdown();
        let after = wan.snapshot().since(&before);
        assert_eq!(wan_calls(&after, proc3::WRITE), 1, "one coalesced write-back");
        let file = vfs.lookup_path("/wb").unwrap();
        assert_eq!(vfs.read(file, 0, 2000).unwrap().0, vec![19u8; 1000]);
    });
    sim.run();
}

#[test]
fn write_back_discards_writes_to_deleted_files() {
    let config = SessionConfig { write_back: true, ..polling(30) };
    let sim = Sim::new();
    let session = Session::builder(config).clients(1).establish(&sim);
    let transport = session.client_transport(0);
    let root = session.root_fh();
    let wan = session.wan_stats().clone();
    let handle = session.handle();
    sim.spawn("app", move || {
        let client = NfsClient::new(transport, root, MountOptions::noac());
        let fh = client.create_path("/tmp_obj", true).unwrap();
        client.write(fh, 0, &[1u8; 100_000]).unwrap();
        client.remove_path("/tmp_obj").unwrap();
        let before_shutdown = wan.snapshot();
        handle.shutdown();
        let delta = wan.snapshot().since(&before_shutdown);
        assert_eq!(
            wan_calls(&delta, proc3::WRITE),
            0,
            "temporary file data must never cross the WAN"
        );
    });
    sim.run();
}

#[test]
fn delegation_write_back_flushes_on_recall() {
    let config = SessionConfig { write_back: true, ..delegation() };
    let sim = Sim::new();
    let session = Session::builder(config).clients(2).establish(&sim);
    let (t0, t1) = (session.client_transport(0), session.client_transport(1));
    let root = session.root_fh();
    let handle = session.handle();
    sim.spawn("producer", move || {
        let c = NfsClient::new(t0, root, MountOptions::noac());
        let fh = c.write_file("/data", b"seed").unwrap();
        // Now delegated: delayed writes stay local.
        c.write(fh, 0, b"delayed-write-content").unwrap();
    });
    sim.spawn("consumer", move || {
        let c = NfsClient::new(t1, root, MountOptions::noac());
        gvfs_netsim::sleep(Duration::from_secs(30));
        // The read recalls the producer's write delegation; the dirty
        // data must be written back before we see the file.
        assert_eq!(c.read_file("/data").unwrap(), b"delayed-write-content");
        handle.shutdown();
    });
    sim.run();
}

#[test]
fn partial_writeback_serves_contended_block_first() {
    let deleg = DelegationConfig { partial_writeback_threshold: 2, ..DelegationConfig::default() };
    let config = SessionConfig {
        write_back: true,
        model: ConsistencyModel::DelegationCallback(deleg),
        ..SessionConfig::default()
    };
    let sim = Sim::new();
    let session = Session::builder(config).clients(2).establish(&sim);
    let (t0, t1) = (session.client_transport(0), session.client_transport(1));
    let root = session.root_fh();
    let vfs = Arc::clone(session.vfs());
    let handle = session.handle();
    sim.spawn("producer", move || {
        let c = NfsClient::new(t0, root, MountOptions::noac());
        let fh = c.write_file("/big", b"seed").unwrap();
        // Dirty 8 blocks (8 × 32 KiB), far over the threshold of 2.
        c.write(fh, 0, &[7u8; 8 * 32768]).unwrap();
        gvfs_netsim::sleep(Duration::from_secs(3600)); // stay alive for the flusher
    });
    sim.spawn("consumer", move || {
        let c = NfsClient::new(t1, root, MountOptions::noac());
        gvfs_netsim::sleep(Duration::from_secs(30));
        let t_req = gvfs_netsim::now();
        // Read one late block: only that block must be written back
        // synchronously; the rest trickles in the background.
        let fh = c.open("/big").unwrap();
        let data = c.read(fh, 7 * 32768, 32768).unwrap();
        assert_eq!(data, vec![7u8; 32768]);
        let waited = gvfs_netsim::now().saturating_since(t_req);
        assert!(
            waited < Duration::from_secs(2),
            "must not wait for the full 256 KiB write-back: {waited:?}"
        );
        // Eventually the background flusher completes the file.
        gvfs_netsim::sleep(Duration::from_secs(60));
        let file = vfs.lookup_path("/big").unwrap();
        let (server_data, _) = vfs.read(file, 0, 8 * 32768).unwrap();
        assert_eq!(server_data, vec![7u8; 8 * 32768], "all dirty blocks flushed");
        handle.shutdown();
    });
    sim.run();
}

#[test]
fn proxy_server_crash_polling_rebootstraps_with_force_invalidate() {
    let sim = Sim::new();
    let session = Session::builder(polling(10)).clients(1).establish(&sim);
    let transport = session.client_transport(0);
    let root = session.root_fh();
    let handle = session.handle();
    let session = Arc::new(session);
    let s2 = Arc::clone(&session);
    sim.spawn("app", move || {
        let client = NfsClient::new(transport, root, MountOptions::noac());
        client.write_file("/f", b"pre-crash").unwrap();
        // Crash and restart the proxy server between polls.
        s2.crash_proxy_server();
        gvfs_netsim::sleep(Duration::from_secs(2));
        s2.restart_proxy_server();
        gvfs_netsim::sleep(Duration::from_secs(30)); // poller re-bootstraps
                                                     // Everything still works; soft state was rebuilt.
        assert_eq!(client.read_file("/f").unwrap(), b"pre-crash");
        client.write_file("/g", b"post-crash").unwrap();
        assert_eq!(client.read_file("/g").unwrap(), b"post-crash");
        handle.shutdown();
    });
    sim.run();
}

#[test]
fn proxy_server_crash_delegation_recovers_dirty_state() {
    let config = SessionConfig { write_back: true, ..delegation() };
    let sim = Sim::new();
    let session = Session::builder(config).clients(2).establish(&sim);
    let (t0, t1) = (session.client_transport(0), session.client_transport(1));
    let root = session.root_fh();
    let handle = session.handle();
    let session = Arc::new(session);
    let s2 = Arc::clone(&session);
    sim.spawn("producer", move || {
        let c = NfsClient::new(t0, root, MountOptions::noac());
        let fh = c.write_file("/survivor", b"seed").unwrap();
        c.write(fh, 0, b"dirty-after-crash").unwrap(); // delayed locally
                                                       // Wait for the consumer to have contacted the session too (the
                                                       // persisted client list drives the recovery multicast).
        gvfs_netsim::sleep(Duration::from_secs(10));
        // Proxy server crashes and recovers; RECOVER callbacks rebuild
        // the write-delegation state from our dirty list.
        s2.crash_proxy_server();
        gvfs_netsim::sleep(Duration::from_secs(1));
        let answered = s2.restart_proxy_server();
        assert_eq!(answered, 2);
        gvfs_netsim::sleep(Duration::from_secs(3600));
    });
    sim.spawn("consumer", move || {
        let c = NfsClient::new(t1, root, MountOptions::noac());
        gvfs_netsim::sleep(Duration::from_secs(2));
        let _ = c.readdir_all(root).unwrap(); // register with the session
        gvfs_netsim::sleep(Duration::from_secs(60));
        // Reading recalls the recovered write delegation; the delayed
        // write survives the server crash.
        assert_eq!(c.read_file("/survivor").unwrap(), b"dirty-after-crash");
        handle.shutdown();
    });
    sim.run();
}

#[test]
fn proxy_client_crash_reconciles_or_corrupts() {
    let config = SessionConfig { write_back: true, ..delegation() };
    let sim = Sim::new();
    let session = Session::builder(config).clients(2).establish(&sim);
    let (t0, t1) = (session.client_transport(0), session.client_transport(1));
    let root = session.root_fh();
    let handle = session.handle();
    let session = Arc::new(session);
    let s2 = Arc::clone(&session);
    sim.spawn("victim", move || {
        let c = NfsClient::new(t0, root, MountOptions::noac());
        let clean_fh = c.write_file("/clean", b"seed-a").unwrap();
        let conflict_fh = c.write_file("/conflicted", b"seed-b").unwrap();
        c.write(clean_fh, 0, b"safe-x").unwrap(); // delayed
        c.write(conflict_fh, 0, b"lost-y").unwrap(); // delayed, will conflict
                                                     // "Crash": the victim machine drops off the network, so the
                                                     // recall triggered by the interferer cannot flush its dirty data.
        s2.wan_link(0).set_partitioned(true);
        gvfs_netsim::sleep(Duration::from_secs(100));
        s2.wan_link(0).set_partitioned(false);
        // Recover this proxy client: it reconciles with the server.
        let corrupted = s2.proxy_client(0).crash_recover();
        assert_eq!(corrupted.len(), 1, "only the conflicted file is corrupted");
        // The clean file's delayed write survived and reconciled.
        assert_eq!(c.read_file("/clean").unwrap(), b"safe-x");
        // The conflicted file reports an I/O error on access.
        c.drop_caches();
        assert!(matches!(c.read_file("/conflicted").unwrap_err(), ClientError::Nfs(Nfsstat3::Io)));
        handle.shutdown();
    });
    sim.spawn("interferer", move || {
        let c = NfsClient::new(t1, root, MountOptions::noac());
        gvfs_netsim::sleep(Duration::from_secs(60));
        // Modify /conflicted while the victim is "crashed". The write
        // recalls the victim's delegation, but the victim is
        // unreachable, so the server revokes it with nothing recovered;
        // the write then bumps the server mtime past the victim's base.
        let fh = c.resolve("/conflicted").unwrap();
        c.write(fh, 0, b"other!").unwrap();
    });
    sim.run();
}

#[test]
fn mount_protocol_bootstraps_through_the_proxy_chain() {
    // Kernel clients mount "in the same way as conventional NFS": the
    // MOUNT protocol travels kernel → proxy client → WAN → proxy server
    // → NFS host, and the returned root handle drives real NFS traffic.
    let sim = Sim::new();
    let session = Session::builder(polling(30)).clients(1).establish(&sim);
    let transport = session.client_transport(0);
    let handle = session.handle();
    sim.spawn("mounter", move || {
        assert!(
            gvfs_client::mount(&transport, "/no/such/export").is_err(),
            "unknown exports are refused"
        );
        let root = gvfs_client::mount(&transport, gvfs_core::session::EXPORT_PATH).unwrap();
        let client = NfsClient::new(transport, root, MountOptions::default());
        client.write_file("/mounted", b"via MOUNT").unwrap();
        assert_eq!(client.read_file("/mounted").unwrap(), b"via MOUNT");
        handle.shutdown();
    });
    sim.run();
}

#[test]
fn native_mount_baseline_works() {
    let sim = Sim::new();
    let native = NativeMount::establish(2, LinkConfig::wan(), None);
    let (t0, t1) = (native.client_transport(0), native.client_transport(1));
    let root = native.root_fh();
    sim.spawn("a", move || {
        let c = NfsClient::new(t0, root, MountOptions::default());
        c.write_file("/x", b"native").unwrap();
    });
    sim.spawn("b", move || {
        let c = NfsClient::new(t1, root, MountOptions::default());
        gvfs_netsim::sleep(Duration::from_secs(5));
        assert_eq!(c.read_file("/x").unwrap(), b"native");
    });
    sim.run();
    assert!(native.stats().snapshot().total_calls() > 0);
}

#[test]
fn passthrough_session_preserves_semantics() {
    let sim = Sim::new();
    let session = Session::builder(SessionConfig::default()).clients(1).establish(&sim);
    let transport = session.client_transport(0);
    let root = session.root_fh();
    let wan = session.wan_stats().clone();
    let handle = session.handle();
    sim.spawn("app", move || {
        let client = NfsClient::new(transport, root, MountOptions::noac());
        client.write_file("/p", b"through").unwrap();
        let before = wan.snapshot();
        client.stat("/p").unwrap();
        client.stat("/p").unwrap();
        let delta = wan.snapshot().since(&before);
        assert!(
            wan_calls(&delta, proc3::GETATTR) >= 2,
            "passthrough must not absorb revalidations"
        );
        handle.shutdown();
    });
    sim.run();
}

#[test]
fn proxy_client_stats_reflect_absorption() {
    let sim = Sim::new();
    let session = Session::builder(polling(30)).clients(1).establish(&sim);
    let transport = session.client_transport(0);
    let root = session.root_fh();
    let handle = session.handle();
    let session = Arc::new(session);
    let s2 = Arc::clone(&session);
    sim.spawn("app", move || {
        let client = NfsClient::new(transport, root, MountOptions::noac());
        client.write_file("/observed", b"data").unwrap();
        for _ in 0..100 {
            client.stat("/observed").unwrap();
        }
        let stats = s2.proxy_client(0).stats();
        assert!(stats.served_local >= 100, "the storm was served locally: {stats:?}");
        assert!(stats.forwarded < 20, "only the initial misses forwarded: {stats:?}");
        handle.shutdown();
    });
    sim.run();
}

#[test]
fn reads_merge_local_dirty_data_over_stale_server_bytes() {
    // Write-back holds dirty bytes locally; a read of a range that is
    // only partially cached must fetch the rest from the server and
    // overlay the local dirty data on top.
    let config = SessionConfig { write_back: true, ..polling(30) };
    let sim = Sim::new();
    let session = Session::builder(config).clients(1).establish(&sim);
    let transport = session.client_transport(0);
    let root = session.root_fh();
    let handle = session.handle();
    let session = Arc::new(session);
    let s2 = Arc::clone(&session);
    sim.spawn("app", move || {
        let client = NfsClient::new(transport, root, MountOptions::noac());
        // Server holds 100 KiB of zeros.
        let fh = client.create_path("/merged", true).unwrap();
        client.write(fh, 0, &vec![0u8; 100_000]).unwrap();
        // Forget local clean copies, then delay a small dirty write.
        s2.proxy_client(0).flush_all();
        client.drop_caches();
        client.write(fh, 50_000, &[9u8; 10]).unwrap(); // delayed (write-back)
        client.drop_caches(); // force the read through the proxy
        let data = client.read(fh, 49_990, 40).unwrap();
        let mut expected = vec![0u8; 40];
        expected[10..20].copy_from_slice(&[9u8; 10]);
        assert_eq!(data, expected, "dirty bytes overlay server data");
        handle.shutdown();
    });
    sim.run();
}

#[test]
fn wan_partition_heals_transparently() {
    let sim = Sim::new();
    let session = Session::builder(polling(10)).clients(1).establish(&sim);
    let transport = session.client_transport(0);
    let root = session.root_fh();
    let handle = session.handle();
    let session = Arc::new(session);
    let s2 = Arc::clone(&session);
    sim.spawn("app", move || {
        let client = NfsClient::new(transport, root, MountOptions::noac());
        client.write_file("/f", b"before").unwrap();
        let link = Arc::clone(s2.wan_link(0));
        gvfs_netsim::spawn_from_actor("healer", move || {
            gvfs_netsim::sleep(Duration::from_secs(45));
            link.set_partitioned(false);
        });
        s2.wan_link(0).set_partitioned(true);
        // The proxy disk cache keeps serving what it has, even across
        // the partition — cached availability of the relaxed model.
        client.drop_caches();
        let t0 = gvfs_netsim::now();
        assert_eq!(client.read_file("/f").unwrap(), b"before");
        assert!(
            gvfs_netsim::now().saturating_since(t0) < Duration::from_secs(1),
            "cached data served during the partition"
        );
        // New work that must reach the server blocks until it heals.
        let t1 = gvfs_netsim::now();
        client.write_file("/g", b"after").unwrap();
        assert!(gvfs_netsim::now().saturating_since(t1) >= Duration::from_secs(40));
        handle.shutdown();
    });
    sim.run();
}
