//! Simulated network links.
//!
//! A [`Link`] joins two endpoints with configurable one-way propagation
//! latency and bandwidth, mirroring the paper's NIST Net configuration
//! (40 ms RTT, 4 Mbit/s per client–server link). Each direction is
//! modelled independently (full duplex) with FIFO serialization: a
//! transfer occupies the directional pipe for `bytes × 8 ÷ bandwidth`
//! seconds starting no earlier than the previous transfer finished.
//!
//! Links can be [partitioned](Link::set_partitioned) to inject failures,
//! and each direction can carry a seeded
//! [`FaultPlan`](crate::fault::FaultPlan) injecting probabilistic drop,
//! duplication, jitter and timed partition windows; [`LinkHalf::transfer`]
//! exposes the resulting [`Delivery`] fate to the transport.

use crate::fault::{Delivery, FaultPlan, FaultState};
use crate::time::SimTime;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Configuration of a [`Link`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkConfig {
    /// One-way propagation delay (half the RTT).
    pub one_way_latency: Duration,
    /// Bandwidth in bits per second; `None` means unlimited.
    pub bandwidth_bps: Option<u64>,
    /// Fixed per-message framing overhead in bytes (TCP/IP headers and
    /// the RPC record mark), charged against bandwidth.
    pub per_message_overhead: usize,
}

impl LinkConfig {
    /// A link shaped like the paper's emulated WAN: 40 ms RTT, 4 Mbit/s.
    pub fn wan() -> Self {
        LinkConfig {
            one_way_latency: Duration::from_millis(20),
            bandwidth_bps: Some(4_000_000),
            per_message_overhead: 68,
        }
    }

    /// A link shaped like the paper's 100 Mbit/s LAN (0.2 ms RTT).
    pub fn lan() -> Self {
        LinkConfig {
            one_way_latency: Duration::from_micros(100),
            bandwidth_bps: Some(100_000_000),
            per_message_overhead: 68,
        }
    }

    /// A loopback link between co-located processes (proxy ↔ kernel
    /// client on the same host): negligible latency, no bandwidth cap.
    pub fn loopback() -> Self {
        LinkConfig {
            one_way_latency: Duration::from_micros(15),
            bandwidth_bps: None,
            per_message_overhead: 0,
        }
    }

    /// Returns `self` with the round-trip time set to `rtt`
    /// (one-way latency = `rtt / 2`).
    pub fn with_rtt(mut self, rtt: Duration) -> Self {
        self.one_way_latency = rtt / 2;
        self
    }

    /// Returns `self` with the given bandwidth in bits per second.
    pub fn with_bandwidth_bps(mut self, bps: u64) -> Self {
        self.bandwidth_bps = Some(bps);
        self
    }
}

#[derive(Debug, Default)]
struct DirState {
    busy_until: SimTime,
    messages: u64,
    bytes: u64,
}

/// A bidirectional point-to-point link.
///
/// Obtain directional senders with [`Link::forward`] and [`Link::reverse`].
///
/// # Examples
///
/// ```
/// use gvfs_netsim::link::{Link, LinkConfig};
/// use gvfs_netsim::{Sim, now};
///
/// let link = Link::new(LinkConfig::wan());
/// let half = link.forward();
/// let sim = Sim::new();
/// sim.spawn("sender", move || {
///     let arrival = half.send(now(), 1000).unwrap();
///     // 20 ms propagation + (1068 bytes * 8) / 4 Mbit/s ≈ 2.1 ms
///     assert!(arrival.as_secs_f64() > 0.020);
/// });
/// sim.run();
/// ```
#[derive(Debug)]
pub struct Link {
    config: Mutex<LinkConfig>,
    partitioned: AtomicBool,
    ab: Mutex<DirState>,
    ba: Mutex<DirState>,
    fault_ab: Mutex<Option<FaultState>>,
    fault_ba: Mutex<Option<FaultState>>,
}

/// Error returned when sending over a partitioned link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Partitioned;

impl std::fmt::Display for Partitioned {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "link is partitioned")
    }
}

impl std::error::Error for Partitioned {}

impl Link {
    /// Creates a link with the given configuration.
    pub fn new(config: LinkConfig) -> Arc<Self> {
        Arc::new(Link {
            config: Mutex::new(config),
            partitioned: AtomicBool::new(false),
            ab: Mutex::new(DirState::default()),
            ba: Mutex::new(DirState::default()),
            fault_ab: Mutex::new(None),
            fault_ba: Mutex::new(None),
        })
    }

    /// The sender for the A→B direction.
    pub fn forward(self: &Arc<Self>) -> LinkHalf {
        LinkHalf { link: Arc::clone(self), forward: true }
    }

    /// The sender for the B→A direction.
    pub fn reverse(self: &Arc<Self>) -> LinkHalf {
        LinkHalf { link: Arc::clone(self), forward: false }
    }

    /// Cuts or heals the link. While partitioned, sends in both
    /// directions fail with [`Partitioned`].
    pub fn set_partitioned(&self, partitioned: bool) {
        self.partitioned.store(partitioned, Ordering::SeqCst);
    }

    /// Whether the link is currently partitioned.
    pub fn is_partitioned(&self) -> bool {
        self.partitioned.load(Ordering::SeqCst)
    }

    /// Replaces the link configuration (latency/bandwidth), affecting
    /// subsequent transfers.
    pub fn set_config(&self, config: LinkConfig) {
        *self.config.lock() = config;
    }

    /// The current configuration.
    pub fn config(&self) -> LinkConfig {
        *self.config.lock()
    }

    /// Total messages and bytes sent in both directions.
    pub fn traffic(&self) -> (u64, u64) {
        let ab = self.ab.lock();
        let ba = self.ba.lock();
        (ab.messages + ba.messages, ab.bytes + ba.bytes)
    }

    /// Installs (or, with `None`, clears) the fault plan for one
    /// direction (`forward` = A→B). Installing a plan reseeds its RNG,
    /// so re-installing the same plan replays the same fate sequence.
    pub fn set_fault_plan(&self, forward: bool, plan: Option<FaultPlan>) {
        let slot = if forward { &self.fault_ab } else { &self.fault_ba };
        *slot.lock() = plan.map(FaultState::new);
    }

    /// Clears the fault plans of both directions (the link heals).
    pub fn clear_fault_plans(&self) {
        *self.fault_ab.lock() = None;
        *self.fault_ba.lock() = None;
    }

    fn send_dir(&self, forward: bool, now: SimTime, bytes: usize) -> Result<SimTime, Partitioned> {
        self.transfer_dir(forward, now, bytes).map(|d| d.arrival)
    }

    fn transfer_dir(
        &self,
        forward: bool,
        now: SimTime,
        bytes: usize,
    ) -> Result<Delivery, Partitioned> {
        if self.is_partitioned() {
            return Err(Partitioned);
        }
        let (dropped, duplicated, jitter) = {
            let mut fault = if forward { self.fault_ab.lock() } else { self.fault_ba.lock() };
            match fault.as_mut() {
                Some(state) if state.partitioned_at(now) => return Err(Partitioned),
                Some(state) => state.roll(now),
                None => (false, false, Duration::ZERO),
            }
        };
        let config = *self.config.lock();
        let total = bytes + config.per_message_overhead;
        let serialization = match config.bandwidth_bps {
            Some(bps) => {
                let nanos = (total as u128 * 8 * 1_000_000_000) / bps as u128;
                Duration::from_nanos(u64::try_from(nanos).expect("transfer time overflow"))
            }
            None => Duration::ZERO,
        };
        let mut dir = if forward { self.ab.lock() } else { self.ba.lock() };
        let start = now.max(dir.busy_until);
        dir.busy_until = start + serialization;
        dir.messages += 1;
        dir.bytes += total as u64;
        // A lost message still occupied the pipe: loss happens in flight.
        Ok(Delivery {
            arrival: dir.busy_until + config.one_way_latency + jitter,
            dropped,
            duplicated,
        })
    }
}

/// One direction of a [`Link`].
#[derive(Debug, Clone)]
pub struct LinkHalf {
    link: Arc<Link>,
    forward: bool,
}

impl LinkHalf {
    /// Sends `bytes` at virtual time `now`; returns the arrival time at
    /// the far end.
    ///
    /// # Errors
    ///
    /// Returns [`Partitioned`] if the link is cut.
    pub fn send(&self, now: SimTime, bytes: usize) -> Result<SimTime, Partitioned> {
        self.link.send_dir(self.forward, now, bytes)
    }

    /// Sends `bytes` in the opposite direction (for replies).
    ///
    /// # Errors
    ///
    /// Returns [`Partitioned`] if the link is cut.
    pub fn send_reverse(&self, now: SimTime, bytes: usize) -> Result<SimTime, Partitioned> {
        self.link.send_dir(!self.forward, now, bytes)
    }

    /// Sends `bytes` under the direction's fault plan, exposing the full
    /// [`Delivery`] fate (arrival time, dropped, duplicated) instead of
    /// the arrival time alone.
    ///
    /// # Errors
    ///
    /// Returns [`Partitioned`] if the link is cut, globally or by a
    /// fault-plan partition window covering `now`.
    pub fn transfer(&self, now: SimTime, bytes: usize) -> Result<Delivery, Partitioned> {
        self.link.transfer_dir(self.forward, now, bytes)
    }

    /// Like [`LinkHalf::transfer`] in the opposite direction (replies).
    ///
    /// # Errors
    ///
    /// As for [`LinkHalf::transfer`].
    pub fn transfer_reverse(&self, now: SimTime, bytes: usize) -> Result<Delivery, Partitioned> {
        self.link.transfer_dir(!self.forward, now, bytes)
    }

    /// The underlying link.
    pub fn link(&self) -> &Arc<Link> {
        &self.link
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn no_overhead(mut c: LinkConfig) -> LinkConfig {
        c.per_message_overhead = 0;
        c
    }

    #[test]
    fn latency_only_transfer() {
        let link = Link::new(no_overhead(LinkConfig {
            one_way_latency: Duration::from_millis(20),
            bandwidth_bps: None,
            per_message_overhead: 0,
        }));
        let arrival = link.forward().send(SimTime::ZERO, 10_000).unwrap();
        assert_eq!(arrival, SimTime::from_millis(20));
    }

    #[test]
    fn bandwidth_adds_serialization_delay() {
        // 1 Mbit/s, 1250 bytes = 10_000 bits = 10 ms serialization.
        let link = Link::new(no_overhead(LinkConfig {
            one_way_latency: Duration::from_millis(5),
            bandwidth_bps: Some(1_000_000),
            per_message_overhead: 0,
        }));
        let arrival = link.forward().send(SimTime::ZERO, 1250).unwrap();
        assert_eq!(arrival, SimTime::from_millis(15));
    }

    #[test]
    fn back_to_back_sends_queue_on_the_pipe() {
        let link = Link::new(no_overhead(LinkConfig {
            one_way_latency: Duration::from_millis(5),
            bandwidth_bps: Some(1_000_000),
            per_message_overhead: 0,
        }));
        let h = link.forward();
        let first = h.send(SimTime::ZERO, 1250).unwrap();
        let second = h.send(SimTime::ZERO, 1250).unwrap();
        assert_eq!(first, SimTime::from_millis(15));
        assert_eq!(second, SimTime::from_millis(25)); // waits for the pipe
    }

    #[test]
    fn directions_are_independent() {
        let link = Link::new(no_overhead(LinkConfig {
            one_way_latency: Duration::from_millis(5),
            bandwidth_bps: Some(1_000_000),
            per_message_overhead: 0,
        }));
        let fwd = link.forward().send(SimTime::ZERO, 1250).unwrap();
        let rev = link.reverse().send(SimTime::ZERO, 1250).unwrap();
        assert_eq!(fwd, rev); // no shared occupancy
    }

    #[test]
    fn partition_blocks_both_directions() {
        let link = Link::new(LinkConfig::wan());
        link.set_partitioned(true);
        assert_eq!(link.forward().send(SimTime::ZERO, 1).unwrap_err(), Partitioned);
        assert_eq!(link.reverse().send(SimTime::ZERO, 1).unwrap_err(), Partitioned);
        link.set_partitioned(false);
        assert!(link.forward().send(SimTime::ZERO, 1).is_ok());
    }

    #[test]
    fn overhead_is_charged() {
        let link = Link::new(LinkConfig {
            one_way_latency: Duration::ZERO,
            bandwidth_bps: Some(8_000), // 1000 bytes/s
            per_message_overhead: 100,
        });
        // 0 payload bytes + 100 overhead = 100 bytes = 100 ms at 1000 B/s.
        let arrival = link.forward().send(SimTime::ZERO, 0).unwrap();
        assert_eq!(arrival, SimTime::from_millis(100));
    }

    #[test]
    fn traffic_counters_accumulate() {
        let link = Link::new(no_overhead(LinkConfig::lan()));
        link.forward().send(SimTime::ZERO, 100).unwrap();
        link.reverse().send(SimTime::ZERO, 50).unwrap();
        assert_eq!(link.traffic(), (2, 150));
    }

    #[test]
    fn send_reverse_uses_opposite_pipe() {
        let link = Link::new(no_overhead(LinkConfig {
            one_way_latency: Duration::ZERO,
            bandwidth_bps: Some(1_000_000),
            per_message_overhead: 0,
        }));
        let h = link.forward();
        h.send(SimTime::ZERO, 1250).unwrap();
        // Reply path must not be delayed by the forward transfer.
        let back = h.send_reverse(SimTime::ZERO, 1250).unwrap();
        assert_eq!(back, SimTime::from_millis(10));
    }

    #[test]
    fn fault_plan_partition_window_cuts_one_direction() {
        use crate::fault::{FaultPlan, Window};
        let link = Link::new(no_overhead(LinkConfig::lan()));
        let window = Window::new(SimTime::from_millis(10), SimTime::from_millis(20));
        link.set_fault_plan(true, Some(FaultPlan::new(1).with_partition(window)));
        assert!(link.forward().send(SimTime::from_millis(5), 1).is_ok());
        assert_eq!(link.forward().send(SimTime::from_millis(15), 1).unwrap_err(), Partitioned);
        // The reverse direction carries no plan and stays healthy.
        assert!(link.reverse().send(SimTime::from_millis(15), 1).is_ok());
        assert!(link.forward().send(SimTime::from_millis(25), 1).is_ok());
        link.clear_fault_plans();
        assert!(link.forward().send(SimTime::from_millis(15), 1).is_ok());
    }

    #[test]
    fn certain_drop_marks_delivery_and_still_charges_pipe() {
        use crate::fault::{FaultPlan, Window};
        let link = Link::new(no_overhead(LinkConfig {
            one_way_latency: Duration::from_millis(5),
            bandwidth_bps: Some(1_000_000),
            per_message_overhead: 0,
        }));
        let window = Window::new(SimTime::ZERO, SimTime::from_secs(1));
        link.set_fault_plan(true, Some(FaultPlan::new(2).with_drop(window, 1.0)));
        let d = link.forward().transfer(SimTime::ZERO, 1250).unwrap();
        assert!(d.dropped);
        assert_eq!(d.arrival, SimTime::from_millis(15));
        // The lost transfer occupied the pipe: the next one queues.
        let d2 = link.forward().transfer(SimTime::ZERO, 1250).unwrap();
        assert_eq!(d2.arrival, SimTime::from_millis(25));
        assert_eq!(link.traffic().0, 2);
    }

    #[test]
    fn fault_plan_replays_identically_after_reinstall() {
        use crate::fault::{FaultPlan, Window};
        let plan = FaultPlan::new(42)
            .with_drop(Window::new(SimTime::ZERO, SimTime::from_secs(10)), 0.5)
            .with_jitter(
                Window::new(SimTime::ZERO, SimTime::from_secs(10)),
                Duration::from_millis(3),
            );
        let run = |plan: FaultPlan| {
            let link = Link::new(no_overhead(LinkConfig::lan()));
            link.set_fault_plan(true, Some(plan));
            (0..50)
                .map(|ms| link.forward().transfer(SimTime::from_millis(ms), 100).unwrap())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(plan.clone()), run(plan));
    }

    #[test]
    fn presets_have_expected_rtt() {
        assert_eq!(LinkConfig::wan().one_way_latency, Duration::from_millis(20));
        let cfg = LinkConfig::wan().with_rtt(Duration::from_millis(10));
        assert_eq!(cfg.one_way_latency, Duration::from_millis(5));
    }
}
