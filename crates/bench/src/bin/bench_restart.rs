//! Restart-warm bench: a client with a persistent block store reads a
//! 1 MiB file cold over the long-fat link, shuts down cleanly (flushing
//! and syncing the store), and a *new* session is established over the
//! same virtual disk — modelling a proxy machine reboot. The reopened
//! store must replay its on-disk index and serve every block warm: the
//! warm-restart phase is asserted to issue **zero** WAN data READs
//! (revalidation GETATTRs are allowed — consistency is still checked,
//! the data just never crosses the WAN again). Emits
//! `results/BENCH_restart.json` with both phases' wall times, WAN RPC
//! splits, and the store's restart counters.
//!
//! Run: `cargo run --release -p gvfs-bench --bin bench_restart [--small]`

use gvfs_bench::{nfs_calls, print_table, read_path_json, save_json, small_mode};
use gvfs_client::{MountOptions, NfsClient};
use gvfs_core::session::{Session, SessionConfig};
use gvfs_core::ConsistencyModel;
use gvfs_netsim::disk::VirtualDisk;
use gvfs_netsim::link::LinkConfig;
use gvfs_netsim::Sim;
use gvfs_nfs3::proc3;
use gvfs_vfs::Vfs;
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::Duration;

const BLOCK: u64 = 32 * 1024;

fn config() -> SessionConfig {
    SessionConfig {
        model: ConsistencyModel::InvalidationPolling {
            period: Duration::from_secs(300),
            backoff_max: None,
        },
        persistent_store: true,
        ..SessionConfig::default()
    }
}

fn link() -> LinkConfig {
    LinkConfig::wan().with_rtt(Duration::from_millis(200)).with_bandwidth_bps(100_000_000)
}

struct PhaseResult {
    wall_s: f64,
    wan_reads: u64,
    wan_getattrs: u64,
    wan_total: u64,
    warm_blocks: u64,
    read_path: serde_json::Value,
}

/// Runs one session over `vfs` (and `disk`, when restarting): a full
/// sequential pass over `/seq`, then a clean shutdown that flushes and
/// syncs the store. Returns the phase counters and the client's disk
/// for the next incarnation.
fn run_session(
    name: &'static str,
    vfs: &Arc<Vfs>,
    disk: Option<Arc<VirtualDisk>>,
    blocks: u64,
) -> (PhaseResult, Arc<VirtualDisk>) {
    let sim = Sim::new();
    let mut builder = Session::builder(config()).clients(1).wan(link()).vfs(Arc::clone(vfs));
    if let Some(disk) = disk {
        builder = builder.client_disks(vec![disk]);
    }
    let session = builder.establish(&sim);
    let t = session.client_transport(0);
    let root = session.root_fh();
    let stats = session.wan_stats().clone();
    let handle = session.handle();
    let session = Arc::new(session);
    let s2 = Arc::clone(&session);
    let out: Arc<Mutex<Option<PhaseResult>>> = Arc::new(Mutex::new(None));
    let out2 = Arc::clone(&out);
    sim.spawn(name, move || {
        let c = NfsClient::new(t, root, MountOptions::noac());
        let seq = c.open("/seq").unwrap();
        let before = stats.snapshot();
        let t0 = gvfs_netsim::now();
        for b in 0..blocks {
            assert_eq!(c.read(seq, b * BLOCK, BLOCK as u32).unwrap(), vec![6u8; BLOCK as usize]);
        }
        let wall_s = gvfs_netsim::now().saturating_since(t0).as_secs_f64();
        let delta = stats.snapshot().since(&before);
        let proxy_stats = s2.proxy_client(0).stats();
        *out2.lock() = Some(PhaseResult {
            wall_s,
            wan_reads: nfs_calls(&delta, proc3::READ),
            wan_getattrs: nfs_calls(&delta, proc3::GETATTR),
            wan_total: delta.total_calls(),
            warm_blocks: proxy_stats.restart_warm_blocks,
            read_path: read_path_json(&proxy_stats),
        });
        // Clean shutdown: flush write-back (none here) and sync the
        // store, so the next incarnation reopens a barrier-covered WAL.
        handle.shutdown();
    });
    sim.run();
    let disk = session.client_disk(0).expect("session runs a persistent store");
    let result = out.lock().take().expect("reader actor completed");
    (result, disk)
}

fn main() {
    let blocks: u64 = if small_mode() { 8 } else { 32 };

    // One filesystem outlives both sessions, exactly like the server
    // outlives a proxy machine reboot.
    let vfs = Arc::new(Vfs::new());
    let t0 = gvfs_vfs::Timestamp::from_nanos(0);
    let f = vfs.create(vfs.root(), "seq", 0o644, t0).unwrap();
    vfs.write(f, 0, &vec![6u8; (blocks * BLOCK) as usize], t0).unwrap();

    let (cold, disk) = run_session("cold-reader", &vfs, None, blocks);
    let (warm, _disk) = run_session("restart-reader", &vfs, Some(disk), blocks);

    let rows = [("cold", &cold), ("warm_restart", &warm)]
        .iter()
        .map(|(name, p)| {
            vec![
                (*name).to_string(),
                format!("{:.3}", p.wall_s),
                p.wan_reads.to_string(),
                p.wan_getattrs.to_string(),
                p.wan_total.to_string(),
            ]
        })
        .collect::<Vec<_>>();
    print_table(
        &format!("BENCH_restart ({blocks} x 32 KiB blocks, 200 ms RTT)"),
        &["phase", "wall (s)", "WAN READs", "WAN GETATTRs", "WAN RPCs"],
        &rows,
    );

    // The point of the persistent store: a restart costs revalidation,
    // never data. The reopened index must also report the blocks warm.
    assert_eq!(
        warm.wan_reads, 0,
        "warm-restart pass must serve every block from the reopened store"
    );
    let warm_blocks = warm.warm_blocks;
    assert!(
        warm_blocks >= blocks,
        "the reopened index must cover the file's {blocks} blocks, reported {warm_blocks}"
    );
    assert!(
        warm.wall_s < cold.wall_s,
        "revalidation-only restart must beat the cold pass ({:.3}s vs {:.3}s)",
        warm.wall_s,
        cold.wall_s
    );
    println!(
        "\ncold {:.3}s ({} WAN READs) -> warm restart {:.3}s ({} WAN READs, {} blocks warm)",
        cold.wall_s, cold.wan_reads, warm.wall_s, warm.wan_reads, warm_blocks
    );

    let phase_json = |p: &PhaseResult| {
        serde_json::json!({
            "wall_s": p.wall_s,
            "wan_reads": p.wan_reads,
            "wan_getattrs": p.wan_getattrs,
            "wan_rpcs": p.wan_total,
            "read_path": p.read_path,
        })
    };
    save_json(
        "BENCH_restart.json",
        &serde_json::json!({
            "experiment": "BENCH_restart",
            "blocks": blocks,
            "block_bytes": BLOCK,
            "link": { "rtt_ms": 200, "bandwidth_mbps": 100 },
            "cold": phase_json(&cold),
            "warm_restart": phase_json(&warm),
        }),
    );
}
