/root/repo/target/debug/deps/gvfs_rpc-3ffd42f6b3334db7.d: /root/repo/clippy.toml crates/rpc/src/lib.rs crates/rpc/src/dispatch.rs crates/rpc/src/drc.rs crates/rpc/src/message.rs crates/rpc/src/record.rs crates/rpc/src/stats.rs crates/rpc/src/tcp.rs crates/rpc/src/error.rs Cargo.toml

/root/repo/target/debug/deps/libgvfs_rpc-3ffd42f6b3334db7.rmeta: /root/repo/clippy.toml crates/rpc/src/lib.rs crates/rpc/src/dispatch.rs crates/rpc/src/drc.rs crates/rpc/src/message.rs crates/rpc/src/record.rs crates/rpc/src/stats.rs crates/rpc/src/tcp.rs crates/rpc/src/error.rs Cargo.toml

/root/repo/clippy.toml:
crates/rpc/src/lib.rs:
crates/rpc/src/dispatch.rs:
crates/rpc/src/drc.rs:
crates/rpc/src/message.rs:
crates/rpc/src/record.rs:
crates/rpc/src/stats.rs:
crates/rpc/src/tcp.rs:
crates/rpc/src/error.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
