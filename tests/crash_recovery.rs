//! Crash/recovery end to end (§4.3.4): a proxy-server crash with an
//! outstanding partial write-back must not lose acknowledged data, and a
//! proxy-client crash must replay its dirty cache only when the server
//! copy is provably unchanged — otherwise the dirty data is discarded as
//! corrupted, never blindly replayed over someone else's writes.

use gvfs_client::{MountOptions, NfsClient};
use gvfs_core::session::{Session, SessionConfig};
use gvfs_core::{ConsistencyModel, DelegationConfig};
use gvfs_netsim::Sim;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn delegation_config(partial_writeback_threshold: usize) -> SessionConfig {
    SessionConfig {
        model: ConsistencyModel::DelegationCallback(DelegationConfig {
            partial_writeback_threshold,
            ..DelegationConfig::default()
        }),
        write_back: true,
        ..SessionConfig::default()
    }
}

fn pattern(len: usize, salt: u8) -> Vec<u8> {
    (0..len).map(|i| (i as u8).wrapping_mul(31).wrapping_add(salt)).collect()
}

fn sleep_until(at: Duration) {
    let elapsed = gvfs_netsim::now().saturating_since(gvfs_netsim::SimTime::ZERO);
    if at > elapsed {
        gvfs_netsim::sleep(at - elapsed);
    }
}

/// A proxy-server crash while a recalled write delegation is still
/// writing back asynchronously: the recall answered with a block list
/// (dirty blocks > threshold), the flusher is mid-stream when the server
/// dies, and recovery must rebuild the delegation table from the
/// clients' dirty-file answers so the remaining blocks land. No
/// acknowledged byte may be lost.
#[test]
fn server_crash_mid_partial_writeback_loses_nothing() {
    let sim = Sim::new();
    let session = Arc::new(Session::builder(delegation_config(2)).clients(2).establish(&sim));
    let data = pattern(64 * 4096, 7);

    let done = Arc::new(AtomicUsize::new(0));
    let answered = Arc::new(AtomicUsize::new(usize::MAX));

    {
        let t = session.client_transport(0);
        let root = session.root_fh();
        let done = Arc::clone(&done);
        let data = data.clone();
        sim.spawn("cr-writer", move || {
            let c = NfsClient::new(t, root, MountOptions::noac());
            gvfs_netsim::sleep(Duration::from_secs(1));
            // 64 dirty blocks against a threshold of 2: the later recall
            // must choose the partial (asynchronous) write-back path.
            c.write_file("/cr-a", &data).expect("write survives in cache");
            done.fetch_add(1, Ordering::SeqCst);
        });
    }
    {
        let t = session.client_transport(1);
        let root = session.root_fh();
        let done = Arc::clone(&done);
        sim.spawn("cr-reader", move || {
            let c = NfsClient::new(t, root, MountOptions::noac());
            sleep_until(Duration::from_secs(4));
            // The read recalls the write delegation; the answer is a
            // block list and the writer starts flushing asynchronously.
            // The server crashes under it, so this forward blocks until
            // recovery — completion (not content) is the assertion here.
            let _ = c.read_file("/cr-a");
            done.fetch_add(1, Ordering::SeqCst);
        });
    }
    {
        let session = Arc::clone(&session);
        let done = Arc::clone(&done);
        let answered = Arc::clone(&answered);
        sim.spawn("cr-controller", move || {
            sleep_until(Duration::from_millis(4_200));
            session.crash_proxy_server();
            gvfs_netsim::sleep(Duration::from_secs(8));
            answered.store(session.restart_proxy_server(), Ordering::SeqCst);
            done.fetch_add(1, Ordering::SeqCst);
        });
    }
    {
        let handle = session.handle();
        let done = Arc::clone(&done);
        sim.spawn("cr-closer", move || {
            loop {
                gvfs_netsim::park_timeout(Duration::from_secs(1));
                if done.load(Ordering::SeqCst) >= 3 {
                    break;
                }
            }
            handle.shutdown();
        });
    }
    sim.run();

    assert!(
        answered.load(Ordering::SeqCst) >= 1,
        "recovery must hear back from at least the dirty client"
    );
    let vfs = session.vfs();
    let id = vfs.lookup_path("/cr-a").expect("file survives the crash");
    let (bytes, _) = vfs.read(id, 0, data.len() as u32).expect("readable after recovery");
    assert_eq!(bytes, data, "every acknowledged byte must reach stable storage");
}

/// A proxy-client crash while the server copy moved on: the crashed
/// client held dirty data, its delegation was revoked unreachable, and
/// another client's write was flushed in the meantime. Recovery must
/// notice the mtime mismatch, discard the stale dirty cache as
/// corrupted, and leave the surviving writer's data in place.
#[test]
fn client_crash_discards_dirty_when_server_moved_on() {
    let sim = Sim::new();
    let session = Arc::new(Session::builder(delegation_config(1024)).clients(2).establish(&sim));
    let stale = pattern(4096, 1);
    let fresh = pattern(4096, 2);

    let done = Arc::new(AtomicUsize::new(0));
    let corrupted = Arc::new(Mutex::new(Vec::new()));

    {
        let t = session.client_transport(0);
        let root = session.root_fh();
        let done = Arc::clone(&done);
        let stale = stale.clone();
        sim.spawn("cr-crasher", move || {
            let c = NfsClient::new(t, root, MountOptions::noac());
            gvfs_netsim::sleep(Duration::from_secs(1));
            // The first write forwards write-through and acquires the
            // write delegation; the second is the one that stays dirty
            // in the disk cache across the crash.
            let fh = c.write_file("/cr-b", &pattern(4096, 0)).expect("acquire delegation");
            c.write(fh, 0, &stale).expect("dirty write acked");
            done.fetch_add(1, Ordering::SeqCst);
        });
    }
    {
        let t = session.client_transport(1);
        let root = session.root_fh();
        let done = Arc::clone(&done);
        let fresh = fresh.clone();
        sim.spawn("cr-survivor", move || {
            let c = NfsClient::new(t, root, MountOptions::noac());
            // Client 0 is already down: the recall of its write
            // delegation times out and the server revokes it
            // unreachable, losing the unflushed dirty data (§4.3.4).
            // This first write then forwards write-through, so the
            // server copy's mtime moves past the crashed client's
            // write-back base.
            sleep_until(Duration::from_secs(8));
            let fh = c.resolve("/cr-b").expect("resolve");
            c.write(fh, 0, &fresh).expect("surviving write acked");
            done.fetch_add(1, Ordering::SeqCst);
        });
    }
    {
        let session = Arc::clone(&session);
        let done = Arc::clone(&done);
        let corrupted = Arc::clone(&corrupted);
        sim.spawn("cr-controller", move || {
            sleep_until(Duration::from_secs(4));
            session.crash_proxy_client(0);
            sleep_until(Duration::from_secs(30));
            *corrupted.lock() = session.restart_proxy_client(0);
            done.fetch_add(1, Ordering::SeqCst);
        });
    }
    {
        let handle = session.handle();
        let done = Arc::clone(&done);
        sim.spawn("cr-closer", move || {
            loop {
                gvfs_netsim::park_timeout(Duration::from_secs(1));
                if done.load(Ordering::SeqCst) >= 3 {
                    break;
                }
            }
            handle.shutdown();
        });
    }
    sim.run();

    assert_eq!(
        corrupted.lock().len(),
        1,
        "the crashed client's dirty file must be flagged corrupted, not replayed"
    );
    let vfs = session.vfs();
    let id = vfs.lookup_path("/cr-b").expect("lookup");
    let (bytes, _) = vfs.read(id, 0, fresh.len() as u32).expect("read");
    assert_eq!(bytes, fresh, "the surviving writer's data must not be clobbered");
}

/// The companion case: the server copy did NOT change while the client
/// was down, so crash recovery replays the dirty cache — one block
/// written back inline to reacquire the delegation, the rest via the
/// flusher — and nothing is reported corrupted.
#[test]
fn client_crash_replays_dirty_when_server_unchanged() {
    let sim = Sim::new();
    let session = Arc::new(Session::builder(delegation_config(1024)).clients(1).establish(&sim));
    let data = pattern(4 * 4096, 3);

    let done = Arc::new(AtomicUsize::new(0));
    let corrupted = Arc::new(Mutex::new(vec![gvfs_nfs3::Fh3::from_fileid(u64::MAX)]));

    {
        let t = session.client_transport(0);
        let root = session.root_fh();
        let done = Arc::clone(&done);
        let data = data.clone();
        sim.spawn("cr-writer", move || {
            let c = NfsClient::new(t, root, MountOptions::noac());
            gvfs_netsim::sleep(Duration::from_secs(1));
            c.write_file("/cr-c", &data).expect("dirty write acked");
            done.fetch_add(1, Ordering::SeqCst);
        });
    }
    {
        let session = Arc::clone(&session);
        let done = Arc::clone(&done);
        let corrupted = Arc::clone(&corrupted);
        sim.spawn("cr-controller", move || {
            sleep_until(Duration::from_secs(3));
            session.crash_proxy_client(0);
            gvfs_netsim::sleep(Duration::from_secs(10));
            *corrupted.lock() = session.restart_proxy_client(0);
            done.fetch_add(1, Ordering::SeqCst);
        });
    }
    {
        let handle = session.handle();
        let done = Arc::clone(&done);
        sim.spawn("cr-closer", move || {
            loop {
                gvfs_netsim::park_timeout(Duration::from_secs(1));
                if done.load(Ordering::SeqCst) >= 2 {
                    break;
                }
            }
            handle.shutdown();
        });
    }
    sim.run();

    assert!(
        corrupted.lock().is_empty(),
        "an unchanged server copy means the dirty cache is replayed, not discarded"
    );
    let vfs = session.vfs();
    let id = vfs.lookup_path("/cr-c").expect("lookup");
    let (bytes, _) = vfs.read(id, 0, data.len() as u32).expect("read");
    assert_eq!(bytes, data, "the replayed dirty data must reach stable storage");
}
