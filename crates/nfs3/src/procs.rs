//! Per-procedure argument and result structures (RFC 1813 §3.3).
//!
//! Result types mirror the RFC's discriminated unions: an `Ok` arm with
//! the `resok` body and a `Fail` arm carrying the failing status plus
//! whatever attributes the RFC returns on failure.

use crate::status::Nfsstat3;
use crate::types::{Fattr3, Fh3, NfsTime3, PostOpAttr, PostOpFh3, Sattr3, WccData};
use gvfs_xdr::{Decoder, Encoder, Xdr, XdrError};

/// Maximum filename length accepted (protocol hygiene bound).
pub const MAX_NAME: usize = 255;

fn get_name(dec: &mut Decoder<'_>) -> Result<String, XdrError> {
    let bytes = dec.get_opaque_bounded("filename3", MAX_NAME)?;
    String::from_utf8(bytes).map_err(|_| XdrError::InvalidUtf8)
}

/// `ACCESS` permission bits.
pub mod access {
    /// Read data or readdir.
    pub const READ: u32 = 0x0001;
    /// Look up a name in a directory.
    pub const LOOKUP: u32 = 0x0002;
    /// Modify a file's data.
    pub const MODIFY: u32 = 0x0004;
    /// Extend a file or add directory entries.
    pub const EXTEND: u32 = 0x0008;
    /// Delete directory entries.
    pub const DELETE: u32 = 0x0010;
    /// Execute a file.
    pub const EXECUTE: u32 = 0x0020;
}

/// `GETATTR` arguments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GetattrArgs {
    /// Target object.
    pub object: Fh3,
}

impl Xdr for GetattrArgs {
    fn encode(&self, enc: &mut Encoder) -> Result<(), XdrError> {
        self.object.encode(enc)
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, XdrError> {
        Ok(GetattrArgs { object: Fh3::decode(dec)? })
    }
}

/// `GETATTR` result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GetattrRes {
    /// Attributes of the object.
    Ok(Fattr3),
    /// Failure status (never [`Nfsstat3::Ok`]).
    Fail(Nfsstat3),
}

impl Xdr for GetattrRes {
    fn encode(&self, enc: &mut Encoder) -> Result<(), XdrError> {
        match self {
            GetattrRes::Ok(attr) => {
                Nfsstat3::Ok.encode(enc)?;
                attr.encode(enc)
            }
            GetattrRes::Fail(status) => {
                debug_assert!(!status.is_ok());
                status.encode(enc)
            }
        }
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, XdrError> {
        let status = Nfsstat3::decode(dec)?;
        if status.is_ok() {
            Ok(GetattrRes::Ok(Fattr3::decode(dec)?))
        } else {
            Ok(GetattrRes::Fail(status))
        }
    }
}

/// `SETATTR` arguments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SetattrArgs {
    /// Target object.
    pub object: Fh3,
    /// Attributes to set.
    pub new_attributes: Sattr3,
    /// Optional ctime guard: fail with `NOT_SYNC` unless the object's
    /// ctime matches.
    pub guard: Option<NfsTime3>,
}

impl Xdr for SetattrArgs {
    fn encode(&self, enc: &mut Encoder) -> Result<(), XdrError> {
        self.object.encode(enc)?;
        self.new_attributes.encode(enc)?;
        self.guard.encode(enc)
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, XdrError> {
        Ok(SetattrArgs {
            object: Fh3::decode(dec)?,
            new_attributes: Sattr3::decode(dec)?,
            guard: Option::<NfsTime3>::decode(dec)?,
        })
    }
}

/// `SETATTR` result (both arms carry WCC data).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SetattrRes {
    /// Outcome status.
    pub status: Nfsstat3,
    /// Weak cache consistency data for the object.
    pub obj_wcc: WccData,
}

impl Xdr for SetattrRes {
    fn encode(&self, enc: &mut Encoder) -> Result<(), XdrError> {
        self.status.encode(enc)?;
        self.obj_wcc.encode(enc)
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, XdrError> {
        Ok(SetattrRes { status: Nfsstat3::decode(dec)?, obj_wcc: WccData::decode(dec)? })
    }
}

/// `LOOKUP` arguments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LookupArgs {
    /// Directory to search.
    pub dir: Fh3,
    /// Name to look up.
    pub name: String,
}

impl Xdr for LookupArgs {
    fn encode(&self, enc: &mut Encoder) -> Result<(), XdrError> {
        self.dir.encode(enc)?;
        enc.put_string(&self.name)
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, XdrError> {
        Ok(LookupArgs { dir: Fh3::decode(dec)?, name: get_name(dec)? })
    }
}

/// `LOOKUP` result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LookupRes {
    /// The object was found.
    Ok {
        /// Handle of the found object.
        object: Fh3,
        /// Attributes of the found object.
        obj_attributes: PostOpAttr,
        /// Attributes of the searched directory.
        dir_attributes: PostOpAttr,
    },
    /// The lookup failed.
    Fail {
        /// Failure status (never [`Nfsstat3::Ok`]).
        status: Nfsstat3,
        /// Attributes of the searched directory.
        dir_attributes: PostOpAttr,
    },
}

impl Xdr for LookupRes {
    fn encode(&self, enc: &mut Encoder) -> Result<(), XdrError> {
        match self {
            LookupRes::Ok { object, obj_attributes, dir_attributes } => {
                Nfsstat3::Ok.encode(enc)?;
                object.encode(enc)?;
                obj_attributes.encode(enc)?;
                dir_attributes.encode(enc)
            }
            LookupRes::Fail { status, dir_attributes } => {
                debug_assert!(!status.is_ok());
                status.encode(enc)?;
                dir_attributes.encode(enc)
            }
        }
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, XdrError> {
        let status = Nfsstat3::decode(dec)?;
        if status.is_ok() {
            Ok(LookupRes::Ok {
                object: Fh3::decode(dec)?,
                obj_attributes: PostOpAttr::decode(dec)?,
                dir_attributes: PostOpAttr::decode(dec)?,
            })
        } else {
            Ok(LookupRes::Fail { status, dir_attributes: PostOpAttr::decode(dec)? })
        }
    }
}

/// `ACCESS` arguments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessArgs {
    /// Target object.
    pub object: Fh3,
    /// Requested access bits (see [`access`]).
    pub access: u32,
}

impl Xdr for AccessArgs {
    fn encode(&self, enc: &mut Encoder) -> Result<(), XdrError> {
        self.object.encode(enc)?;
        enc.put_u32(self.access);
        Ok(())
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, XdrError> {
        Ok(AccessArgs { object: Fh3::decode(dec)?, access: dec.get_u32()? })
    }
}

/// `ACCESS` result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessRes {
    /// Access check completed.
    Ok {
        /// Attributes of the object.
        obj_attributes: PostOpAttr,
        /// Granted access bits.
        access: u32,
    },
    /// The check failed.
    Fail {
        /// Failure status.
        status: Nfsstat3,
        /// Attributes of the object.
        obj_attributes: PostOpAttr,
    },
}

impl Xdr for AccessRes {
    fn encode(&self, enc: &mut Encoder) -> Result<(), XdrError> {
        match self {
            AccessRes::Ok { obj_attributes, access } => {
                Nfsstat3::Ok.encode(enc)?;
                obj_attributes.encode(enc)?;
                enc.put_u32(*access);
                Ok(())
            }
            AccessRes::Fail { status, obj_attributes } => {
                debug_assert!(!status.is_ok());
                status.encode(enc)?;
                obj_attributes.encode(enc)
            }
        }
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, XdrError> {
        let status = Nfsstat3::decode(dec)?;
        if status.is_ok() {
            Ok(AccessRes::Ok { obj_attributes: PostOpAttr::decode(dec)?, access: dec.get_u32()? })
        } else {
            Ok(AccessRes::Fail { status, obj_attributes: PostOpAttr::decode(dec)? })
        }
    }
}

/// `READLINK` arguments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadlinkArgs {
    /// The symlink to read.
    pub symlink: Fh3,
}

impl Xdr for ReadlinkArgs {
    fn encode(&self, enc: &mut Encoder) -> Result<(), XdrError> {
        self.symlink.encode(enc)
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, XdrError> {
        Ok(ReadlinkArgs { symlink: Fh3::decode(dec)? })
    }
}

/// `READLINK` result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReadlinkRes {
    /// The link content.
    Ok {
        /// Attributes of the symlink.
        symlink_attributes: PostOpAttr,
        /// Target path.
        data: String,
    },
    /// The read failed.
    Fail {
        /// Failure status.
        status: Nfsstat3,
        /// Attributes of the symlink.
        symlink_attributes: PostOpAttr,
    },
}

impl Xdr for ReadlinkRes {
    fn encode(&self, enc: &mut Encoder) -> Result<(), XdrError> {
        match self {
            ReadlinkRes::Ok { symlink_attributes, data } => {
                Nfsstat3::Ok.encode(enc)?;
                symlink_attributes.encode(enc)?;
                enc.put_string(data)
            }
            ReadlinkRes::Fail { status, symlink_attributes } => {
                debug_assert!(!status.is_ok());
                status.encode(enc)?;
                symlink_attributes.encode(enc)
            }
        }
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, XdrError> {
        let status = Nfsstat3::decode(dec)?;
        if status.is_ok() {
            Ok(ReadlinkRes::Ok {
                symlink_attributes: PostOpAttr::decode(dec)?,
                data: dec.get_string()?,
            })
        } else {
            Ok(ReadlinkRes::Fail { status, symlink_attributes: PostOpAttr::decode(dec)? })
        }
    }
}

/// `READ` arguments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadArgs {
    /// File to read.
    pub file: Fh3,
    /// Byte offset.
    pub offset: u64,
    /// Bytes requested.
    pub count: u32,
}

impl Xdr for ReadArgs {
    fn encode(&self, enc: &mut Encoder) -> Result<(), XdrError> {
        self.file.encode(enc)?;
        enc.put_u64(self.offset);
        enc.put_u32(self.count);
        Ok(())
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, XdrError> {
        Ok(ReadArgs { file: Fh3::decode(dec)?, offset: dec.get_u64()?, count: dec.get_u32()? })
    }
}

/// `READ` result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReadRes {
    /// Data was read.
    Ok {
        /// Attributes of the file.
        file_attributes: PostOpAttr,
        /// Bytes returned.
        count: u32,
        /// Whether the read reached end of file.
        eof: bool,
        /// The data.
        data: Vec<u8>,
    },
    /// The read failed.
    Fail {
        /// Failure status.
        status: Nfsstat3,
        /// Attributes of the file.
        file_attributes: PostOpAttr,
    },
}

impl Xdr for ReadRes {
    fn encode(&self, enc: &mut Encoder) -> Result<(), XdrError> {
        match self {
            ReadRes::Ok { file_attributes, count, eof, data } => {
                Nfsstat3::Ok.encode(enc)?;
                file_attributes.encode(enc)?;
                enc.put_u32(*count);
                enc.put_bool(*eof);
                enc.put_opaque(data)
            }
            ReadRes::Fail { status, file_attributes } => {
                debug_assert!(!status.is_ok());
                status.encode(enc)?;
                file_attributes.encode(enc)
            }
        }
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, XdrError> {
        let status = Nfsstat3::decode(dec)?;
        if status.is_ok() {
            Ok(ReadRes::Ok {
                file_attributes: PostOpAttr::decode(dec)?,
                count: dec.get_u32()?,
                eof: dec.get_bool()?,
                data: dec.get_opaque()?,
            })
        } else {
            Ok(ReadRes::Fail { status, file_attributes: PostOpAttr::decode(dec)? })
        }
    }
}

/// Write stability levels (`stable_how`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[repr(u32)]
pub enum StableHow {
    /// The server may cache the write.
    Unstable = 0,
    /// Commit data before replying.
    DataSync = 1,
    /// Commit data and metadata before replying.
    #[default]
    FileSync = 2,
}

impl Xdr for StableHow {
    fn encode(&self, enc: &mut Encoder) -> Result<(), XdrError> {
        enc.put_u32(*self as u32);
        Ok(())
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, XdrError> {
        match dec.get_u32()? {
            0 => Ok(StableHow::Unstable),
            1 => Ok(StableHow::DataSync),
            2 => Ok(StableHow::FileSync),
            value => Err(XdrError::InvalidDiscriminant { type_name: "StableHow", value }),
        }
    }
}

/// `WRITE` arguments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WriteArgs {
    /// File to write.
    pub file: Fh3,
    /// Byte offset.
    pub offset: u64,
    /// Bytes in `data`.
    pub count: u32,
    /// Stability requested.
    pub stable: StableHow,
    /// The data.
    pub data: Vec<u8>,
}

impl Xdr for WriteArgs {
    fn encode(&self, enc: &mut Encoder) -> Result<(), XdrError> {
        self.file.encode(enc)?;
        enc.put_u64(self.offset);
        enc.put_u32(self.count);
        self.stable.encode(enc)?;
        enc.put_opaque(&self.data)
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, XdrError> {
        Ok(WriteArgs {
            file: Fh3::decode(dec)?,
            offset: dec.get_u64()?,
            count: dec.get_u32()?,
            stable: StableHow::decode(dec)?,
            data: dec.get_opaque()?,
        })
    }
}

/// `WRITE` result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteRes {
    /// Data was written.
    Ok {
        /// WCC data for the file.
        file_wcc: WccData,
        /// Bytes accepted.
        count: u32,
        /// Stability achieved.
        committed: StableHow,
        /// Write verifier (changes when the server reboots).
        verf: u64,
    },
    /// The write failed.
    Fail {
        /// Failure status.
        status: Nfsstat3,
        /// WCC data for the file.
        file_wcc: WccData,
    },
}

impl Xdr for WriteRes {
    fn encode(&self, enc: &mut Encoder) -> Result<(), XdrError> {
        match self {
            WriteRes::Ok { file_wcc, count, committed, verf } => {
                Nfsstat3::Ok.encode(enc)?;
                file_wcc.encode(enc)?;
                enc.put_u32(*count);
                committed.encode(enc)?;
                enc.put_u64(*verf);
                Ok(())
            }
            WriteRes::Fail { status, file_wcc } => {
                debug_assert!(!status.is_ok());
                status.encode(enc)?;
                file_wcc.encode(enc)
            }
        }
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, XdrError> {
        let status = Nfsstat3::decode(dec)?;
        if status.is_ok() {
            Ok(WriteRes::Ok {
                file_wcc: WccData::decode(dec)?,
                count: dec.get_u32()?,
                committed: StableHow::decode(dec)?,
                verf: dec.get_u64()?,
            })
        } else {
            Ok(WriteRes::Fail { status, file_wcc: WccData::decode(dec)? })
        }
    }
}

/// `CREATE` guard modes (`createhow3`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CreateHow {
    /// Create or open the existing file.
    Unchecked(Sattr3),
    /// Fail if the file exists.
    Guarded(Sattr3),
    /// Exclusive create keyed by a verifier.
    Exclusive(u64),
}

impl Xdr for CreateHow {
    fn encode(&self, enc: &mut Encoder) -> Result<(), XdrError> {
        match self {
            CreateHow::Unchecked(attrs) => {
                enc.put_u32(0);
                attrs.encode(enc)
            }
            CreateHow::Guarded(attrs) => {
                enc.put_u32(1);
                attrs.encode(enc)
            }
            CreateHow::Exclusive(verf) => {
                enc.put_u32(2);
                enc.put_u64(*verf);
                Ok(())
            }
        }
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, XdrError> {
        match dec.get_u32()? {
            0 => Ok(CreateHow::Unchecked(Sattr3::decode(dec)?)),
            1 => Ok(CreateHow::Guarded(Sattr3::decode(dec)?)),
            2 => Ok(CreateHow::Exclusive(dec.get_u64()?)),
            value => Err(XdrError::InvalidDiscriminant { type_name: "CreateHow", value }),
        }
    }
}

/// `CREATE` arguments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CreateArgs {
    /// Parent directory.
    pub dir: Fh3,
    /// New file name.
    pub name: String,
    /// Guard mode and initial attributes.
    pub how: CreateHow,
}

impl Xdr for CreateArgs {
    fn encode(&self, enc: &mut Encoder) -> Result<(), XdrError> {
        self.dir.encode(enc)?;
        enc.put_string(&self.name)?;
        self.how.encode(enc)
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, XdrError> {
        Ok(CreateArgs {
            dir: Fh3::decode(dec)?,
            name: get_name(dec)?,
            how: CreateHow::decode(dec)?,
        })
    }
}

/// Result shape shared by `CREATE`, `MKDIR` and `SYMLINK`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NewObjRes {
    /// The object was created.
    Ok {
        /// Handle of the new object.
        obj: PostOpFh3,
        /// Attributes of the new object.
        obj_attributes: PostOpAttr,
        /// WCC data for the parent directory.
        dir_wcc: WccData,
    },
    /// Creation failed.
    Fail {
        /// Failure status.
        status: Nfsstat3,
        /// WCC data for the parent directory.
        dir_wcc: WccData,
    },
}

impl Xdr for NewObjRes {
    fn encode(&self, enc: &mut Encoder) -> Result<(), XdrError> {
        match self {
            NewObjRes::Ok { obj, obj_attributes, dir_wcc } => {
                Nfsstat3::Ok.encode(enc)?;
                obj.encode(enc)?;
                obj_attributes.encode(enc)?;
                dir_wcc.encode(enc)
            }
            NewObjRes::Fail { status, dir_wcc } => {
                debug_assert!(!status.is_ok());
                status.encode(enc)?;
                dir_wcc.encode(enc)
            }
        }
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, XdrError> {
        let status = Nfsstat3::decode(dec)?;
        if status.is_ok() {
            Ok(NewObjRes::Ok {
                obj: PostOpFh3::decode(dec)?,
                obj_attributes: PostOpAttr::decode(dec)?,
                dir_wcc: WccData::decode(dec)?,
            })
        } else {
            Ok(NewObjRes::Fail { status, dir_wcc: WccData::decode(dec)? })
        }
    }
}

/// `MKDIR` arguments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MkdirArgs {
    /// Parent directory.
    pub dir: Fh3,
    /// New directory name.
    pub name: String,
    /// Initial attributes.
    pub attributes: Sattr3,
}

impl Xdr for MkdirArgs {
    fn encode(&self, enc: &mut Encoder) -> Result<(), XdrError> {
        self.dir.encode(enc)?;
        enc.put_string(&self.name)?;
        self.attributes.encode(enc)
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, XdrError> {
        Ok(MkdirArgs {
            dir: Fh3::decode(dec)?,
            name: get_name(dec)?,
            attributes: Sattr3::decode(dec)?,
        })
    }
}

/// `SYMLINK` arguments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SymlinkArgs {
    /// Parent directory.
    pub dir: Fh3,
    /// New link name.
    pub name: String,
    /// Initial attributes.
    pub symlink_attributes: Sattr3,
    /// Link target path.
    pub symlink_data: String,
}

impl Xdr for SymlinkArgs {
    fn encode(&self, enc: &mut Encoder) -> Result<(), XdrError> {
        self.dir.encode(enc)?;
        enc.put_string(&self.name)?;
        self.symlink_attributes.encode(enc)?;
        enc.put_string(&self.symlink_data)
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, XdrError> {
        Ok(SymlinkArgs {
            dir: Fh3::decode(dec)?,
            name: get_name(dec)?,
            symlink_attributes: Sattr3::decode(dec)?,
            symlink_data: dec.get_string()?,
        })
    }
}

/// Arguments naming an entry in a directory (`REMOVE`, `RMDIR`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirOpArgs {
    /// The directory.
    pub dir: Fh3,
    /// The entry name.
    pub name: String,
}

impl Xdr for DirOpArgs {
    fn encode(&self, enc: &mut Encoder) -> Result<(), XdrError> {
        self.dir.encode(enc)?;
        enc.put_string(&self.name)
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, XdrError> {
        Ok(DirOpArgs { dir: Fh3::decode(dec)?, name: get_name(dec)? })
    }
}

/// Result shape shared by `REMOVE` and `RMDIR`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DirOpRes {
    /// Outcome status.
    pub status: Nfsstat3,
    /// WCC data for the directory.
    pub dir_wcc: WccData,
}

impl Xdr for DirOpRes {
    fn encode(&self, enc: &mut Encoder) -> Result<(), XdrError> {
        self.status.encode(enc)?;
        self.dir_wcc.encode(enc)
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, XdrError> {
        Ok(DirOpRes { status: Nfsstat3::decode(dec)?, dir_wcc: WccData::decode(dec)? })
    }
}

/// `RENAME` arguments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RenameArgs {
    /// Source directory.
    pub from_dir: Fh3,
    /// Source name.
    pub from_name: String,
    /// Destination directory.
    pub to_dir: Fh3,
    /// Destination name.
    pub to_name: String,
}

impl Xdr for RenameArgs {
    fn encode(&self, enc: &mut Encoder) -> Result<(), XdrError> {
        self.from_dir.encode(enc)?;
        enc.put_string(&self.from_name)?;
        self.to_dir.encode(enc)?;
        enc.put_string(&self.to_name)
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, XdrError> {
        Ok(RenameArgs {
            from_dir: Fh3::decode(dec)?,
            from_name: get_name(dec)?,
            to_dir: Fh3::decode(dec)?,
            to_name: get_name(dec)?,
        })
    }
}

/// `RENAME` result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RenameRes {
    /// Outcome status.
    pub status: Nfsstat3,
    /// WCC data for the source directory.
    pub fromdir_wcc: WccData,
    /// WCC data for the destination directory.
    pub todir_wcc: WccData,
}

impl Xdr for RenameRes {
    fn encode(&self, enc: &mut Encoder) -> Result<(), XdrError> {
        self.status.encode(enc)?;
        self.fromdir_wcc.encode(enc)?;
        self.todir_wcc.encode(enc)
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, XdrError> {
        Ok(RenameRes {
            status: Nfsstat3::decode(dec)?,
            fromdir_wcc: WccData::decode(dec)?,
            todir_wcc: WccData::decode(dec)?,
        })
    }
}

/// `LINK` arguments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinkArgs {
    /// Existing file.
    pub file: Fh3,
    /// Directory for the new link.
    pub dir: Fh3,
    /// New link name.
    pub name: String,
}

impl Xdr for LinkArgs {
    fn encode(&self, enc: &mut Encoder) -> Result<(), XdrError> {
        self.file.encode(enc)?;
        self.dir.encode(enc)?;
        enc.put_string(&self.name)
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, XdrError> {
        Ok(LinkArgs { file: Fh3::decode(dec)?, dir: Fh3::decode(dec)?, name: get_name(dec)? })
    }
}

/// `LINK` result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkRes {
    /// Outcome status.
    pub status: Nfsstat3,
    /// Attributes of the linked file.
    pub file_attributes: PostOpAttr,
    /// WCC data for the link directory.
    pub linkdir_wcc: WccData,
}

impl Xdr for LinkRes {
    fn encode(&self, enc: &mut Encoder) -> Result<(), XdrError> {
        self.status.encode(enc)?;
        self.file_attributes.encode(enc)?;
        self.linkdir_wcc.encode(enc)
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, XdrError> {
        Ok(LinkRes {
            status: Nfsstat3::decode(dec)?,
            file_attributes: PostOpAttr::decode(dec)?,
            linkdir_wcc: WccData::decode(dec)?,
        })
    }
}

/// `READDIR` arguments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReaddirArgs {
    /// Directory to read.
    pub dir: Fh3,
    /// Resume cookie (0 = start).
    pub cookie: u64,
    /// Cookie verifier from a previous reply (0 on first call).
    pub cookieverf: u64,
    /// Maximum reply size in bytes.
    pub count: u32,
}

impl Xdr for ReaddirArgs {
    fn encode(&self, enc: &mut Encoder) -> Result<(), XdrError> {
        self.dir.encode(enc)?;
        enc.put_u64(self.cookie);
        enc.put_u64(self.cookieverf);
        enc.put_u32(self.count);
        Ok(())
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, XdrError> {
        Ok(ReaddirArgs {
            dir: Fh3::decode(dec)?,
            cookie: dec.get_u64()?,
            cookieverf: dec.get_u64()?,
            count: dec.get_u32()?,
        })
    }
}

/// One directory entry (`entry3`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry3 {
    /// File id of the entry.
    pub fileid: u64,
    /// Name within the directory.
    pub name: String,
    /// Cookie to resume after this entry.
    pub cookie: u64,
}

/// `READDIR` result. Entries encode as the RFC's linked list
/// (bool marker before each entry, final bool terminator).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReaddirRes {
    /// A page of entries.
    Ok {
        /// Attributes of the directory.
        dir_attributes: PostOpAttr,
        /// Cookie verifier to pass to the next call.
        cookieverf: u64,
        /// Entries in this page.
        entries: Vec<Entry3>,
        /// Whether the page reaches the end of the directory.
        eof: bool,
    },
    /// The read failed.
    Fail {
        /// Failure status.
        status: Nfsstat3,
        /// Attributes of the directory.
        dir_attributes: PostOpAttr,
    },
}

impl Xdr for ReaddirRes {
    fn encode(&self, enc: &mut Encoder) -> Result<(), XdrError> {
        match self {
            ReaddirRes::Ok { dir_attributes, cookieverf, entries, eof } => {
                Nfsstat3::Ok.encode(enc)?;
                dir_attributes.encode(enc)?;
                enc.put_u64(*cookieverf);
                for entry in entries {
                    enc.put_bool(true);
                    enc.put_u64(entry.fileid);
                    enc.put_string(&entry.name)?;
                    enc.put_u64(entry.cookie);
                }
                enc.put_bool(false);
                enc.put_bool(*eof);
                Ok(())
            }
            ReaddirRes::Fail { status, dir_attributes } => {
                debug_assert!(!status.is_ok());
                status.encode(enc)?;
                dir_attributes.encode(enc)
            }
        }
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, XdrError> {
        let status = Nfsstat3::decode(dec)?;
        if status.is_ok() {
            let dir_attributes = PostOpAttr::decode(dec)?;
            let cookieverf = dec.get_u64()?;
            let mut entries = Vec::new();
            while dec.get_bool()? {
                entries.push(Entry3 {
                    fileid: dec.get_u64()?,
                    name: get_name(dec)?,
                    cookie: dec.get_u64()?,
                });
            }
            let eof = dec.get_bool()?;
            Ok(ReaddirRes::Ok { dir_attributes, cookieverf, entries, eof })
        } else {
            Ok(ReaddirRes::Fail { status, dir_attributes: PostOpAttr::decode(dec)? })
        }
    }
}

/// `READDIRPLUS` arguments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReaddirplusArgs {
    /// Directory to read.
    pub dir: Fh3,
    /// Resume cookie (0 = start).
    pub cookie: u64,
    /// Cookie verifier from a previous reply (0 on first call).
    pub cookieverf: u64,
    /// Maximum bytes of directory information (names + cookies).
    pub dircount: u32,
    /// Maximum total reply size including attributes and handles.
    pub maxcount: u32,
}

impl Xdr for ReaddirplusArgs {
    fn encode(&self, enc: &mut Encoder) -> Result<(), XdrError> {
        self.dir.encode(enc)?;
        enc.put_u64(self.cookie);
        enc.put_u64(self.cookieverf);
        enc.put_u32(self.dircount);
        enc.put_u32(self.maxcount);
        Ok(())
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, XdrError> {
        Ok(ReaddirplusArgs {
            dir: Fh3::decode(dec)?,
            cookie: dec.get_u64()?,
            cookieverf: dec.get_u64()?,
            dircount: dec.get_u32()?,
            maxcount: dec.get_u32()?,
        })
    }
}

/// One `READDIRPLUS` entry (`entryplus3`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EntryPlus3 {
    /// File id of the entry.
    pub fileid: u64,
    /// Name within the directory.
    pub name: String,
    /// Cookie to resume after this entry.
    pub cookie: u64,
    /// Attributes of the entry, when the server supplies them.
    pub name_attributes: PostOpAttr,
    /// Handle of the entry, when the server supplies it.
    pub name_handle: PostOpFh3,
}

/// `READDIRPLUS` result: entries with attributes and handles, the bulk
/// variant the GVFS proxy uses to refresh a stale directory in a few
/// RPCs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReaddirplusRes {
    /// A page of entries.
    Ok {
        /// Attributes of the directory.
        dir_attributes: PostOpAttr,
        /// Cookie verifier to pass to the next call.
        cookieverf: u64,
        /// Entries in this page.
        entries: Vec<EntryPlus3>,
        /// Whether the page reaches the end of the directory.
        eof: bool,
    },
    /// The read failed.
    Fail {
        /// Failure status.
        status: Nfsstat3,
        /// Attributes of the directory.
        dir_attributes: PostOpAttr,
    },
}

impl Xdr for ReaddirplusRes {
    fn encode(&self, enc: &mut Encoder) -> Result<(), XdrError> {
        match self {
            ReaddirplusRes::Ok { dir_attributes, cookieverf, entries, eof } => {
                Nfsstat3::Ok.encode(enc)?;
                dir_attributes.encode(enc)?;
                enc.put_u64(*cookieverf);
                for entry in entries {
                    enc.put_bool(true);
                    enc.put_u64(entry.fileid);
                    enc.put_string(&entry.name)?;
                    enc.put_u64(entry.cookie);
                    entry.name_attributes.encode(enc)?;
                    entry.name_handle.encode(enc)?;
                }
                enc.put_bool(false);
                enc.put_bool(*eof);
                Ok(())
            }
            ReaddirplusRes::Fail { status, dir_attributes } => {
                debug_assert!(!status.is_ok());
                status.encode(enc)?;
                dir_attributes.encode(enc)
            }
        }
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, XdrError> {
        let status = Nfsstat3::decode(dec)?;
        if status.is_ok() {
            let dir_attributes = PostOpAttr::decode(dec)?;
            let cookieverf = dec.get_u64()?;
            let mut entries = Vec::new();
            while dec.get_bool()? {
                entries.push(EntryPlus3 {
                    fileid: dec.get_u64()?,
                    name: get_name(dec)?,
                    cookie: dec.get_u64()?,
                    name_attributes: PostOpAttr::decode(dec)?,
                    name_handle: PostOpFh3::decode(dec)?,
                });
            }
            let eof = dec.get_bool()?;
            Ok(ReaddirplusRes::Ok { dir_attributes, cookieverf, entries, eof })
        } else {
            Ok(ReaddirplusRes::Fail { status, dir_attributes: PostOpAttr::decode(dec)? })
        }
    }
}

/// `FSSTAT` result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsstatRes {
    /// Filesystem statistics.
    Ok {
        /// Attributes of the filesystem root.
        obj_attributes: PostOpAttr,
        /// Total bytes.
        tbytes: u64,
        /// Free bytes.
        fbytes: u64,
        /// Bytes available to the caller.
        abytes: u64,
        /// Total file slots.
        tfiles: u64,
        /// Free file slots.
        ffiles: u64,
        /// File slots available to the caller.
        afiles: u64,
        /// Seconds for which this is expected to stay valid.
        invarsec: u32,
    },
    /// The query failed.
    Fail {
        /// Failure status.
        status: Nfsstat3,
        /// Attributes of the filesystem root.
        obj_attributes: PostOpAttr,
    },
}

impl Xdr for FsstatRes {
    fn encode(&self, enc: &mut Encoder) -> Result<(), XdrError> {
        match self {
            FsstatRes::Ok {
                obj_attributes,
                tbytes,
                fbytes,
                abytes,
                tfiles,
                ffiles,
                afiles,
                invarsec,
            } => {
                Nfsstat3::Ok.encode(enc)?;
                obj_attributes.encode(enc)?;
                enc.put_u64(*tbytes);
                enc.put_u64(*fbytes);
                enc.put_u64(*abytes);
                enc.put_u64(*tfiles);
                enc.put_u64(*ffiles);
                enc.put_u64(*afiles);
                enc.put_u32(*invarsec);
                Ok(())
            }
            FsstatRes::Fail { status, obj_attributes } => {
                debug_assert!(!status.is_ok());
                status.encode(enc)?;
                obj_attributes.encode(enc)
            }
        }
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, XdrError> {
        let status = Nfsstat3::decode(dec)?;
        if status.is_ok() {
            Ok(FsstatRes::Ok {
                obj_attributes: PostOpAttr::decode(dec)?,
                tbytes: dec.get_u64()?,
                fbytes: dec.get_u64()?,
                abytes: dec.get_u64()?,
                tfiles: dec.get_u64()?,
                ffiles: dec.get_u64()?,
                afiles: dec.get_u64()?,
                invarsec: dec.get_u32()?,
            })
        } else {
            Ok(FsstatRes::Fail { status, obj_attributes: PostOpAttr::decode(dec)? })
        }
    }
}

/// `FSINFO` result (static server capabilities).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsinfoRes {
    /// Server capabilities.
    Ok {
        /// Attributes of the filesystem root.
        obj_attributes: PostOpAttr,
        /// Maximum read size.
        rtmax: u32,
        /// Preferred read size.
        rtpref: u32,
        /// Maximum write size.
        wtmax: u32,
        /// Preferred write size.
        wtpref: u32,
        /// Preferred readdir size.
        dtpref: u32,
        /// Maximum file size.
        maxfilesize: u64,
    },
    /// The query failed.
    Fail {
        /// Failure status.
        status: Nfsstat3,
        /// Attributes of the filesystem root.
        obj_attributes: PostOpAttr,
    },
}

impl Xdr for FsinfoRes {
    fn encode(&self, enc: &mut Encoder) -> Result<(), XdrError> {
        match self {
            FsinfoRes::Ok { obj_attributes, rtmax, rtpref, wtmax, wtpref, dtpref, maxfilesize } => {
                Nfsstat3::Ok.encode(enc)?;
                obj_attributes.encode(enc)?;
                enc.put_u32(*rtmax);
                enc.put_u32(*rtpref);
                enc.put_u32(*wtmax);
                enc.put_u32(*wtpref);
                enc.put_u32(*dtpref);
                enc.put_u64(*maxfilesize);
                Ok(())
            }
            FsinfoRes::Fail { status, obj_attributes } => {
                debug_assert!(!status.is_ok());
                status.encode(enc)?;
                obj_attributes.encode(enc)
            }
        }
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, XdrError> {
        let status = Nfsstat3::decode(dec)?;
        if status.is_ok() {
            Ok(FsinfoRes::Ok {
                obj_attributes: PostOpAttr::decode(dec)?,
                rtmax: dec.get_u32()?,
                rtpref: dec.get_u32()?,
                wtmax: dec.get_u32()?,
                wtpref: dec.get_u32()?,
                dtpref: dec.get_u32()?,
                maxfilesize: dec.get_u64()?,
            })
        } else {
            Ok(FsinfoRes::Fail { status, obj_attributes: PostOpAttr::decode(dec)? })
        }
    }
}

/// `COMMIT` arguments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommitArgs {
    /// File whose cached writes to commit.
    pub file: Fh3,
    /// Start of the range.
    pub offset: u64,
    /// Length of the range (0 = to end of file).
    pub count: u32,
}

impl Xdr for CommitArgs {
    fn encode(&self, enc: &mut Encoder) -> Result<(), XdrError> {
        self.file.encode(enc)?;
        enc.put_u64(self.offset);
        enc.put_u32(self.count);
        Ok(())
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, XdrError> {
        Ok(CommitArgs { file: Fh3::decode(dec)?, offset: dec.get_u64()?, count: dec.get_u32()? })
    }
}

/// `COMMIT` result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommitRes {
    /// Writes are stable.
    Ok {
        /// WCC data for the file.
        file_wcc: WccData,
        /// Write verifier.
        verf: u64,
    },
    /// The commit failed.
    Fail {
        /// Failure status.
        status: Nfsstat3,
        /// WCC data for the file.
        file_wcc: WccData,
    },
}

impl Xdr for CommitRes {
    fn encode(&self, enc: &mut Encoder) -> Result<(), XdrError> {
        match self {
            CommitRes::Ok { file_wcc, verf } => {
                Nfsstat3::Ok.encode(enc)?;
                file_wcc.encode(enc)?;
                enc.put_u64(*verf);
                Ok(())
            }
            CommitRes::Fail { status, file_wcc } => {
                debug_assert!(!status.is_ok());
                status.encode(enc)?;
                file_wcc.encode(enc)
            }
        }
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, XdrError> {
        let status = Nfsstat3::decode(dec)?;
        if status.is_ok() {
            Ok(CommitRes::Ok { file_wcc: WccData::decode(dec)?, verf: dec.get_u64()? })
        } else {
            Ok(CommitRes::Fail { status, file_wcc: WccData::decode(dec)? })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rt<T: Xdr + PartialEq + std::fmt::Debug>(v: &T) {
        let bytes = gvfs_xdr::to_bytes(v).unwrap();
        assert_eq!(&gvfs_xdr::from_bytes::<T>(&bytes).unwrap(), v);
    }

    fn sample_attr() -> Fattr3 {
        Fattr3 {
            ftype: Ftype3::Reg,
            mode: 0o644,
            nlink: 1,
            uid: 0,
            gid: 0,
            size: 10,
            used: 10,
            rdev: (0, 0),
            fsid: 1,
            fileid: 3,
            atime: NfsTime3::default(),
            mtime: NfsTime3::default(),
            ctime: NfsTime3::default(),
        }
    }
    use crate::types::Ftype3;

    #[test]
    fn getattr_roundtrip() {
        rt(&GetattrArgs { object: Fh3::from_fileid(7) });
        rt(&GetattrRes::Ok(sample_attr()));
        rt(&GetattrRes::Fail(Nfsstat3::Stale));
    }

    #[test]
    fn setattr_roundtrip() {
        rt(&SetattrArgs {
            object: Fh3::from_fileid(1),
            new_attributes: Sattr3 { size: Some(0), ..Default::default() },
            guard: Some(NfsTime3 { seconds: 1, nseconds: 0 }),
        });
        rt(&SetattrRes { status: Nfsstat3::Ok, obj_wcc: WccData::default() });
    }

    #[test]
    fn lookup_roundtrip() {
        rt(&LookupArgs { dir: Fh3::from_fileid(1), name: "Makefile".into() });
        rt(&LookupRes::Ok {
            object: Fh3::from_fileid(9),
            obj_attributes: Some(sample_attr()),
            dir_attributes: None,
        });
        rt(&LookupRes::Fail { status: Nfsstat3::Noent, dir_attributes: None });
    }

    #[test]
    fn lookup_name_bound_enforced() {
        let long = "x".repeat(MAX_NAME + 1);
        let args = LookupArgs { dir: Fh3::from_fileid(1), name: long };
        let bytes = gvfs_xdr::to_bytes(&args).unwrap();
        assert!(gvfs_xdr::from_bytes::<LookupArgs>(&bytes).is_err());
    }

    #[test]
    fn access_roundtrip() {
        rt(&AccessArgs { object: Fh3::from_fileid(1), access: access::READ | access::LOOKUP });
        rt(&AccessRes::Ok { obj_attributes: None, access: access::READ });
        rt(&AccessRes::Fail { status: Nfsstat3::Stale, obj_attributes: None });
    }

    #[test]
    fn read_roundtrip() {
        rt(&ReadArgs { file: Fh3::from_fileid(4), offset: 65536, count: 32768 });
        rt(&ReadRes::Ok {
            file_attributes: Some(sample_attr()),
            count: 3,
            eof: true,
            data: vec![1, 2, 3],
        });
        rt(&ReadRes::Fail { status: Nfsstat3::Io, file_attributes: None });
    }

    #[test]
    fn write_roundtrip() {
        rt(&WriteArgs {
            file: Fh3::from_fileid(4),
            offset: 0,
            count: 4,
            stable: StableHow::Unstable,
            data: vec![9; 4],
        });
        rt(&WriteRes::Ok {
            file_wcc: WccData::default(),
            count: 4,
            committed: StableHow::FileSync,
            verf: 0xabcd,
        });
        rt(&WriteRes::Fail { status: Nfsstat3::Nospc, file_wcc: WccData::default() });
    }

    #[test]
    fn create_roundtrip() {
        for how in [
            CreateHow::Unchecked(Sattr3::default()),
            CreateHow::Guarded(Sattr3 { mode: Some(0o600), ..Default::default() }),
            CreateHow::Exclusive(42),
        ] {
            rt(&CreateArgs { dir: Fh3::from_fileid(1), name: "new".into(), how });
        }
        rt(&NewObjRes::Ok {
            obj: Some(Fh3::from_fileid(5)),
            obj_attributes: Some(sample_attr()),
            dir_wcc: WccData::default(),
        });
        rt(&NewObjRes::Fail { status: Nfsstat3::Exist, dir_wcc: WccData::default() });
    }

    #[test]
    fn mkdir_symlink_roundtrip() {
        rt(&MkdirArgs {
            dir: Fh3::from_fileid(1),
            name: "d".into(),
            attributes: Sattr3::default(),
        });
        rt(&SymlinkArgs {
            dir: Fh3::from_fileid(1),
            name: "l".into(),
            symlink_attributes: Sattr3::default(),
            symlink_data: "/t".into(),
        });
    }

    #[test]
    fn remove_rename_link_roundtrip() {
        rt(&DirOpArgs { dir: Fh3::from_fileid(1), name: "gone".into() });
        rt(&DirOpRes { status: Nfsstat3::Ok, dir_wcc: WccData::default() });
        rt(&RenameArgs {
            from_dir: Fh3::from_fileid(1),
            from_name: "a".into(),
            to_dir: Fh3::from_fileid(2),
            to_name: "b".into(),
        });
        rt(&RenameRes {
            status: Nfsstat3::Notempty,
            fromdir_wcc: WccData::default(),
            todir_wcc: WccData::default(),
        });
        rt(&LinkArgs { file: Fh3::from_fileid(9), dir: Fh3::from_fileid(1), name: "ln".into() });
        rt(&LinkRes {
            status: Nfsstat3::Ok,
            file_attributes: Some(sample_attr()),
            linkdir_wcc: WccData::default(),
        });
    }

    #[test]
    fn readdir_roundtrip_with_entry_chain() {
        rt(&ReaddirArgs { dir: Fh3::from_fileid(1), cookie: 0, cookieverf: 0, count: 4096 });
        let res = ReaddirRes::Ok {
            dir_attributes: None,
            cookieverf: 7,
            entries: vec![
                Entry3 { fileid: 2, name: "a".into(), cookie: 1 },
                Entry3 { fileid: 3, name: "bb".into(), cookie: 2 },
            ],
            eof: true,
        };
        rt(&res);
        rt(&ReaddirRes::Fail { status: Nfsstat3::Notdir, dir_attributes: None });
    }

    #[test]
    fn readdir_empty_page() {
        rt(&ReaddirRes::Ok { dir_attributes: None, cookieverf: 0, entries: vec![], eof: true });
    }

    #[test]
    fn readdirplus_roundtrip() {
        rt(&ReaddirplusArgs {
            dir: Fh3::from_fileid(1),
            cookie: 5,
            cookieverf: 1,
            dircount: 4096,
            maxcount: 32768,
        });
        rt(&ReaddirplusRes::Ok {
            dir_attributes: Some(sample_attr()),
            cookieverf: 1,
            entries: vec![
                EntryPlus3 {
                    fileid: 2,
                    name: "with-attrs".into(),
                    cookie: 1,
                    name_attributes: Some(sample_attr()),
                    name_handle: Some(Fh3::from_fileid(2)),
                },
                EntryPlus3 {
                    fileid: 3,
                    name: "bare".into(),
                    cookie: 2,
                    name_attributes: None,
                    name_handle: None,
                },
            ],
            eof: false,
        });
        rt(&ReaddirplusRes::Fail { status: Nfsstat3::Notdir, dir_attributes: None });
    }

    #[test]
    fn fsstat_fsinfo_commit_roundtrip() {
        rt(&FsstatRes::Ok {
            obj_attributes: None,
            tbytes: 1,
            fbytes: 2,
            abytes: 3,
            tfiles: 4,
            ffiles: 5,
            afiles: 6,
            invarsec: 0,
        });
        rt(&FsinfoRes::Ok {
            obj_attributes: None,
            rtmax: 32768,
            rtpref: 32768,
            wtmax: 32768,
            wtpref: 32768,
            dtpref: 4096,
            maxfilesize: u64::MAX,
        });
        rt(&CommitArgs { file: Fh3::from_fileid(1), offset: 0, count: 0 });
        rt(&CommitRes::Ok { file_wcc: WccData::default(), verf: 1 });
        rt(&CommitRes::Fail { status: Nfsstat3::Io, file_wcc: WccData::default() });
    }

    #[test]
    fn stable_how_rejects_bad_discriminant() {
        assert!(gvfs_xdr::from_bytes::<StableHow>(&[0, 0, 0, 9]).is_err());
    }
}
