/root/repo/target/release/deps/gvfs_analysis-01b2cbc059c303f2.d: crates/analysis/src/main.rs

/root/repo/target/release/deps/gvfs_analysis-01b2cbc059c303f2: crates/analysis/src/main.rs

crates/analysis/src/main.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/analysis
