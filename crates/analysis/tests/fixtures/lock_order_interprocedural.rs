// expect: lock-order
// as: crates/core/src/proxy/client.rs
// Known-bad: the callee acquires `disk` (rank 1) while the caller
// holds `state` (rank 2); only the call graph can see the inversion.
fn op(&self) {
    let st = self.state.lock();
    self.read_disk(st.fh);
}

fn read_disk(&self, fh: Fh3) {
    let d = self.disk.lock();
    d.len();
}
