/root/repo/target/debug/deps/gvfs_xdr-6fb1ab477c679522.d: /root/repo/clippy.toml crates/xdr/src/lib.rs crates/xdr/src/decode.rs crates/xdr/src/encode.rs crates/xdr/src/error.rs Cargo.toml

/root/repo/target/debug/deps/libgvfs_xdr-6fb1ab477c679522.rmeta: /root/repo/clippy.toml crates/xdr/src/lib.rs crates/xdr/src/decode.rs crates/xdr/src/encode.rs crates/xdr/src/error.rs Cargo.toml

/root/repo/clippy.toml:
crates/xdr/src/lib.rs:
crates/xdr/src/decode.rs:
crates/xdr/src/encode.rs:
crates/xdr/src/error.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
