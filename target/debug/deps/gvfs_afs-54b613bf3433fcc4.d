/root/repo/target/debug/deps/gvfs_afs-54b613bf3433fcc4.d: /root/repo/clippy.toml crates/afs/src/lib.rs crates/afs/src/client.rs crates/afs/src/proto.rs crates/afs/src/server.rs Cargo.toml

/root/repo/target/debug/deps/libgvfs_afs-54b613bf3433fcc4.rmeta: /root/repo/clippy.toml crates/afs/src/lib.rs crates/afs/src/client.rs crates/afs/src/proto.rs crates/afs/src/server.rs Cargo.toml

/root/repo/clippy.toml:
crates/afs/src/lib.rs:
crates/afs/src/client.rs:
crates/afs/src/proto.rs:
crates/afs/src/server.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
