/root/repo/target/debug/deps/self_check-49d5499253eda057.d: /root/repo/clippy.toml crates/analysis/tests/self_check.rs Cargo.toml

/root/repo/target/debug/deps/libself_check-49d5499253eda057.rmeta: /root/repo/clippy.toml crates/analysis/tests/self_check.rs Cargo.toml

/root/repo/clippy.toml:
crates/analysis/tests/self_check.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
