//! Chaos plans: the seeded fault-event list and its compilation into
//! per-direction link [`FaultPlan`]s.
//!
//! A chaos run is parameterized by one `u64` seed. The seed expands —
//! through the vendored deterministic [`StdRng`] — into an explicit
//! [`FaultEvent`] list, and the *list* (not the seed) is what the
//! scenario driver executes. That indirection is the shrinker's lever:
//! deleting events from the list and re-running yields a smaller
//! reproducer of the same violation, while every individual run stays a
//! pure function of (scenario config, event list).

use gvfs_netsim::fault::{FaultPlan, Window};
use gvfs_netsim::SimTime;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// One injected fault, in virtual-time milliseconds from simulation
/// start. Crash events are executed by the scenario's controller actor;
/// the link-level events compile into [`FaultPlan`] windows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultEvent {
    /// Hard two-way outage of one client's WAN link.
    Partition {
        /// Affected client index.
        client: usize,
        /// Window start.
        at_ms: u64,
        /// Window length.
        dur_ms: u64,
    },
    /// Probabilistic message loss on one direction of a client's link.
    Drop {
        /// Affected client index.
        client: usize,
        /// `true` faults client→server, `false` the callback/reply path.
        to_server: bool,
        /// Window start.
        at_ms: u64,
        /// Window length.
        dur_ms: u64,
        /// Loss probability in 1/1000.
        permille: u16,
    },
    /// Probabilistic message duplication (retransmission) on one
    /// direction of a client's link.
    Duplicate {
        /// Affected client index.
        client: usize,
        /// Direction, as for [`FaultEvent::Drop`].
        to_server: bool,
        /// Window start.
        at_ms: u64,
        /// Window length.
        dur_ms: u64,
        /// Duplication probability in 1/1000.
        permille: u16,
    },
    /// Extra random delivery latency (reorders concurrent messages).
    Jitter {
        /// Affected client index.
        client: usize,
        /// Direction, as for [`FaultEvent::Drop`].
        to_server: bool,
        /// Window start.
        at_ms: u64,
        /// Window length.
        dur_ms: u64,
        /// Maximum extra latency in milliseconds.
        max_ms: u64,
    },
    /// Proxy-server crash (volatile state lost) followed by restart and
    /// the `RECOVER` multicast.
    ServerCrash {
        /// Crash instant.
        at_ms: u64,
        /// Outage length before the restart.
        down_ms: u64,
    },
    /// Proxy-client crash (kernel-facing and callback nodes down)
    /// followed by restart and client-side crash recovery.
    ClientCrash {
        /// Affected client index.
        client: usize,
        /// Crash instant.
        at_ms: u64,
        /// Outage length before the restart.
        down_ms: u64,
    },
}

impl FaultEvent {
    /// The event's start instant in milliseconds.
    pub fn at_ms(&self) -> u64 {
        match *self {
            FaultEvent::Partition { at_ms, .. }
            | FaultEvent::Drop { at_ms, .. }
            | FaultEvent::Duplicate { at_ms, .. }
            | FaultEvent::Jitter { at_ms, .. }
            | FaultEvent::ServerCrash { at_ms, .. }
            | FaultEvent::ClientCrash { at_ms, .. } => at_ms,
        }
    }
}

impl fmt::Display for FaultEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let dir = |to_server: bool| if to_server { "c->s" } else { "s->c" };
        match *self {
            FaultEvent::Partition { client, at_ms, dur_ms } => {
                write!(f, "partition client={client} at={at_ms}ms for={dur_ms}ms")
            }
            FaultEvent::Drop { client, to_server, at_ms, dur_ms, permille } => {
                write!(
                    f,
                    "drop client={client} {} at={at_ms}ms for={dur_ms}ms p={permille}/1000",
                    dir(to_server)
                )
            }
            FaultEvent::Duplicate { client, to_server, at_ms, dur_ms, permille } => {
                write!(
                    f,
                    "duplicate client={client} {} at={at_ms}ms for={dur_ms}ms p={permille}/1000",
                    dir(to_server)
                )
            }
            FaultEvent::Jitter { client, to_server, at_ms, dur_ms, max_ms } => {
                write!(
                    f,
                    "jitter client={client} {} at={at_ms}ms for={dur_ms}ms max={max_ms}ms",
                    dir(to_server)
                )
            }
            FaultEvent::ServerCrash { at_ms, down_ms } => {
                write!(f, "server-crash at={at_ms}ms down={down_ms}ms")
            }
            FaultEvent::ClientCrash { client, at_ms, down_ms } => {
                write!(f, "client-crash client={client} at={at_ms}ms down={down_ms}ms")
            }
        }
    }
}

/// Expands `seed` into a randomized event list for `clients` machines.
///
/// Fault windows land inside `[15 s, 150 s)` so they overlap the main
/// workload phase but leave the tail of the run undisturbed — the
/// oracles need some post-fault reads to observe convergence.
pub fn generate_events(seed: u64, clients: usize) -> Vec<FaultEvent> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut events = Vec::new();
    let clients = clients.max(1);
    let window = |rng: &mut StdRng| {
        let at = rng.gen_range(15_000u64..120_000);
        let dur = rng.gen_range(5_000u64..30_000);
        (at, dur)
    };
    for _ in 0..rng.gen_range(0usize..=2) {
        let (at_ms, dur_ms) = window(&mut rng);
        events.push(FaultEvent::Partition { client: rng.gen_range(0..clients), at_ms, dur_ms });
    }
    for _ in 0..rng.gen_range(0usize..=2) {
        let (at_ms, dur_ms) = window(&mut rng);
        events.push(FaultEvent::Drop {
            client: rng.gen_range(0..clients),
            to_server: rng.gen_bool(0.5),
            at_ms,
            dur_ms,
            permille: rng.gen_range(10u16..=40),
        });
    }
    for _ in 0..rng.gen_range(0usize..=1) {
        let (at_ms, dur_ms) = window(&mut rng);
        events.push(FaultEvent::Duplicate {
            client: rng.gen_range(0..clients),
            to_server: rng.gen_bool(0.5),
            at_ms,
            dur_ms,
            permille: rng.gen_range(20u16..=80),
        });
    }
    for _ in 0..rng.gen_range(0usize..=2) {
        let (at_ms, dur_ms) = window(&mut rng);
        events.push(FaultEvent::Jitter {
            client: rng.gen_range(0..clients),
            to_server: rng.gen_bool(0.5),
            at_ms,
            dur_ms,
            max_ms: rng.gen_range(1u64..=8),
        });
    }
    if rng.gen_bool(0.5) {
        events.push(FaultEvent::ServerCrash {
            at_ms: rng.gen_range(25_000u64..100_000),
            down_ms: rng.gen_range(5_000u64..20_000),
        });
    }
    if rng.gen_bool(0.4) {
        events.push(FaultEvent::ClientCrash {
            client: rng.gen_range(0..clients),
            at_ms: rng.gen_range(25_000u64..100_000),
            down_ms: rng.gen_range(5_000u64..20_000),
        });
    }
    events.sort_by_key(|e| (e.at_ms(), format!("{e}")));
    events
}

/// Compiles the link-level events into per-`(client, to_server)`
/// direction [`FaultPlan`]s. Each direction gets its own RNG seed
/// derived from `seed`, so plans replay independently of each other.
pub fn compile_fault_plans(seed: u64, events: &[FaultEvent]) -> Vec<(usize, bool, FaultPlan)> {
    let dir_seed = |client: usize, to_server: bool| {
        seed.wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(((client as u64) << 1) | u64::from(to_server))
    };
    let mut plans: Vec<(usize, bool, FaultPlan)> = Vec::new();
    let plan_for = |plans: &mut Vec<(usize, bool, FaultPlan)>, client: usize, dir: bool| {
        if let Some(i) = plans.iter().position(|(c, d, _)| *c == client && *d == dir) {
            i
        } else {
            plans.push((client, dir, FaultPlan::new(dir_seed(client, dir))));
            plans.len() - 1
        }
    };
    let win = |at_ms: u64, dur_ms: u64| {
        Window::new(SimTime::from_millis(at_ms), SimTime::from_millis(at_ms + dur_ms))
    };
    for ev in events {
        match *ev {
            FaultEvent::Partition { client, at_ms, dur_ms } => {
                // A partition cuts both directions.
                for dir in [true, false] {
                    let i = plan_for(&mut plans, client, dir);
                    plans[i].2.partitions.push(win(at_ms, dur_ms));
                }
            }
            FaultEvent::Drop { client, to_server, at_ms, dur_ms, permille } => {
                let i = plan_for(&mut plans, client, to_server);
                let p = f64::from(permille) / 1000.0;
                plans[i].2 = std::mem::take(&mut plans[i].2).with_drop(win(at_ms, dur_ms), p);
            }
            FaultEvent::Duplicate { client, to_server, at_ms, dur_ms, permille } => {
                let i = plan_for(&mut plans, client, to_server);
                let p = f64::from(permille) / 1000.0;
                plans[i].2 = std::mem::take(&mut plans[i].2).with_duplicate(win(at_ms, dur_ms), p);
            }
            FaultEvent::Jitter { client, to_server, at_ms, dur_ms, max_ms } => {
                let i = plan_for(&mut plans, client, to_server);
                plans[i].2 = std::mem::take(&mut plans[i].2)
                    .with_jitter(win(at_ms, dur_ms), std::time::Duration::from_millis(max_ms));
            }
            FaultEvent::ServerCrash { .. } | FaultEvent::ClientCrash { .. } => {}
        }
    }
    plans
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(generate_events(7, 3), generate_events(7, 3));
        // Different seeds should (essentially always) differ.
        assert_ne!(generate_events(7, 3), generate_events(8, 3));
    }

    #[test]
    fn compiled_plans_cover_partition_in_both_directions() {
        let events = vec![FaultEvent::Partition { client: 1, at_ms: 10_000, dur_ms: 5_000 }];
        let plans = compile_fault_plans(1, &events);
        assert_eq!(plans.len(), 2);
        for (client, _, plan) in plans {
            assert_eq!(client, 1);
            assert_eq!(plan.partitions.len(), 1);
            assert!(plan.partitions[0].contains(SimTime::from_millis(12_000)));
        }
    }

    #[test]
    fn direction_seeds_differ() {
        let events = vec![
            FaultEvent::Drop { client: 0, to_server: true, at_ms: 0, dur_ms: 1, permille: 1 },
            FaultEvent::Drop { client: 0, to_server: false, at_ms: 0, dur_ms: 1, permille: 1 },
        ];
        let plans = compile_fault_plans(3, &events);
        assert_eq!(plans.len(), 2);
        assert_ne!(plans[0].2.seed, plans[1].2.seed);
    }
}
