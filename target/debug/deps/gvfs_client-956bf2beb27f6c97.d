/root/repo/target/debug/deps/gvfs_client-956bf2beb27f6c97.d: /root/repo/clippy.toml crates/client/src/lib.rs crates/client/src/cache.rs crates/client/src/client.rs crates/client/src/options.rs Cargo.toml

/root/repo/target/debug/deps/libgvfs_client-956bf2beb27f6c97.rmeta: /root/repo/clippy.toml crates/client/src/lib.rs crates/client/src/cache.rs crates/client/src/client.rs crates/client/src/options.rs Cargo.toml

/root/repo/clippy.toml:
crates/client/src/lib.rs:
crates/client/src/cache.rs:
crates/client/src/client.rs:
crates/client/src/options.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
