/root/repo/target/debug/deps/ablations-b6e0d38e7442e9e7.d: crates/bench/src/bin/ablations.rs

/root/repo/target/debug/deps/ablations-b6e0d38e7442e9e7: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
