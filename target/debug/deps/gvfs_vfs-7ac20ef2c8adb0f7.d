/root/repo/target/debug/deps/gvfs_vfs-7ac20ef2c8adb0f7.d: /root/repo/clippy.toml crates/vfs/src/lib.rs crates/vfs/src/attr.rs crates/vfs/src/error.rs crates/vfs/src/fs.rs Cargo.toml

/root/repo/target/debug/deps/libgvfs_vfs-7ac20ef2c8adb0f7.rmeta: /root/repo/clippy.toml crates/vfs/src/lib.rs crates/vfs/src/attr.rs crates/vfs/src/error.rs crates/vfs/src/fs.rs Cargo.toml

/root/repo/clippy.toml:
crates/vfs/src/lib.rs:
crates/vfs/src/attr.rs:
crates/vfs/src/error.rs:
crates/vfs/src/fs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
