//! The duplicate request cache (DRC).
//!
//! NFS procedures are not all idempotent: a retransmitted `REMOVE` whose
//! first execution succeeded would otherwise fail with `NOENT`, a
//! retransmitted exclusive `CREATE` with `EXIST`. Servers therefore keep
//! a bounded cache of recently sent replies keyed by `(client, xid,
//! procedure)` and replay the cached reply for retransmissions instead
//! of re-executing the call.

use std::collections::{HashMap, VecDeque};

/// Key identifying one client request.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DrcKey {
    /// Client identity (address or session id).
    pub client: String,
    /// RPC transaction id.
    pub xid: u32,
    /// Procedure number (paranoia against xid reuse across procedures).
    pub procedure: u32,
}

/// A bounded reply cache with FIFO eviction.
///
/// # Examples
///
/// ```
/// use gvfs_rpc::drc::{DuplicateRequestCache, DrcKey};
///
/// let mut drc = DuplicateRequestCache::new(128);
/// let key = DrcKey { client: "10.0.0.1:714".into(), xid: 7, procedure: 12 };
/// assert!(drc.lookup(&key).is_none());
/// drc.insert(key.clone(), vec![1, 2, 3]);
/// assert_eq!(drc.lookup(&key), Some(&[1u8, 2, 3][..]));
/// ```
#[derive(Debug)]
pub struct DuplicateRequestCache {
    entries: HashMap<DrcKey, Vec<u8>>,
    order: VecDeque<DrcKey>,
    capacity: usize,
    hits: u64,
    misses: u64,
}

impl DuplicateRequestCache {
    /// Creates a cache holding at most `capacity` replies.
    pub fn new(capacity: usize) -> Self {
        DuplicateRequestCache {
            entries: HashMap::new(),
            order: VecDeque::new(),
            capacity: capacity.max(1),
            hits: 0,
            misses: 0,
        }
    }

    /// Returns the cached reply for a retransmission, if present.
    pub fn lookup(&mut self, key: &DrcKey) -> Option<&[u8]> {
        match self.entries.get(key) {
            Some(reply) => {
                self.hits += 1;
                Some(reply.as_slice())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Records the reply sent for `key`, evicting the oldest entry when
    /// full.
    pub fn insert(&mut self, key: DrcKey, reply: Vec<u8>) {
        if self.entries.insert(key.clone(), reply).is_none() {
            self.order.push_back(key);
            while self.order.len() > self.capacity {
                if let Some(old) = self.order.pop_front() {
                    self.entries.remove(&old);
                }
            }
        }
    }

    /// `(hits, misses)` counters.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Number of cached replies.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(xid: u32) -> DrcKey {
        DrcKey { client: "c".into(), xid, procedure: 1 }
    }

    #[test]
    fn replays_cached_reply() {
        let mut drc = DuplicateRequestCache::new(4);
        drc.insert(key(1), vec![9]);
        assert_eq!(drc.lookup(&key(1)), Some(&[9u8][..]));
        assert_eq!(drc.stats(), (1, 0));
    }

    #[test]
    fn distinct_clients_do_not_collide() {
        let mut drc = DuplicateRequestCache::new(4);
        drc.insert(DrcKey { client: "a".into(), xid: 1, procedure: 1 }, vec![1]);
        assert!(drc.lookup(&DrcKey { client: "b".into(), xid: 1, procedure: 1 }).is_none());
    }

    #[test]
    fn fifo_eviction_bounds_memory() {
        let mut drc = DuplicateRequestCache::new(2);
        drc.insert(key(1), vec![1]);
        drc.insert(key(2), vec![2]);
        drc.insert(key(3), vec![3]);
        assert_eq!(drc.len(), 2);
        assert!(drc.lookup(&key(1)).is_none(), "oldest evicted");
        assert!(drc.lookup(&key(3)).is_some());
    }

    #[test]
    fn reinsert_does_not_duplicate_order_entries() {
        let mut drc = DuplicateRequestCache::new(2);
        drc.insert(key(1), vec![1]);
        drc.insert(key(1), vec![2]); // retransmit path re-stores
        drc.insert(key(2), vec![3]);
        assert_eq!(drc.len(), 2);
        assert_eq!(drc.lookup(&key(1)), Some(&[2u8][..]));
    }
}
