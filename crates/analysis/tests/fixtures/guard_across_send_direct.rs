// expect: guard-across-send
// as: crates/core/src/proxy/server.rs
// Known-bad: a named guard is live at a direct wire entry point.
fn recall(&self) {
    let st = self.state.lock();
    self.transport.call(RECALL, st.fh);
}
