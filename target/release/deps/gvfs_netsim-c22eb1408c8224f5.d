/root/repo/target/release/deps/gvfs_netsim-c22eb1408c8224f5.d: crates/netsim/src/lib.rs crates/netsim/src/link.rs crates/netsim/src/transport.rs crates/netsim/src/sched.rs crates/netsim/src/time.rs

/root/repo/target/release/deps/libgvfs_netsim-c22eb1408c8224f5.rlib: crates/netsim/src/lib.rs crates/netsim/src/link.rs crates/netsim/src/transport.rs crates/netsim/src/sched.rs crates/netsim/src/time.rs

/root/repo/target/release/deps/libgvfs_netsim-c22eb1408c8224f5.rmeta: crates/netsim/src/lib.rs crates/netsim/src/link.rs crates/netsim/src/transport.rs crates/netsim/src/sched.rs crates/netsim/src/time.rs

crates/netsim/src/lib.rs:
crates/netsim/src/link.rs:
crates/netsim/src/transport.rs:
crates/netsim/src/sched.rs:
crates/netsim/src/time.rs:
