/root/repo/target/debug/deps/gvfs_integration-d9641479156dc8f5.d: /root/repo/clippy.toml crates/integration/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libgvfs_integration-d9641479156dc8f5.rmeta: /root/repo/clippy.toml crates/integration/src/lib.rs Cargo.toml

/root/repo/clippy.toml:
crates/integration/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
