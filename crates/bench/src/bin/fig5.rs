//! Figure 5: PostMark runtime vs network round-trip time.
//!
//! Three setups — native NFS, GVFS with the default kernel buffer setup
//! (GVFS1, invalidation polling overlaid), and GVFS with kernel
//! attribute caching disabled (GVFS2, the base for strong consistency
//! via delegation/callback) — across RTTs of 0.5, 5, 10, 20 and 40 ms
//! at 4 Mbit/s.
//!
//! Run: `cargo run --release -p gvfs-bench --bin fig5 [--small]`

use gvfs_bench::{print_table, rpc_meta, save_json, small_mode};
use gvfs_client::{MountOptions, NfsClient};
use gvfs_core::session::{NativeMount, Session, SessionConfig};
use gvfs_core::ConsistencyModel;
use gvfs_netsim::link::LinkConfig;
use gvfs_netsim::Sim;
use gvfs_workloads::postmark::{self, PostmarkConfig};
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::Duration;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Setup {
    Nfs,
    Gvfs1,
    Gvfs2,
}

impl Setup {
    fn name(self) -> &'static str {
        match self {
            Setup::Nfs => "NFS",
            Setup::Gvfs1 => "GVFS1",
            Setup::Gvfs2 => "GVFS2",
        }
    }
}

fn run_one(setup: Setup, rtt_ms: f64, config: &PostmarkConfig) -> (Duration, serde_json::Value) {
    // Figure 5 varies only the end-to-end latency (NIST Net delay
    // emulation on the testbed LAN); bandwidth stays at 100 Mbit/s.
    let link = LinkConfig::lan().with_rtt(Duration::from_micros((rtt_ms * 1000.0) as u64));
    let sim = Sim::new();
    let result = Arc::new(Mutex::new(None));
    let r2 = Arc::clone(&result);
    let cfg = config.clone();
    let stats = match setup {
        Setup::Nfs => {
            let native = NativeMount::establish(1, link, None);
            let (t, root) = (native.client_transport(0), native.root_fh());
            sim.spawn("postmark", move || {
                let client = NfsClient::new(t, root, MountOptions::default());
                *r2.lock() = Some(postmark::run(&client, &cfg).runtime);
            });
            native.stats().clone()
        }
        Setup::Gvfs1 | Setup::Gvfs2 => {
            let session_config = SessionConfig {
                model: if setup == Setup::Gvfs1 {
                    ConsistencyModel::polling_30s()
                } else {
                    ConsistencyModel::delegation()
                },
                ..SessionConfig::default()
            };
            let session = Session::builder(session_config).clients(1).wan(link).establish(&sim);
            let (t, root) = (session.client_transport(0), session.root_fh());
            let handle = session.handle();
            let mount =
                if setup == Setup::Gvfs1 { MountOptions::default() } else { MountOptions::noac() };
            let stats = session.wan_stats().clone();
            sim.spawn("postmark", move || {
                let client = NfsClient::new(t, root, mount);
                let report = postmark::run(&client, &cfg);
                handle.shutdown();
                *r2.lock() = Some(report.runtime);
            });
            stats
        }
    };
    sim.run();
    let out = result.lock().take().expect("runtime");
    (out, rpc_meta(&stats.snapshot()))
}

fn main() {
    let config = if small_mode() { PostmarkConfig::small() } else { PostmarkConfig::default() };
    let rtts = [0.5f64, 5.0, 10.0, 20.0, 40.0];
    let setups = [Setup::Nfs, Setup::Gvfs1, Setup::Gvfs2];

    let mut rows = Vec::new();
    let mut series = Vec::new();
    for setup in setups {
        let mut row = vec![setup.name().to_string()];
        let mut points = Vec::new();
        for &rtt in &rtts {
            let (runtime, rpc) = run_one(setup, rtt, &config);
            row.push(format!("{:.1}", runtime.as_secs_f64()));
            points.push(serde_json::json!({
                "rtt_ms": rtt,
                "runtime_s": runtime.as_secs_f64(),
                "rpc": rpc,
            }));
            eprintln!("  [{} @ {rtt} ms: {:.1}s]", setup.name(), runtime.as_secs_f64());
        }
        rows.push(row);
        series.push(serde_json::json!({ "setup": setup.name(), "points": points }));
    }

    print_table(
        "Figure 5: PostMark runtime (seconds) vs RTT (ms)",
        &["setup", "0.5", "5", "10", "20", "40"],
        &rows,
    );

    save_json(
        "fig5.json",
        &serde_json::json!({
            "experiment": "fig5-postmark",
            "config": {
                "files": config.files, "transactions": config.transactions,
                "min_size": config.min_size, "max_size": config.max_size,
                "subdirs": config.subdirs,
            },
            "series": series,
        }),
    );
}
