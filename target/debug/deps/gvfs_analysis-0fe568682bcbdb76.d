/root/repo/target/debug/deps/gvfs_analysis-0fe568682bcbdb76.d: /root/repo/clippy.toml crates/analysis/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libgvfs_analysis-0fe568682bcbdb76.rmeta: /root/repo/clippy.toml crates/analysis/src/main.rs Cargo.toml

/root/repo/clippy.toml:
crates/analysis/src/main.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/analysis
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
