/root/repo/target/debug/deps/gvfs_client-757d90adb056e1c8.d: crates/client/src/lib.rs crates/client/src/cache.rs crates/client/src/client.rs crates/client/src/options.rs

/root/repo/target/debug/deps/gvfs_client-757d90adb056e1c8: crates/client/src/lib.rs crates/client/src/cache.rs crates/client/src/client.rs crates/client/src/options.rs

crates/client/src/lib.rs:
crates/client/src/cache.rs:
crates/client/src/client.rs:
crates/client/src/options.rs:
