/root/repo/target/debug/examples/data_pipeline-ba61c9a202a536d7.d: /root/repo/clippy.toml crates/bench/../../examples/data_pipeline.rs Cargo.toml

/root/repo/target/debug/examples/libdata_pipeline-ba61c9a202a536d7.rmeta: /root/repo/clippy.toml crates/bench/../../examples/data_pipeline.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/../../examples/data_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
