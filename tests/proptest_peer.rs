//! Differential property tests for peer-to-peer block sourcing
//! (`PEERREAD`):
//!
//! * **observational equivalence** — under random interleavings of
//!   reads, remote writes, and cache drops, every byte an application
//!   reads through a peer-sourcing session is identical to what the
//!   same schedule reads through a star-only session. Peer sourcing
//!   changes *where* a clean block is fetched from, never *what* a
//!   read observes;
//! * **wire silence when disabled** — with `SessionConfig::peer_read`
//!   off, the peer mesh does not exist: zero `PEERREAD` calls, zero
//!   peer statistics, and (proved at the XDR level, same
//!   trailing-optional discipline as the piggyback drain) a
//!   [`WrappedReply`] without an advert encodes byte-identically to
//!   the pre-`PEERREAD` wire format.

use gvfs_client::{MountOptions, NfsClient};
use gvfs_core::protocol::{DelegationGrant, GetinvRes, PeerAdvert, WrappedReply};
use gvfs_core::session::Session;
use gvfs_integration::chaos::ModelKind;
use gvfs_netsim::{Sim, SimTime};
use gvfs_nfs3::Fh3;
use gvfs_xdr::Xdr;
use parking_lot::Mutex;
use proptest::prelude::*;
use std::sync::Arc;

/// The proxy cache's transfer-block granularity: one fetch per block,
/// so a block is the unit a peer can serve.
const BLOCK: u64 = 32 * 1024;
/// Blocks per scenario file. Block 0 always comes from the origin (it
/// carries the attestation and the advert); later blocks are the ones
/// the mesh can source from a peer.
const BLOCKS: u64 = 3;
/// Shared files the schedule reads and writes.
const FILES: usize = 2;

/// Seeded fill byte of `file`'s block `b` (distinct per block so a
/// swapped or partially-applied block shows up as a byte difference).
fn init_byte(file: usize, block: u64) -> u8 {
    0x30 + (file as u8) * BLOCKS as u8 + block as u8
}

#[derive(Debug, Clone, Copy)]
enum PeerOp {
    /// One of the two reader clients reads one block of one file.
    Read { client: usize, file: usize, block: u64 },
    /// The writer client overwrites one block with a fill byte.
    Write { file: usize, block: u64, tag: u8 },
    /// A reader drops its NFS-level caches (attrs, lookups, pages), as
    /// an unmount/remount would.
    Drop { client: usize },
}

fn peer_op() -> impl Strategy<Value = PeerOp> {
    prop_oneof![
        (0usize..2, 0usize..FILES, 0u64..BLOCKS).prop_map(|(client, file, block)| PeerOp::Read {
            client,
            file,
            block
        }),
        (0usize..2, 0usize..FILES, 0u64..BLOCKS).prop_map(|(client, file, block)| PeerOp::Read {
            client,
            file,
            block
        }),
        (0usize..FILES, 0u64..BLOCKS, 0x80u8..0xf0).prop_map(|(file, block, tag)| PeerOp::Write {
            file,
            block,
            tag
        }),
        (0usize..2).prop_map(|client| PeerOp::Drop { client }),
    ]
}

fn model_kind() -> impl Strategy<Value = ModelKind> {
    prop_oneof![Just(ModelKind::Polling), Just(ModelKind::Delegation)]
}

fn sleep_to(secs: u64) {
    let target = SimTime::from_secs(secs);
    let wait = target.saturating_since(gvfs_netsim::now());
    if !wait.is_zero() {
        gvfs_netsim::sleep(wait);
    }
}

/// Everything one schedule run observes: the bytes of every scheduled
/// read (by op index), a converged full read of every file by every
/// client, and the peer counters of all three proxy clients.
struct RunOut {
    reads: Vec<(usize, Vec<u8>)>,
    converged: Vec<Vec<u8>>,
    peer_hits: u64,
    peer_misses: u64,
    peer_fallbacks: u64,
    peer_bytes_served: u64,
    peer_calls: u64,
}

/// Replays one op schedule through a fresh session. Ops run
/// sequentially from a single driver actor at fixed virtual-time
/// instants (2 s apart), so both the peer-sourcing and the star-only
/// replay see every write land at the same absolute time and the
/// consistency model resolves each read identically.
fn run_schedule(ops: &[PeerOp], model: ModelKind, peer_read: bool) -> RunOut {
    let sim = Sim::new();
    let mut config = model.session_config();
    config.peer_read = peer_read;
    let session = Session::builder(config).clients(3).establish(&sim);

    // Seed the shared files out of band.
    let vfs = Arc::clone(session.vfs());
    let t0 = gvfs_vfs::Timestamp::from_nanos(0);
    for f in 0..FILES {
        let id = vfs.create(vfs.root(), &format!("pp-{f}"), 0o644, t0).expect("create");
        let mut content = Vec::with_capacity((BLOCKS * BLOCK) as usize);
        for b in 0..BLOCKS {
            content.extend(std::iter::repeat_n(init_byte(f, b), BLOCK as usize));
        }
        vfs.write(id, 0, &content, t0).expect("seed");
    }

    // Reads tagged by schedule index, then the converged final images.
    type Observations = (Vec<(usize, Vec<u8>)>, Vec<Vec<u8>>);
    let out: Arc<Mutex<Observations>> = Arc::new(Mutex::new((Vec::new(), Vec::new())));
    let handle = session.handle();
    let transports: Vec<_> = (0..3).map(|i| session.client_transport(i)).collect();
    let root = session.root_fh();
    let ops = ops.to_vec();
    let o = Arc::clone(&out);
    sim.spawn("peer-prop-driver", move || {
        let clients: Vec<NfsClient> =
            transports.into_iter().map(|t| NfsClient::new(t, root, MountOptions::noac())).collect();
        let fhs: Vec<Fh3> =
            (0..FILES).map(|f| clients[0].resolve(&format!("/pp-{f}")).expect("resolve")).collect();
        for (i, op) in ops.iter().enumerate() {
            sleep_to(2 * (i as u64 + 1));
            match *op {
                PeerOp::Read { client, file, block } => {
                    let data = clients[client]
                        .read(fhs[file], block * BLOCK, BLOCK as u32)
                        .expect("scheduled read");
                    o.lock().0.push((i, data));
                }
                PeerOp::Write { file, block, tag } => {
                    clients[2]
                        .write(fhs[file], block * BLOCK, &vec![tag; BLOCK as usize])
                        .expect("scheduled write");
                }
                PeerOp::Drop { client } => clients[client].drop_caches(),
            }
        }
        // Convergence: past every polling window and write-back, all
        // clients must agree on every byte of every file.
        sleep_to(2 * (ops.len() as u64 + 1) + 40);
        for c in &clients {
            for &fh in &fhs {
                let data = c.read(fh, 0, (BLOCKS * BLOCK) as u32).expect("converged read");
                o.lock().1.push(data);
            }
        }
        handle.shutdown();
    });
    sim.run();

    let (mut peer_hits, mut peer_misses, mut peer_fallbacks, mut peer_bytes_served) = (0, 0, 0, 0);
    for i in 0..3 {
        let s = session.proxy_client(i).stats();
        peer_hits += s.peer_hits;
        peer_misses += s.peer_misses;
        peer_fallbacks += s.peer_fallbacks;
        peer_bytes_served += s.peer_bytes_served;
    }
    let peer_calls = session.peer_stats().snapshot().total_calls();
    let (reads, converged) = std::mem::take(&mut *out.lock());
    RunOut {
        reads,
        converged,
        peer_hits,
        peer_misses,
        peer_fallbacks,
        peer_bytes_served,
        peer_calls,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Peer-sourced reads are byte-identical to origin-sourced reads:
    /// the same schedule replayed with `peer_read` on and off observes
    /// the same bytes at every scheduled read and converges to the same
    /// final contents — under both cacheable consistency models and
    /// arbitrary write/drop interleavings.
    #[test]
    fn peer_reads_byte_identical_to_origin_reads(
        ops in proptest::collection::vec(peer_op(), 1..12),
        model in model_kind(),
    ) {
        let meshed = run_schedule(&ops, model, true);
        let star = run_schedule(&ops, model, false);
        prop_assert_eq!(
            meshed.reads.len(), star.reads.len(),
            "both replays must complete every scheduled read"
        );
        for ((i, a), (j, b)) in meshed.reads.iter().zip(star.reads.iter()) {
            prop_assert_eq!(i, j);
            prop_assert_eq!(
                a, b,
                "op {} ({:?}, model {:?}): peer-sourced bytes diverge from origin-sourced",
                i, ops[*i], model
            );
        }
        prop_assert_eq!(&meshed.converged, &star.converged, "converged contents diverge");

        // The star-only replay must be wire-silent: no PEERREAD calls,
        // no peer accounting — its traffic is the pre-PEERREAD star
        // topology, byte for byte.
        prop_assert_eq!(star.peer_calls, 0, "peer_read off put PEERREADs on the wire");
        prop_assert_eq!(
            star.peer_hits + star.peer_misses + star.peer_fallbacks + star.peer_bytes_served,
            0,
            "peer_read off accounted peer traffic"
        );
    }

    /// The advert rides as a second trailing optional: a reply without
    /// one encodes byte-identically to the pre-`PEERREAD` wire format
    /// (grant, opaque NFS bytes, optional drain — nothing else), and an
    /// advert without a drain in front of it is dropped rather than
    /// mis-framed. Decoding legacy bytes yields `peers: None`.
    #[test]
    fn reply_without_advert_is_byte_identical_to_legacy_wire(
        grant_pick in 0u8..4,
        ts in any::<u64>(),
        force in any::<bool>(),
        handles in proptest::collection::vec(any::<u64>(), 0..32),
        nfs_payload in proptest::collection::vec(any::<u8>(), 0..96),
        with_inv in any::<bool>(),
        advert_change in any::<u64>(),
        advert_len in any::<u64>(),
        holders in proptest::collection::vec(any::<u32>(), 0..8),
    ) {
        let grant = match grant_pick {
            0 => DelegationGrant::None,
            1 => DelegationGrant::Read,
            2 => DelegationGrant::Write,
            _ => DelegationGrant::NonCacheable,
        };
        let mut nfs_bytes = nfs_payload;
        nfs_bytes.resize(nfs_bytes.len().div_ceil(4) * 4, 0);
        let inv = with_inv.then(|| GetinvRes {
            timestamp: ts,
            force_invalidate: force,
            poll_again: false,
            handles: handles.iter().map(|&h| Fh3::from_fileid(h)).collect(),
        });

        // The legacy (pre-PEERREAD) encoding, laid out by hand.
        let mut legacy = gvfs_xdr::Encoder::new();
        grant.encode(&mut legacy).unwrap();
        legacy.put_opaque(&nfs_bytes).unwrap();
        if let Some(inv) = &inv {
            inv.encode(&mut legacy).unwrap();
        }
        let legacy = legacy.into_bytes();

        // peers: None encodes exactly the legacy bytes.
        let reply = WrappedReply {
            grant,
            inv: inv.clone(),
            peers: None,
            nfs_bytes: nfs_bytes.clone(),
        };
        prop_assert_eq!(&gvfs_xdr::to_bytes(&reply).unwrap(), &legacy);

        // peers ⟹ inv: an advert with no drain in front of it would be
        // undecodable, so the encoder drops it — same legacy bytes.
        if inv.is_none() {
            let orphan = WrappedReply {
                grant,
                inv: None,
                peers: Some(PeerAdvert {
                    fh: Fh3::from_fileid(ts),
                    change: advert_change,
                    len: advert_len,
                    holders: holders.clone(),
                }),
                nfs_bytes: nfs_bytes.clone(),
            };
            prop_assert_eq!(&gvfs_xdr::to_bytes(&orphan).unwrap(), &legacy);
        }

        // Legacy bytes decode with no advert materializing.
        let decoded: WrappedReply = gvfs_xdr::from_bytes(&legacy).unwrap();
        prop_assert_eq!(decoded.peers, None);
        prop_assert_eq!(decoded.grant, grant);
        prop_assert_eq!(decoded.inv, inv);
        prop_assert_eq!(decoded.nfs_bytes, nfs_bytes);
    }
}

/// The differential property is not vacuous: a scripted warm-holder
/// schedule drives real `PEERREAD` traffic (peer hits and LAN calls),
/// so `peer_reads_byte_identical_to_origin_reads` genuinely compares a
/// meshed run against a star-only one.
#[test]
fn differential_schedules_exercise_the_peer_path() {
    let ops = [
        // Client 1 warms every block of file 0 — the origin now
        // advertises it as a live holder.
        PeerOp::Read { client: 1, file: 0, block: 0 },
        PeerOp::Read { client: 1, file: 0, block: 1 },
        PeerOp::Read { client: 1, file: 0, block: 2 },
        // Client 0's block-0 read carries the advert; the later blocks
        // ride the mesh.
        PeerOp::Read { client: 0, file: 0, block: 0 },
        PeerOp::Read { client: 0, file: 0, block: 1 },
        PeerOp::Read { client: 0, file: 0, block: 2 },
    ];
    let meshed = run_schedule(&ops, ModelKind::Delegation, true);
    assert!(meshed.peer_hits > 0, "warm-holder schedule produced no peer hits");
    assert!(meshed.peer_calls > 0, "no PEERREAD ever hit the LAN mesh");
    assert!(meshed.peer_bytes_served > 0, "no peer served a byte");
    for (i, data) in &meshed.reads {
        let PeerOp::Read { file, block, .. } = ops[*i] else { panic!("non-read recorded") };
        assert!(
            data.iter().all(|&b| b == init_byte(file, block)),
            "op {i} observed a wrong or torn block"
        );
    }
}
