//! Filesystem error type, mirroring the NFSv3 status codes it maps to.

use std::error::Error;
use std::fmt;

/// An error from a filesystem operation.
///
/// Each variant corresponds to an NFSv3 `nfsstat3` code so the server
/// layer can translate without losing information.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum VfsError {
    /// No such file or directory (`NFS3ERR_NOENT`).
    NotFound,
    /// The entry already exists (`NFS3ERR_EXIST`).
    Exists,
    /// The operand is not a directory (`NFS3ERR_NOTDIR`).
    NotDir,
    /// The operand is a directory (`NFS3ERR_ISDIR`).
    IsDir,
    /// Directory not empty (`NFS3ERR_NOTEMPTY`).
    NotEmpty,
    /// The file handle is stale — the file was deleted (`NFS3ERR_STALE`).
    Stale,
    /// Permission denied (`NFS3ERR_ACCES`).
    Access,
    /// Invalid argument, e.g. an illegal name (`NFS3ERR_INVAL`).
    InvalidArgument,
    /// Operation not supported on this object (`NFS3ERR_NOTSUPP`).
    NotSupported,
    /// No space (`NFS3ERR_NOSPC`), from the configurable quota.
    NoSpace,
}

impl fmt::Display for VfsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let msg = match self {
            VfsError::NotFound => "no such file or directory",
            VfsError::Exists => "file exists",
            VfsError::NotDir => "not a directory",
            VfsError::IsDir => "is a directory",
            VfsError::NotEmpty => "directory not empty",
            VfsError::Stale => "stale file handle",
            VfsError::Access => "permission denied",
            VfsError::InvalidArgument => "invalid argument",
            VfsError::NotSupported => "operation not supported",
            VfsError::NoSpace => "no space left on device",
        };
        f.write_str(msg)
    }
}

impl Error for VfsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_meaningful() {
        assert_eq!(VfsError::Stale.to_string(), "stale file handle");
        assert_eq!(VfsError::NotEmpty.to_string(), "directory not empty");
    }

    #[test]
    fn error_is_send_sync() {
        fn check<T: Send + Sync + Error>() {}
        check::<VfsError>();
    }
}
