/root/repo/target/debug/deps/fig6-a3e04839a3bed241.d: crates/bench/src/bin/fig6.rs

/root/repo/target/debug/deps/fig6-a3e04839a3bed241: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
