//! Figure 7: parallel NanoMOS on a wide-area software repository.
//!
//! Six WAN clients run eight iterations; between runs four and five a
//! LAN administrator updates (a) the entire MATLAB tree or (b) only the
//! MPITB toolbox. Native NFS re-checks consistency per file; GVFS with
//! invalidation polling learns about the update in a handful of GETINV
//! batches proportional to the update's size.
//!
//! Run: `cargo run --release -p gvfs-bench --bin fig7 [--small]`

use gvfs_bench::{getinv_calls, nfs_calls, print_table, rpc_meta, save_json, small_mode};
use gvfs_client::{MountOptions, NfsClient};
use gvfs_core::session::{NativeMount, Session, SessionConfig};
use gvfs_core::ConsistencyModel;
use gvfs_netsim::link::LinkConfig;
use gvfs_netsim::transport::SimRpcClient;
use gvfs_netsim::Sim;
use gvfs_nfs3::proc3;
use gvfs_rpc::stats::RpcStats;
use gvfs_vfs::Vfs;
use gvfs_workloads::nanomos::{self, NanomosConfig, UpdateScope};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

const COMPUTE_CLIENTS: usize = 6;

struct Outcome {
    /// Mean per-iteration runtime across clients, per iteration.
    runtimes: Vec<f64>,
    /// GETINV calls per client during the update window (GVFS only).
    getinv_for_update: f64,
    /// GETATTR calls per client per run (steady state).
    getattr_per_client_run: f64,
    /// Channel metadata (pipelining high-water mark, latencies).
    rpc: serde_json::Value,
    /// Proxy read-path counters (absent for native NFS).
    read_path: serde_json::Value,
}

fn run_one(gvfs: bool, scope: UpdateScope, config: &NanomosConfig) -> Outcome {
    let sim = Sim::new();
    let vfs = Arc::new(Vfs::new());
    nanomos::populate(&vfs, config);

    // Six WAN compute clients plus one LAN administrator.
    let mut links = vec![LinkConfig::wan(); COMPUTE_CLIENTS];
    links.push(LinkConfig::lan());

    let mut gvfs_session = None;
    let (transports, root, stats, handle): (Vec<SimRpcClient>, _, RpcStats, _) = if gvfs {
        let session_config = SessionConfig {
            model: ConsistencyModel::polling_30s(),
            invalidation_buffer: 32 * 1024,
            ..SessionConfig::default()
        };
        let session = Session::builder(session_config).client_links(links).vfs(vfs).establish(&sim);
        let parts = (
            (0..=COMPUTE_CLIENTS).map(|i| session.client_transport(i)).collect(),
            session.root_fh(),
            session.wan_stats().clone(),
            Some(session.handle()),
        );
        gvfs_session = Some(session);
        parts
    } else {
        let native = NativeMount::establish_with_links(links, Some(vfs));
        (
            (0..=COMPUTE_CLIENTS).map(|i| native.client_transport(i)).collect(),
            native.root_fh(),
            native.stats().clone(),
            None,
        )
    };

    let runtimes: Arc<Mutex<Vec<Vec<f64>>>> =
        Arc::new(Mutex::new(vec![Vec::new(); COMPUTE_CLIENTS]));
    let progress = Arc::new(AtomicUsize::new(0)); // total completed iterations
    let update_done = Arc::new(AtomicBool::new(false));
    let finished = Arc::new(AtomicUsize::new(0));
    let stats_before_update = Arc::new(Mutex::new(None));
    let stats_after_update = Arc::new(Mutex::new(None));

    let mut iter_transports = transports.into_iter();
    for i in 0..COMPUTE_CLIENTS {
        let transport = iter_transports.next().expect("transport");
        let config = config.clone();
        let runtimes = Arc::clone(&runtimes);
        let progress = Arc::clone(&progress);
        let update_done = Arc::clone(&update_done);
        let finished = Arc::clone(&finished);
        sim.spawn(&format!("nanomos-{i}"), move || {
            let client = NfsClient::new(transport, root, MountOptions::default());
            for iteration in 0..config.iterations {
                if iteration == config.iterations / 2 {
                    // Wait for the administrator's update to land before
                    // starting the second half.
                    while !update_done.load(Ordering::SeqCst) {
                        gvfs_netsim::sleep(Duration::from_secs(1));
                    }
                }
                let runtime = nanomos::run_iteration(&client, &config);
                runtimes.lock()[i].push(runtime.as_secs_f64());
                progress.fetch_add(1, Ordering::SeqCst);
            }
            finished.fetch_add(1, Ordering::SeqCst);
        });
    }

    // The administrator: waits for everyone to finish the first half,
    // applies the update, releases the second half.
    let admin_transport = iter_transports.next().expect("admin transport");
    let config2 = config.clone();
    let progress2 = Arc::clone(&progress);
    let update_done2 = Arc::clone(&update_done);
    let stats2 = stats.clone();
    let before2 = Arc::clone(&stats_before_update);
    let after2 = Arc::clone(&stats_after_update);
    sim.spawn("administrator", move || {
        let client = NfsClient::new(admin_transport, root, MountOptions::default());
        let half = COMPUTE_CLIENTS * (config2.iterations / 2);
        while progress2.load(Ordering::SeqCst) < half {
            gvfs_netsim::sleep(Duration::from_secs(2));
        }
        *before2.lock() = Some(stats2.snapshot());
        nanomos::admin_update(&client, &config2, scope);
        *after2.lock() = Some(stats2.snapshot());
        update_done2.store(true, Ordering::SeqCst);
    });

    if let Some(handle) = handle {
        let finished2 = Arc::clone(&finished);
        sim.spawn("janitor", move || loop {
            gvfs_netsim::sleep(Duration::from_secs(10));
            if finished2.load(Ordering::SeqCst) >= COMPUTE_CLIENTS {
                handle.shutdown();
                return;
            }
        });
    }

    sim.run();

    let per_client = runtimes.lock();
    let iterations = config.iterations;
    let mut means = Vec::with_capacity(iterations);
    for it in 0..iterations {
        let sum: f64 = per_client.iter().map(|v| v[it]).sum();
        means.push(sum / COMPUTE_CLIENTS as f64);
    }

    // Update-window GETINV per client (GVFS; includes the drain right
    // after the update as clients poll it in).
    let before = stats_before_update.lock().take().unwrap_or_default();
    let final_snap = stats.snapshot();
    let update_delta = final_snap.since(&before);
    let getinv_for_update = getinv_calls(&update_delta) as f64 / COMPUTE_CLIENTS as f64
        - (COMPUTE_CLIENTS as f64).recip() * 0.0;

    // Steady-state GETATTR per client per run: take the whole run's
    // GETATTRs over clients × iterations (first-run cold misses raise
    // the NFS number slightly; the paper quotes ~2.7K per client run).
    let getattr_per_client_run =
        nfs_calls(&final_snap, proc3::GETATTR) as f64 / (COMPUTE_CLIENTS * iterations) as f64;

    Outcome {
        runtimes: means,
        getinv_for_update,
        getattr_per_client_run,
        rpc: rpc_meta(&final_snap),
        read_path: match &gvfs_session {
            Some(s) => gvfs_bench::session_read_path(s, COMPUTE_CLIENTS),
            None => serde_json::Value::Null,
        },
    }
}

fn main() {
    let config = if small_mode() { NanomosConfig::small() } else { NanomosConfig::default() };

    let mut table_rows = Vec::new();
    let mut json_scopes = Vec::new();
    for (scope, label) in
        [(UpdateScope::Matlab, "a: MATLAB update"), (UpdateScope::Mpitb, "b: MPITB update")]
    {
        let nfs = run_one(false, scope, &config);
        let gvfs = run_one(true, scope, &config);
        eprintln!(
            "  [{label}: NFS getattr/client/run {:.0}; GVFS getinv/client for update {:.1}]",
            nfs.getattr_per_client_run, gvfs.getinv_for_update
        );
        for it in 0..config.iterations {
            table_rows.push(vec![
                label.to_string(),
                (it + 1).to_string(),
                format!("{:.1}", nfs.runtimes[it]),
                format!("{:.1}", gvfs.runtimes[it]),
            ]);
        }
        json_scopes.push(serde_json::json!({
            "scope": label,
            "nfs_runtimes_s": nfs.runtimes,
            "gvfs_runtimes_s": gvfs.runtimes,
            "nfs_getattr_per_client_run": nfs.getattr_per_client_run,
            "gvfs_getinv_per_client_update": gvfs.getinv_for_update,
            "nfs_rpc": nfs.rpc,
            "gvfs_rpc": gvfs.rpc,
            "gvfs_read_path": gvfs.read_path,
        }));
    }

    print_table(
        "Figure 7: NanoMOS mean runtime per iteration (seconds); update lands between runs 4 and 5",
        &["scope", "iter", "NFS", "GVFS"],
        &table_rows,
    );

    save_json(
        "fig7.json",
        &serde_json::json!({
            "experiment": "fig7-nanomos",
            "clients": COMPUTE_CLIENTS,
            "iterations": config.iterations,
            "tree": { "matlab": config.matlab_files, "mpitb": config.mpitb_files },
            "scopes": json_scopes,
        }),
    );
}
