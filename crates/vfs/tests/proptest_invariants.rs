//! Property tests: random operation sequences preserve filesystem
//! invariants (reachability, link counts, byte accounting).

use gvfs_vfs::{FileKind, Timestamp, Vfs, VfsError};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Create(u8),
    Mkdir(u8),
    Write(u8, u16),
    Remove(u8),
    Rmdir(u8),
    Link(u8, u8),
    Rename(u8, u8),
}

fn name(n: u8) -> String {
    format!("n{}", n % 12)
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        any::<u8>().prop_map(Op::Create),
        any::<u8>().prop_map(Op::Mkdir),
        (any::<u8>(), any::<u16>()).prop_map(|(n, len)| Op::Write(n, len % 4096)),
        any::<u8>().prop_map(Op::Remove),
        any::<u8>().prop_map(Op::Rmdir),
        (any::<u8>(), any::<u8>()).prop_map(|(a, b)| Op::Link(a, b)),
        (any::<u8>(), any::<u8>()).prop_map(|(a, b)| Op::Rename(a, b)),
    ]
}

/// Walks the tree from the root and checks:
/// * every reachable file's nlink equals the number of directory entries
///   pointing at it,
/// * used_bytes equals the sum of distinct file sizes,
/// * directory nlink = 2 + number of child directories.
fn check_invariants(fs: &Vfs) {
    use std::collections::HashMap;
    let mut file_refs: HashMap<u64, u32> = HashMap::new();
    let mut file_sizes: HashMap<u64, u64> = HashMap::new();
    let mut stack = vec![fs.root()];
    let mut dirs_seen = 0u64;
    while let Some(dir) = stack.pop() {
        dirs_seen += 1;
        let mut child_dirs = 0;
        let page = fs.readdir(dir, 0, usize::MAX).expect("readdir");
        assert!(page.eof);
        for entry in &page.entries {
            let attr = fs.getattr(entry.fileid).expect("reachable entry has attrs");
            match attr.kind {
                FileKind::Directory => {
                    child_dirs += 1;
                    stack.push(entry.fileid);
                }
                FileKind::Regular | FileKind::Symlink => {
                    *file_refs.entry(entry.fileid.as_u64()).or_default() += 1;
                    if attr.kind == FileKind::Regular {
                        file_sizes.insert(entry.fileid.as_u64(), attr.size);
                    }
                }
            }
        }
        let dir_attr = fs.getattr(dir).expect("dir attrs");
        assert_eq!(dir_attr.nlink, 2 + child_dirs, "directory nlink must be 2 + child dirs");
    }
    for (id, refs) in &file_refs {
        let attr = fs.getattr(gvfs_vfs::FileId::from_u64(*id)).expect("linked file");
        assert_eq!(attr.nlink, *refs, "file nlink must equal directory references");
    }
    let expected_bytes: u64 = file_sizes.values().sum();
    let stat = fs.fsstat();
    assert_eq!(stat.used_bytes, expected_bytes, "used_bytes must match file content");
    assert_eq!(stat.objects, dirs_seen + file_refs.len() as u64, "no orphan objects");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn random_ops_preserve_invariants(ops in proptest::collection::vec(op_strategy(), 1..80)) {
        let fs = Vfs::new();
        let root = fs.root();
        let mut clock = 0u64;
        for op in ops {
            clock += 1;
            let t = Timestamp::from_nanos(clock);
            // All errors are legal outcomes; invariants must hold regardless.
            let result: Result<(), VfsError> = match op {
                Op::Create(n) => fs.create(root, &name(n), 0o644, t).map(|_| ()),
                Op::Mkdir(n) => fs.mkdir(root, &name(n), 0o755, t).map(|_| ()),
                Op::Write(n, len) => fs
                    .lookup(root, &name(n))
                    .and_then(|f| fs.write(f, 0, &vec![7u8; len as usize], t))
                    .map(|_| ()),
                Op::Remove(n) => fs.remove(root, &name(n), t),
                Op::Rmdir(n) => fs.rmdir(root, &name(n), t),
                Op::Link(a, b) => fs
                    .lookup(root, &name(a))
                    .and_then(|f| fs.link(f, root, &name(b), t)),
                Op::Rename(a, b) => fs.rename(root, &name(a), root, &name(b), t),
            };
            let _ = result;
            check_invariants(&fs);
        }
    }

    #[test]
    fn nested_dirs_random_ops(ops in proptest::collection::vec((op_strategy(), any::<u8>()), 1..60)) {
        let fs = Vfs::new();
        let d1 = fs.mkdir(fs.root(), "d1", 0o755, Timestamp::from_nanos(0)).unwrap();
        let d2 = fs.mkdir(fs.root(), "d2", 0o755, Timestamp::from_nanos(0)).unwrap();
        let mut clock = 0u64;
        for (op, which) in ops {
            clock += 1;
            let t = Timestamp::from_nanos(clock);
            let dir = if which % 2 == 0 { d1 } else { d2 };
            let other = if which % 2 == 0 { d2 } else { d1 };
            let _ = match op {
                Op::Create(n) => fs.create(dir, &name(n), 0o644, t).map(|_| ()),
                Op::Mkdir(n) => fs.mkdir(dir, &name(n), 0o755, t).map(|_| ()),
                Op::Write(n, len) => fs
                    .lookup(dir, &name(n))
                    .and_then(|f| fs.write(f, 0, &vec![1u8; len as usize], t))
                    .map(|_| ()),
                Op::Remove(n) => fs.remove(dir, &name(n), t),
                Op::Rmdir(n) => fs.rmdir(dir, &name(n), t),
                Op::Link(a, b) => fs
                    .lookup(dir, &name(a))
                    .and_then(|f| fs.link(f, other, &name(b), t)),
                Op::Rename(a, b) => fs.rename(dir, &name(a), other, &name(b), t),
            };
            check_invariants(&fs);
        }
    }
}
