/root/repo/target/debug/deps/session_consistency-e23ae5e5dc4c84c7.d: crates/core/tests/session_consistency.rs

/root/repo/target/debug/deps/session_consistency-e23ae5e5dc4c84c7: crates/core/tests/session_consistency.rs

crates/core/tests/session_consistency.rs:
