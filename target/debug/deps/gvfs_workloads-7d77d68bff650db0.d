/root/repo/target/debug/deps/gvfs_workloads-7d77d68bff650db0.d: crates/workloads/src/lib.rs crates/workloads/src/ch1d.rs crates/workloads/src/lock.rs crates/workloads/src/make.rs crates/workloads/src/nanomos.rs crates/workloads/src/postmark.rs

/root/repo/target/debug/deps/libgvfs_workloads-7d77d68bff650db0.rlib: crates/workloads/src/lib.rs crates/workloads/src/ch1d.rs crates/workloads/src/lock.rs crates/workloads/src/make.rs crates/workloads/src/nanomos.rs crates/workloads/src/postmark.rs

/root/repo/target/debug/deps/libgvfs_workloads-7d77d68bff650db0.rmeta: crates/workloads/src/lib.rs crates/workloads/src/ch1d.rs crates/workloads/src/lock.rs crates/workloads/src/make.rs crates/workloads/src/nanomos.rs crates/workloads/src/postmark.rs

crates/workloads/src/lib.rs:
crates/workloads/src/ch1d.rs:
crates/workloads/src/lock.rs:
crates/workloads/src/make.rs:
crates/workloads/src/nanomos.rs:
crates/workloads/src/postmark.rs:
