//! Error type for the RPC layer.

use gvfs_xdr::XdrError;
use std::error::Error;
use std::fmt;

/// An error produced by the RPC layer.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RpcError {
    /// A message failed to encode or decode.
    Xdr(XdrError),
    /// The requested program is not registered with the dispatcher.
    ProgramUnavailable {
        /// The requested program number.
        program: u32,
    },
    /// The program exists but not at the requested version.
    ProgramMismatch {
        /// The requested program number.
        program: u32,
        /// Lowest supported version.
        low: u32,
        /// Highest supported version.
        high: u32,
    },
    /// The procedure number is not defined for this program.
    ProcedureUnavailable {
        /// The requested program number.
        program: u32,
        /// The requested procedure number.
        procedure: u32,
    },
    /// The arguments could not be decoded by the service.
    GarbageArgs,
    /// The credential was rejected.
    AuthError,
    /// The call could not be delivered (e.g. network partition) or timed
    /// out waiting for a reply.
    Timeout,
    /// The remote endpoint is not reachable at all.
    Unreachable,
    /// The service failed internally.
    SystemError {
        /// Human-readable detail.
        detail: String,
    },
}

impl RpcError {
    /// Whether the error is a transient transport condition (a timeout
    /// or an unreachable peer) that a retry with back-off can outwait,
    /// as opposed to a protocol-level rejection that will recur.
    ///
    /// The chaos harness injects exactly these two conditions (dropped
    /// messages surface as [`RpcError::Timeout`], partition windows as
    /// [`RpcError::Unreachable`]); retry loops in the proxy key off this
    /// predicate so injected faults and real outages take the same path.
    pub fn is_transient(&self) -> bool {
        matches!(self, RpcError::Timeout | RpcError::Unreachable)
    }
}

impl fmt::Display for RpcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RpcError::Xdr(e) => write!(f, "xdr error: {e}"),
            RpcError::ProgramUnavailable { program } => {
                write!(f, "program {program} unavailable")
            }
            RpcError::ProgramMismatch { program, low, high } => {
                write!(f, "program {program} version mismatch (supported {low}..={high})")
            }
            RpcError::ProcedureUnavailable { program, procedure } => {
                write!(f, "procedure {procedure} unavailable in program {program}")
            }
            RpcError::GarbageArgs => write!(f, "garbage arguments"),
            RpcError::AuthError => write!(f, "authentication error"),
            RpcError::Timeout => write!(f, "rpc timed out"),
            RpcError::Unreachable => write!(f, "remote endpoint unreachable"),
            RpcError::SystemError { detail } => write!(f, "system error: {detail}"),
        }
    }
}

impl Error for RpcError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            RpcError::Xdr(e) => Some(e),
            _ => None,
        }
    }
}

impl From<XdrError> for RpcError {
    fn from(e: XdrError) -> Self {
        RpcError::Xdr(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants_are_nonempty() {
        let variants = vec![
            RpcError::Xdr(XdrError::LengthOverflow),
            RpcError::ProgramUnavailable { program: 1 },
            RpcError::ProgramMismatch { program: 1, low: 2, high: 3 },
            RpcError::ProcedureUnavailable { program: 1, procedure: 9 },
            RpcError::GarbageArgs,
            RpcError::AuthError,
            RpcError::Timeout,
            RpcError::Unreachable,
            RpcError::SystemError { detail: "x".into() },
        ];
        for v in variants {
            assert!(!v.to_string().is_empty());
        }
    }

    #[test]
    fn transient_classification() {
        assert!(RpcError::Timeout.is_transient());
        assert!(RpcError::Unreachable.is_transient());
        assert!(!RpcError::GarbageArgs.is_transient());
        assert!(!RpcError::SystemError { detail: "x".into() }.is_transient());
    }

    #[test]
    fn xdr_error_is_source() {
        let err = RpcError::from(XdrError::InvalidUtf8);
        assert!(std::error::Error::source(&err).is_some());
    }
}
