/root/repo/target/debug/deps/gvfs_nfs3-a37e0ee31de94cc9.d: crates/nfs3/src/lib.rs crates/nfs3/src/mount.rs crates/nfs3/src/procs.rs crates/nfs3/src/status.rs crates/nfs3/src/types.rs

/root/repo/target/debug/deps/libgvfs_nfs3-a37e0ee31de94cc9.rlib: crates/nfs3/src/lib.rs crates/nfs3/src/mount.rs crates/nfs3/src/procs.rs crates/nfs3/src/status.rs crates/nfs3/src/types.rs

/root/repo/target/debug/deps/libgvfs_nfs3-a37e0ee31de94cc9.rmeta: crates/nfs3/src/lib.rs crates/nfs3/src/mount.rs crates/nfs3/src/procs.rs crates/nfs3/src/status.rs crates/nfs3/src/types.rs

crates/nfs3/src/lib.rs:
crates/nfs3/src/mount.rs:
crates/nfs3/src/procs.rs:
crates/nfs3/src/status.rs:
crates/nfs3/src/types.rs:
