/root/repo/target/debug/deps/gvfs_vfs-cdcbaf0893028ab4.d: crates/vfs/src/lib.rs crates/vfs/src/attr.rs crates/vfs/src/error.rs crates/vfs/src/fs.rs

/root/repo/target/debug/deps/libgvfs_vfs-cdcbaf0893028ab4.rlib: crates/vfs/src/lib.rs crates/vfs/src/attr.rs crates/vfs/src/error.rs crates/vfs/src/fs.rs

/root/repo/target/debug/deps/libgvfs_vfs-cdcbaf0893028ab4.rmeta: crates/vfs/src/lib.rs crates/vfs/src/attr.rs crates/vfs/src/error.rs crates/vfs/src/fs.rs

crates/vfs/src/lib.rs:
crates/vfs/src/attr.rs:
crates/vfs/src/error.rs:
crates/vfs/src/fs.rs:
