//! The proxy server's invalidation buffers (§4.2).
//!
//! The server keeps one bounded, logically-timestamped circular queue
//! per client. File modifications append invalidation entries to every
//! *other* client's buffer (the writer observed its own change), with
//! repeated invalidations of the same file coalesced. Clients drain
//! their buffer with `GETINV`; the server detects first contact, client
//! restart and wrap-around and answers with a `force-invalidate` flag in
//! those cases.
//!
//! Two tracker shapes share the per-buffer logic ([`ClientBuffer`],
//! private to this module):
//!
//! * [`InvalidationTracker`] — the single-owner (`&mut self`) form used
//!   by unit tests and the protocol model checker, where explicit state
//!   enumeration needs plain values;
//! * [`ConcurrentInvalidationTracker`] — the proxy server's form: the
//!   logical clock is atomic and every client's buffer has its own
//!   lock, so request handlers for different clients append and drain
//!   invalidations without serializing on one global mutex.

use crate::protocol::{GetinvRes, MAX_INVALIDATIONS_PER_REPLY};
use gvfs_nfs3::Fh3;
use parking_lot::{Mutex, RwLock};
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

#[derive(Debug, Clone)]
struct ClientBuffer {
    entries: VecDeque<(u64, Fh3)>,
    members: HashSet<Fh3>,
    /// Timestamps at or below this value may have been discarded
    /// (buffer creation point or wrap-around).
    floor: u64,
}

impl ClientBuffer {
    fn new(floor: u64, capacity: usize) -> Self {
        ClientBuffer { entries: VecDeque::with_capacity(capacity), members: HashSet::new(), floor }
    }

    /// Appends one invalidation entry (coalesced per file; wraps past
    /// `capacity` by discarding the oldest entry and raising the floor).
    fn record(&mut self, ts: u64, fh: Fh3, capacity: usize) {
        if self.members.contains(&fh) {
            return; // coalesced with a pending entry
        }
        self.entries.push_back((ts, fh));
        self.members.insert(fh);
        if self.entries.len() > capacity {
            // Wrap-around: discard the oldest and remember how far back
            // the buffer is still complete.
            if let Some((lost_ts, lost_fh)) = self.entries.pop_front() {
                self.members.remove(&lost_fh);
                self.floor = self.floor.max(lost_ts);
            }
        }
    }

    /// Answers one `GETINV` call against this buffer (§4.2.1, server
    /// side). `first_contact` is decided by the owner (buffer existence);
    /// `clock` is the tracker's current logical timestamp.
    fn getinv(
        &mut self,
        last_timestamp: Option<u64>,
        clock: u64,
        first_contact: bool,
    ) -> GetinvRes {
        // Rule 1 (§4.2.1): the first GETINV from a client — including
        // the first after a server restart lost all buffers — always
        // bootstraps with a force-invalidation. So does a client that
        // lost its timestamp. Rule 2: so does a buffer that has wrapped
        // past what the client has seen.
        let force = first_contact
            || match last_timestamp {
                None => true,
                Some(ts) if ts < self.floor => true,
                Some(_) => false,
            };
        if force {
            self.entries.clear();
            self.members.clear();
            self.floor = clock;
            return GetinvRes {
                timestamp: clock,
                force_invalidate: true,
                poll_again: false,
                handles: Vec::new(),
            };
        }
        if self.entries.len() > MAX_INVALIDATIONS_PER_REPLY {
            // Partial drain: return the oldest slice and have the client
            // poll again immediately.
            let mut handles = Vec::with_capacity(MAX_INVALIDATIONS_PER_REPLY);
            let mut last_ts = clock;
            for _ in 0..MAX_INVALIDATIONS_PER_REPLY {
                let (ts, fh) = self.entries.pop_front().expect("len checked");
                self.members.remove(&fh);
                last_ts = ts;
                handles.push(fh);
            }
            self.floor = last_ts;
            GetinvRes { timestamp: last_ts, force_invalidate: false, poll_again: true, handles }
        } else {
            let handles: Vec<Fh3> = self.entries.drain(..).map(|(_, fh)| fh).collect();
            self.members.clear();
            self.floor = clock;
            GetinvRes { timestamp: clock, force_invalidate: false, poll_again: false, handles }
        }
    }

    fn dump(&self) -> (u64, Vec<(u64, Fh3)>) {
        (self.floor, self.entries.iter().copied().collect())
    }
}

/// One client's buffer as reported by [`InvalidationTracker::snapshot`]:
/// `(client, floor, queued (timestamp, handle) entries)`.
pub type BufferSnapshot = (u32, u64, Vec<(u64, Fh3)>);

/// Manages per-client invalidation buffers and the server's logical
/// clock.
///
/// # Examples
///
/// ```
/// use gvfs_core::invalidation::InvalidationTracker;
/// use gvfs_nfs3::Fh3;
///
/// let mut tracker = InvalidationTracker::new(128);
/// let boot = tracker.getinv(1, None); // bootstrap
/// assert!(boot.force_invalidate);
/// tracker.record_modification(Fh3::from_fileid(9), 2); // client 2 wrote
/// let res = tracker.getinv(1, Some(boot.timestamp));
/// assert_eq!(res.handles, vec![Fh3::from_fileid(9)]);
/// ```
#[derive(Debug, Clone)]
pub struct InvalidationTracker {
    buffers: HashMap<u32, ClientBuffer>,
    capacity: usize,
    clock: u64,
}

impl InvalidationTracker {
    /// Creates a tracker whose per-client buffers hold at most
    /// `capacity` entries before wrapping.
    pub fn new(capacity: usize) -> Self {
        InvalidationTracker { buffers: HashMap::new(), capacity: capacity.max(1), clock: 0 }
    }

    /// The current logical timestamp.
    pub fn now(&self) -> u64 {
        self.clock
    }

    /// Records a file modification observed from `writer`: every other
    /// registered client gets an invalidation entry (coalesced per
    /// file).
    pub fn record_modification(&mut self, fh: Fh3, writer: u32) {
        self.clock += 1;
        let ts = self.clock;
        for (&client, buf) in &mut self.buffers {
            if client == writer {
                continue;
            }
            buf.record(ts, fh, self.capacity);
        }
    }

    /// Processes one `GETINV` call (§4.2.1, server side).
    pub fn getinv(&mut self, client: u32, last_timestamp: Option<u64>) -> GetinvRes {
        let clock = self.clock;
        let capacity = self.capacity;
        let first_contact = !self.buffers.contains_key(&client);
        let buf = self.buffers.entry(client).or_insert_with(|| ClientBuffer::new(clock, capacity));
        buf.getinv(last_timestamp, clock, first_contact)
    }

    /// Number of registered client buffers.
    pub fn client_count(&self) -> usize {
        self.buffers.len()
    }

    /// Entries pending for one client (diagnostics).
    pub fn pending(&self, client: u32) -> usize {
        self.buffers.get(&client).map_or(0, |b| b.entries.len())
    }

    /// A canonical dump of every client buffer, sorted by client id:
    /// `(client, floor, queued (timestamp, handle) entries)`. Used by
    /// diagnostics and the protocol model checker.
    pub fn snapshot(&self) -> Vec<BufferSnapshot> {
        let mut out: Vec<BufferSnapshot> = self
            .buffers
            .iter()
            .map(|(&c, b)| {
                let (floor, entries) = b.dump();
                (c, floor, entries)
            })
            .collect();
        out.sort_unstable_by_key(|&(c, _, _)| c);
        out
    }
}

#[derive(Debug)]
struct ClientSlot {
    buf: Mutex<ClientBuffer>,
}

/// The proxy server's concurrently-shared form of
/// [`InvalidationTracker`]: same protocol behaviour (the per-buffer
/// logic is literally shared), but the logical clock is an atomic and
/// each client's buffer sits behind its own lock. Request handlers for
/// different clients therefore never contend on a global mutex — a
/// `WRITE` appending invalidations and a `GETINV` draining another
/// client's buffer proceed in parallel.
///
/// Lock order: the `buffers` map lock is strictly outer to any per
/// client `buf` lock, and no RPC is ever sent under either.
#[derive(Debug)]
pub struct ConcurrentInvalidationTracker {
    buffers: RwLock<HashMap<u32, Arc<ClientSlot>>>,
    capacity: AtomicUsize,
    clock: AtomicU64,
}

impl ConcurrentInvalidationTracker {
    /// Creates a tracker whose per-client buffers hold at most
    /// `capacity` entries before wrapping.
    pub fn new(capacity: usize) -> Self {
        ConcurrentInvalidationTracker {
            buffers: RwLock::new(HashMap::new()),
            capacity: AtomicUsize::new(capacity.max(1)),
            clock: AtomicU64::new(0),
        }
    }

    /// Discards all buffers and restarts the clock with a new capacity
    /// (server crash, or the middleware re-configuring the session).
    pub fn reset(&self, capacity: usize) {
        let mut buffers = self.buffers.write();
        buffers.clear();
        self.capacity.store(capacity.max(1), Ordering::SeqCst);
        self.clock.store(0, Ordering::SeqCst);
    }

    /// The current logical timestamp.
    pub fn now(&self) -> u64 {
        self.clock.load(Ordering::SeqCst)
    }

    /// Records a file modification observed from `writer`: every other
    /// registered client gets an invalidation entry (coalesced per
    /// file).
    pub fn record_modification(&self, fh: Fh3, writer: u32) {
        let ts = self.clock.fetch_add(1, Ordering::SeqCst) + 1;
        let capacity = self.capacity.load(Ordering::SeqCst);
        let buffers = self.buffers.read();
        for (&client, slot) in buffers.iter() {
            if client == writer {
                continue;
            }
            slot.buf.lock().record(ts, fh, capacity);
        }
    }

    /// Processes one `GETINV` call (§4.2.1, server side).
    pub fn getinv(&self, client: u32, last_timestamp: Option<u64>) -> GetinvRes {
        let existing = {
            let buffers = self.buffers.read();
            buffers.get(&client).cloned()
        };
        let (slot, first_contact) = match existing {
            Some(slot) => (slot, false),
            None => {
                let capacity = self.capacity.load(Ordering::SeqCst);
                let clock = self.clock.load(Ordering::SeqCst);
                let mut buffers = self.buffers.write();
                // A racing first contact resolves to whoever inserted
                // first; the loser sees an existing buffer.
                let first = !buffers.contains_key(&client);
                let slot = Arc::clone(buffers.entry(client).or_insert_with(|| {
                    Arc::new(ClientSlot { buf: Mutex::new(ClientBuffer::new(clock, capacity)) })
                }));
                (slot, first)
            }
        };
        let clock = self.clock.load(Ordering::SeqCst);
        let res = slot.buf.lock().getinv(last_timestamp, clock, first_contact);
        res
    }

    /// Number of registered client buffers.
    pub fn client_count(&self) -> usize {
        self.buffers.read().len()
    }

    /// Entries pending for one client (diagnostics).
    pub fn pending(&self, client: u32) -> usize {
        let slot = {
            let buffers = self.buffers.read();
            buffers.get(&client).cloned()
        };
        slot.map_or(0, |s| s.buf.lock().entries.len())
    }

    /// A canonical dump of every client buffer, sorted by client id —
    /// same shape as [`InvalidationTracker::snapshot`].
    pub fn snapshot(&self) -> Vec<BufferSnapshot> {
        let buffers = self.buffers.read();
        let mut out: Vec<BufferSnapshot> = buffers
            .iter()
            .map(|(&c, s)| {
                let (floor, entries) = s.buf.lock().dump();
                (c, floor, entries)
            })
            .collect();
        out.sort_unstable_by_key(|&(c, _, _)| c);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fh(n: u64) -> Fh3 {
        Fh3::from_fileid(n)
    }

    #[test]
    fn bootstrap_forces_invalidation() {
        let mut t = InvalidationTracker::new(8);
        let res = t.getinv(1, None);
        assert!(res.force_invalidate);
        assert!(res.handles.is_empty());
        // Second poll with the returned timestamp is clean.
        let res2 = t.getinv(1, Some(res.timestamp));
        assert!(!res2.force_invalidate);
        assert!(res2.handles.is_empty());
    }

    #[test]
    fn modifications_flow_to_other_clients_only() {
        let mut t = InvalidationTracker::new(8);
        let a = t.getinv(1, None);
        let b = t.getinv(2, None);
        t.record_modification(fh(7), 1);
        let to_writer = t.getinv(1, Some(a.timestamp));
        assert!(to_writer.handles.is_empty(), "writer does not self-invalidate");
        let to_other = t.getinv(2, Some(b.timestamp));
        assert_eq!(to_other.handles, vec![fh(7)]);
    }

    #[test]
    fn repeated_modifications_coalesce() {
        let mut t = InvalidationTracker::new(8);
        let boot = t.getinv(1, None);
        for _ in 0..5 {
            t.record_modification(fh(7), 2);
        }
        t.record_modification(fh(8), 2);
        let res = t.getinv(1, Some(boot.timestamp));
        assert_eq!(res.handles, vec![fh(7), fh(8)]);
    }

    #[test]
    fn buffer_is_cleared_after_drain() {
        let mut t = InvalidationTracker::new(8);
        let boot = t.getinv(1, None);
        t.record_modification(fh(1), 2);
        let first = t.getinv(1, Some(boot.timestamp));
        assert_eq!(first.handles.len(), 1);
        let second = t.getinv(1, Some(first.timestamp));
        assert!(second.handles.is_empty());
    }

    #[test]
    fn wrap_around_forces_full_invalidation() {
        let mut t = InvalidationTracker::new(4);
        let boot = t.getinv(1, None);
        for i in 0..10 {
            t.record_modification(fh(100 + i), 2); // distinct files
        }
        // Entries were dropped; the client's timestamp predates the floor.
        let res = t.getinv(1, Some(boot.timestamp));
        assert!(res.force_invalidate);
        assert!(res.handles.is_empty());
        // After the force, polling resumes normally.
        t.record_modification(fh(55), 2);
        let next = t.getinv(1, Some(res.timestamp));
        assert!(!next.force_invalidate);
        assert_eq!(next.handles, vec![fh(55)]);
    }

    #[test]
    fn overflow_with_fresh_timestamp_still_delivers_remainder() {
        let mut t = InvalidationTracker::new(4);
        let boot = t.getinv(1, None);
        t.record_modification(fh(1), 2);
        let mid = t.getinv(1, Some(boot.timestamp));
        assert_eq!(mid.handles.len(), 1);
        // Fewer than capacity new entries: no wrap, normal delivery.
        for i in 0..3 {
            t.record_modification(fh(10 + i), 2);
        }
        let res = t.getinv(1, Some(mid.timestamp));
        assert!(!res.force_invalidate);
        assert_eq!(res.handles.len(), 3);
    }

    #[test]
    fn poll_again_paginates_large_backlogs() {
        let mut t = InvalidationTracker::new(10_000);
        let boot = t.getinv(1, None);
        let total = MAX_INVALIDATIONS_PER_REPLY + 50;
        for i in 0..total {
            t.record_modification(fh(1000 + i as u64), 2);
        }
        let first = t.getinv(1, Some(boot.timestamp));
        assert!(first.poll_again);
        assert_eq!(first.handles.len(), MAX_INVALIDATIONS_PER_REPLY);
        let second = t.getinv(1, Some(first.timestamp));
        assert!(!second.poll_again);
        assert_eq!(second.handles.len(), 50);
        assert!(!second.force_invalidate);
    }

    #[test]
    fn server_restart_bootstrap() {
        let mut t = InvalidationTracker::new(8);
        let boot = t.getinv(1, None);
        t.record_modification(fh(1), 2);
        // Server "restarts": new tracker, no buffers.
        let mut t2 = InvalidationTracker::new(8);
        let res = t2.getinv(1, Some(boot.timestamp));
        assert!(res.force_invalidate, "unknown client after restart is re-bootstrapped");
    }

    #[test]
    fn client_crash_null_timestamp_rebootstraps() {
        let mut t = InvalidationTracker::new(8);
        let boot = t.getinv(1, None);
        t.record_modification(fh(1), 2);
        assert_eq!(t.pending(1), 1);
        // Client crashed, lost its timestamp, polls with null.
        let res = t.getinv(1, None);
        assert!(res.force_invalidate);
        assert_eq!(t.pending(1), 0, "buffer reset on bootstrap");
        let _ = boot;
    }

    #[test]
    fn timestamps_increase_monotonically() {
        let mut t = InvalidationTracker::new(8);
        t.getinv(1, None);
        let mut last = 0;
        for i in 0..20 {
            t.record_modification(fh(i), 2);
            assert!(t.now() > last);
            last = t.now();
        }
    }

    /// One scripted operation against both tracker shapes.
    enum Op {
        Record(u64, u32),
        Getinv(u32, UseTs),
    }

    enum UseTs {
        Null,
        Last,
        Stale,
    }

    /// The concurrent tracker must be operationally indistinguishable
    /// from the reference tracker: same script, same replies — across
    /// bootstrap, coalescing, wrap-around, pagination and restart.
    #[test]
    fn concurrent_tracker_matches_reference() {
        use Op::{Getinv, Record};
        let mut script = vec![
            Getinv(1, UseTs::Null),
            Getinv(2, UseTs::Null),
            Record(7, 1),
            Record(7, 1), // coalesces
            Record(8, 2),
            Getinv(1, UseTs::Last),
            Getinv(2, UseTs::Last),
            Getinv(3, UseTs::Null), // late first contact
        ];
        // Wrap-around (capacity 4) for client 3, then a stale poll.
        for i in 0..10 {
            script.push(Record(100 + i, 1));
        }
        script.push(Getinv(3, UseTs::Stale));
        script.push(Getinv(3, UseTs::Last));
        script.push(Getinv(2, UseTs::Last));
        script.push(Getinv(1, UseTs::Null)); // client 1 restarts

        let mut reference = InvalidationTracker::new(4);
        let concurrent = ConcurrentInvalidationTracker::new(4);
        let mut last_ts: HashMap<u32, u64> = HashMap::new();
        for op in &script {
            match op {
                Record(id, writer) => {
                    reference.record_modification(fh(*id), *writer);
                    concurrent.record_modification(fh(*id), *writer);
                    assert_eq!(reference.now(), concurrent.now());
                }
                Getinv(client, ts) => {
                    let last = match ts {
                        UseTs::Null => None,
                        UseTs::Last => last_ts.get(client).copied(),
                        UseTs::Stale => Some(0),
                    };
                    let a = reference.getinv(*client, last);
                    let b = concurrent.getinv(*client, last);
                    assert_eq!(a, b, "replies diverged for client {client}");
                    last_ts.insert(*client, a.timestamp);
                }
            }
        }
        assert_eq!(reference.snapshot(), concurrent.snapshot());
        assert_eq!(reference.client_count(), concurrent.client_count());
    }

    #[test]
    fn concurrent_reset_rebootstraps_clients() {
        let t = ConcurrentInvalidationTracker::new(8);
        let boot = t.getinv(1, None);
        t.record_modification(fh(1), 2);
        assert_eq!(t.pending(1), 1);
        t.reset(8);
        assert_eq!(t.client_count(), 0);
        let res = t.getinv(1, Some(boot.timestamp));
        assert!(res.force_invalidate, "buffers lost in reset force a bootstrap");
    }
}
