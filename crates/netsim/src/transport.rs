//! RPC transport over simulated links.
//!
//! [`SimRpcClient`] encodes real ONC RPC messages (so transfer sizes are
//! byte-accurate), charges them against a [`LinkHalf`], and executes the
//! destination [`ServerNode`]'s dispatcher — at the correct virtual
//! time. Handlers may themselves own `SimRpcClient`s and make nested
//! calls (the GVFS proxy server calls the kernel NFS server; callbacks
//! flow server → client), all accounted on the same virtual clock.
//!
//! The client implements [`RpcChannel`]: [`SimRpcClient::send`] puts a
//! call on the wire and hands its remaining round trip to a child actor,
//! so many xids can be in flight at once — a pipelined batch of N WRITEs
//! costs N serializations plus one round trip instead of N round trips.
//! Replies complete in link-arrival order and child actors are spawned
//! in program order, so simulations stay fully deterministic. The
//! blocking [`SimRpcClient::call`] runs the identical execution body
//! inline in the calling actor (no extra thread per call).

use crate::link::LinkHalf;
use crate::{advance_to, current_actor, now, park, sleep, spawn_from_actor, SimTime};
use gvfs_rpc::channel::{CallSlot, PendingCall, RpcChannel};
use gvfs_rpc::dispatch::Dispatcher;
use gvfs_rpc::message::{CallBody, MessageBody, OpaqueAuth, ReplyBody, RpcMessage};
use gvfs_rpc::record::ensure_sendable;
use gvfs_rpc::stats::RpcStats;
use gvfs_rpc::RpcError;
use parking_lot::{Mutex, RwLock};
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A server endpoint: a dispatcher plus availability state.
///
/// The per-call processing time models the host's service latency
/// (the paper's VMs served RPCs from memory in well under a millisecond).
#[derive(Debug)]
pub struct ServerNode {
    name: String,
    dispatcher: RwLock<Dispatcher>,
    proc_time: Duration,
    up: AtomicBool,
}

impl ServerNode {
    /// Creates a server named `name` with per-call processing time
    /// `proc_time`.
    pub fn new(name: &str, dispatcher: Dispatcher, proc_time: Duration) -> Arc<Self> {
        Arc::new(ServerNode {
            name: name.to_string(),
            dispatcher: RwLock::new(dispatcher),
            proc_time,
            up: AtomicBool::new(true),
        })
    }

    /// The server's name (diagnostics only).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Replaces the dispatcher (used when a restarted server re-registers
    /// services with fresh state).
    pub fn set_dispatcher(&self, dispatcher: Dispatcher) {
        *self.dispatcher.write() = dispatcher;
    }

    /// Marks the server up or down. While down, calls time out.
    pub fn set_up(&self, up: bool) {
        self.up.store(up, Ordering::SeqCst);
    }

    /// Whether the server is accepting calls.
    pub fn is_up(&self) -> bool {
        self.up.load(Ordering::SeqCst)
    }

    /// Dispatches a call inline (no network accounting).
    pub fn dispatch(&self, xid: u32, call: &CallBody) -> ReplyBody {
        self.dispatcher.read().dispatch(xid, call)
    }
}

/// A client stub bound to one link direction and one server.
///
/// Cheap to clone; clones share the xid counter and statistics.
#[derive(Clone)]
pub struct SimRpcClient {
    link: LinkHalf,
    server: Arc<ServerNode>,
    stats: RpcStats,
    xid: Arc<AtomicU32>,
    timeout: Duration,
    credential: OpaqueAuth,
}

impl std::fmt::Debug for SimRpcClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimRpcClient").field("server", &self.server.name()).finish()
    }
}

impl SimRpcClient {
    /// Creates a client calling `server` over `link`.
    ///
    /// `stats` receives one record per call that actually crossed the
    /// link — this is the counter the experiment harness reads to
    /// reproduce the paper's RPC-count figures.
    pub fn new(link: LinkHalf, server: Arc<ServerNode>, stats: RpcStats) -> Self {
        SimRpcClient {
            link,
            server,
            stats,
            xid: Arc::new(AtomicU32::new(1)),
            timeout: Duration::from_millis(1100),
            credential: OpaqueAuth::none(),
        }
    }

    /// Sets the credential attached to every call.
    pub fn with_credential(mut self, credential: OpaqueAuth) -> Self {
        self.credential = credential;
        self
    }

    /// Sets the simulated RPC timeout charged when the server is down.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    /// The statistics counter shared by this client.
    pub fn stats(&self) -> &RpcStats {
        &self.stats
    }

    /// The destination server.
    pub fn server(&self) -> &Arc<ServerNode> {
        &self.server
    }

    /// Performs one RPC, advancing the calling actor's virtual clock by
    /// the full round trip (request serialization + propagation + server
    /// processing + reply path).
    ///
    /// # Errors
    ///
    /// * [`RpcError::Unreachable`] — the link is partitioned.
    /// * [`RpcError::Timeout`] — the server is down (the timeout is
    ///   charged to the virtual clock).
    /// * Any RFC 5531 error status returned by the server.
    ///
    /// # Panics
    ///
    /// Panics when called outside a simulation actor.
    pub fn call(
        &self,
        program: u32,
        version: u32,
        procedure: u32,
        args: Vec<u8>,
    ) -> Result<Vec<u8>, RpcError> {
        self.call_with_cred(program, version, procedure, args, self.credential.clone())
    }

    /// Like [`SimRpcClient::call`] with an explicit credential.
    ///
    /// # Errors
    ///
    /// As for [`SimRpcClient::call`].
    pub fn call_with_cred(
        &self,
        program: u32,
        version: u32,
        procedure: u32,
        args: Vec<u8>,
        credential: OpaqueAuth,
    ) -> Result<Vec<u8>, RpcError> {
        // The single execution body, run inline: identical timing to a
        // send immediately followed by a wait, without the child actor.
        let tx = self.transmit(program, version, procedure, credential, args)?;
        self.complete(tx).0
    }

    /// Transmits one call and returns a [`PendingCall`]; the remaining
    /// round trip (propagation, server processing, reply path) runs on a
    /// child actor so further sends can overlap it on the wire. Uses the
    /// client's default credential.
    ///
    /// # Errors
    ///
    /// [`RpcError::Unreachable`] when the link is partitioned at send
    /// time; oversized messages as [`RpcError::SystemError`].
    ///
    /// # Panics
    ///
    /// Panics when called outside a simulation actor.
    pub fn send(
        &self,
        program: u32,
        version: u32,
        procedure: u32,
        args: Vec<u8>,
    ) -> Result<PendingCall, RpcError> {
        self.send_with_cred(program, version, procedure, args, self.credential.clone())
    }

    /// Like [`SimRpcClient::send`] with an explicit credential.
    ///
    /// # Errors
    ///
    /// As for [`SimRpcClient::send`].
    pub fn send_with_cred(
        &self,
        program: u32,
        version: u32,
        procedure: u32,
        args: Vec<u8>,
        credential: OpaqueAuth,
    ) -> Result<PendingCall, RpcError> {
        let tx = self.transmit(program, version, procedure, credential, args)?;
        let xid = tx.xid;
        let slot = Arc::new(SimSlot::default());
        let client = self.clone();
        let filler = Arc::clone(&slot);
        // Child actors are spawned in program order, which is how the
        // scheduler breaks clock ties — determinism is preserved.
        spawn_from_actor(&format!("rpc-{}-xid-{xid}", self.server.name()), move || {
            let (result, at) = client.complete(tx);
            filler.fill(result, at);
        });
        Ok(PendingCall::new(xid, program, procedure, slot))
    }

    /// Claims the reply of an earlier [`SimRpcClient::send`], parking
    /// the calling actor until it arrives and advancing its clock to the
    /// completion time. Pending calls may be waited on in any order.
    ///
    /// # Errors
    ///
    /// As for [`SimRpcClient::call`].
    pub fn wait_pending(&self, pending: PendingCall) -> Result<Vec<u8>, RpcError> {
        pending.wait()
    }

    /// Encodes and charges one call message against the link at the
    /// current virtual time. This is the half of the round trip that
    /// must happen at send time: link occupancy (serialization) is
    /// claimed in program order, so a batch of sends queues back-to-back
    /// on the pipe.
    fn transmit(
        &self,
        program: u32,
        version: u32,
        procedure: u32,
        credential: OpaqueAuth,
        args: Vec<u8>,
    ) -> Result<Transmitted, RpcError> {
        let xid = self.xid.fetch_add(1, Ordering::Relaxed);
        let call = CallBody::new(program, version, procedure, credential, args);
        let msg = RpcMessage { xid, body: MessageBody::Call(call) };
        let call_bytes = gvfs_xdr::to_bytes(&msg)?;
        ensure_sendable(call_bytes.len())?;
        let wire_out = call_bytes.len() + 4; // record mark

        let started = now();
        let delivery = self.link.transfer(started, wire_out).map_err(|_| {
            self.stats.record_unreachable();
            RpcError::Unreachable
        })?;
        self.stats.call_started();
        let MessageBody::Call(call) = msg.body else { unreachable!() };
        Ok(Transmitted {
            xid,
            program,
            procedure,
            call,
            wire_out,
            started,
            arrival: delivery.arrival,
            dropped: delivery.dropped,
            duplicated: delivery.duplicated,
        })
    }

    /// Runs a transmitted call to completion on the calling actor's
    /// clock: waits out propagation, executes the server dispatch, and
    /// charges the reply path. Returns the result together with the
    /// completion time.
    fn complete(&self, tx: Transmitted) -> (Result<Vec<u8>, RpcError>, SimTime) {
        let result = self.complete_inner(&tx);
        self.stats.call_finished();
        (result, now())
    }

    fn complete_inner(&self, tx: &Transmitted) -> Result<Vec<u8>, RpcError> {
        advance_to(tx.arrival);

        if tx.dropped {
            // The request was lost in flight: the server never saw it and
            // the caller burns its full RPC timeout before giving up.
            sleep(self.timeout);
            self.stats.record_timeout();
            return Err(RpcError::Timeout);
        }
        if !self.server.is_up() {
            sleep(self.timeout);
            self.stats.record_timeout();
            return Err(RpcError::Timeout);
        }
        sleep(self.server_proc_time());

        let reply = self.server.dispatch(tx.xid, &tx.call);
        if tx.duplicated {
            // A duplicated request is a retransmission the server executes
            // a second time (no duplicate-request cache, as with ONC RPC
            // over UDP); the xid matcher claims only the first reply.
            sleep(self.server_proc_time());
            let _ = self.server.dispatch(tx.xid, &tx.call);
        }
        let reply_msg = RpcMessage { xid: tx.xid, body: MessageBody::Reply(reply) };
        let reply_bytes = gvfs_xdr::to_bytes(&reply_msg)?;
        let wire_in = reply_bytes.len() + 4;

        let back = match self.link.transfer_reverse(now(), wire_in) {
            Ok(delivery) if delivery.dropped => {
                // The reply was lost after the server executed the call:
                // the caller observes a timeout even though the server's
                // state changed (a lost acknowledgement).
                sleep(self.timeout);
                self.stats.record_timeout();
                return Err(RpcError::Timeout);
            }
            Ok(delivery) => delivery.arrival,
            Err(_) => {
                self.stats.record_unreachable();
                return Err(RpcError::Unreachable);
            }
        };
        advance_to(back);

        let latency = u64::try_from(back.saturating_since(tx.started).as_nanos()).unwrap_or(0);
        self.stats.record_latency(
            tx.program,
            tx.procedure,
            tx.wire_out as u64,
            wire_in as u64,
            latency,
        );

        let RpcMessage { body: MessageBody::Reply(reply), .. } = reply_msg else { unreachable!() };
        reply.results().map(<[u8]>::to_vec)
    }

    fn server_proc_time(&self) -> Duration {
        self.server.proc_time
    }
}

/// A call that has been charged against the link but not yet completed.
struct Transmitted {
    xid: u32,
    program: u32,
    procedure: u32,
    call: CallBody,
    wire_out: usize,
    started: SimTime,
    arrival: SimTime,
    dropped: bool,
    duplicated: bool,
}

/// A completed call's reply bytes and virtual completion time.
type SlotResult = (Result<Vec<u8>, RpcError>, SimTime);

/// Completion slot for one in-flight simulated call: filled by the
/// call's child actor, claimed by whichever actor waits on it.
#[derive(Default)]
struct SimSlot {
    done: Mutex<Option<SlotResult>>,
    waiter: Mutex<Option<crate::ActorHandle>>,
}

impl SimSlot {
    fn fill(&self, result: Result<Vec<u8>, RpcError>, at: SimTime) {
        *self.done.lock() = Some((result, at));
        if let Some(waiter) = self.waiter.lock().take() {
            waiter.unpark();
        }
    }
}

impl CallSlot for SimSlot {
    /// Parks the calling actor until the call's child actor delivers the
    /// reply, then advances the caller's clock to the completion time.
    /// Waiting on calls out of order works: each wait only ever moves
    /// the waiter's clock forward.
    fn wait(&self) -> Result<Vec<u8>, RpcError> {
        loop {
            if let Some((result, at)) = self.done.lock().take() {
                advance_to(at);
                return result;
            }
            *self.waiter.lock() = Some(current_actor());
            park();
        }
    }
}

impl RpcChannel for SimRpcClient {
    fn send(
        &self,
        program: u32,
        version: u32,
        procedure: u32,
        credential: OpaqueAuth,
        args: Vec<u8>,
    ) -> Result<PendingCall, RpcError> {
        self.send_with_cred(program, version, procedure, args, credential)
    }

    fn call(
        &self,
        program: u32,
        version: u32,
        procedure: u32,
        credential: OpaqueAuth,
        args: Vec<u8>,
    ) -> Result<Vec<u8>, RpcError> {
        // Same execution body as send + wait, run inline to spare the
        // child actor for the (very common) blocking case.
        self.call_with_cred(program, version, procedure, args, credential)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::{Link, LinkConfig};
    use crate::{Sim, SimTime};
    use gvfs_rpc::dispatch::RpcService;
    use parking_lot::Mutex;

    struct Echo;
    impl RpcService for Echo {
        fn program(&self) -> u32 {
            50
        }
        fn version(&self) -> u32 {
            1
        }
        fn call(&self, procedure: u32, args: &[u8]) -> Result<Vec<u8>, RpcError> {
            match procedure {
                0 => Ok(args.to_vec()),
                _ => Err(RpcError::ProcedureUnavailable { program: 50, procedure }),
            }
        }
    }

    fn server() -> Arc<ServerNode> {
        let mut d = Dispatcher::new();
        d.register(Echo);
        ServerNode::new("s1", d, Duration::from_micros(200))
    }

    #[test]
    fn call_charges_round_trip_time() {
        let link = Link::new(LinkConfig {
            one_way_latency: Duration::from_millis(20),
            bandwidth_bps: None,
            per_message_overhead: 0,
        });
        let client = SimRpcClient::new(link.forward(), server(), RpcStats::new());
        let out = Arc::new(Mutex::new(None));
        let o = out.clone();
        let sim = Sim::new();
        sim.spawn("c", move || {
            let reply = client.call(50, 1, 0, vec![0, 0, 0, 1]).unwrap();
            assert_eq!(reply, vec![0, 0, 0, 1]);
            *o.lock() = Some(now());
        });
        sim.run();
        let t = out.lock().unwrap();
        // 2 × 20 ms propagation + 200 µs processing.
        assert_eq!(t, SimTime::from_nanos(40_200_000));
    }

    #[test]
    fn stats_record_wire_sizes() {
        let link = Link::new(LinkConfig::loopback());
        let stats = RpcStats::new();
        let client = SimRpcClient::new(link.forward(), server(), stats.clone());
        let sim = Sim::new();
        sim.spawn("c", move || {
            client.call(50, 1, 0, vec![]).unwrap();
        });
        sim.run();
        let snap = stats.snapshot();
        assert_eq!(snap.calls(50, 0), 1);
        assert!(snap.total_bytes() > 40, "rpc headers must be accounted");
    }

    #[test]
    fn down_server_times_out_and_charges_clock() {
        let link = Link::new(LinkConfig::loopback());
        let srv = server();
        srv.set_up(false);
        let client = SimRpcClient::new(link.forward(), srv, RpcStats::new())
            .with_timeout(Duration::from_secs(1));
        let out = Arc::new(Mutex::new(None));
        let o = out.clone();
        let sim = Sim::new();
        sim.spawn("c", move || {
            assert_eq!(client.call(50, 1, 0, vec![]).unwrap_err(), RpcError::Timeout);
            *o.lock() = Some(now());
        });
        sim.run();
        assert!(out.lock().unwrap() >= SimTime::from_secs(1));
    }

    #[test]
    fn partitioned_link_is_unreachable() {
        let link = Link::new(LinkConfig::loopback());
        link.set_partitioned(true);
        let client = SimRpcClient::new(link.forward(), server(), RpcStats::new());
        let sim = Sim::new();
        sim.spawn("c", move || {
            assert_eq!(client.call(50, 1, 0, vec![]).unwrap_err(), RpcError::Unreachable);
        });
        sim.run();
    }

    #[test]
    fn remote_errors_surface() {
        let link = Link::new(LinkConfig::loopback());
        let client = SimRpcClient::new(link.forward(), server(), RpcStats::new());
        let sim = Sim::new();
        sim.spawn("c", move || {
            let err = client.call(50, 1, 99, vec![]).unwrap_err();
            assert!(matches!(err, RpcError::ProcedureUnavailable { .. }));
        });
        sim.run();
    }

    #[test]
    fn pipelined_sends_share_one_round_trip() {
        let link = Link::new(LinkConfig {
            one_way_latency: Duration::from_millis(20),
            bandwidth_bps: None,
            per_message_overhead: 0,
        });
        let client = SimRpcClient::new(link.forward(), server(), RpcStats::new());
        let out = Arc::new(Mutex::new(None));
        let o = out.clone();
        let sim = Sim::new();
        sim.spawn("c", move || {
            let a = client.send(50, 1, 0, vec![0, 0, 0, 1]).unwrap();
            let b = client.send(50, 1, 0, vec![0, 0, 0, 2]).unwrap();
            // Claim out of order: replies are matched by xid, not arrival.
            assert_eq!(client.wait_pending(b).unwrap(), vec![0, 0, 0, 2]);
            assert_eq!(client.wait_pending(a).unwrap(), vec![0, 0, 0, 1]);
            *o.lock() = Some(now());
        });
        sim.run();
        let t = out.lock().unwrap();
        // Both calls overlap: one 2 × 20 ms round trip + 200 µs
        // processing, not two.
        assert_eq!(t, SimTime::from_nanos(40_200_000));
    }

    #[test]
    fn pipelined_sends_are_deterministic() {
        let run = || {
            let link = Link::new(LinkConfig::wan());
            let stats = RpcStats::new();
            let client = SimRpcClient::new(link.forward(), server(), stats.clone());
            let sim = Sim::new();
            sim.spawn("c", move || {
                let pending: Vec<_> =
                    (0u8..5).map(|i| client.send(50, 1, 0, vec![0, 0, 0, i]).unwrap()).collect();
                for (i, p) in pending.into_iter().enumerate() {
                    assert_eq!(client.wait_pending(p).unwrap(), vec![0, 0, 0, i as u8]);
                }
            });
            (sim.run(), stats.snapshot().max_in_flight())
        };
        let (t1, hwm1) = run();
        let (t2, hwm2) = run();
        assert_eq!(t1, t2, "virtual completion time must be reproducible");
        assert_eq!(hwm1, 5, "all five calls must be in flight at once");
        assert_eq!(hwm1, hwm2);
    }

    #[test]
    fn stats_gauge_and_latency_observed() {
        let link = Link::new(LinkConfig {
            one_way_latency: Duration::from_millis(20),
            bandwidth_bps: None,
            per_message_overhead: 0,
        });
        let stats = RpcStats::new();
        let client = SimRpcClient::new(link.forward(), server(), stats.clone());
        let sim = Sim::new();
        sim.spawn("c", move || {
            client.call(50, 1, 0, vec![]).unwrap();
        });
        sim.run();
        let snap = stats.snapshot();
        assert_eq!(snap.max_in_flight(), 1);
        assert_eq!(snap.mean_latency_nanos(50, 0), 40_200_000);
    }

    #[test]
    fn dropped_request_times_out_without_dispatch() {
        use crate::fault::{FaultPlan, Window};
        let link = Link::new(LinkConfig::loopback());
        let window = Window::new(SimTime::ZERO, SimTime::from_secs(10));
        link.set_fault_plan(true, Some(FaultPlan::new(5).with_drop(window, 1.0)));
        let stats = RpcStats::new();
        let client = SimRpcClient::new(link.forward(), server(), stats.clone())
            .with_timeout(Duration::from_secs(1));
        let out = Arc::new(Mutex::new(None));
        let o = out.clone();
        let sim = Sim::new();
        sim.spawn("c", move || {
            assert_eq!(client.call(50, 1, 0, vec![]).unwrap_err(), RpcError::Timeout);
            *o.lock() = Some(now());
        });
        sim.run();
        assert!(out.lock().unwrap() >= SimTime::from_secs(1), "timeout must be charged");
        let snap = stats.snapshot();
        assert_eq!(snap.transport_timeouts(), 1);
        assert_eq!(snap.calls(50, 0), 0, "a lost call never completes");
    }

    #[test]
    fn dropped_reply_loses_the_acknowledgement() {
        use crate::fault::{FaultPlan, Window};
        let link = Link::new(LinkConfig::loopback());
        let window = Window::new(SimTime::ZERO, SimTime::from_secs(10));
        // Fault only the reply direction: the server executes the call.
        link.set_fault_plan(false, Some(FaultPlan::new(6).with_drop(window, 1.0)));
        let hits = Arc::new(Mutex::new(0u32));
        let h = hits.clone();
        struct Counting(Arc<Mutex<u32>>);
        impl RpcService for Counting {
            fn program(&self) -> u32 {
                50
            }
            fn version(&self) -> u32 {
                1
            }
            fn call(&self, _procedure: u32, args: &[u8]) -> Result<Vec<u8>, RpcError> {
                *self.0.lock() += 1;
                Ok(args.to_vec())
            }
        }
        let mut d = Dispatcher::new();
        d.register(Counting(h));
        let srv = ServerNode::new("s1", d, Duration::from_micros(200));
        let client = SimRpcClient::new(link.forward(), srv, RpcStats::new())
            .with_timeout(Duration::from_secs(1));
        let sim = Sim::new();
        sim.spawn("c", move || {
            assert_eq!(client.call(50, 1, 0, vec![]).unwrap_err(), RpcError::Timeout);
        });
        sim.run();
        assert_eq!(*hits.lock(), 1, "the server executed the call despite the lost ack");
    }

    #[test]
    fn duplicated_request_executes_twice_but_replies_once() {
        use crate::fault::{FaultPlan, Window};
        let link = Link::new(LinkConfig::loopback());
        let window = Window::new(SimTime::ZERO, SimTime::from_secs(10));
        link.set_fault_plan(true, Some(FaultPlan::new(7).with_duplicate(window, 1.0)));
        let hits = Arc::new(Mutex::new(0u32));
        let h = hits.clone();
        struct Counting(Arc<Mutex<u32>>);
        impl RpcService for Counting {
            fn program(&self) -> u32 {
                50
            }
            fn version(&self) -> u32 {
                1
            }
            fn call(&self, _procedure: u32, args: &[u8]) -> Result<Vec<u8>, RpcError> {
                *self.0.lock() += 1;
                Ok(args.to_vec())
            }
        }
        let mut d = Dispatcher::new();
        d.register(Counting(h));
        let srv = ServerNode::new("s1", d, Duration::from_micros(200));
        let client = SimRpcClient::new(link.forward(), srv, RpcStats::new());
        let sim = Sim::new();
        sim.spawn("c", move || {
            assert_eq!(client.call(50, 1, 0, vec![1, 2, 3, 4]).unwrap(), vec![1, 2, 3, 4]);
        });
        sim.run();
        assert_eq!(*hits.lock(), 2, "the retransmission reached the dispatcher");
    }

    #[test]
    fn unreachable_sends_are_counted() {
        let link = Link::new(LinkConfig::loopback());
        link.set_partitioned(true);
        let stats = RpcStats::new();
        let client = SimRpcClient::new(link.forward(), server(), stats.clone());
        let sim = Sim::new();
        sim.spawn("c", move || {
            assert_eq!(client.call(50, 1, 0, vec![]).unwrap_err(), RpcError::Unreachable);
            assert_eq!(client.call(50, 1, 0, vec![]).unwrap_err(), RpcError::Unreachable);
        });
        sim.run();
        assert_eq!(stats.snapshot().transport_unreachable(), 2);
    }

    #[test]
    fn restarted_server_serves_again() {
        let link = Link::new(LinkConfig::loopback());
        let srv = server();
        let srv2 = Arc::clone(&srv);
        let client = SimRpcClient::new(link.forward(), srv, RpcStats::new())
            .with_timeout(Duration::from_millis(100));
        let sim = Sim::new();
        sim.spawn("c", move || {
            srv2.set_up(false);
            assert!(client.call(50, 1, 0, vec![]).is_err());
            srv2.set_up(true);
            assert!(client.call(50, 1, 0, vec![]).is_ok());
        });
        sim.run();
    }
}
