// expect: lock-order
// as: crates/core/src/proxy/client.rs
// Known-bad: `state` (rank 2) is held while `disk` (rank 1) is
// acquired — the inverse of the declared order.
fn op(&self) {
    let st = self.state.lock();
    let d = self.disk.lock();
    d.len();
}
